//! Pins each determinism rule's exact findings against the known-bad/known-
//! good fixture files in `tests/fixtures/`. Every rule D001–D006 has at least
//! one positive and one negative case, and the waiver machinery (valid,
//! malformed → W001, stale → W002) is pinned line-exactly. The fixtures are
//! never compiled — they are raw inputs to the analyzer.

use daris_lint::analyze_source;
use daris_lint::rules::RuleId;

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Runs the analyzer on a fixture under a synthetic repo-relative path and
/// returns the surviving `(rule, line)` pairs in report order.
fn run(name: &str, synthetic_path: &str) -> Vec<(RuleId, u32)> {
    let (findings, _) = analyze_source(synthetic_path, &fixture(name));
    findings.into_iter().map(|f| (f.rule, f.line)).collect()
}

const SIM: &str = "crates/gpu/src/fixture.rs";

#[test]
fn d001_unordered_iteration() {
    assert_eq!(
        run("d001.rs", SIM),
        vec![
            (RuleId::D001, 6),  // map.iter() in a for loop
            (RuleId::D001, 7),  // for over &set
            (RuleId::D001, 9),  // m.keys()
            (RuleId::D001, 10), // HashMap::new().into_iter() constructor chain
            (RuleId::D001, 11), // m.retain()
        ]
    );
}

#[test]
fn d001_is_scoped_to_sim_crates() {
    // The same hazards are legal outside the sim crates (e.g. the bench
    // runners). The baselines crate joined the sim scope when its schedulers
    // moved behind the `Scheduler` trait: its results now feed the
    // byte-identical guarantee through the cluster dispatcher.
    assert_eq!(run("d001.rs", "crates/bench/src/fixture.rs"), vec![]);
    assert!(!run("d001.rs", "crates/baselines/src/fixture.rs").is_empty());
}

#[test]
fn d002_ambient_nondeterminism() {
    assert_eq!(
        run("d002.rs", SIM),
        vec![
            (RuleId::D002, 6), // Instant::now
            (RuleId::D002, 7), // SystemTime
            (RuleId::D002, 8), // UNIX_EPOCH
            (RuleId::D002, 9), // thread_rng
        ]
    );
}

#[test]
fn d002_bench_is_sanctioned() {
    assert_eq!(run("d002.rs", "crates/bench/src/fixture.rs"), vec![]);
}

#[test]
fn d003_float_accumulation() {
    assert_eq!(
        run("d003.rs", SIM),
        vec![
            (RuleId::D001, 6),  // rates.values()
            (RuleId::D003, 6),  // ...sum()
            (RuleId::D001, 7),  // rates.values()
            (RuleId::D003, 7),  // ...fold()
            (RuleId::D001, 9),  // for over &rates
            (RuleId::D003, 10), // float += in its body
            (RuleId::D001, 17), // rates.values() (integer counter: D001 only)
        ]
    );
}

#[test]
fn d004_thread_spawns() {
    assert_eq!(run("d004.rs", SIM), vec![(RuleId::D004, 6), (RuleId::D004, 7), (RuleId::D004, 8)]);
}

#[test]
fn d004_worker_pool_is_sanctioned() {
    assert_eq!(run("d004.rs", "crates/cluster/src/pool.rs"), vec![]);
    // The dispatcher itself is no longer a sanctioned spawn site: all
    // threading moved behind the pool module's API.
    assert_eq!(
        run("d004.rs", "crates/cluster/src/dispatcher.rs"),
        vec![(RuleId::D004, 6), (RuleId::D004, 7), (RuleId::D004, 8)]
    );
}

#[test]
fn d005_lossy_time_casts() {
    assert_eq!(run("d005.rs", SIM), vec![(RuleId::D005, 6), (RuleId::D005, 7)]);
}

#[test]
fn d006_forbid_unsafe_code() {
    assert_eq!(run("d006_missing.rs", "crates/fake/src/lib.rs"), vec![(RuleId::D006, 1)]);
    assert_eq!(run("d006_present.rs", "crates/fake/src/lib.rs"), vec![]);
    // Only crate roots are in scope for D006.
    assert_eq!(run("d006_missing.rs", "crates/fake/src/other.rs"), vec![]);
}

#[test]
fn waivers_suppress_malformed_and_stale_are_errors() {
    let (findings, used) = analyze_source(SIM, &fixture("waivers.rs"));
    let got: Vec<(RuleId, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(
        got,
        vec![
            (RuleId::W001, 8), // allow(D001) with no reason
            (RuleId::W002, 9), // waiver whose target line has no finding
        ]
    );
    assert_eq!(used.len(), 2, "the two well-formed waivers must both be consumed");
    assert!(used.iter().all(|w| !w.reason.is_empty()));
}

#[test]
fn waived_rule_must_match_finding_rule() {
    // A D002 waiver does not silence a D001 finding: wrong-rule waivers go
    // stale and the finding survives.
    let src = "fn f(m: HashMap<u32, u32>) {\n\
               \x20   // daris-lint: allow(D002, reason = \"wrong rule\")\n\
               \x20   let _n = m.iter().count();\n\
               }\n";
    let (findings, _) = analyze_source(SIM, src);
    let got: Vec<(RuleId, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(got, vec![(RuleId::W002, 2), (RuleId::D001, 3)]);
}

#[test]
fn telemetry_crate_is_in_sim_scope() {
    // `crates/telemetry` ships in-band with the simulators: the same
    // unordered-iteration and ambient-nondeterminism hazards must be findings
    // there too (its events feed the byte-identical trace guarantee).
    let telemetry = "crates/telemetry/src/fixture.rs";
    assert_eq!(run("d001.rs", telemetry), run("d001.rs", SIM));
    assert_eq!(run("d002.rs", telemetry), run("d002.rs", SIM));
}

#[test]
fn profiler_wall_clock_waiver_is_pinned() {
    // The round-phase profiler carries the single sanctioned `Instant::now`
    // outside `daris-bench`, under a reasoned D002 waiver. Pin both halves:
    // the committed source stays finding-free, and exactly one D002 waiver is
    // consumed — if the waiver goes stale or a second wall-clock read sneaks
    // in, this fails before CI's workspace walk does.
    let source = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../telemetry/src/profile.rs"),
    )
    .expect("profiler source readable");
    let (findings, used) = analyze_source("crates/telemetry/src/profile.rs", &source);
    let got: Vec<(RuleId, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
    assert_eq!(got, vec![], "profiler must stay clean under its waiver");
    let d002: Vec<_> = used.iter().filter(|w| w.rule == RuleId::D002).collect();
    assert_eq!(d002.len(), 1, "exactly one sanctioned wall-clock site");
    assert!(d002[0].reason.contains("wall-clock"), "waiver must explain itself: {:?}", d002[0]);
}

#[test]
fn workspace_is_lint_clean() {
    // The dynamic twin of the CI lint job: the committed workspace must stay
    // at zero findings, with every waiver carrying a reason.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = daris_lint::run(&root).expect("workspace walk");
    assert!(report.clean(), "workspace has determinism findings:\n{}", report.render_human());
    assert!(report.files_scanned > 50, "suspiciously few files scanned — walk broken?");
    assert!(report.waivers_used.iter().all(|w| !w.reason.is_empty()));
}

#[test]
fn json_report_is_well_formed_enough_for_ci() {
    let (findings, _) = analyze_source(SIM, &fixture("d001.rs"));
    assert!(!findings.is_empty());
    let report = daris_lint::report::Report {
        findings,
        waivers_used: Vec::new(),
        files_scanned: 1,
        sources: std::iter::once(("f".to_string(), String::new())).collect(),
    };
    let json = report.render_json();
    assert!(json.contains("\"clean\": false"));
    assert!(json.contains("\"rule\": \"D001\""));
    // Balanced braces/brackets as a cheap structural check (no serde here).
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}
