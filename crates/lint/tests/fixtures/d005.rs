// D005 fixture: lossy float<->int casts in sim-time arithmetic. Never
// compiled — analyzed by tests/fixtures.rs under a synthetic sim-crate path.
// Line numbers are pinned.

fn positives(period_us: f64, t: SimTime) {
    let _ticks = (period_us * 1.5) as u64;
    let _approx_us = (t.as_nanos() / 1000 + 1) as f64;
}

fn negatives(count: u64, t: SimTime) {
    let _share = 1.0 / count as f64;
    let raw_us = t.as_micros();
    let _x = raw_us as f64;
}
