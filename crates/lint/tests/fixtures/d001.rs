// D001 fixture: unordered-container iteration. Never compiled — analyzed by
// tests/fixtures.rs under a synthetic sim-crate path. Line numbers are pinned.
use std::collections::{BTreeMap, HashMap, HashSet};

fn positives(map: HashMap<u32, String>, set: HashSet<u32>) {
    for (_k, _v) in map.iter() {}
    for _x in &set {}
    let m: HashMap<u32, u32> = HashMap::new();
    let _ks: Vec<u32> = m.keys().copied().collect();
    let _tmp: Vec<(u32, u32)> = HashMap::new().into_iter().collect();
    m.retain(|_k, v| *v > 0);
}

fn negatives(map: HashMap<u32, String>, tree: BTreeMap<u32, String>) {
    let _v = map.get(&3);
    let _c = map.contains_key(&4);
    let _n = map.len();
    for (_k, _v) in tree.iter() {}
    let v = vec![1, 2, 3];
    let _s: u32 = v.iter().sum();
}
