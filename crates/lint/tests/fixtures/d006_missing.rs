//! A library crate root without `#![forbid(unsafe_code)]`. Never compiled —
//! analyzed by tests/fixtures.rs under a synthetic `crates/*/src/lib.rs`
//! path, where D006 fires on line 1.

pub fn noop() {}
