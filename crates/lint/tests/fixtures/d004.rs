// D004 fixture: thread spawns. Never compiled — analyzed by
// tests/fixtures.rs under a sim-crate path (positives fire) and under the
// sanctioned worker-pool path (nothing fires). Line numbers are pinned.

fn positives() {
    std::thread::spawn(|| {});
    thread::scope(|_s| {});
    let _b = thread::Builder::new();
}

fn negatives() {
    let _n = thread::available_parallelism();
}
