// Waiver fixture: valid own-line + trailing waivers, a malformed waiver
// (W001), and a stale waiver (W002). Never compiled — analyzed by
// tests/fixtures.rs under a synthetic sim-crate path. Lines are pinned.
fn f(m: HashMap<u32, u32>) {
    // daris-lint: allow(D001, reason = "fixture: count() is order-insensitive")
    let _n = m.iter().count();
    let _k = m.keys().count(); // daris-lint: allow(D001, reason = "fixture: trailing waiver")
    // daris-lint: allow(D001)
    // daris-lint: allow(D001, reason = "stale: nothing hash-related on the next line")
    let _ok = 1;
}
