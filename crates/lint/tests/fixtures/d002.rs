// D002 fixture: ambient nondeterminism. Never compiled — analyzed by
// tests/fixtures.rs under sim-crate (positives fire) and daris-bench
// (sanctioned: nothing fires) paths. Line numbers are pinned.

fn positives() {
    let _t = std::time::Instant::now();
    let _w = SystemTime::now();
    let _e = UNIX_EPOCH;
    let _r = rand::thread_rng();
}

fn negatives(now: SimTime) {
    let _t = now + SimDuration::from_micros(5);
    let _not_now = Instant::elapsed;
}
