// D003 fixture: float accumulation over unordered sources. Never compiled —
// analyzed by tests/fixtures.rs under a synthetic sim-crate path. Line
// numbers are pinned.

fn positives(rates: HashMap<u64, f64>) {
    let _total: f64 = rates.values().sum();
    let _m = rates.values().fold(0.0, f64::max);
    let mut acc = 0.0;
    for (_k, v) in &rates {
        acc += v * 1.5;
    }
}

fn negatives(rates: HashMap<u64, f64>, ordered: BTreeMap<u64, f64>) {
    let _t: f64 = ordered.values().sum();
    let mut count = 0usize;
    for _v in rates.values() {
        count += 1;
    }
}
