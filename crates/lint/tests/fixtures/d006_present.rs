#![forbid(unsafe_code)]
//! A library crate root carrying the attribute: D006 stays quiet.

pub fn noop() {}
