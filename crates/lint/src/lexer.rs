//! A minimal hand-rolled Rust lexer.
//!
//! This is not a full implementation of the Rust lexical grammar — it is
//! exactly the subset the determinism rules need: identifiers, punctuation,
//! and literals with correct *skipping* of the constructs that would otherwise
//! produce false positives (string/char/byte literals, lifetimes, nested block
//! comments, raw strings with arbitrary `#` fences). Line comments are
//! captured rather than skipped because the waiver grammar
//! (`// daris-lint: allow(...)`) lives in them.
//!
//! The lexer never fails: unexpected bytes become single-character punctuation
//! tokens, and an unterminated literal simply consumes to end of input. A lint
//! must degrade gracefully on code that `rustc` itself would reject.

/// One lexical token with its 1-indexed source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub line: u32,
    pub kind: TokenKind,
}

/// Token classification. Only the distinctions the rules consume are made.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`for`, `in`, `as`, `let` are matched by text).
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// Numeric literal; `is_float` is true for literals with a fractional
    /// part or a decimal exponent (`1.5`, `1e9`), never for hex/octal/binary.
    Number { is_float: bool },
    /// String, byte-string, raw-string, or char literal (contents dropped).
    Literal,
}

/// A captured `//` line comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    pub line: u32,
    /// Comment text excluding the leading `//`.
    pub text: String,
    /// True when the comment is the first non-whitespace on its line, so a
    /// waiver in it targets the *next* line instead of its own.
    pub own_line: bool,
}

/// Lexer output: the token stream plus the captured line comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<LineComment>,
}

/// Lexes `source` into tokens and line comments.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Tracks whether any non-whitespace token/comment started on this line
    // before the current position (for `LineComment::own_line`).
    let mut line_has_code = false;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                let mut end = start;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                out.comments.push(LineComment {
                    line,
                    text: source[start..end].to_string(),
                    own_line: !line_has_code,
                });
                line_has_code = true;
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comments nest in Rust.
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        line_has_code = false;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 1;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 1;
                    }
                    i += 1;
                }
            }
            '"' => {
                i = skip_string(bytes, i, &mut line);
                out.tokens.push(Token { line, kind: TokenKind::Literal });
                line_has_code = true;
            }
            'r' | 'b' if is_raw_or_byte_literal(bytes, i) => {
                i = skip_raw_or_byte_literal(bytes, i, &mut line);
                out.tokens.push(Token { line, kind: TokenKind::Literal });
                line_has_code = true;
            }
            '\'' => {
                // Char literal vs lifetime: a lifetime is `'` + ident with no
                // closing quote; anything else (escape, or `'x'`) is a char.
                line_has_code = true;
                let next = bytes.get(i + 1).copied();
                let is_char = match next {
                    Some(b'\\') => true,
                    Some(_) => {
                        // Find where an identifier run after `'` would end; a
                        // char literal closes with `'` right after one char.
                        bytes.get(i + 2) == Some(&b'\'')
                    }
                    None => false,
                };
                if is_char {
                    i += 1; // past opening quote
                    if bytes.get(i) == Some(&b'\\') {
                        i += 2; // escape lead + escaped char (enough for \n, \', \\)
                        while i < bytes.len() && bytes[i] != b'\'' {
                            i += 1; // longer escapes: \u{..}, \x41
                        }
                    } else {
                        i += 1;
                    }
                    if i < bytes.len() {
                        i += 1; // closing quote
                    }
                    out.tokens.push(Token { line, kind: TokenKind::Literal });
                } else {
                    // Lifetime: consume `'ident` and drop it.
                    i += 1;
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                out.tokens
                    .push(Token { line, kind: TokenKind::Ident(source[start..i].to_string()) });
                line_has_code = true;
            }
            c if c.is_ascii_digit() => {
                i = skip_number(bytes, i, &mut out, line);
                line_has_code = true;
            }
            _ => {
                out.tokens.push(Token { line, kind: TokenKind::Punct(c) });
                line_has_code = true;
                i += c.len_utf8();
            }
        }
    }
    out
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Is position `i` (at `r` or `b`) the start of a raw/byte string literal
/// rather than an identifier? (`r"`, `r#`, `b"`, `b'`, `br`, `rb` is not a
/// thing; `br"`/`br#` is.)
fn is_raw_or_byte_literal(bytes: &[u8], i: usize) -> bool {
    // Must not be mid-identifier: caller dispatches on first char only, and
    // identifiers are consumed greedily elsewhere, so `i` starts a token.
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match bytes.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(bytes.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Skips a `"..."` string starting at the opening quote; returns the index
/// one past the closing quote. Tracks newlines.
fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Skips raw strings (`r#*"..."#*`), byte strings, and byte chars.
fn skip_raw_or_byte_literal(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    if bytes[i] == b'b' {
        i += 1;
        if i < bytes.len() && bytes[i] == b'\'' {
            // Byte char b'x' / b'\n'.
            i += 1;
            if i < bytes.len() && bytes[i] == b'\\' {
                i += 1;
            }
            i += 1;
            if i < bytes.len() && bytes[i] == b'\'' {
                i += 1;
            }
            return i;
        }
        if i < bytes.len() && bytes[i] == b'"' {
            return skip_string(bytes, i, line);
        }
    }
    // Raw string: r#*" ... "#*
    debug_assert_eq!(bytes[i], b'r');
    i += 1;
    let mut hashes = 0usize;
    while i < bytes.len() && bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= bytes.len() || bytes[i] != b'"' {
        return i; // not actually a raw string (e.g. `r#ident`); treat as consumed
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
        } else if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && j < bytes.len() && bytes[j] == b'#' {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Consumes a numeric literal; pushes a `Number` token.
fn skip_number(bytes: &[u8], mut i: usize, out: &mut Lexed, line: u32) -> usize {
    let radix_prefixed = bytes[i] == b'0'
        && matches!(bytes.get(i + 1), Some(b'x') | Some(b'o') | Some(b'b') | Some(b'X'));
    let mut is_float = false;
    if radix_prefixed {
        i += 2;
        while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
    } else {
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
            i += 1;
        }
        // Fractional part only when followed by a digit (`1.max` is a method
        // call, `1..2` is a range).
        if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
            is_float = true;
            i += 1;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
        }
        // Exponent.
        if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
            let mut j = i + 1;
            if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                j += 1;
            }
            if j < bytes.len() && bytes[j].is_ascii_digit() {
                is_float = true;
                i = j;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
            }
        }
        // Type suffix (`1.0f64`, `3u32`).
        if i < bytes.len() && (bytes[i] == b'f' || bytes[i] == b'u' || bytes[i] == b'i') {
            let start = i;
            while i < bytes.len() && is_ident_continue(bytes[i]) {
                i += 1;
            }
            if bytes[start] == b'f' {
                is_float = true;
            }
        }
    }
    out.tokens.push(Token { line, kind: TokenKind::Number { is_float } });
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_idents() {
        let src = r###"
            // HashMap in a comment
            /* HashMap /* nested HashMap */ still comment */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" string"#;
            let c = 'H';
            let b = b"HashMap bytes";
        "###;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "leaked from literal: {ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let ids = idents(src);
        assert!(ids.contains(&"str".to_string()));
        // The lifetime ident `a` is dropped, not mis-lexed as a char.
        assert_eq!(lex(src).tokens.iter().filter(|t| t.kind == TokenKind::Literal).count(), 0);
    }

    #[test]
    fn float_detection() {
        let toks = lex("1.5 1e9 10 0x1f 2.0f64 3u32").tokens;
        let floats: Vec<bool> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Number { is_float } => Some(is_float),
                _ => None,
            })
            .collect();
        assert_eq!(floats, vec![true, true, false, false, true, false]);
    }

    #[test]
    fn comment_capture_and_own_line() {
        let src = "let x = 1; // trailing\n// own line\nlet y = 2;\n";
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert!(!lx.comments[0].own_line);
        assert_eq!(lx.comments[0].text.trim(), "trailing");
        assert!(lx.comments[1].own_line);
        assert_eq!(lx.comments[1].line, 2);
    }

    #[test]
    fn method_on_int_literal_is_not_float() {
        let toks = lex("1.max(2)").tokens;
        assert_eq!(toks[0].kind, TokenKind::Number { is_float: false });
    }
}
