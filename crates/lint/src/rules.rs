//! The determinism rule set (D001–D006) and the token-stream analyses that
//! implement it.
//!
//! Every rule is a heuristic over the lexed token stream — deliberately so.
//! The pass runs offline with no `syn`, no type information, and no network,
//! which means it must over-approximate in places; the waiver grammar
//! (`// daris-lint: allow(<rule>, reason = "...")`, see [`crate::waiver`])
//! exists precisely to record the human judgement for each over-approximated
//! site, and stale waivers are themselves errors so the recorded judgements
//! can never rot.

use crate::lexer::{Lexed, Token, TokenKind};
use std::collections::BTreeSet;

/// Rule identifiers. `W001`/`W002` are waiver meta-errors: they cannot be
/// waived themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Unordered-container iteration in a sim crate.
    D001,
    /// Ambient nondeterminism (wall clock, OS entropy).
    D002,
    /// Float accumulation over an unordered source.
    D003,
    /// Thread spawn outside the sanctioned worker-pool module.
    D004,
    /// Lossy float<->int `as` cast in sim-time arithmetic.
    D005,
    /// Missing `#![forbid(unsafe_code)]` in a library crate root.
    D006,
    /// Malformed waiver (bad grammar or missing reason).
    W001,
    /// Stale waiver (matched no finding).
    W002,
}

impl RuleId {
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::D004 => "D004",
            RuleId::D005 => "D005",
            RuleId::D006 => "D006",
            RuleId::W001 => "W001",
            RuleId::W002 => "W002",
        }
    }

    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "D001" => Some(RuleId::D001),
            "D002" => Some(RuleId::D002),
            "D003" => Some(RuleId::D003),
            "D004" => Some(RuleId::D004),
            "D005" => Some(RuleId::D005),
            "D006" => Some(RuleId::D006),
            _ => None,
        }
    }
}

/// One lint finding, pre- or post-waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: RuleId,
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// Static description of a rule, kept in sync with `clippy.toml` and the
/// DESIGN.md rule table.
pub struct RuleInfo {
    pub id: RuleId,
    pub title: &'static str,
    pub scope: &'static str,
}

/// The rule table. `DESIGN.md` ("Determinism invariants & static analysis")
/// renders this for humans; `clippy.toml` mirrors D001/D002 natively.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: RuleId::D001,
        title: "unordered-container iteration (HashMap/HashSet/RandomState iterated, drained, \
                retained, or folded; keyed O(1) lookup stays legal)",
        scope: "sim crates: gpu, core, cluster, workload, metrics, telemetry, baselines (src + \
                tests)",
    },
    RuleInfo {
        id: RuleId::D002,
        title: "ambient nondeterminism (Instant::now, SystemTime, UNIX_EPOCH, thread_rng)",
        scope: "everywhere except daris-bench (sanctioned wall-clock timing) and vendor/",
    },
    RuleInfo {
        id: RuleId::D003,
        title: "float accumulation over an unordered source (.sum/.fold/product or += over a \
                hash-container iterator)",
        scope: "sim crates: gpu, core, cluster, workload, metrics, telemetry, baselines (src + \
                tests)",
    },
    RuleInfo {
        id: RuleId::D004,
        title: "thread spawn outside the sanctioned worker-pool module \
                (crates/cluster/src/pool.rs)",
        scope: "sim crates: gpu, core, cluster, workload, metrics, telemetry, baselines (src + \
                tests)",
    },
    RuleInfo {
        id: RuleId::D005,
        title: "lossy float<->int `as` cast in sim-time arithmetic",
        scope: "sim crates: gpu, core, cluster, workload, metrics, telemetry, baselines (src + \
                tests)",
    },
    RuleInfo {
        id: RuleId::D006,
        title: "missing #![forbid(unsafe_code)] in a library crate root",
        scope: "every crates/*/src/lib.rs",
    },
];

/// Crates whose simulation results feed the byte-identical guarantee.
const SIM_CRATES: &[&str] =
    &["gpu", "core", "cluster", "workload", "metrics", "telemetry", "baselines"];

/// The modules allowed to spawn threads: the cluster crate's deterministic
/// worker pool (fixed device->worker assignment, spin/park round protocol,
/// device-index-ordered merge). Everything thread-shaped — the persistent
/// round pool and the one-shot construction fan-out — lives behind this
/// module's API; the dispatcher itself no longer spawns.
const SANCTIONED_POOLS: &[&str] = &["crates/cluster/src/pool.rs"];

/// Unordered std collections (and their hasher state) covered by D001.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "RandomState"];

/// Methods that observe container iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "retain_mut",
];

/// Accumulators whose result depends on operand order for floats.
const FOLD_METHODS: &[&str] = &["sum", "fold", "product"];

const INT_TYPES: &[&str] =
    &["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// Idents that mark a backward token window as float-valued.
const FLOAT_EVIDENCE_IDENTS: &[&str] =
    &["f64", "f32", "round", "floor", "ceil", "trunc", "powf", "sqrt"];

/// Substrings of a source line that mark it as sim-time arithmetic (D005).
const TIME_MARKERS: &[&str] = &[
    "SimTime",
    "SimDuration",
    "_us",
    "_ns",
    "_ms",
    "secs",
    "micros",
    "nanos",
    "millis",
    "period",
    "deadline",
    "horizon",
    "quantum",
];

/// Where a file sits relative to the rule scopes.
#[derive(Debug, Clone)]
pub struct FileScope {
    /// `crates/<name>` -> name; root `src`/`tests`/`examples` -> "root".
    pub crate_name: String,
    pub is_sim: bool,
    /// daris-bench: wall-clock timing is its purpose.
    pub wall_clock_sanctioned: bool,
    /// A sanctioned worker-pool module (D004).
    pub pool_sanctioned: bool,
    /// File must carry `#![forbid(unsafe_code)]` (D006).
    pub requires_forbid_unsafe: bool,
}

impl FileScope {
    /// Derives the scope from a repo-relative, forward-slash path.
    pub fn from_path(rel_path: &str) -> FileScope {
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("root")
            .to_string();
        let is_sim = SIM_CRATES.contains(&crate_name.as_str());
        let requires_forbid_unsafe = rel_path.starts_with("crates/")
            && rel_path.ends_with("/src/lib.rs")
            && rel_path.matches('/').count() == 3;
        FileScope {
            is_sim,
            wall_clock_sanctioned: crate_name == "bench",
            pool_sanctioned: SANCTIONED_POOLS.contains(&rel_path),
            requires_forbid_unsafe,
            crate_name,
        }
    }
}

fn ident(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(tokens: &[Token], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// `i` points at the second `:` of a `::` pair?
fn is_path_sep(tokens: &[Token], i: usize) -> bool {
    punct(tokens, i) == Some(':') && punct(tokens, i + 1) == Some(':')
}

/// Runs every rule on one lexed file. Waivers are applied by the caller.
pub fn analyze(rel_path: &str, source: &str, lexed: &Lexed) -> Vec<Finding> {
    let scope = FileScope::from_path(rel_path);
    let tokens = &lexed.tokens;
    let lines: Vec<&str> = source.lines().collect();
    let mut findings = Vec::new();

    let hash_idents = collect_hash_idents(tokens);

    if scope.is_sim {
        check_d001_d003(rel_path, tokens, &hash_idents, &mut findings);
        if !scope.pool_sanctioned {
            check_d004(rel_path, tokens, &mut findings);
        }
        check_d005(rel_path, tokens, &lines, &mut findings);
    }
    if !scope.wall_clock_sanctioned {
        check_d002(rel_path, tokens, &mut findings);
    }
    if scope.requires_forbid_unsafe {
        check_d006(rel_path, tokens, &mut findings);
    }

    findings
}

/// Pass 1 of D001: every identifier that is ever declared or annotated with a
/// hash-container type anywhere in the file (locals, fields, and parameters
/// pool together — file granularity is plenty for a lint).
fn collect_hash_idents(tokens: &[Token]) -> BTreeSet<String> {
    let mut found = BTreeSet::new();
    let mut i = 0;
    while i < tokens.len() {
        // Pattern A: `name : <type containing HashMap/HashSet>` — covers
        // `let x: T`, struct fields, and fn parameters. A `::` on either
        // side means `name` is a path segment, not a binding.
        if let Some(name) = ident(tokens, i) {
            let preceded_by_sep = i >= 1 && punct(tokens, i - 1) == Some(':');
            if !preceded_by_sep
                && punct(tokens, i + 1) == Some(':')
                && punct(tokens, i + 2) != Some(':')
                && type_window_has_hash(tokens, i + 2)
            {
                found.insert(name.to_string());
            }
            // Pattern B: `let [mut] name = <expr mentioning HashMap/HashSet>;`
            if name == "let" {
                let mut j = i + 1;
                if ident(tokens, j) == Some("mut") {
                    j += 1;
                }
                if let Some(bound) = ident(tokens, j) {
                    if init_window_has_hash(tokens, j + 1) {
                        found.insert(bound.to_string());
                    }
                }
            }
        }
        i += 1;
    }
    found
}

/// Scans a type position (after `name:`) for a hash type, stopping at the
/// end of the type expression.
fn type_window_has_hash(tokens: &[Token], mut i: usize) -> bool {
    let mut angle = 0i32;
    let mut paren = 0i32;
    let limit = i + 48;
    while i < tokens.len() && i < limit {
        match &tokens[i].kind {
            TokenKind::Ident(s) if HASH_TYPES.contains(&s.as_str()) => return true,
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Punct('(') | TokenKind::Punct('[') => paren += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => {
                paren -= 1;
                if paren < 0 {
                    return false;
                }
            }
            TokenKind::Punct(';') | TokenKind::Punct('=') | TokenKind::Punct('{') => return false,
            TokenKind::Punct(',') if angle == 0 && paren == 0 => return false,
            _ => {}
        }
        i += 1;
    }
    false
}

/// Scans a `let` initializer (from just after the bound name) for a hash
/// type mention before the terminating `;`.
fn init_window_has_hash(tokens: &[Token], mut i: usize) -> bool {
    let mut depth = 0i32;
    let limit = i + 96;
    while i < tokens.len() && i < limit {
        match &tokens[i].kind {
            TokenKind::Ident(s) if HASH_TYPES.contains(&s.as_str()) => return true,
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            TokenKind::Punct(';') if depth == 0 => return false,
            _ => {}
        }
        i += 1;
    }
    false
}

/// D001 (iteration of unordered containers) and its D003 companion (float
/// accumulation chained onto such an iteration).
fn check_d001_d003(
    rel_path: &str,
    tokens: &[Token],
    hash_idents: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let mut i = 0;
    while i < tokens.len() {
        // `recv.method(...)` where method observes iteration order.
        if punct(tokens, i) == Some('.') {
            if let Some(m) = ident(tokens, i + 1) {
                if ITER_METHODS.contains(&m) && receiver_is_hash(tokens, i, hash_idents) {
                    findings.push(Finding {
                        rule: RuleId::D001,
                        file: rel_path.to_string(),
                        line: tokens[i + 1].line,
                        message: format!(
                            "`.{m}()` iterates an unordered container; use BTreeMap/BTreeSet or \
                             sort the keys first"
                        ),
                    });
                    check_chain_fold(rel_path, tokens, i + 2, findings);
                }
            }
        }
        // `for pat in [&][mut] [self.]hash_ident {`
        if ident(tokens, i) == Some("for") {
            if let Some((line, body_start)) = for_over_hash(tokens, i, hash_idents) {
                findings.push(Finding {
                    rule: RuleId::D001,
                    file: rel_path.to_string(),
                    line,
                    message: "`for` loop over an unordered container; use BTreeMap/BTreeSet or \
                              sort the keys first"
                        .to_string(),
                });
                check_body_accumulation(rel_path, tokens, body_start, findings);
            }
        }
        i += 1;
    }
}

/// Is the receiver of the method call at `dot` (index of `.`) a known hash
/// identifier, or a `HashMap::new()`-style constructor chain?
fn receiver_is_hash(tokens: &[Token], dot: usize, hash_idents: &BTreeSet<String>) -> bool {
    if dot == 0 {
        return false;
    }
    if let Some(name) = ident(tokens, dot - 1) {
        return hash_idents.contains(name);
    }
    if punct(tokens, dot - 1) == Some(')') {
        // Walk back over the call's parens, then look for `Hash* :: ctor (`.
        let mut depth = 0i32;
        let mut j = dot - 1;
        loop {
            match punct(tokens, j) {
                Some(')') => depth += 1,
                Some('(') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if j == 0 {
                return false;
            }
            j -= 1;
        }
        if j >= 4 && ident(tokens, j - 1).is_some() && is_path_sep(tokens, j - 3) {
            if let Some(t) = ident(tokens, j - 4) {
                return HASH_TYPES.contains(&t);
            }
        }
    }
    false
}

/// After a flagged iteration method at token index `i`, scans the rest of the
/// expression chain for `.sum()`/`.fold()`/`.product()` (D003).
fn check_chain_fold(rel_path: &str, tokens: &[Token], mut i: usize, findings: &mut Vec<Finding>) {
    let mut depth = 0i32;
    let limit = i + 96;
    while i < tokens.len() && i < limit {
        match &tokens[i].kind {
            TokenKind::Punct(';') | TokenKind::Punct('{') if depth == 0 => return,
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => {
                depth -= 1;
                if depth < 0 {
                    return;
                }
            }
            TokenKind::Punct('.') if depth == 0 => {
                if let Some(m) = ident(tokens, i + 1) {
                    if FOLD_METHODS.contains(&m) {
                        findings.push(Finding {
                            rule: RuleId::D003,
                            file: rel_path.to_string(),
                            line: tokens[i + 1].line,
                            message: format!(
                                "`.{m}()` accumulates floats in the iteration order of an \
                                 unordered container; the result depends on hasher state"
                            ),
                        });
                        return;
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Detects `for pat in <hash expr> {` starting at the `for` token. Returns
/// the finding line and the token index just after the body's `{`.
fn for_over_hash(
    tokens: &[Token],
    f: usize,
    hash_idents: &BTreeSet<String>,
) -> Option<(u32, usize)> {
    // Find `in` at depth 0 within a short window (patterns can contain
    // parens/commas, e.g. `for (k, v) in ...`).
    let mut i = f + 1;
    let mut depth = 0i32;
    let limit = f + 24;
    let in_pos = loop {
        if i >= tokens.len() || i > limit {
            return None;
        }
        match &tokens[i].kind {
            TokenKind::Ident(s) if s == "in" && depth == 0 => break i,
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
            TokenKind::Punct('{') | TokenKind::Punct(';') => return None,
            _ => {}
        }
        i += 1;
    };
    // Iterable expr: tokens between `in` and the body `{`. Only flag the
    // simple forms `&hash`, `&mut hash`, `hash`, `self.hash`, `a.b.hash` —
    // method calls in the expr are covered by the `.method()` rule.
    let mut expr: Vec<&Token> = Vec::new();
    let mut j = in_pos + 1;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Punct('{') => break,
            _ => expr.push(&tokens[j]),
        }
        j += 1;
        if expr.len() > 12 {
            return None;
        }
    }
    let mut last_ident: Option<&str> = None;
    for t in &expr {
        match &t.kind {
            TokenKind::Ident(s) if s == "mut" => {}
            TokenKind::Ident(s) => last_ident = Some(s),
            TokenKind::Punct('&') | TokenKind::Punct('.') => {}
            _ => return None, // anything fancier than a dotted path
        }
    }
    let name = last_ident?;
    if hash_idents.contains(name) {
        Some((tokens[f].line, j + 1))
    } else {
        None
    }
}

/// D003 inside a `for`-over-hash body: a `+=` statement with float evidence.
/// Integer `+=` (counters) is order-independent and stays legal.
fn check_body_accumulation(
    rel_path: &str,
    tokens: &[Token],
    body_start: usize,
    findings: &mut Vec<Finding>,
) {
    let mut depth = 1i32;
    let mut i = body_start;
    while i < tokens.len() && depth > 0 {
        match &tokens[i].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => depth -= 1,
            TokenKind::Punct('+')
                if punct(tokens, i + 1) == Some('=') && statement_has_float_evidence(tokens, i) =>
            {
                findings.push(Finding {
                    rule: RuleId::D003,
                    file: rel_path.to_string(),
                    line: tokens[i].line,
                    message: "float `+=` accumulation inside iteration over an unordered \
                              container; the sum depends on hasher state"
                        .to_string(),
                });
            }
            _ => {}
        }
        i += 1;
    }
}

/// Float evidence anywhere in the statement surrounding token `i` (bounded by
/// `;`/`{`/`}` on both sides).
fn statement_has_float_evidence(tokens: &[Token], i: usize) -> bool {
    let is_boundary = |t: &Token| {
        matches!(t.kind, TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}'))
    };
    let mut lo = i;
    while lo > 0 && !is_boundary(&tokens[lo - 1]) && i - lo < 48 {
        lo -= 1;
    }
    let mut hi = i;
    while hi + 1 < tokens.len() && !is_boundary(&tokens[hi + 1]) && hi - i < 48 {
        hi += 1;
    }
    tokens[lo..=hi].iter().any(float_evidence)
}

fn float_evidence(t: &Token) -> bool {
    match &t.kind {
        TokenKind::Number { is_float } => *is_float,
        TokenKind::Ident(s) => {
            FLOAT_EVIDENCE_IDENTS.contains(&s.as_str())
                || s.ends_with("_f64")
                || s.ends_with("_f32")
        }
        _ => false,
    }
}

/// D002: wall clock and OS entropy.
fn check_d002(rel_path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        let TokenKind::Ident(s) = &t.kind else { continue };
        let flagged = match s.as_str() {
            "Instant" => is_path_sep(tokens, i + 1) && ident(tokens, i + 3) == Some("now"),
            "SystemTime" | "UNIX_EPOCH" | "thread_rng" | "ThreadRng" => true,
            _ => false,
        };
        if flagged {
            findings.push(Finding {
                rule: RuleId::D002,
                file: rel_path.to_string(),
                line: t.line,
                message: format!(
                    "`{s}` reads ambient state (wall clock / OS entropy); sim code must derive \
                     everything from SimTime and seeded RNGs"
                ),
            });
        }
    }
}

/// D004: thread spawns outside the sanctioned pool.
fn check_d004(rel_path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if ident(tokens, i) == Some("thread") && is_path_sep(tokens, i + 1) {
            if let Some(m) = ident(tokens, i + 3) {
                if matches!(m, "spawn" | "scope" | "Builder") {
                    findings.push(Finding {
                        rule: RuleId::D004,
                        file: rel_path.to_string(),
                        line: tokens[i].line,
                        message: format!(
                            "`thread::{m}` outside the sanctioned worker pool \
                             ({}); ad-hoc threading breaks the fixed \
                             device->worker merge order",
                            SANCTIONED_POOLS.join(", ")
                        ),
                    });
                }
            }
        }
    }
}

/// D005: lossy float<->int `as` casts in sim-time arithmetic.
///
/// Fires when (a) a float-evidenced expression is cast to an integer type, or
/// (b) an arithmetic expression is cast to `f64`/`f32`, and in both cases the
/// source *line* carries a sim-time marker (`SimTime`, `_us`, `period`, ...).
fn check_d005(rel_path: &str, tokens: &[Token], lines: &[&str], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if ident(tokens, i) != Some("as") {
            continue;
        }
        let Some(ty) = ident(tokens, i + 1) else { continue };
        let to_int = INT_TYPES.contains(&ty);
        let to_float = ty == "f64" || ty == "f32";
        if !to_int && !to_float {
            continue;
        }
        let line_no = tokens[i].line;
        let line_text = lines.get(line_no as usize - 1).copied().unwrap_or("");
        if !TIME_MARKERS.iter().any(|m| line_text.contains(m)) {
            continue;
        }
        let window = backward_window(tokens, i);
        let fire = if to_int {
            window.iter().any(|t| float_evidence(t))
        } else {
            // int -> float: only flag when the cast source is *computed*
            // (arithmetic in the window), not a plain field/counter read
            // at an API boundary like `self.0 as f64`.
            window.iter().any(|t| {
                matches!(
                    t.kind,
                    TokenKind::Punct('*')
                        | TokenKind::Punct('/')
                        | TokenKind::Punct('+')
                        | TokenKind::Punct('-')
                )
            })
        };
        if fire {
            findings.push(Finding {
                rule: RuleId::D005,
                file: rel_path.to_string(),
                line: line_no,
                message: format!(
                    "lossy `as {ty}` cast in sim-time arithmetic; route conversions through the \
                     SimTime/SimDuration constructors (exact integer nanoseconds) instead"
                ),
            });
        }
    }
}

/// Tokens of the postfix expression preceding the `as` at index `i`.
fn backward_window(tokens: &[Token], i: usize) -> Vec<&Token> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut j = i;
    while j > 0 && out.len() < 40 {
        j -= 1;
        match &tokens[j].kind {
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth += 1,
            TokenKind::Punct('(') | TokenKind::Punct('[') => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            TokenKind::Punct(';')
            | TokenKind::Punct('{')
            | TokenKind::Punct('}')
            | TokenKind::Punct('=') => break,
            TokenKind::Punct(',') if depth == 0 => break,
            TokenKind::Ident(s)
                if matches!(s.as_str(), "let" | "return" | "if" | "match" | "for" | "in") =>
            {
                break
            }
            _ => {}
        }
        out.push(&tokens[j]);
    }
    out
}

/// D006: the crate root must open with `#![forbid(unsafe_code)]`.
fn check_d006(rel_path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i + 7 < tokens.len() {
        if punct(tokens, i) == Some('#')
            && punct(tokens, i + 1) == Some('!')
            && punct(tokens, i + 2) == Some('[')
            && ident(tokens, i + 3) == Some("forbid")
            && punct(tokens, i + 4) == Some('(')
            && ident(tokens, i + 5) == Some("unsafe_code")
            && punct(tokens, i + 6) == Some(')')
            && punct(tokens, i + 7) == Some(']')
        {
            return;
        }
        i += 1;
    }
    findings.push(Finding {
        rule: RuleId::D006,
        file: rel_path.to_string(),
        line: 1,
        message: "library crate root is missing `#![forbid(unsafe_code)]`; unsafe code could \
                  smuggle in uninitialized reads or data races that break reproducibility"
            .to_string(),
    });
}
