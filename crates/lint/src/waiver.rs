//! The waiver grammar and its application.
//!
//! A finding can only be suppressed by an inline comment of the form
//!
//! ```text
//! // daris-lint: allow(D001, reason = "keys are sorted two lines above")
//! ```
//!
//! The reason is mandatory: a waiver records a human judgement, and a
//! judgement without a rationale is unreviewable. A waiver trailing code
//! applies to its own line; a waiver alone on a line applies to the next
//! line. Waivers that match no finding are *stale* and become `W002` errors —
//! the waiver set can never drift from the code it annotates. Malformed
//! waivers (unknown rule, missing reason) are `W001` errors rather than being
//! silently ignored: a typo must not quietly re-enable a finding.

use crate::lexer::LineComment;
use crate::rules::{Finding, RuleId};

/// One parsed waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    pub rule: RuleId,
    /// Line whose findings this waiver suppresses.
    pub target_line: u32,
    /// Line the waiver comment itself sits on.
    pub comment_line: u32,
    pub reason: String,
}

const PREFIX: &str = "daris-lint:";

/// Extracts waivers from a file's line comments. Malformed waivers are
/// reported as `W001` findings immediately.
pub fn parse_waivers(
    rel_path: &str,
    comments: &[LineComment],
    findings: &mut Vec<Finding>,
) -> Vec<Waiver> {
    let mut waivers = Vec::new();
    for c in comments {
        let text = c.text.trim();
        let Some(rest) = text.strip_prefix(PREFIX) else { continue };
        match parse_allow(rest.trim()) {
            Ok((rule, reason)) => waivers.push(Waiver {
                rule,
                target_line: if c.own_line { c.line + 1 } else { c.line },
                comment_line: c.line,
                reason,
            }),
            Err(msg) => findings.push(Finding {
                rule: RuleId::W001,
                file: rel_path.to_string(),
                line: c.line,
                message: format!(
                    "malformed waiver: {msg}; expected \
                     `daris-lint: allow(D00x, reason = \"...\")`"
                ),
            }),
        }
    }
    waivers
}

/// Parses `allow(D00x, reason = "...")`.
fn parse_allow(s: &str) -> Result<(RuleId, String), String> {
    let s = s.strip_prefix("allow").ok_or("missing `allow`")?.trim_start();
    let s = s.strip_prefix('(').ok_or("missing `(`")?.trim_start();
    let comma = s.find(',').ok_or("missing `,` after rule id")?;
    let rule_str = s[..comma].trim();
    let rule = RuleId::parse(rule_str)
        .ok_or_else(|| format!("unknown rule `{rule_str}` (waivable rules are D001-D006)"))?;
    let s = s[comma + 1..].trim_start();
    let s = s.strip_prefix("reason").ok_or("missing `reason`")?.trim_start();
    let s = s.strip_prefix('=').ok_or("missing `=` after `reason`")?.trim_start();
    let s = s.strip_prefix('"').ok_or("reason must be a quoted string")?;
    let close = s.rfind('"').ok_or("unterminated reason string")?;
    let reason = s[..close].trim();
    if reason.is_empty() {
        return Err("reason must not be empty".to_string());
    }
    let tail = s[close + 1..].trim();
    if tail != ")" {
        return Err("expected `)` after the reason".to_string());
    }
    Ok((rule, reason.to_string()))
}

/// Suppresses waived findings and reports stale waivers (`W002`).
///
/// Returns `(surviving_findings, used_waivers)`. A single waiver may cover
/// several findings of its rule on the target line (e.g. a chained
/// `.values().sum()` that fires D001 twice through two methods).
pub fn apply_waivers(
    rel_path: &str,
    findings: Vec<Finding>,
    waivers: Vec<Waiver>,
) -> (Vec<Finding>, Vec<Waiver>) {
    let mut used = vec![false; waivers.len()];
    let mut surviving = Vec::new();
    for f in findings {
        // Waiver meta-errors are never waivable.
        let waivable = !matches!(f.rule, RuleId::W001 | RuleId::W002);
        let mut suppressed = false;
        if waivable {
            for (wi, w) in waivers.iter().enumerate() {
                if w.rule == f.rule && w.target_line == f.line {
                    used[wi] = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            surviving.push(f);
        }
    }
    let mut used_waivers = Vec::new();
    for (w, was_used) in waivers.into_iter().zip(used) {
        if was_used {
            used_waivers.push(w);
        } else {
            surviving.push(Finding {
                rule: RuleId::W002,
                file: rel_path.to_string(),
                line: w.comment_line,
                message: format!(
                    "stale waiver: no {} finding on line {} — delete the waiver (reason was: \
                     \"{}\")",
                    w.rule.as_str(),
                    w.target_line,
                    w.reason
                ),
            });
        }
    }
    surviving.sort_by_key(|f| (f.line, f.rule));
    (surviving, used_waivers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_waiver() {
        let (rule, reason) = parse_allow(r#"allow(D002, reason = "bench wall-clock")"#).unwrap();
        assert_eq!(rule, RuleId::D002);
        assert_eq!(reason, "bench wall-clock");
    }

    #[test]
    fn rejects_missing_reason() {
        assert!(parse_allow("allow(D001)").is_err());
        assert!(parse_allow(r#"allow(D001, reason = "")"#).is_err());
        assert!(parse_allow(r#"allow(D999, reason = "x")"#).is_err());
    }
}
