#![forbid(unsafe_code)]
//! `daris-lint` — the determinism static-analysis pass for the DARIS
//! workspace.
//!
//! Every headline result in this repository rests on one invariant:
//! simulations are **byte-identical** across thread counts, record/replay
//! round trips, and device-local vs. global arrival streams. This pass makes
//! that invariant machine-checked instead of conventional. It walks every
//! workspace source file with a small hand-rolled lexer (no `syn`, no
//! network — the same vendoring discipline as the criterion/proptest stubs)
//! and enforces six named rules:
//!
//! | rule | hazard |
//! |------|--------|
//! | D001 | unordered-container iteration (`HashMap`/`HashSet`/`RandomState`) in sim crates |
//! | D002 | ambient nondeterminism (`Instant::now`, `SystemTime`, `thread_rng`) outside bench |
//! | D003 | float accumulation over an unordered source |
//! | D004 | thread spawns outside the sanctioned worker-pool module |
//! | D005 | lossy float<->int `as` casts in sim-time arithmetic |
//! | D006 | missing `#![forbid(unsafe_code)]` in a library crate root |
//!
//! Findings can be waived only by an inline
//! `// daris-lint: allow(<rule>, reason = "...")` with a mandatory reason;
//! stale waivers are themselves errors (`W002`), so the waiver set can never
//! rot. See [`rules::RULES`] for the scope of each rule and `DESIGN.md`
//! ("Determinism invariants & static analysis") for the full rationale,
//! including where the lookup-vs-iteration line is drawn.
//!
//! The second, compiler-native enforcement layer lives in the workspace
//! `clippy.toml` (`disallowed-types`/`disallowed-methods`); keep the two in
//! sync when editing either.

pub mod lexer;
pub mod report;
pub mod rules;
pub mod waiver;

use report::Report;
use rules::Finding;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Analyzes one source file. `rel_path` must be repo-relative with forward
/// slashes — it determines which rule scopes apply (see
/// [`rules::FileScope`]). Waivers are parsed and applied; the returned
/// findings are what survives them (plus any `W001`/`W002` waiver errors).
pub fn analyze_source(rel_path: &str, source: &str) -> (Vec<Finding>, Vec<waiver::Waiver>) {
    let lexed = lexer::lex(source);
    let mut findings = rules::analyze(rel_path, source, &lexed);
    let waivers = waiver::parse_waivers(rel_path, &lexed.comments, &mut findings);
    waiver::apply_waivers(rel_path, findings, waivers)
}

/// Directories walked relative to the workspace root. `vendor/` is excluded:
/// the stubs there are third-party API shims, not simulation logic (their
/// wall-clock use is the whole point of a timing harness stub).
const WALK_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Path components that are never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Recursively collects the workspace `.rs` files to lint, sorted for
/// deterministic report order. `fixtures` directories are skipped — they hold
/// deliberately-bad inputs for the lint's own test suite.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for walk_root in WALK_ROOTS {
        let dir = root.join(walk_root);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`.
pub fn run(root: &Path) -> std::io::Result<Report> {
    let files = collect_files(root)?;
    let mut all_findings = Vec::new();
    let mut all_waivers = Vec::new();
    let mut sources = BTreeMap::new();
    let files_scanned = files.len();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        let (findings, waivers) = analyze_source(&rel, &source);
        all_findings.extend(findings);
        all_waivers.extend(waivers);
        sources.insert(rel, source);
    }
    Ok(Report { findings: all_findings, waivers_used: all_waivers, files_scanned, sources })
}
