//! Human (diff-style) and machine-readable (JSON) rendering of a lint run.
//!
//! The JSON is emitted by hand — the workspace has no serde (see the
//! `[workspace.dependencies]` note in the root manifest) — in the same
//! one-object, stable-key-order discipline as `daris-bench`'s perf artifact,
//! so CI can archive the report next to the perf trajectory.

use crate::rules::Finding;
use crate::waiver::Waiver;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Everything one run produced, ready to render.
pub struct Report {
    pub findings: Vec<Finding>,
    pub waivers_used: Vec<Waiver>,
    pub files_scanned: usize,
    /// `file -> source` for snippet rendering (relative paths).
    pub sources: BTreeMap<String, String>,
}

impl Report {
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Compiler-style human rendering with the offending source line inlined.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ =
                writeln!(out, "{}:{}: error[{}]: {}", f.file, f.line, f.rule.as_str(), f.message);
            if let Some(src) = self.sources.get(&f.file) {
                if let Some(line) = src.lines().nth(f.line as usize - 1) {
                    let _ = writeln!(out, "  |\n  | {}\n  |", line.trim_end());
                }
            }
        }
        let _ = writeln!(
            out,
            "daris-lint: {} file(s) scanned, {} finding(s), {} waiver(s) in effect",
            self.files_scanned,
            self.findings.len(),
            self.waivers_used.len()
        );
        out
    }

    /// One JSON object; keys in fixed order, strings escaped by hand.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"clean\": {},", self.clean());
        out.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let snippet = self
                .sources
                .get(&f.file)
                .and_then(|s| s.lines().nth(f.line as usize - 1))
                .unwrap_or("")
                .trim();
            let _ = write!(
                out,
                "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \
                 \"snippet\": \"{}\"}}",
                f.rule.as_str(),
                escape(&f.file),
                f.line,
                escape(&f.message),
                escape(snippet)
            );
            out.push_str(if i + 1 < self.findings.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"waivers\": [\n");
        for (i, w) in self.waivers_used.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"rule\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
                w.rule.as_str(),
                w.comment_line,
                escape(&w.reason)
            );
            out.push_str(if i + 1 < self.waivers_used.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        assert_eq!(escape(r#"a "b" \ c"#), r#"a \"b\" \\ c"#);
    }

    #[test]
    fn human_report_includes_snippet() {
        let mut sources = BTreeMap::new();
        sources.insert("f.rs".to_string(), "line one\nlet x = bad();\n".to_string());
        let report = Report {
            findings: vec![Finding {
                rule: RuleId::D001,
                file: "f.rs".to_string(),
                line: 2,
                message: "m".to_string(),
            }],
            waivers_used: Vec::new(),
            files_scanned: 1,
            sources,
        };
        let human = report.render_human();
        assert!(human.contains("f.rs:2: error[D001]: m"));
        assert!(human.contains("let x = bad();"));
        assert!(report.render_json().contains("\"clean\": false"));
    }
}
