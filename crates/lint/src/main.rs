#![forbid(unsafe_code)]
//! CLI for `daris-lint`. See the library docs for the rule set.
//!
//! ```text
//! daris-lint [--root PATH] [--format human|json] [--out FILE] [--rules]
//! ```
//!
//! Exit codes: 0 = clean, 1 = findings (or stale/malformed waivers),
//! 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Human;
    let mut out_file: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                _ => return usage("--format must be `human` or `json`"),
            },
            "--out" => match args.next() {
                Some(p) => out_file = Some(PathBuf::from(p)),
                None => return usage("--out needs a path"),
            },
            "--rules" => {
                for r in daris_lint::rules::RULES {
                    println!("{}  {}\n      scope: {}", r.id.as_str(), r.title, r.scope);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "daris-lint: determinism static analysis for the DARIS workspace\n\
                     usage: daris-lint [--root PATH] [--format human|json] [--out FILE] [--rules]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Walking from a subdirectory would silently lint a partial workspace and
    // report a misleading all-clean; require the workspace root.
    if !root.join("Cargo.toml").is_file() || !root.join("crates").is_dir() {
        eprintln!(
            "daris-lint: `{}` does not look like the workspace root (no Cargo.toml + crates/)",
            root.display()
        );
        return ExitCode::from(2);
    }

    let report = match daris_lint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("daris-lint: I/O error: {e}");
            return ExitCode::from(2);
        }
    };

    let rendered = match format {
        Format::Human => report.render_human(),
        Format::Json => report.render_json(),
    };
    match &out_file {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("daris-lint: cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            // Keep the console actionable even when the artifact goes to disk.
            if !report.clean() {
                eprint!("{}", report.render_human());
            }
        }
        None => print!("{rendered}"),
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

enum Format {
    Human,
    Json,
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("daris-lint: {msg} (try --help)");
    ExitCode::from(2)
}
