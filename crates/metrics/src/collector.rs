//! Per-job outcome collection and experiment summaries.

use std::collections::BTreeMap;

use daris_gpu::{SimDuration, SimTime};
use daris_workload::{Job, JobId, Priority};

use crate::ResponseStats;

#[derive(Debug, Clone)]
struct JobRecord {
    priority: Priority,
    batch_size: u32,
    release: SimTime,
    absolute_deadline: SimTime,
    rejected: bool,
    finish: Option<SimTime>,
}

/// Accumulates job outcomes during a simulation run.
///
/// The expected call sequence per job is `record_release`, then either
/// `record_rejection` (admission test failed) or eventually
/// `record_completion`. Jobs released but never completed by the end of the
/// run count as *unfinished* (they are treated as accepted but are excluded
/// from response-time statistics and counted as deadline misses if their
/// deadline has passed by the summary horizon).
///
/// Records are kept in a `BTreeMap` so summarization iterates jobs in a
/// deterministic order — response-time statistics involve floating-point
/// sums, and a hash-map order would make the last bits of the mean depend on
/// the map's per-instance hash seed.
#[derive(Debug, Clone, Default)]
pub struct MetricsCollector {
    jobs: BTreeMap<JobId, JobRecord>,
}

impl MetricsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        MetricsCollector::default()
    }

    /// Records a job release.
    pub fn record_release(&mut self, job: &Job) {
        self.jobs.insert(
            job.id,
            JobRecord {
                priority: job.priority,
                batch_size: job.batch_size,
                release: job.release,
                absolute_deadline: job.absolute_deadline,
                rejected: false,
                finish: None,
            },
        );
    }

    /// Records that the admission test rejected a job.
    pub fn record_rejection(&mut self, job: &Job) {
        if let Some(r) = self.jobs.get_mut(&job.id) {
            r.rejected = true;
        } else {
            self.record_release(job);
            self.jobs.get_mut(&job.id).expect("just inserted").rejected = true;
        }
    }

    /// Records a job completion at `finish`.
    pub fn record_completion(&mut self, job: &Job, finish: SimTime) {
        if let Some(r) = self.jobs.get_mut(&job.id) {
            r.finish = Some(finish);
        } else {
            self.record_release(job);
            self.jobs.get_mut(&job.id).expect("just inserted").finish = Some(finish);
        }
    }

    /// Forgets a job entirely, as if it had never been released here. Used
    /// when a queued job migrates away (another collector takes ownership of
    /// its outcome); a job must not be counted by two collectors at once.
    pub fn forget(&mut self, job: JobId) {
        self.jobs.remove(&job);
    }

    /// Number of jobs recorded so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no job has been recorded.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Produces the experiment summary for a run that lasted until `horizon`.
    pub fn summarize(&self, horizon: SimTime) -> ExperimentSummary {
        let mut per_priority: BTreeMap<Priority, Accumulator> = BTreeMap::new();
        per_priority.insert(Priority::High, Accumulator::default());
        per_priority.insert(Priority::Low, Accumulator::default());
        for record in self.jobs.values() {
            per_priority.entry(record.priority).or_default().add(record, horizon);
        }
        let high = per_priority.remove(&Priority::High).unwrap_or_default().finish();
        let low = per_priority.remove(&Priority::Low).unwrap_or_default().finish();
        let total = Accumulator::merged(&self.jobs, horizon).finish();
        let duration = horizon.duration_since(SimTime::ZERO);
        let throughput_jps = if duration.is_zero() {
            0.0
        } else {
            total.completed_inferences as f64 / duration.as_secs_f64()
        };
        ExperimentSummary { duration, throughput_jps, high, low, total, gpu_utilization: None }
    }
}

#[derive(Debug, Clone, Default)]
struct Accumulator {
    released: usize,
    rejected: usize,
    completed: usize,
    completed_inferences: u64,
    deadline_misses: usize,
    responses_ms: Vec<f64>,
}

impl Accumulator {
    fn add(&mut self, record: &JobRecord, horizon: SimTime) {
        self.released += 1;
        if record.rejected {
            self.rejected += 1;
            return;
        }
        match record.finish {
            Some(finish) => {
                self.completed += 1;
                self.completed_inferences += u64::from(record.batch_size);
                if finish > record.absolute_deadline {
                    self.deadline_misses += 1;
                }
                self.responses_ms.push(finish.duration_since(record.release).as_millis_f64());
            }
            None => {
                // Unfinished at the end of the run: a miss if its deadline has
                // already passed.
                if record.absolute_deadline <= horizon {
                    self.deadline_misses += 1;
                }
            }
        }
    }

    fn merged(jobs: &BTreeMap<JobId, JobRecord>, horizon: SimTime) -> Accumulator {
        let mut acc = Accumulator::default();
        for record in jobs.values() {
            acc.add(record, horizon);
        }
        acc
    }

    fn finish(self) -> PrioritySummary {
        let accepted = self.released - self.rejected;
        let miss_rate =
            // daris-lint: allow(D005, reason = "ratio of integer job counters for reporting; no time quantity is cast")
            if accepted == 0 { 0.0 } else { self.deadline_misses as f64 / accepted as f64 };
        PrioritySummary {
            released: self.released,
            accepted,
            rejected: self.rejected,
            completed: self.completed,
            completed_inferences: self.completed_inferences,
            deadline_misses: self.deadline_misses,
            deadline_miss_rate: miss_rate,
            response: ResponseStats::from_millis(&self.responses_ms),
        }
    }
}

/// Outcome counts for one priority level (or for all jobs combined).
#[derive(Debug, Clone, PartialEq)]
pub struct PrioritySummary {
    /// Jobs released.
    pub released: usize,
    /// Jobs accepted (released minus rejected).
    pub accepted: usize,
    /// Jobs rejected by the admission test.
    pub rejected: usize,
    /// Jobs completed before the end of the run.
    pub completed: usize,
    /// Completed inferences (completed jobs weighted by batch size).
    pub completed_inferences: u64,
    /// Accepted jobs that missed their deadline (completed late, or still
    /// unfinished after their deadline at the end of the run).
    pub deadline_misses: usize,
    /// `deadline_misses / accepted` — the paper's DMR.
    pub deadline_miss_rate: f64,
    /// Response-time statistics over completed jobs.
    pub response: ResponseStats,
}

impl PrioritySummary {
    /// Merges outcome counts from runs over *disjoint* job populations (e.g.
    /// the per-device summaries of a cluster run). Counts add up exactly; the
    /// miss rate is recomputed from the merged counts; response statistics
    /// merge per [`ResponseStats::merged`].
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a PrioritySummary>) -> PrioritySummary {
        let mut out = PrioritySummary::default();
        let mut responses = Vec::new();
        for p in parts {
            out.released += p.released;
            out.accepted += p.accepted;
            out.rejected += p.rejected;
            out.completed += p.completed;
            out.completed_inferences += p.completed_inferences;
            out.deadline_misses += p.deadline_misses;
            responses.push(&p.response);
        }
        out.deadline_miss_rate =
            // daris-lint: allow(D005, reason = "ratio of integer job counters for reporting; no time quantity is cast")
            if out.accepted == 0 { 0.0 } else { out.deadline_misses as f64 / out.accepted as f64 };
        out.response = ResponseStats::merged(responses);
        out
    }
}

impl Default for PrioritySummary {
    fn default() -> Self {
        Accumulator::default().finish()
    }
}

/// Summary of one scheduler run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSummary {
    /// Simulated duration of the run.
    pub duration: SimDuration,
    /// Completed inferences per second (batched jobs count their batch size),
    /// the paper's JPS metric.
    pub throughput_jps: f64,
    /// High-priority outcomes.
    pub high: PrioritySummary,
    /// Low-priority outcomes.
    pub low: PrioritySummary,
    /// Combined outcomes.
    pub total: PrioritySummary,
    /// Average GPU utilization over the run, if the caller sampled it.
    pub gpu_utilization: Option<f64>,
}

impl ExperimentSummary {
    /// The summary of one priority level.
    pub fn of(&self, priority: Priority) -> &PrioritySummary {
        match priority {
            Priority::High => &self.high,
            Priority::Low => &self.low,
        }
    }

    /// Attaches a GPU utilization figure (fraction of SM-time busy).
    pub fn with_gpu_utilization(mut self, utilization: f64) -> Self {
        self.gpu_utilization = Some(utilization);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daris_models::DnnKind;
    use daris_workload::{TaskSet, TaskSpec};

    fn tasks() -> Vec<TaskSpec> {
        TaskSet::table2(DnnKind::ResNet18).tasks().to_vec()
    }

    #[test]
    fn mixed_outcomes_are_classified() {
        let tasks = tasks();
        let hp = tasks.iter().find(|t| t.priority == Priority::High).unwrap();
        let lp = tasks.iter().find(|t| t.priority == Priority::Low).unwrap();
        let mut m = MetricsCollector::new();

        // HP job completes on time.
        let j1 = hp.job(0);
        m.record_release(&j1);
        m.record_completion(&j1, j1.release + SimDuration::from_millis(5));
        // HP job completes late.
        let j2 = hp.job(1);
        m.record_release(&j2);
        m.record_completion(&j2, j2.absolute_deadline + SimDuration::from_millis(1));
        // LP job rejected.
        let j3 = lp.job(0);
        m.record_release(&j3);
        m.record_rejection(&j3);
        // LP job released, never finished, deadline passed.
        let j4 = lp.job(1);
        m.record_release(&j4);

        let horizon = SimTime::from_millis(500);
        let s = m.summarize(horizon);
        assert_eq!(s.high.released, 2);
        assert_eq!(s.high.completed, 2);
        assert_eq!(s.high.deadline_misses, 1);
        assert!((s.high.deadline_miss_rate - 0.5).abs() < 1e-9);
        assert_eq!(s.low.released, 2);
        assert_eq!(s.low.rejected, 1);
        assert_eq!(s.low.accepted, 1);
        assert_eq!(s.low.deadline_misses, 1, "unfinished job past deadline counts as a miss");
        assert_eq!(s.total.released, 4);
        assert_eq!(s.total.completed, 2);
        // Throughput: 2 completed inferences in 0.5 s = 4 JPS.
        assert!((s.throughput_jps - 4.0).abs() < 1e-9);
    }

    #[test]
    fn batch_size_weights_throughput() {
        let tasks = tasks();
        let t = tasks[0].clone().with_batch_size(4);
        let mut m = MetricsCollector::new();
        let j = t.job(0);
        m.record_release(&j);
        m.record_completion(&j, j.release + SimDuration::from_millis(3));
        let s = m.summarize(SimTime::from_millis(1000));
        assert_eq!(s.total.completed, 1);
        assert_eq!(s.total.completed_inferences, 4);
        assert!((s.throughput_jps - 4.0).abs() < 1e-9);
    }

    #[test]
    fn forget_removes_a_job_from_the_accounting() {
        let tasks = tasks();
        let j = tasks[0].job(0);
        let mut m = MetricsCollector::new();
        m.record_release(&j);
        assert_eq!(m.len(), 1);
        m.forget(j.id);
        assert!(m.is_empty());
        let s = m.summarize(SimTime::from_millis(1000));
        assert_eq!(s.total.released, 0);
        assert_eq!(s.total.deadline_misses, 0);
    }

    #[test]
    fn merged_priority_summaries_add_counts_and_recompute_rates() {
        let tasks = tasks();
        let t = &tasks[0];
        let build = |missed: bool| {
            let mut m = MetricsCollector::new();
            let j = t.job(0);
            m.record_release(&j);
            let finish = if missed {
                j.absolute_deadline + SimDuration::from_millis(1)
            } else {
                j.release + SimDuration::from_millis(1)
            };
            m.record_completion(&j, finish);
            m.summarize(SimTime::from_millis(500)).high
        };
        let on_time = build(false);
        let late = build(true);
        let merged = PrioritySummary::merged([&on_time, &late]);
        assert_eq!(merged.released, 2);
        assert_eq!(merged.completed, 2);
        assert_eq!(merged.deadline_misses, 1);
        assert!((merged.deadline_miss_rate - 0.5).abs() < 1e-9);
        assert_eq!(merged.response.count, 2);
        let empty = PrioritySummary::merged([]);
        assert_eq!(empty.released, 0);
        assert_eq!(empty.deadline_miss_rate, 0.0);
    }

    #[test]
    fn completion_without_release_is_tolerated() {
        let tasks = tasks();
        let j = tasks[0].job(0);
        let mut m = MetricsCollector::new();
        m.record_completion(&j, j.release + SimDuration::from_millis(1));
        let s = m.summarize(SimTime::from_millis(100));
        assert_eq!(s.total.completed, 1);
        assert_eq!(s.total.released, 1);
    }

    #[test]
    fn empty_collector_summarizes_to_zero() {
        let m = MetricsCollector::new();
        assert!(m.is_empty());
        let s = m.summarize(SimTime::from_millis(100));
        assert_eq!(s.total.released, 0);
        assert_eq!(s.throughput_jps, 0.0);
        assert_eq!(s.high.deadline_miss_rate, 0.0);
        assert!(s.gpu_utilization.is_none());
        let s = s.with_gpu_utilization(0.8);
        assert_eq!(s.gpu_utilization, Some(0.8));
    }

    #[test]
    fn unfinished_job_before_deadline_is_not_a_miss() {
        let tasks = tasks();
        let j = tasks[0].job(0);
        let mut m = MetricsCollector::new();
        m.record_release(&j);
        // Horizon before the job's deadline.
        let horizon = j.release + SimDuration::from_millis(1);
        let s = m.summarize(horizon);
        assert_eq!(s.total.deadline_misses, 0);
    }
}
