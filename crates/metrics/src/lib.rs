#![forbid(unsafe_code)]
//! # daris-metrics
//!
//! Metrics collection and reporting for the DARIS reproduction. The paper
//! evaluates schedulers on two primary metrics — total throughput in jobs per
//! second (JPS) and deadline miss rate (DMR, missed deadlines over accepted
//! jobs) — plus response-time distributions for the module-contribution study
//! (Fig. 8). [`MetricsCollector`] accumulates per-job outcomes during a
//! simulation and produces an [`ExperimentSummary`]; [`report::Table`] formats
//! paper-style tables for the experiment runners.
//!
//! # Example
//!
//! ```
//! use daris_metrics::MetricsCollector;
//! use daris_workload::{Priority, TaskSet};
//! use daris_models::DnnKind;
//! use daris_gpu::{SimDuration, SimTime};
//!
//! let ts = TaskSet::table2(DnnKind::UNet);
//! let task = &ts.tasks()[0];
//! let mut metrics = MetricsCollector::new();
//! let job = task.job(0);
//! metrics.record_release(&job);
//! metrics.record_completion(&job, job.release + SimDuration::from_millis(10));
//! let summary = metrics.summarize(SimTime::from_millis(100));
//! assert_eq!(summary.total.completed, 1);
//! assert_eq!(summary.of(Priority::High).deadline_misses, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod collector;
pub mod report;
mod stats;

pub use collector::{ExperimentSummary, MetricsCollector, PrioritySummary};
pub use stats::ResponseStats;
