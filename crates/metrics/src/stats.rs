//! Response-time statistics.

/// Summary statistics over a set of response times (milliseconds).
///
/// ```
/// use daris_metrics::ResponseStats;
/// let stats = ResponseStats::from_millis(&[5.0, 10.0, 15.0, 20.0]);
/// assert_eq!(stats.count, 4);
/// assert_eq!(stats.mean_ms, 12.5);
/// assert_eq!(stats.max_ms, 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseStats {
    /// Number of samples.
    pub count: usize,
    /// Minimum, in milliseconds.
    pub min_ms: f64,
    /// Mean, in milliseconds.
    pub mean_ms: f64,
    /// Median (50th percentile), in milliseconds.
    pub p50_ms: f64,
    /// 95th percentile, in milliseconds.
    pub p95_ms: f64,
    /// 99th percentile, in milliseconds.
    pub p99_ms: f64,
    /// Maximum (worst case observed), in milliseconds.
    pub max_ms: f64,
}

impl ResponseStats {
    /// An all-zero summary for an empty sample set.
    pub fn empty() -> Self {
        ResponseStats {
            count: 0,
            min_ms: 0.0,
            mean_ms: 0.0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            max_ms: 0.0,
        }
    }

    /// Computes statistics from raw millisecond samples.
    pub fn from_millis(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::empty();
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let sum: f64 = sorted.iter().sum();
        let percentile = |p: f64| -> f64 {
            let rank = (p * (count as f64 - 1.0)).round() as usize;
            sorted[rank.min(count - 1)]
        };
        ResponseStats {
            count,
            min_ms: sorted[0],
            mean_ms: sum / count as f64,
            p50_ms: percentile(0.50),
            p95_ms: percentile(0.95),
            p99_ms: percentile(0.99),
            max_ms: sorted[count - 1],
        }
    }
}

impl Default for ResponseStats {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let s = ResponseStats::from_millis(&[]);
        assert_eq!(s, ResponseStats::empty());
        assert_eq!(s.count, 0);
    }

    #[test]
    fn single_sample() {
        let s = ResponseStats::from_millis(&[7.5]);
        assert_eq!(s.count, 1);
        assert_eq!(s.min_ms, 7.5);
        assert_eq!(s.max_ms, 7.5);
        assert_eq!(s.p95_ms, 7.5);
        assert_eq!(s.mean_ms, 7.5);
    }

    #[test]
    fn percentiles_are_ordered() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = ResponseStats::from_millis(&samples);
        assert!(s.min_ms <= s.p50_ms);
        assert!(s.p50_ms <= s.p95_ms);
        assert!(s.p95_ms <= s.p99_ms);
        assert!(s.p99_ms <= s.max_ms);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.p95_ms - 95.0).abs() <= 1.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = ResponseStats::from_millis(&[30.0, 10.0, 20.0]);
        assert_eq!(s.min_ms, 10.0);
        assert_eq!(s.p50_ms, 20.0);
        assert_eq!(s.max_ms, 30.0);
    }
}
