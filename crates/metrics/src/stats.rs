//! Response-time statistics.

/// Summary statistics over a set of response times (milliseconds).
///
/// ```
/// use daris_metrics::ResponseStats;
/// let stats = ResponseStats::from_millis(&[5.0, 10.0, 15.0, 20.0]);
/// assert_eq!(stats.count, 4);
/// assert_eq!(stats.mean_ms, 12.5);
/// assert_eq!(stats.max_ms, 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseStats {
    /// Number of samples.
    pub count: usize,
    /// Minimum, in milliseconds.
    pub min_ms: f64,
    /// Mean, in milliseconds.
    pub mean_ms: f64,
    /// Median (50th percentile), in milliseconds.
    pub p50_ms: f64,
    /// 95th percentile, in milliseconds.
    pub p95_ms: f64,
    /// 99th percentile, in milliseconds.
    pub p99_ms: f64,
    /// Maximum (worst case observed), in milliseconds.
    pub max_ms: f64,
}

impl ResponseStats {
    /// An all-zero summary for an empty sample set.
    pub fn empty() -> Self {
        ResponseStats {
            count: 0,
            min_ms: 0.0,
            mean_ms: 0.0,
            p50_ms: 0.0,
            p95_ms: 0.0,
            p99_ms: 0.0,
            max_ms: 0.0,
        }
    }

    /// Merges statistics computed over disjoint sample sets (e.g. one per
    /// cluster device). Counts, extrema and the mean merge exactly;
    /// percentiles are approximated by a count-weighted average since the raw
    /// samples are no longer available.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a ResponseStats>) -> Self {
        let non_empty: Vec<&ResponseStats> = parts.into_iter().filter(|s| s.count > 0).collect();
        // A single contributing part merges to exactly itself (the weighted
        // averages below would round-trip its values through `x * n / n`).
        if let [only] = non_empty.as_slice() {
            return **only;
        }
        let mut out = ResponseStats::empty();
        let mut min = f64::INFINITY;
        let mut mean_sum = 0.0;
        let mut p50_sum = 0.0;
        let mut p95_sum = 0.0;
        let mut p99_sum = 0.0;
        for s in non_empty {
            let n = s.count as f64;
            out.count += s.count;
            min = min.min(s.min_ms);
            out.max_ms = out.max_ms.max(s.max_ms);
            mean_sum += s.mean_ms * n;
            p50_sum += s.p50_ms * n;
            p95_sum += s.p95_ms * n;
            p99_sum += s.p99_ms * n;
        }
        if out.count == 0 {
            return ResponseStats::empty();
        }
        let total = out.count as f64;
        out.min_ms = min;
        out.mean_ms = mean_sum / total;
        out.p50_ms = p50_sum / total;
        out.p95_ms = p95_sum / total;
        out.p99_ms = p99_sum / total;
        out
    }

    /// Computes statistics from raw millisecond samples.
    pub fn from_millis(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::empty();
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let sum: f64 = sorted.iter().sum();
        let percentile = |p: f64| -> f64 {
            let rank = (p * (count as f64 - 1.0)).round() as usize;
            sorted[rank.min(count - 1)]
        };
        ResponseStats {
            count,
            min_ms: sorted[0],
            // daris-lint: allow(D005, reason = "mean over an already-sorted Vec; count is an integer cardinality, not a time value")
            mean_ms: sum / count as f64,
            p50_ms: percentile(0.50),
            p95_ms: percentile(0.95),
            p99_ms: percentile(0.99),
            max_ms: sorted[count - 1],
        }
    }
}

impl Default for ResponseStats {
    fn default() -> Self {
        Self::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_all_zero() {
        let s = ResponseStats::from_millis(&[]);
        assert_eq!(s, ResponseStats::empty());
        assert_eq!(s.count, 0);
    }

    #[test]
    fn single_sample() {
        let s = ResponseStats::from_millis(&[7.5]);
        assert_eq!(s.count, 1);
        assert_eq!(s.min_ms, 7.5);
        assert_eq!(s.max_ms, 7.5);
        assert_eq!(s.p95_ms, 7.5);
        assert_eq!(s.mean_ms, 7.5);
    }

    #[test]
    fn percentiles_are_ordered() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = ResponseStats::from_millis(&samples);
        assert!(s.min_ms <= s.p50_ms);
        assert!(s.p50_ms <= s.p95_ms);
        assert!(s.p95_ms <= s.p99_ms);
        assert!(s.p99_ms <= s.max_ms);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.p95_ms - 95.0).abs() <= 1.0);
    }

    #[test]
    fn merged_combines_disjoint_sample_sets() {
        let a = ResponseStats::from_millis(&[10.0, 20.0]);
        let b = ResponseStats::from_millis(&[40.0, 50.0, 60.0]);
        let m = ResponseStats::merged([&a, &b]);
        assert_eq!(m.count, 5);
        assert_eq!(m.min_ms, 10.0);
        assert_eq!(m.max_ms, 60.0);
        // Exact weighted mean: (15*2 + 50*3) / 5 = 36.
        assert!((m.mean_ms - 36.0).abs() < 1e-9);
        // Empty parts are ignored entirely.
        let with_empty = ResponseStats::merged([&a, &ResponseStats::empty()]);
        assert_eq!(with_empty, a);
        assert_eq!(ResponseStats::merged([]), ResponseStats::empty());
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = ResponseStats::from_millis(&[30.0, 10.0, 20.0]);
        assert_eq!(s.min_ms, 10.0);
        assert_eq!(s.p50_ms, 20.0);
        assert_eq!(s.max_ms, 30.0);
    }
}
