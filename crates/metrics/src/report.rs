//! Plain-text report tables for the experiment runners.
//!
//! The benchmark binaries print the same rows/series the paper reports
//! (throughput per configuration, DMR per configuration, paper-vs-measured
//! comparisons). [`Table`] renders aligned, pipe-separated tables that read
//! well both in a terminal and when pasted into `EXPERIMENTS.md`.

use std::fmt;

/// A simple aligned text table.
///
/// ```
/// use daris_metrics::report::Table;
/// let mut t = Table::new("Table I: batching performance");
/// t.set_headers(["DNN", "min JPS", "max JPS", "gain"]);
/// t.add_row(["ResNet18", "627", "1025", "1.63x"]);
/// let text = t.to_string();
/// assert!(text.contains("ResNet18"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Table { title: title.into(), headers: Vec::new(), rows: Vec::new() }
    }

    /// Sets the header row.
    pub fn set_headers<I, S>(&mut self, headers: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
    }

    /// Appends a data row.
    pub fn add_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    fn column_widths(&self) -> Vec<usize> {
        let columns = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.column_widths();
        writeln!(f, "## {}", self.title)?;
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                write!(f, " {cell:width$} |", width = width)?;
            }
            writeln!(f)
        };
        if !self.headers.is_empty() {
            write_row(f, &self.headers)?;
            write!(f, "|")?;
            for width in &widths {
                write!(f, "{}|", "-".repeat(width + 2))?;
            }
            writeln!(f)?;
        }
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a number with a fixed number of decimals, trimming `-0.0`.
pub fn fmt_num(value: f64, decimals: usize) -> String {
    let v = if value == 0.0 { 0.0 } else { value };
    format!("{v:.decimals$}")
}

/// Formats a ratio as a percentage with one decimal, e.g. `0.025` → `"2.5%"`.
pub fn fmt_pct(ratio: f64) -> String {
    format!("{:.1}%", ratio * 100.0)
}

/// Formats an `(observed, reference)` pair as `"observed (paper: reference)"`.
pub fn fmt_vs_paper(observed: f64, reference: f64, decimals: usize) -> String {
    format!("{} (paper: {})", fmt_num(observed, decimals), fmt_num(reference, decimals))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo");
        t.set_headers(["config", "JPS", "DMR"]);
        t.add_row(["6x1 OS6", "1158", "2.0%"]);
        t.add_row(["1x2", "401", "0.0%"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("## demo"));
        assert_eq!(lines[1].matches('|').count(), 4);
        // All table body lines have equal length (aligned).
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.title(), "demo");
    }

    #[test]
    fn rows_with_fewer_cells_are_padded() {
        let mut t = Table::new("pad");
        t.set_headers(["a", "b", "c"]);
        t.add_row(["only-one"]);
        let text = t.to_string();
        assert!(text.lines().last().unwrap().matches('|').count() == 4);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_num(3.456, 2), "3.46");
        assert_eq!(fmt_num(-0.0, 1), "0.0");
        assert_eq!(fmt_pct(0.025), "2.5%");
        assert_eq!(fmt_pct(0.0), "0.0%");
        assert_eq!(fmt_vs_paper(498.2, 498.0, 0), "498 (paper: 498)");
    }

    #[test]
    fn table_without_headers_still_renders() {
        let mut t = Table::new("no headers");
        t.add_row(["x", "y"]);
        let text = t.to_string();
        assert!(text.contains("| x | y |"));
    }
}
