#![forbid(unsafe_code)]
//! # daris-telemetry
//!
//! Structured observability for the DARIS simulator: a zero-cost-when-disabled
//! event stream threaded through all three layers (device engine, per-device
//! scheduler, cluster dispatcher), plus ready-made consumers.
//!
//! The design splits observability into two channels with very different
//! determinism contracts:
//!
//! * **Sim-time events** ([`TelemetryEvent`]): every timestamp is a
//!   [`daris_gpu::SimTime`], every payload is derived from simulation state,
//!   and the producer layers emit them in a fixed order regardless of worker
//!   thread count. A recorded stream is therefore byte-identical across runs
//!   and across `--threads` settings, and attaching a sink never changes the
//!   simulation outcome (sinks only observe; they cannot feed anything back).
//! * **Wall-clock self-profiling** ([`WallClockProfiler`]): explicitly
//!   nondeterministic, measures where a cluster sync round spends *host* time
//!   (span fan-out, admission retries, migration scan, merge). It exists for
//!   the benchmark harness only and carries the one sanctioned wall-clock
//!   waiver outside `daris-bench`.
//!
//! Three sinks ship with the crate:
//!
//! * [`MemorySink`] — bounded ring buffer, for tests and for the dispatcher's
//!   internal per-device buffers;
//! * [`ChromeTraceSink`] — Chrome trace-event JSON (loadable in Perfetto /
//!   `chrome://tracing`), one process per device, one track per context plus
//!   scheduler/copy-engine/round tracks;
//! * [`WindowedMetrics`] — time-windowed gauges (arrival rate, per-priority
//!   queue depth, rolling deadline-miss rate, per-device utilization), the
//!   signal the ROADMAP's burst-triggered load detector will consume.
//!
//! # Example
//!
//! ```
//! use daris_gpu::SimTime;
//! use daris_telemetry::{EventKind, MemorySink, SinkHandle, TelemetryEvent};
//!
//! let sink = MemorySink::unbounded();
//! let handle = SinkHandle::new(sink.clone());
//! handle.record(TelemetryEvent {
//!     at: SimTime::from_millis(1),
//!     device: 0,
//!     kind: EventKind::Replan { computing: 2, utilization: 0.5 },
//! });
//! assert_eq!(sink.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chrome;
mod event;
mod memory;
mod profile;
mod sink;
mod windowed;

pub use chrome::{ChromeTraceSink, CHROME_SCHEMA_VERSION};
pub use event::{
    AdmissionTest, EventKind, RoundPhase, TelemetryEvent, CLUSTER_DEVICE, RACK_DEVICE_BASE,
};
pub use memory::MemorySink;
pub use profile::{PhaseTotal, WallClockProfiler};
pub use sink::{SinkHandle, TelemetrySink};
pub use windowed::{WindowSnapshot, WindowedMetrics};
