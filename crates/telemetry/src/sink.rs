//! The sink contract and the cloneable handle the simulator layers hold.

use std::fmt;
use std::sync::{Arc, Mutex};

use crate::TelemetryEvent;

/// A consumer of telemetry events.
///
/// # Contract
///
/// * `record` is called in a deterministic order for a given configuration:
///   producers emit in simulation order on a single device, and the cluster
///   dispatcher forwards per-device buffers in device-index order at round
///   boundaries, so the stream is identical at any worker thread count.
/// * A sink must never feed anything back into the simulation; it observes
///   state, it does not own any. Attaching or detaching a sink must not
///   change a run's `summary_hash`.
/// * Implementations should be cheap: `record` runs inside the simulation
///   loop whenever a sink is attached. The disabled path (no sink) costs one
///   `Option` check and skips event construction entirely.
pub trait TelemetrySink: fmt::Debug + Send {
    /// Consumes one event.
    fn record(&mut self, event: &TelemetryEvent);

    /// Consumes a batch of events in order, draining `events`. Equivalent to
    /// calling [`record`](Self::record) once per event — the default does
    /// exactly that — but lets buffering sinks take the whole batch in one
    /// move instead of one clone per event. The cluster dispatcher's round
    /// merge hands entire per-device buffers over through this path.
    fn record_batch(&mut self, events: &mut Vec<TelemetryEvent>) {
        for event in events.drain(..) {
            self.record(&event);
        }
    }
}

/// Shared, cloneable handle to a [`TelemetrySink`].
///
/// Configuration types (`DarisConfig`, `ClusterConfig`) store an
/// `Option<SinkHandle>`; cloning the handle shares the underlying sink, so
/// the caller keeps one clone to read results from while the simulator
/// records into another.
#[derive(Debug, Clone)]
pub struct SinkHandle {
    inner: Arc<Mutex<Box<dyn TelemetrySink>>>,
}

impl SinkHandle {
    /// Wraps a sink in a shareable handle.
    pub fn new(sink: impl TelemetrySink + 'static) -> Self {
        SinkHandle { inner: Arc::new(Mutex::new(Box::new(sink))) }
    }

    /// Records one event into the wrapped sink.
    pub fn record(&self, event: TelemetryEvent) {
        self.inner.lock().expect("telemetry sink lock poisoned").record(&event);
    }

    /// Records a batch of events in order, draining `events`, under a single
    /// lock acquisition (one per batch instead of one per event).
    pub fn record_batch(&self, events: &mut Vec<TelemetryEvent>) {
        if events.is_empty() {
            return;
        }
        self.inner.lock().expect("telemetry sink lock poisoned").record_batch(events);
    }
}

/// Handles compare by identity: two handles are equal iff they share the
/// same underlying sink. (Configs derive `PartialEq`; structural comparison
/// of a trait object is neither possible nor wanted.)
impl PartialEq for SinkHandle {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, MemorySink};
    use daris_gpu::SimTime;

    fn event() -> TelemetryEvent {
        TelemetryEvent {
            at: SimTime::from_micros(5),
            device: 0,
            kind: EventKind::Replan { computing: 1, utilization: 0.5 },
        }
    }

    #[test]
    fn handle_shares_the_sink_across_clones() {
        let sink = MemorySink::unbounded();
        let handle = SinkHandle::new(sink.clone());
        let clone = handle.clone();
        handle.record(event());
        clone.record(event());
        assert_eq!(sink.len(), 2);
        assert_eq!(handle, clone);
    }

    #[test]
    fn distinct_handles_compare_unequal() {
        let a = SinkHandle::new(MemorySink::unbounded());
        let b = SinkHandle::new(MemorySink::unbounded());
        assert_ne!(a, b);
    }
}
