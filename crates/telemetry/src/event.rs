//! The telemetry event taxonomy.
//!
//! Events are grouped by producing layer: the device engine (`daris-gpu`),
//! the per-device scheduler (`daris-core`), and the cluster dispatcher
//! (`daris-cluster`). Every timestamp is sim-time; the stream a run produces
//! is part of the byte-identical determinism contract.

use std::fmt;

use daris_gpu::{SimDuration, SimTime};
use daris_workload::{Priority, TaskId};

/// Device index used for fleet-level events that do not belong to any single
/// device (round-phase marks, retry and migration decisions).
pub const CLUSTER_DEVICE: u32 = u32::MAX;

/// Base of the rack-track device-id range: rack `r` records its rack-level
/// events (epoch load summaries) under device id `RACK_DEVICE_BASE + r`.
/// Real device indices stay far below this range, and [`CLUSTER_DEVICE`]
/// stays above it, so the three id spaces never collide.
pub const RACK_DEVICE_BASE: u32 = 0xFFFF_0000;

/// One telemetry record: a sim-time instant, the device it happened on, and
/// the event payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryEvent {
    /// Simulation time of the event.
    pub at: SimTime,
    /// Device index within the fleet (0 for single-GPU runs,
    /// [`CLUSTER_DEVICE`] for fleet-level events).
    pub device: u32,
    /// What happened.
    pub kind: EventKind,
}

/// Which admission test (Sec. IV of the paper) rejected a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionTest {
    /// Eq. 11 failed: admitting the low-priority job would push its context
    /// past the per-context utilization bound.
    LpUtilization,
    /// Eq. 12 failed: the high-priority interference bound does not hold.
    HpUtilization,
}

impl fmt::Display for AdmissionTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionTest::LpUtilization => f.write_str("Eq. 11"),
            AdmissionTest::HpUtilization => f.write_str("Eq. 12"),
        }
    }
}

/// Phases of one cluster sync round, in protocol order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RoundPhase {
    /// Per-device `run_span` fan-out to the worker pool.
    Span,
    /// Boundary admission retries of jobs rejected during the span.
    Retry,
    /// Migration scan and rebalance of queued low-priority jobs.
    Migration,
    /// Device-index-ordered merge of per-device results.
    Merge,
}

impl RoundPhase {
    /// All phases in protocol order.
    pub const ALL: [RoundPhase; 4] =
        [RoundPhase::Span, RoundPhase::Retry, RoundPhase::Migration, RoundPhase::Merge];

    /// Stable lowercase name, used as a JSON key by the exporters and the
    /// benchmark harness.
    pub fn name(self) -> &'static str {
        match self {
            RoundPhase::Span => "span",
            RoundPhase::Retry => "retry",
            RoundPhase::Migration => "migration",
            RoundPhase::Merge => "merge",
        }
    }
}

impl fmt::Display for RoundPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The event payload, grouped by producing layer.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    // ---- device layer (daris-gpu) ----
    /// A work item's host-to-device copy claimed the copy engine.
    CopyInStarted {
        /// Caller tag of the work item (the scheduler's job tag).
        tag: u64,
        /// Stream the item runs on.
        stream: u32,
        /// Context owning the stream.
        context: u32,
    },
    /// A work item's device-to-host copy claimed the copy engine.
    CopyOutStarted {
        /// Caller tag of the work item.
        tag: u64,
        /// Stream the item runs on.
        stream: u32,
        /// Context owning the stream.
        context: u32,
    },
    /// A work item's first kernel started executing.
    ItemStarted {
        /// Caller tag of the work item.
        tag: u64,
        /// Stream the item runs on.
        stream: u32,
        /// Context owning the stream.
        context: u32,
    },
    /// A kernel of a work item completed.
    KernelFinished {
        /// Caller tag of the work item.
        tag: u64,
        /// Stream the item runs on.
        stream: u32,
        /// Context owning the stream.
        context: u32,
        /// Kernel/layer label, when the model provides one.
        label: Option<String>,
    },
    /// A work item (including its device-to-host copy) finished.
    ItemFinished {
        /// Caller tag of the work item.
        tag: u64,
        /// Stream the item runs on.
        stream: u32,
        /// Context owning the stream.
        context: u32,
    },
    /// The water-filling allocator replanned SM allocations.
    Replan {
        /// Number of contexts computing after the replan.
        computing: u32,
        /// Fraction of physical SMs allocated after the replan (0.0–1.0).
        utilization: f64,
    },

    // ---- scheduler layer (daris-core) ----
    /// A released job passed its admission test and was bound to a context.
    AdmissionAccepted {
        /// The owning task.
        task: TaskId,
        /// Zero-based release index of the job.
        release_index: u64,
        /// Priority level of the job.
        priority: Priority,
        /// Context the job was bound to.
        context: u32,
        /// Whether the job runs away from its task's home context.
        migrated: bool,
    },
    /// A released job failed its admission test.
    AdmissionRejected {
        /// The owning task.
        task: TaskId,
        /// Zero-based release index of the job.
        release_index: u64,
        /// Priority level of the job.
        priority: Priority,
        /// The admission test that failed.
        test: AdmissionTest,
    },
    /// A job was finally dropped (charged as rejected in the metrics). In a
    /// cluster this only happens after boundary retries are exhausted.
    JobRejected {
        /// The owning task.
        task: TaskId,
        /// Zero-based release index of the job.
        release_index: u64,
        /// Priority level of the job.
        priority: Priority,
    },
    /// One pipeline stage of a job was submitted to the device.
    StageDispatched {
        /// The owning task.
        task: TaskId,
        /// Zero-based release index of the job.
        release_index: u64,
        /// Zero-based stage index submitted.
        stage: u32,
        /// Total number of stages of the job.
        stage_count: u32,
        /// Context the stage runs in.
        context: u32,
        /// Stream the stage runs on.
        stream: u32,
        /// Device work-item tag assigned to the stage.
        tag: u64,
    },
    /// A non-final stage completed; the job yields at the stage boundary
    /// (DARIS's preemption point) before its next stage is dispatched.
    StageBoundary {
        /// The owning task.
        task: TaskId,
        /// Zero-based release index of the job.
        release_index: u64,
        /// The stage that just completed.
        completed_stage: u32,
        /// Whether the stage missed its virtual (per-stage) deadline.
        missed_virtual: bool,
    },
    /// A job's final stage completed.
    JobCompleted {
        /// The owning task.
        task: TaskId,
        /// Zero-based release index of the job.
        release_index: u64,
        /// Priority level of the job.
        priority: Priority,
        /// Whether the job missed its absolute deadline.
        missed: bool,
        /// Response time (completion minus release).
        response: SimDuration,
    },
    /// A job completed after its absolute deadline (also reported via
    /// [`EventKind::JobCompleted`]'s `missed` flag; this instant exists so
    /// misses stand out as their own track mark).
    DeadlineMissed {
        /// The owning task.
        task: TaskId,
        /// Zero-based release index of the job.
        release_index: u64,
        /// Priority level of the job.
        priority: Priority,
    },
    /// The scheduler's Overload/HPA admission mode flipped at runtime,
    /// driven by its load detector's burst signal (adaptive control plane).
    AdmissionModeChanged {
        /// Whether HP-protective admission (Overload+HPA) is now active.
        hpa_enabled: bool,
        /// The detector's last closed-window rate over the nominal rate.
        load_ratio: f64,
    },

    // ---- fleet layer (daris-cluster) ----
    /// One device's `run_span` covered the sim-time interval `[from, to]`.
    DeviceSpan {
        /// Span start.
        from: SimTime,
        /// Span end (the round boundary).
        to: SimTime,
    },
    /// A sync-round phase executed at a round boundary. `detail` is
    /// phase-specific: jobs retried (retry), jobs moved (migration), devices
    /// merged (span/merge).
    PhaseMark {
        /// Zero-based round number.
        round: u64,
        /// Which phase.
        phase: RoundPhase,
        /// Phase-specific count.
        detail: u64,
    },
    /// A boundary retry offered a rejected job to another device.
    RetryAttempt {
        /// The owning task (global cluster task id).
        task: TaskId,
        /// Zero-based release index of the job.
        release_index: u64,
        /// Device that originally rejected the job.
        home: u32,
        /// Device the retry offered the job to.
        target: u32,
        /// Whether the target admitted it.
        admitted: bool,
    },
    /// The rebalancer moved a queued low-priority job between devices.
    Migration {
        /// The owning task (global cluster task id).
        task: TaskId,
        /// Zero-based release index of the job.
        release_index: u64,
        /// Source device.
        from: u32,
        /// Destination device.
        to: u32,
    },
    /// One rack's load summary, exchanged at a cross-rack rebalance epoch.
    /// Recorded under device id [`RACK_DEVICE_BASE`]` + rack`.
    RackLoad {
        /// Zero-based rack index.
        rack: u32,
        /// Round number the epoch boundary fell on.
        round: u64,
        /// Total queued (undispatched) ready stages across the rack.
        backlog: u64,
        /// Total idle streams across the rack.
        idle_streams: u64,
    },
    /// The epoch rebalancer moved a queued job between racks.
    RackMigration {
        /// The owning task (global cluster task id).
        task: TaskId,
        /// Zero-based release index of the job.
        release_index: u64,
        /// Source device.
        from: u32,
        /// Destination device.
        to: u32,
        /// Rack the source device belongs to.
        from_rack: u32,
        /// Rack the destination device belongs to.
        to_rack: u32,
    },
    /// The elastic dispatcher re-scaled the sync quantum at a round
    /// boundary; the new quantum governs the *following* round.
    QuantumChanged {
        /// Zero-based round whose boundary applied the change.
        round: u64,
        /// The new sync quantum.
        quantum: SimDuration,
        /// Mean online-device load fraction that drove the choice.
        load: f64,
    },
    /// The autoscaler brought a drained device back online.
    DeviceJoined {
        /// The rejoined device.
        device: u32,
        /// Zero-based round boundary of the join.
        round: u64,
        /// Devices online after the join.
        online: u32,
    },
    /// The autoscaler drained a device: it stops receiving releases and its
    /// queued-unstarted jobs are re-placed through the migration path.
    DeviceDrained {
        /// The drained device.
        device: u32,
        /// Zero-based round boundary of the drain.
        round: u64,
        /// Devices remaining online.
        online: u32,
        /// Queued jobs moved off the drained device.
        moved: u64,
    },
}

impl EventKind {
    /// Stable lowercase name of the event kind (aggregation key).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::CopyInStarted { .. } => "copy-in",
            EventKind::CopyOutStarted { .. } => "copy-out",
            EventKind::ItemStarted { .. } => "item-start",
            EventKind::KernelFinished { .. } => "kernel",
            EventKind::ItemFinished { .. } => "item-finish",
            EventKind::Replan { .. } => "replan",
            EventKind::AdmissionAccepted { .. } => "admit",
            EventKind::AdmissionRejected { .. } => "reject",
            EventKind::JobRejected { .. } => "drop",
            EventKind::StageDispatched { .. } => "dispatch",
            EventKind::StageBoundary { .. } => "stage-boundary",
            EventKind::JobCompleted { .. } => "complete",
            EventKind::DeadlineMissed { .. } => "miss",
            EventKind::AdmissionModeChanged { .. } => "admission-mode",
            EventKind::DeviceSpan { .. } => "device-span",
            EventKind::PhaseMark { .. } => "phase",
            EventKind::RetryAttempt { .. } => "retry",
            EventKind::Migration { .. } => "migrate",
            EventKind::RackLoad { .. } => "rack-load",
            EventKind::RackMigration { .. } => "rack-migrate",
            EventKind::QuantumChanged { .. } => "quantum",
            EventKind::DeviceJoined { .. } => "device-join",
            EventKind::DeviceDrained { .. } => "device-drain",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(AdmissionTest::LpUtilization.to_string(), "Eq. 11");
        assert_eq!(AdmissionTest::HpUtilization.to_string(), "Eq. 12");
        assert_eq!(RoundPhase::Span.to_string(), "span");
        assert_eq!(RoundPhase::ALL.len(), 4);
    }

    #[test]
    fn kind_names_are_stable() {
        let kind = EventKind::Replan { computing: 1, utilization: 0.25 };
        assert_eq!(kind.name(), "replan");
        let kind = EventKind::DeviceSpan { from: SimTime::ZERO, to: SimTime::from_millis(1) };
        assert_eq!(kind.name(), "device-span");
        let kind = EventKind::RackLoad { rack: 2, round: 7, backlog: 3, idle_streams: 1 };
        assert_eq!(kind.name(), "rack-load");
        let kind = EventKind::AdmissionModeChanged { hpa_enabled: true, load_ratio: 2.0 };
        assert_eq!(kind.name(), "admission-mode");
        let kind = EventKind::QuantumChanged {
            round: 3,
            quantum: SimDuration::from_micros(500),
            load: 0.8,
        };
        assert_eq!(kind.name(), "quantum");
        let kind = EventKind::DeviceJoined { device: 4, round: 9, online: 8 };
        assert_eq!(kind.name(), "device-join");
        let kind = EventKind::DeviceDrained { device: 4, round: 9, online: 7, moved: 2 };
        assert_eq!(kind.name(), "device-drain");
    }

    #[test]
    fn rack_device_ids_never_collide() {
        // Room for ~64k racks above any realistic fleet index, below the
        // cluster pseudo-device. Checked through locals so the assertions
        // stay runtime comparisons over the const values.
        let (base, cluster) = (RACK_DEVICE_BASE, CLUSTER_DEVICE);
        assert!(base > 1 << 24);
        assert!(base + 0xFFFE < cluster);
    }
}
