//! Time-windowed aggregation: arrival rates, queue depths, rolling DMR and
//! per-device utilization, bucketed into fixed sim-time windows.
//!
//! This is the signal shape the ROADMAP's burst-triggered load detector will
//! consume: instead of one end-of-run scalar per metric, every window gets
//! its own gauge values, so a burst shows up as the windows where
//! high-priority queue depth spikes and the rolling deadline-miss rate
//! collapses.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use daris_gpu::{SimDuration, SimTime};
use daris_workload::Priority;

use crate::event::{EventKind, TelemetryEvent};
use crate::TelemetrySink;

/// A sink that aggregates events into fixed-width sim-time windows.
///
/// Cloning shares the accumulator: keep one clone, hand another to
/// [`SinkHandle::new`](crate::SinkHandle::new), and call
/// [`snapshots`](WindowedMetrics::snapshots) after the run.
#[derive(Debug, Clone)]
pub struct WindowedMetrics {
    state: Arc<Mutex<WindowedState>>,
}

#[derive(Debug)]
struct WindowedState {
    window: SimDuration,
    accums: BTreeMap<u64, WindowAccum>,
    /// Currently admitted-but-not-completed jobs per priority.
    hp_depth: u32,
    lp_depth: u32,
    /// Piecewise-constant utilization trackers per device.
    util: BTreeMap<u32, UtilTrack>,
}

#[derive(Debug, Clone, Copy)]
struct UtilTrack {
    since: SimTime,
    value: f64,
}

#[derive(Debug, Clone, Default)]
struct WindowAccum {
    hp_arrivals: u32,
    lp_arrivals: u32,
    hp_rejected: u32,
    lp_rejected: u32,
    hp_completed: u32,
    lp_completed: u32,
    hp_missed: u32,
    lp_missed: u32,
    hp_depth_peak: u32,
    lp_depth_peak: u32,
    /// Per-device `∫ utilization dt`, expressed in window-widths (a device
    /// fully busy for a whole window contributes 1.0).
    util_weighted: BTreeMap<u32, f64>,
}

/// Aggregated gauges for one sim-time window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Zero-based window index.
    pub index: u64,
    /// Window start time.
    pub start: SimTime,
    /// High-priority admission attempts (accepted + rejected) in the window.
    pub hp_arrivals: u32,
    /// Low-priority admission attempts in the window.
    pub lp_arrivals: u32,
    /// High-priority jobs finally dropped in the window.
    pub hp_rejected: u32,
    /// Low-priority jobs finally dropped in the window.
    pub lp_rejected: u32,
    /// High-priority jobs completed in the window.
    pub hp_completed: u32,
    /// Low-priority jobs completed in the window.
    pub lp_completed: u32,
    /// High-priority completions that missed their deadline.
    pub hp_missed: u32,
    /// Low-priority completions that missed their deadline.
    pub lp_missed: u32,
    /// Peak concurrently-admitted high-priority jobs during the window.
    pub hp_depth_peak: u32,
    /// Peak concurrently-admitted low-priority jobs during the window.
    pub lp_depth_peak: u32,
    /// Rolling high-priority deadline-miss rate (misses / completions).
    pub hp_dmr: f64,
    /// Rolling low-priority deadline-miss rate.
    pub lp_dmr: f64,
    /// Mean SM utilization across all devices seen, averaged over the window.
    pub mean_utilization: f64,
}

/// `part / whole` as a float fraction (both in raw integer units).
fn fraction(part: u64, whole: u64) -> f64 {
    let p = part;
    let w = whole.max(1);
    (p as f64) / (w as f64)
}

fn rate(missed: u32, completed: u32) -> f64 {
    if completed == 0 {
        0.0
    } else {
        f64::from(missed) / f64::from(completed)
    }
}

impl WindowedMetrics {
    /// Aggregates into windows of the given width.
    pub fn new(window: SimDuration) -> Self {
        let width = if window.is_zero() { SimDuration::from_millis(1) } else { window };
        WindowedMetrics {
            state: Arc::new(Mutex::new(WindowedState {
                window: width,
                accums: BTreeMap::new(),
                hp_depth: 0,
                lp_depth: 0,
                util: BTreeMap::new(),
            })),
        }
    }

    /// The configured window width.
    pub fn window(&self) -> SimDuration {
        self.lock().window
    }

    fn lock(&self) -> MutexGuard<'_, WindowedState> {
        self.state.lock().expect("windowed metrics lock poisoned")
    }

    /// Snapshots of every window from time zero up to `horizon`, in order.
    /// Windows with no activity are included (all-zero gauges), so the result
    /// is a contiguous time series.
    pub fn snapshots(&self, horizon: SimTime) -> Vec<WindowSnapshot> {
        let state = self.lock();
        let width = state.window.as_nanos().max(1);
        let mut accums = state.accums.clone();
        // Flush the still-open utilization segments up to the horizon.
        for (device, track) in &state.util {
            integrate(&mut accums, width, *device, track.since, horizon, track.value);
        }
        let devices = state.util.len().max(1);
        let end = horizon.as_nanos().max(1);
        let count = end.div_ceil(width);
        let mut out = Vec::new();
        for index in 0..count {
            let acc = accums.get(&index).cloned().unwrap_or_default();
            let mut util_sum = 0.0;
            for weighted in acc.util_weighted.values() {
                util_sum += weighted;
            }
            let share = {
                let n = devices;
                util_sum / (n as f64)
            };
            out.push(WindowSnapshot {
                index,
                start: SimTime::from_nanos(index * width),
                hp_arrivals: acc.hp_arrivals,
                lp_arrivals: acc.lp_arrivals,
                hp_rejected: acc.hp_rejected,
                lp_rejected: acc.lp_rejected,
                hp_completed: acc.hp_completed,
                lp_completed: acc.lp_completed,
                hp_missed: acc.hp_missed,
                lp_missed: acc.lp_missed,
                hp_depth_peak: acc.hp_depth_peak,
                lp_depth_peak: acc.lp_depth_peak,
                hp_dmr: rate(acc.hp_missed, acc.hp_completed),
                lp_dmr: rate(acc.lp_missed, acc.lp_completed),
                mean_utilization: share,
            });
        }
        out
    }

    /// Renders the snapshot series as a fixed-width text table.
    pub fn render_table(&self, horizon: SimTime) -> String {
        let mut out = String::new();
        out.push_str(
            "  window      t(ms)  arr HP/LP  depth HP/LP  rej HP/LP  done HP/LP   HP DMR   util\n",
        );
        for snap in self.snapshots(horizon) {
            out.push_str(&format!(
                "  {:>6} {:>10.1} {:>5}/{:<5} {:>6}/{:<5} {:>5}/{:<4} {:>5}/{:<5} {:>7.1}% {:>5.1}%\n",
                snap.index,
                snap.start.as_millis_f64(),
                snap.hp_arrivals,
                snap.lp_arrivals,
                snap.hp_depth_peak,
                snap.lp_depth_peak,
                snap.hp_rejected,
                snap.lp_rejected,
                snap.hp_completed,
                snap.lp_completed,
                snap.hp_dmr * 100.0,
                snap.mean_utilization * 100.0,
            ));
        }
        out
    }
}

/// Distributes `value · dt` over the windows covered by `[from, to)`.
fn integrate(
    accums: &mut BTreeMap<u64, WindowAccum>,
    width: u64,
    device: u32,
    from: SimTime,
    to: SimTime,
    value: f64,
) {
    let start = from.as_nanos();
    let end = to.as_nanos();
    if end <= start {
        return;
    }
    let mut cursor = start;
    while cursor < end {
        let index = cursor / width;
        let boundary = (index + 1).saturating_mul(width).min(end);
        let covered = fraction(boundary - cursor, width);
        let acc = accums.entry(index).or_default();
        *acc.util_weighted.entry(device).or_insert(0.0) += value * covered;
        cursor = boundary;
    }
}

impl WindowedState {
    fn accum(&mut self, at: SimTime) -> &mut WindowAccum {
        let width = self.window.as_nanos().max(1);
        let index = at.as_nanos() / width;
        self.accums.entry(index).or_default()
    }

    fn bump_depth_peaks(&mut self, at: SimTime) {
        let hp = self.hp_depth;
        let lp = self.lp_depth;
        let acc = self.accum(at);
        acc.hp_depth_peak = acc.hp_depth_peak.max(hp);
        acc.lp_depth_peak = acc.lp_depth_peak.max(lp);
    }
}

impl TelemetrySink for WindowedMetrics {
    fn record(&mut self, event: &TelemetryEvent) {
        let mut state = self.lock();
        let at = event.at;
        match &event.kind {
            EventKind::AdmissionAccepted { priority, .. } => {
                match priority {
                    Priority::High => {
                        state.accum(at).hp_arrivals += 1;
                        state.hp_depth += 1;
                    }
                    Priority::Low => {
                        state.accum(at).lp_arrivals += 1;
                        state.lp_depth += 1;
                    }
                }
                state.bump_depth_peaks(at);
            }
            EventKind::AdmissionRejected { priority, .. } => match priority {
                Priority::High => state.accum(at).hp_arrivals += 1,
                Priority::Low => state.accum(at).lp_arrivals += 1,
            },
            EventKind::JobRejected { priority, .. } => match priority {
                Priority::High => state.accum(at).hp_rejected += 1,
                Priority::Low => state.accum(at).lp_rejected += 1,
            },
            EventKind::JobCompleted { priority, missed, .. } => {
                match priority {
                    Priority::High => {
                        state.accum(at).hp_completed += 1;
                        if *missed {
                            state.accum(at).hp_missed += 1;
                        }
                        state.hp_depth = state.hp_depth.saturating_sub(1);
                    }
                    Priority::Low => {
                        state.accum(at).lp_completed += 1;
                        if *missed {
                            state.accum(at).lp_missed += 1;
                        }
                        state.lp_depth = state.lp_depth.saturating_sub(1);
                    }
                }
                state.bump_depth_peaks(at);
            }
            EventKind::Replan { utilization, .. } => {
                let width = state.window.as_nanos().max(1);
                let device = event.device;
                let prev = state.util.insert(device, UtilTrack { since: at, value: *utilization });
                if let Some(track) = prev {
                    integrate(&mut state.accums, width, device, track.since, at, track.value);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daris_workload::TaskId;

    fn ev(at_ms: u64, kind: EventKind) -> TelemetryEvent {
        TelemetryEvent { at: SimTime::from_millis(at_ms), device: 0, kind }
    }

    fn completed(at_ms: u64, missed: bool) -> TelemetryEvent {
        ev(
            at_ms,
            EventKind::JobCompleted {
                task: TaskId(0),
                release_index: 0,
                priority: Priority::High,
                missed,
                response: SimDuration::from_millis(1),
            },
        )
    }

    fn admitted(at_ms: u64) -> TelemetryEvent {
        ev(
            at_ms,
            EventKind::AdmissionAccepted {
                task: TaskId(0),
                release_index: 0,
                priority: Priority::High,
                context: 0,
                migrated: false,
            },
        )
    }

    #[test]
    fn windows_bucket_arrivals_and_dmr() {
        let mut sink = WindowedMetrics::new(SimDuration::from_millis(10));
        sink.record(&admitted(1));
        sink.record(&admitted(2));
        sink.record(&completed(5, false));
        sink.record(&completed(12, true));
        let snaps = sink.snapshots(SimTime::from_millis(20));
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].hp_arrivals, 2);
        assert_eq!(snaps[0].hp_completed, 1);
        assert_eq!(snaps[0].hp_dmr, 0.0);
        assert_eq!(snaps[0].hp_depth_peak, 2);
        assert_eq!(snaps[1].hp_completed, 1);
        assert_eq!(snaps[1].hp_missed, 1);
        assert_eq!(snaps[1].hp_dmr, 1.0);
    }

    #[test]
    fn utilization_integrates_across_window_boundaries() {
        let mut sink = WindowedMetrics::new(SimDuration::from_millis(10));
        // 50% utilization from t=0 to t=15ms, then 100% to t=20ms.
        sink.record(&ev(0, EventKind::Replan { computing: 1, utilization: 0.5 }));
        sink.record(&ev(15, EventKind::Replan { computing: 2, utilization: 1.0 }));
        let snaps = sink.snapshots(SimTime::from_millis(20));
        assert_eq!(snaps.len(), 2);
        assert!((snaps[0].mean_utilization - 0.5).abs() < 1e-9);
        // Window 1: 5ms at 50% + 5ms at 100% = 75%.
        assert!((snaps[1].mean_utilization - 0.75).abs() < 1e-9);
    }

    #[test]
    fn table_renders_one_row_per_window() {
        let mut sink = WindowedMetrics::new(SimDuration::from_millis(10));
        sink.record(&admitted(1));
        let table = sink.render_table(SimTime::from_millis(30));
        assert_eq!(table.lines().count(), 4, "header + 3 windows:\n{table}");
        assert!(table.contains("HP DMR"));
    }
}
