//! Ring-buffer sink for tests and for the dispatcher's per-device buffers.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::{TelemetryEvent, TelemetrySink};

/// Default ring capacity: enough for every event of a typical test run while
/// bounding memory on long ones.
const DEFAULT_CAPACITY: usize = 1 << 16;

/// A bounded in-memory ring buffer of telemetry events.
///
/// Cloning shares the buffer: keep one clone, hand another to
/// [`SinkHandle::new`](crate::SinkHandle::new), and read the recorded events
/// back after the run. When the ring is full the oldest event is dropped;
/// [`recorded`](MemorySink::recorded) still counts every event ever seen.
#[derive(Debug, Clone)]
pub struct MemorySink {
    state: Arc<Mutex<MemoryState>>,
}

#[derive(Debug)]
struct MemoryState {
    events: VecDeque<TelemetryEvent>,
    capacity: usize,
    recorded: u64,
}

impl MemorySink {
    /// A ring buffer holding at most `capacity` events (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        MemorySink {
            state: Arc::new(Mutex::new(MemoryState {
                events: VecDeque::new(),
                capacity: capacity.max(1),
                recorded: 0,
            })),
        }
    }

    /// A sink that keeps every event (no ring bound). Use for short runs and
    /// tests only.
    pub fn unbounded() -> Self {
        MemorySink::with_capacity(usize::MAX)
    }

    fn lock(&self) -> MutexGuard<'_, MemoryState> {
        self.state.lock().expect("memory sink lock poisoned")
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Total number of events ever recorded (including ones the ring has
    /// since dropped).
    pub fn recorded(&self) -> u64 {
        self.lock().recorded
    }

    /// Snapshot of the buffered events in record order.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Removes and returns all buffered events in record order.
    pub fn drain(&self) -> Vec<TelemetryEvent> {
        self.lock().events.drain(..).collect()
    }

    /// Moves the whole buffer out in record order, leaving it empty. Same
    /// observable result as [`drain`](MemorySink::drain), but swaps the
    /// backing storage out wholesale instead of moving events one by one —
    /// the cluster dispatcher's round merge uses this so per-round cost is a
    /// pointer swap, not O(events).
    pub fn take_all(&self) -> Vec<TelemetryEvent> {
        std::mem::take(&mut self.lock().events).into()
    }
}

impl Default for MemorySink {
    fn default() -> Self {
        MemorySink::with_capacity(DEFAULT_CAPACITY)
    }
}

impl TelemetrySink for MemorySink {
    fn record(&mut self, event: &TelemetryEvent) {
        let mut state = self.lock();
        state.recorded += 1;
        if state.events.len() == state.capacity {
            state.events.pop_front();
        }
        state.events.push_back(event.clone());
    }

    fn record_batch(&mut self, events: &mut Vec<TelemetryEvent>) {
        let mut state = self.lock();
        state.recorded += events.len() as u64;
        if state.capacity != usize::MAX {
            // Pre-trim so the ring never transiently exceeds its bound.
            let incoming = events.len().min(state.capacity);
            events.drain(..events.len() - incoming);
            let keep = state.capacity - incoming;
            while state.events.len() > keep {
                state.events.pop_front();
            }
        }
        state.events.reserve(events.len());
        state.events.extend(events.drain(..));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;
    use daris_gpu::SimTime;

    fn event(at_us: u64) -> TelemetryEvent {
        TelemetryEvent {
            at: SimTime::from_micros(at_us),
            device: 0,
            kind: EventKind::Replan { computing: 1, utilization: 0.1 },
        }
    }

    #[test]
    fn ring_drops_oldest_but_counts_everything() {
        let mut sink = MemorySink::with_capacity(2);
        sink.record(&event(1));
        sink.record(&event(2));
        sink.record(&event(3));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.recorded(), 3);
        let events = sink.events();
        assert_eq!(events[0].at, SimTime::from_micros(2));
        assert_eq!(events[1].at, SimTime::from_micros(3));
    }

    #[test]
    fn drain_empties_the_buffer() {
        let mut sink = MemorySink::unbounded();
        sink.record(&event(1));
        let drained = sink.drain();
        assert_eq!(drained.len(), 1);
        assert!(sink.is_empty());
        assert_eq!(sink.recorded(), 1);
    }

    #[test]
    fn batch_record_matches_per_event_record() {
        // Same events through record() and record_batch() must leave the two
        // sinks indistinguishable — including ring-bound behavior.
        for capacity in [2usize, 3, usize::MAX] {
            let mut one = MemorySink::with_capacity(capacity);
            let mut batched = MemorySink::with_capacity(capacity);
            let events: Vec<TelemetryEvent> = (1..=5).map(event).collect();
            for e in &events {
                one.record(e);
            }
            let mut batch = events.clone();
            batched.record_batch(&mut batch);
            assert!(batch.is_empty());
            assert_eq!(one.events(), batched.events(), "capacity {capacity}");
            assert_eq!(one.recorded(), batched.recorded(), "capacity {capacity}");
        }
    }

    #[test]
    fn take_all_is_drain_by_buffer_move() {
        let mut sink = MemorySink::unbounded();
        sink.record(&event(1));
        sink.record(&event(2));
        let taken = sink.take_all();
        assert_eq!(taken.len(), 2);
        assert_eq!(taken[0].at, SimTime::from_micros(1));
        assert!(sink.is_empty());
        assert_eq!(sink.recorded(), 2);
    }
}
