//! Chrome trace-event JSON exporter.
//!
//! Emits the subset of the Trace Event Format that Perfetto and
//! `chrome://tracing` load: `M` metadata naming processes and threads, `X`
//! complete spans (work items, device round spans), `i` instants (admission
//! decisions, stage boundaries, misses, migrations) and `C` counters (SM
//! utilization after each replan). One *process* per device — fleet-level
//! events get a synthetic `cluster` process — and within a device one
//! *thread* per MPS context plus scheduler, copy-engine and round tracks.
//!
//! The JSON is hand-rolled (the workspace deliberately has no serde) and
//! fully deterministic: event order is record order, map iteration is over
//! `BTreeMap`/`BTreeSet`, and timestamps are formatted from integer
//! nanoseconds. The output is pinned byte-for-byte by a golden fixture.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use daris_gpu::SimTime;

use crate::event::{EventKind, TelemetryEvent, CLUSTER_DEVICE, RACK_DEVICE_BASE};
use crate::TelemetrySink;

/// Version tag written into the top-level `schemaVersion` field. Bump when
/// the track layout or event naming changes incompatibly.
pub const CHROME_SCHEMA_VERSION: &str = "daris-chrome-trace/1";

/// Synthetic thread ids within a device process. Context tracks start at
/// [`TID_CONTEXT_BASE`] so they never collide with the fixed tracks.
const TID_SCHEDULER: u32 = 0;
const TID_COPY: u32 = 1;
const TID_ROUNDS: u32 = 2;
const TID_CONTEXT_BASE: u32 = 10;

/// Fleet-level tracks in the synthetic `cluster` process.
const TID_PHASES: u32 = 0;
const TID_PLACEMENT: u32 = 1;

/// A sink that buffers events and serializes them to Chrome trace-event
/// JSON via [`to_json`](ChromeTraceSink::to_json). Cloning shares the
/// buffer, like [`MemorySink`](crate::MemorySink).
#[derive(Debug, Clone, Default)]
pub struct ChromeTraceSink {
    state: Arc<Mutex<Vec<TelemetryEvent>>>,
}

impl ChromeTraceSink {
    /// An empty exporter.
    pub fn new() -> Self {
        ChromeTraceSink::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.state.lock().expect("chrome sink lock poisoned").len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes everything recorded so far to a Chrome trace-event JSON
    /// document. Deterministic: same events in, same bytes out.
    pub fn to_json(&self) -> String {
        let events = self.state.lock().expect("chrome sink lock poisoned").clone();
        export(&events)
    }
}

impl TelemetrySink for ChromeTraceSink {
    fn record(&mut self, event: &TelemetryEvent) {
        self.state.lock().expect("chrome sink lock poisoned").push(event.clone());
    }

    fn record_batch(&mut self, events: &mut Vec<TelemetryEvent>) {
        self.state.lock().expect("chrome sink lock poisoned").append(events);
    }
}

/// Timestamp field: microseconds with nanosecond precision, formatted from
/// integer nanoseconds so no float rounding is involved.
fn ts(at: SimTime) -> String {
    let raw = at.as_nanos();
    format!("{}.{:03}", raw / 1_000, raw % 1_000)
}

/// Span duration field, same formatting as [`ts`].
fn dur(from: SimTime, to: SimTime) -> String {
    let raw = to.as_nanos().saturating_sub(from.as_nanos());
    format!("{}.{:03}", raw / 1_000, raw % 1_000)
}

/// Minimal JSON string escaping for event names and labels.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn pid_of(device: u32) -> u64 {
    u64::from(device)
}

/// Whether a pid falls in the synthetic rack-track range (see
/// [`RACK_DEVICE_BASE`]).
fn is_rack_pid(pid: u64) -> bool {
    pid >= u64::from(RACK_DEVICE_BASE) && pid != pid_of(CLUSTER_DEVICE)
}

struct Exporter {
    lines: Vec<String>,
    /// Every (pid, tid) pair seen, for thread_name metadata.
    threads: BTreeSet<(u64, u32)>,
    /// Open work-item spans keyed by (device, tag).
    open_items: BTreeMap<(u32, u64), (SimTime, u32, u32)>,
}

impl Exporter {
    fn instant(&mut self, at: SimTime, pid: u64, tid: u32, name: &str, args: &str) {
        self.threads.insert((pid, tid));
        self.lines.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
            escape(name),
            ts(at),
            pid,
            tid,
            args
        ));
    }

    fn span(&mut self, from: SimTime, to: SimTime, pid: u64, tid: u32, name: &str, args: &str) {
        self.threads.insert((pid, tid));
        self.lines.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
            escape(name),
            ts(from),
            dur(from, to),
            pid,
            tid,
            args
        ));
    }

    fn counter(&mut self, at: SimTime, pid: u64, name: &str, args: &str) {
        self.lines.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{{}}}}}",
            escape(name),
            ts(at),
            pid,
            args
        ));
    }

    fn push(&mut self, ev: &TelemetryEvent) {
        let pid = pid_of(ev.device);
        match &ev.kind {
            EventKind::CopyInStarted { tag, stream, context } => self.instant(
                ev.at,
                pid,
                TID_COPY,
                "copy-in",
                &format!("\"tag\":{tag},\"stream\":{stream},\"ctx\":{context}"),
            ),
            EventKind::CopyOutStarted { tag, stream, context } => self.instant(
                ev.at,
                pid,
                TID_COPY,
                "copy-out",
                &format!("\"tag\":{tag},\"stream\":{stream},\"ctx\":{context}"),
            ),
            EventKind::ItemStarted { tag, stream, context } => {
                self.open_items.insert((ev.device, *tag), (ev.at, *context, *stream));
            }
            EventKind::KernelFinished { tag, stream: _, context, label } => {
                let name = label.as_deref().unwrap_or("kernel");
                self.instant(
                    ev.at,
                    pid,
                    TID_CONTEXT_BASE + context,
                    name,
                    &format!("\"tag\":{tag}"),
                );
            }
            EventKind::ItemFinished { tag, stream, context } => {
                match self.open_items.remove(&(ev.device, *tag)) {
                    Some((started, ctx, strm)) => self.span(
                        started,
                        ev.at,
                        pid,
                        TID_CONTEXT_BASE + ctx,
                        &format!("item#{tag}"),
                        &format!("\"tag\":{tag},\"stream\":{strm}"),
                    ),
                    None => self.instant(
                        ev.at,
                        pid,
                        TID_CONTEXT_BASE + context,
                        &format!("item#{tag} finish"),
                        &format!("\"tag\":{tag},\"stream\":{stream}"),
                    ),
                }
            }
            EventKind::Replan { computing, utilization } => {
                self.counter(
                    ev.at,
                    pid,
                    "sm-utilization",
                    &format!("\"busy\":{computing},\"utilization\":{utilization:.4}"),
                );
            }
            EventKind::AdmissionAccepted { task, release_index, priority, context, migrated } => {
                self.instant(
                    ev.at,
                    pid,
                    TID_SCHEDULER,
                    &format!("admit {task}#{release_index}"),
                    &format!("\"prio\":\"{priority}\",\"ctx\":{context},\"migrated\":{migrated}"),
                );
            }
            EventKind::AdmissionRejected { task, release_index, priority, test } => {
                self.instant(
                    ev.at,
                    pid,
                    TID_SCHEDULER,
                    &format!("reject {task}#{release_index} ({test})"),
                    &format!("\"prio\":\"{priority}\""),
                );
            }
            EventKind::JobRejected { task, release_index, priority } => {
                self.instant(
                    ev.at,
                    pid,
                    TID_SCHEDULER,
                    &format!("drop {task}#{release_index}"),
                    &format!("\"prio\":\"{priority}\""),
                );
            }
            EventKind::StageDispatched {
                task,
                release_index,
                stage,
                stage_count,
                context,
                stream,
                tag,
            } => {
                self.instant(
                    ev.at,
                    pid,
                    TID_SCHEDULER,
                    &format!("dispatch {task}#{release_index} s{stage}/{stage_count}"),
                    &format!("\"ctx\":{context},\"stream\":{stream},\"tag\":{tag}"),
                );
            }
            EventKind::StageBoundary { task, release_index, completed_stage, missed_virtual } => {
                self.instant(
                    ev.at,
                    pid,
                    TID_SCHEDULER,
                    &format!("stage-boundary {task}#{release_index} s{completed_stage}"),
                    &format!("\"missed_virtual\":{missed_virtual}"),
                );
            }
            EventKind::JobCompleted { task, release_index, priority, missed, response } => {
                self.instant(
                    ev.at,
                    pid,
                    TID_SCHEDULER,
                    &format!("complete {task}#{release_index}"),
                    &format!(
                        "\"prio\":\"{priority}\",\"missed\":{missed},\"response_us\":{}",
                        ts(SimTime::from(*response))
                    ),
                );
            }
            EventKind::DeadlineMissed { task, release_index, priority } => {
                self.instant(
                    ev.at,
                    pid,
                    TID_SCHEDULER,
                    &format!("miss {task}#{release_index}"),
                    &format!("\"prio\":\"{priority}\""),
                );
            }
            EventKind::AdmissionModeChanged { hpa_enabled, load_ratio } => {
                self.instant(
                    ev.at,
                    pid,
                    TID_SCHEDULER,
                    &format!("hpa {}", if *hpa_enabled { "on" } else { "off" }),
                    &format!("\"hpa_enabled\":{hpa_enabled},\"load_ratio\":{load_ratio}"),
                );
            }
            EventKind::DeviceSpan { from, to } => {
                self.span(*from, *to, pid, TID_ROUNDS, "round-span", "");
            }
            EventKind::PhaseMark { round, phase, detail } => {
                self.instant(
                    ev.at,
                    pid,
                    TID_PHASES,
                    &format!("{phase} r{round}"),
                    &format!("\"round\":{round},\"detail\":{detail}"),
                );
            }
            EventKind::RetryAttempt { task, release_index, home, target, admitted } => {
                self.instant(
                    ev.at,
                    pid,
                    TID_PLACEMENT,
                    &format!("retry {task}#{release_index} d{home}->d{target}"),
                    &format!("\"admitted\":{admitted}"),
                );
            }
            EventKind::Migration { task, release_index, from, to } => {
                self.instant(
                    ev.at,
                    pid,
                    TID_PLACEMENT,
                    &format!("migrate {task}#{release_index} d{from}->d{to}"),
                    "",
                );
            }
            EventKind::RackLoad { rack, round, backlog, idle_streams } => {
                self.instant(
                    ev.at,
                    pid,
                    TID_PHASES,
                    &format!("rack{rack} load r{round}"),
                    &format!("\"backlog\":{backlog},\"idle_streams\":{idle_streams}"),
                );
            }
            EventKind::RackMigration { task, release_index, from, to, from_rack, to_rack } => {
                self.instant(
                    ev.at,
                    pid,
                    TID_PLACEMENT,
                    &format!(
                        "rack-migrate {task}#{release_index} d{from}->d{to} (r{from_rack}->r{to_rack})"
                    ),
                    "",
                );
            }
            EventKind::QuantumChanged { round, quantum, load } => {
                self.instant(
                    ev.at,
                    pid,
                    TID_PHASES,
                    &format!("quantum r{round}"),
                    &format!("\"quantum_us\":{},\"load\":{load}", quantum.as_micros_f64()),
                );
            }
            EventKind::DeviceJoined { device, round, online } => {
                self.instant(
                    ev.at,
                    pid,
                    TID_PLACEMENT,
                    &format!("join d{device} r{round}"),
                    &format!("\"online\":{online}"),
                );
            }
            EventKind::DeviceDrained { device, round, online, moved } => {
                self.instant(
                    ev.at,
                    pid,
                    TID_PLACEMENT,
                    &format!("drain d{device} r{round}"),
                    &format!("\"online\":{online},\"moved\":{moved}"),
                );
            }
        }
    }
}

fn thread_name(pid: u64, tid: u32) -> String {
    if pid == pid_of(CLUSTER_DEVICE) {
        return match tid {
            TID_PHASES => "round-phases".to_string(),
            TID_PLACEMENT => "placement".to_string(),
            other => format!("track{other}"),
        };
    }
    if is_rack_pid(pid) {
        return match tid {
            TID_PHASES => "load".to_string(),
            other => format!("track{other}"),
        };
    }
    match tid {
        TID_SCHEDULER => "scheduler".to_string(),
        TID_COPY => "copy-engine".to_string(),
        TID_ROUNDS => "rounds".to_string(),
        other if other >= TID_CONTEXT_BASE => format!("ctx{}", other - TID_CONTEXT_BASE),
        other => format!("track{other}"),
    }
}

fn export(events: &[TelemetryEvent]) -> String {
    let mut exporter =
        Exporter { lines: Vec::new(), threads: BTreeSet::new(), open_items: BTreeMap::new() };
    for ev in events {
        exporter.push(ev);
    }

    let mut meta: Vec<String> = Vec::new();
    let pids: BTreeSet<u64> = exporter.threads.iter().map(|(pid, _)| *pid).collect();
    for pid in &pids {
        let name = if *pid == pid_of(CLUSTER_DEVICE) {
            "cluster".to_string()
        } else if is_rack_pid(*pid) {
            format!("rack{}", pid - u64::from(RACK_DEVICE_BASE))
        } else {
            format!("device{pid}")
        };
        meta.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }
    for (pid, tid) in &exporter.threads {
        let name = thread_name(*pid, *tid);
        meta.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }

    let mut out = String::new();
    out.push_str("{\"schemaVersion\":\"");
    out.push_str(CHROME_SCHEMA_VERSION);
    out.push_str("\",\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let total = meta.len() + exporter.lines.len();
    for (i, line) in meta.iter().chain(exporter.lines.iter()).enumerate() {
        out.push_str("  ");
        out.push_str(line);
        if i + 1 < total {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{AdmissionTest, RoundPhase};
    use daris_workload::{Priority, TaskId};

    fn sample_events() -> Vec<TelemetryEvent> {
        use EventKind::*;
        let t = |us| SimTime::from_micros(us);
        vec![
            TelemetryEvent {
                at: t(0),
                device: 0,
                kind: AdmissionAccepted {
                    task: TaskId(0),
                    release_index: 0,
                    priority: Priority::High,
                    context: 1,
                    migrated: false,
                },
            },
            TelemetryEvent {
                at: t(1),
                device: 0,
                kind: CopyInStarted { tag: 7, stream: 2, context: 1 },
            },
            TelemetryEvent {
                at: t(2),
                device: 0,
                kind: ItemStarted { tag: 7, stream: 2, context: 1 },
            },
            TelemetryEvent {
                at: t(5),
                device: 0,
                kind: ItemFinished { tag: 7, stream: 2, context: 1 },
            },
            TelemetryEvent { at: t(5), device: 0, kind: Replan { computing: 1, utilization: 0.5 } },
            TelemetryEvent {
                at: t(6),
                device: 1,
                kind: AdmissionRejected {
                    task: TaskId(3),
                    release_index: 2,
                    priority: Priority::Low,
                    test: AdmissionTest::LpUtilization,
                },
            },
            TelemetryEvent {
                at: t(8),
                device: CLUSTER_DEVICE,
                kind: PhaseMark { round: 0, phase: RoundPhase::Retry, detail: 1 },
            },
        ]
    }

    #[test]
    fn schema_is_versioned_and_structurally_valid() {
        let mut sink = ChromeTraceSink::new();
        for ev in sample_events() {
            sink.record(&ev);
        }
        let json = sink.to_json();
        assert!(json.starts_with("{\"schemaVersion\":\"daris-chrome-trace/1\""));
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("\"traceEvents\":["));
        // Every event object carries the mandatory fields.
        for line in json.lines().filter(|l| l.starts_with("  {")) {
            let l = line.trim();
            assert!(l.contains("\"ph\":\""), "missing ph in {l}");
            assert!(l.contains("\"pid\":"), "missing pid in {l}");
            assert!(l.contains("\"tid\":"), "missing tid in {l}");
        }
        // Balanced braces/brackets as a cheap structural check (no serde).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn item_start_finish_pairs_become_complete_spans() {
        let mut sink = ChromeTraceSink::new();
        for ev in sample_events() {
            sink.record(&ev);
        }
        let json = sink.to_json();
        assert!(json.contains("\"name\":\"item#7\",\"ph\":\"X\",\"ts\":2.000,\"dur\":3.000"));
        // The replan surfaces as a counter track.
        assert!(json.contains("\"name\":\"sm-utilization\",\"ph\":\"C\""));
        // Named processes for devices and the cluster.
        assert!(json.contains("\"name\":\"device0\""));
        assert!(json.contains("\"name\":\"device1\""));
        assert!(json.contains("\"name\":\"cluster\""));
        // The failing admission test is named.
        assert!(json.contains("reject \u{3c4}3#2 (Eq. 11)"));
    }

    #[test]
    fn timestamps_are_integer_nanosecond_exact() {
        assert_eq!(ts(SimTime::from_nanos(1_234_567)), "1234.567");
        assert_eq!(ts(SimTime::ZERO), "0.000");
        assert_eq!(dur(SimTime::from_nanos(500), SimTime::from_nanos(1_750)), "1.250");
    }

    #[test]
    fn labels_are_escaped() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
