//! Wall-clock self-profiling of the cluster sync-round phases.
//!
//! This is the **nondeterministic** observability channel, and the only
//! sanctioned wall-clock site outside `daris-bench`: it measures where a
//! round spends *host* time (span fan-out, admission retries, migration
//! scan, merge) so the benchmark harness can report a per-phase breakdown.
//! Nothing here ever feeds back into simulation state — the profiler has no
//! way to influence event order, admission, or timing, so attaching it
//! cannot change a run's `summary_hash`.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::event::RoundPhase;

/// Aggregate wall-clock cost of one round phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Total wall time spent in the phase.
    pub wall: Duration,
    /// Number of times the phase ran.
    pub count: u64,
}

impl PhaseTotal {
    /// Total wall time in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall.as_secs_f64() * 1e3
    }
}

/// Wall-clock profiler for the dispatcher's sync-round phases.
///
/// Cloning shares the accumulator. The dispatcher brackets each phase with
/// [`phase_started`](WallClockProfiler::phase_started) /
/// [`phase_finished`](WallClockProfiler::phase_finished); the benchmark
/// harness reads [`totals`](WallClockProfiler::totals) afterwards.
#[derive(Debug, Clone, Default)]
pub struct WallClockProfiler {
    state: Arc<Mutex<ProfilerState>>,
}

#[derive(Debug, Default)]
struct ProfilerState {
    open: Option<(RoundPhase, Instant)>,
    totals: [PhaseTotal; 4],
}

fn index_of(phase: RoundPhase) -> usize {
    match phase {
        RoundPhase::Span => 0,
        RoundPhase::Retry => 1,
        RoundPhase::Migration => 2,
        RoundPhase::Merge => 3,
    }
}

impl WallClockProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        WallClockProfiler::default()
    }

    fn lock(&self) -> MutexGuard<'_, ProfilerState> {
        self.state.lock().expect("profiler lock poisoned")
    }

    /// Marks the start of `phase`. Phases do not nest; starting a new phase
    /// while another is open discards the open one.
    #[allow(clippy::disallowed_methods)] // the sanctioned wall-clock site below
    pub fn phase_started(&self, phase: RoundPhase) {
        // daris-lint: allow(D002, reason = "the one sanctioned wall-clock site outside daris-bench: round-phase self-profiling measures host time for the bench report only and never feeds simulation state")
        let now = Instant::now();
        self.lock().open = Some((phase, now));
    }

    /// Marks the end of `phase`, charging the elapsed wall time to it. A
    /// finish with no matching start is ignored.
    pub fn phase_finished(&self, phase: RoundPhase) {
        let mut state = self.lock();
        if let Some((open_phase, started)) = state.open.take() {
            if open_phase == phase {
                let slot = &mut state.totals[index_of(phase)];
                slot.wall += started.elapsed();
                slot.count += 1;
            }
        }
    }

    /// Per-phase totals, in protocol order (span, retry, migration, merge).
    pub fn totals(&self) -> [(RoundPhase, PhaseTotal); 4] {
        let state = self.lock();
        let mut out = [(RoundPhase::Span, PhaseTotal::default()); 4];
        for (slot, phase) in out.iter_mut().zip(RoundPhase::ALL) {
            *slot = (phase, state.totals[index_of(phase)]);
        }
        out
    }

    /// Number of completed rounds (count of finished span phases).
    pub fn rounds(&self) -> u64 {
        self.lock().totals[index_of(RoundPhase::Span)].count
    }

    /// Clears all accumulated totals.
    pub fn reset(&self) {
        let mut state = self.lock();
        state.open = None;
        state.totals = [PhaseTotal::default(); 4];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_wall_time_and_counts() {
        let profiler = WallClockProfiler::new();
        for _ in 0..3 {
            for phase in RoundPhase::ALL {
                profiler.phase_started(phase);
                profiler.phase_finished(phase);
            }
        }
        let totals = profiler.totals();
        assert_eq!(totals.len(), 4);
        for (phase, total) in totals {
            assert_eq!(total.count, 3, "{phase} should have run 3 times");
        }
        assert_eq!(profiler.rounds(), 3);
        profiler.reset();
        assert_eq!(profiler.rounds(), 0);
    }

    #[test]
    fn mismatched_finish_is_ignored() {
        let profiler = WallClockProfiler::new();
        profiler.phase_finished(RoundPhase::Merge);
        profiler.phase_started(RoundPhase::Span);
        profiler.phase_finished(RoundPhase::Merge);
        assert_eq!(profiler.rounds(), 0);
    }

    #[test]
    fn clones_share_state() {
        let profiler = WallClockProfiler::new();
        let clone = profiler.clone();
        clone.phase_started(RoundPhase::Span);
        clone.phase_finished(RoundPhase::Span);
        assert_eq!(profiler.rounds(), 1);
    }
}
