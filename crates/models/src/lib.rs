#![forbid(unsafe_code)]
//! # daris-models
//!
//! DNN workload models for the DARIS reproduction: layer-level descriptions
//! of the four networks used in the paper's evaluation (ResNet18, ResNet50,
//! UNet and InceptionV3 at 224×224×3 input), their division into *stages*
//! (the synchronization boundaries DARIS uses for coarse-grained preemption),
//! and the lowering of layers into [`daris_gpu::KernelDesc`] kernels that the
//! simulated GPU can execute.
//!
//! The paper runs real LibTorch models on an RTX 2080 Ti; here the models are
//! *profiles* whose kernel work and parallelism are calibrated so that
//!
//! * the isolated single-stream throughput matches the paper's Table I
//!   "min JPS" column, and
//! * the best batched throughput matches Table I "max JPS" (and therefore the
//!   batching gain).
//!
//! Everything downstream (colocation behaviour, oversubscription effects,
//! deadline misses) then *emerges* from the simulation rather than being
//! hard-coded.
//!
//! # Example
//!
//! ```
//! use daris_models::{DnnKind, ModelProfile};
//!
//! let profile = ModelProfile::calibrated(DnnKind::ResNet18);
//! // Single-stream latency corresponds to Table I min JPS (~627 JPS).
//! let latency_us = profile.isolated_latency_us(1);
//! let jps = 1e6 / latency_us;
//! assert!((jps - 627.0).abs() / 627.0 < 0.05);
//! assert_eq!(profile.stage_count(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod graph;
mod layer;
mod lowering;
mod profile;
mod shape;
pub mod zoo;

pub use graph::{ModelGraph, StageSpec};
pub use layer::{Layer, LayerKind};
pub use lowering::LoweringConfig;
pub use profile::{BatchSweepPoint, ModelProfile, Table1Reference};
pub use shape::TensorShape;

use std::fmt;
use std::str::FromStr;

/// The DNN architectures evaluated in the DARIS paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DnnKind {
    /// ResNet-18 (linear residual network, 4 residual super-blocks).
    ResNet18,
    /// ResNet-50 (bottleneck residual network, used in the GSlice comparison).
    ResNet50,
    /// UNet (wide encoder/decoder with skip connections, memory heavy).
    UNet,
    /// InceptionV3 (many narrow parallel branches, batching-hungry).
    InceptionV3,
}

impl DnnKind {
    /// All model kinds, in the order used by the paper's tables.
    pub fn all() -> [DnnKind; 4] {
        [DnnKind::ResNet18, DnnKind::ResNet50, DnnKind::UNet, DnnKind::InceptionV3]
    }

    /// The three kinds used to form the paper's main task sets (Table II).
    pub fn task_set_kinds() -> [DnnKind; 3] {
        [DnnKind::ResNet18, DnnKind::UNet, DnnKind::InceptionV3]
    }

    /// The batch size the paper uses for this model in the batched DARIS
    /// experiment (Sec. VI-H): 4 for ResNet18, 2 for UNet, 8 for InceptionV3.
    /// ResNet50 reuses the ResNet18 choice.
    pub fn paper_batch_size(self) -> u32 {
        match self {
            DnnKind::ResNet18 | DnnKind::ResNet50 => 4,
            DnnKind::UNet => 2,
            DnnKind::InceptionV3 => 8,
        }
    }
}

impl fmt::Display for DnnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DnnKind::ResNet18 => "ResNet18",
            DnnKind::ResNet50 => "ResNet50",
            DnnKind::UNet => "UNet",
            DnnKind::InceptionV3 => "InceptionV3",
        };
        f.write_str(name)
    }
}

/// Error returned when parsing a [`DnnKind`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDnnKindError(String);

impl fmt::Display for ParseDnnKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown DNN kind `{}`", self.0)
    }
}

impl std::error::Error for ParseDnnKindError {}

impl FromStr for DnnKind {
    type Err = ParseDnnKindError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "resnet18" | "resnet-18" => Ok(DnnKind::ResNet18),
            "resnet50" | "resnet-50" => Ok(DnnKind::ResNet50),
            "unet" | "u-net" => Ok(DnnKind::UNet),
            "inceptionv3" | "inception-v3" | "inception" => Ok(DnnKind::InceptionV3),
            other => Err(ParseDnnKindError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for kind in DnnKind::all() {
            let parsed: DnnKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("vgg16".parse::<DnnKind>().is_err());
        assert_eq!("u-net".parse::<DnnKind>().unwrap(), DnnKind::UNet);
    }

    #[test]
    fn paper_batch_sizes_match_section_vi_h() {
        assert_eq!(DnnKind::ResNet18.paper_batch_size(), 4);
        assert_eq!(DnnKind::UNet.paper_batch_size(), 2);
        assert_eq!(DnnKind::InceptionV3.paper_batch_size(), 8);
    }

    #[test]
    fn task_set_kinds_exclude_resnet50() {
        assert!(!DnnKind::task_set_kinds().contains(&DnnKind::ResNet50));
    }
}
