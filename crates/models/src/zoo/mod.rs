//! The model zoo: layer graphs of the paper's four evaluation networks.
//!
//! The graphs are structural descriptions (layer kinds, shapes, FLOPs,
//! parameters); absolute timing is supplied by
//! [`ModelProfile`](crate::ModelProfile) calibration.

mod inception;
mod resnet;
mod unet;

use crate::{DnnKind, Layer, LayerKind, ModelGraph, TensorShape};

pub use inception::inception_v3;
pub use resnet::{resnet18, resnet50};
pub use unet::unet;

/// Builds the layer graph for `kind`.
///
/// ```
/// use daris_models::{zoo, DnnKind};
/// let g = zoo::graph(DnnKind::ResNet18);
/// assert_eq!(g.stage_count(), 4);
/// ```
pub fn graph(kind: DnnKind) -> ModelGraph {
    match kind {
        DnnKind::ResNet18 => resnet18(),
        DnnKind::ResNet50 => resnet50(),
        DnnKind::UNet => unet(),
        DnnKind::InceptionV3 => inception_v3(),
    }
}

/// Convenience helper shared by the zoo builders: a convolution layer
/// (with fused batch-norm + activation) appended to `layers`, returning its
/// output shape.
pub(crate) fn push_conv(
    layers: &mut Vec<Layer>,
    name: String,
    input: TensorShape,
    out_channels: u32,
    kernel: u32,
    stride: u32,
) -> TensorShape {
    let layer = Layer::new(
        name,
        LayerKind::Conv2d { in_channels: input.channels, out_channels, kernel, stride },
        input,
    );
    let out = layer.output;
    layers.push(layer);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layer;

    #[test]
    fn every_model_has_four_stages_and_sane_sizes() {
        for kind in DnnKind::all() {
            let g = graph(kind);
            assert_eq!(g.kind, kind);
            assert_eq!(g.stage_count(), 4, "{kind} should be divided into four stages");
            assert!(g.layer_count() >= 20, "{kind} has only {} layers", g.layer_count());
            assert!(g.total_flops() > 1e9, "{kind} FLOPs too small: {}", g.total_flops());
            assert!(g.total_params() > 5_000_000, "{kind} params too small");
            // Shapes chain correctly: each stage has at least one layer.
            for s in 0..g.stage_count() {
                assert!(!g.stage_layers(s).is_empty());
            }
        }
    }

    #[test]
    fn relative_model_sizes_are_plausible() {
        let r18 = graph(DnnKind::ResNet18);
        let r50 = graph(DnnKind::ResNet50);
        let unet = graph(DnnKind::UNet);
        let incv3 = graph(DnnKind::InceptionV3);
        // ResNet50 does more work and has more parameters than ResNet18.
        assert!(r50.total_flops() > r18.total_flops());
        assert!(r50.total_params() > r18.total_params());
        // UNet at 224x224 is by far the most compute-heavy of the four.
        assert!(unet.total_flops() > r50.total_flops());
        // InceptionV3 has the most layers (many small branch kernels).
        assert!(incv3.layer_count() > r50.layer_count());
    }

    #[test]
    fn kernel_launch_counts_reflect_architecture() {
        // Kernel count ordering drives batching gain in the paper: Inception
        // launches far more (small) kernels than UNet launches (large) ones.
        let launches = |kind| graph(kind).layers.iter().filter(|l| l.launches_kernel()).count();
        assert!(launches(DnnKind::InceptionV3) > launches(DnnKind::ResNet18));
        assert!(launches(DnnKind::ResNet50) > launches(DnnKind::ResNet18));
    }

    #[test]
    fn parameter_counts_are_near_published_values() {
        // Published parameter counts: ResNet18 ≈ 11.7 M, ResNet50 ≈ 25.6 M,
        // InceptionV3 ≈ 24–27 M. Allow generous tolerance; the graphs fold
        // auxiliary heads and exact padding details.
        let params_m = |kind| graph(kind).total_params() as f64 / 1e6;
        assert!((params_m(DnnKind::ResNet18) - 11.7).abs() < 2.0);
        assert!((params_m(DnnKind::ResNet50) - 25.6).abs() < 4.0);
        assert!(params_m(DnnKind::InceptionV3) > 15.0 && params_m(DnnKind::InceptionV3) < 35.0);
        assert!(params_m(DnnKind::UNet) > 20.0 && params_m(DnnKind::UNet) < 45.0);
    }

    #[test]
    fn push_conv_appends_and_chains() {
        let mut layers: Vec<Layer> = Vec::new();
        let out = push_conv(&mut layers, "c".into(), TensorShape::imagenet(), 64, 7, 2);
        assert_eq!(out, TensorShape::new(64, 112, 112));
        assert_eq!(layers.len(), 1);
    }
}
