//! InceptionV3 layer graph (Szegedy et al., CVPR 2016) at 224×224×3 input.
//!
//! Inception blocks consist of several narrow parallel branches whose kernels
//! individually occupy only a small fraction of the GPU. Executed on a single
//! stream they serialize, which is why InceptionV3 shows the largest batching
//! gain in Table I (3.13×) and the lowest single-stream throughput. The graph
//! lists branch layers in serialized order (see [`crate::ModelGraph`] docs).

use super::push_conv;
use crate::{DnnKind, Layer, LayerKind, ModelGraph, TensorShape};

/// Inception-A style block (three conv branches + pooled projection),
/// returning the concatenated output shape.
fn inception_a(
    layers: &mut Vec<Layer>,
    prefix: &str,
    input: TensorShape,
    pool_proj: u32,
) -> TensorShape {
    // Branch 1: 1x1
    let b1 = push_conv(layers, format!("{prefix}.b1x1"), input, 64, 1, 1);
    // Branch 2: 1x1 -> 5x5
    let b2a = push_conv(layers, format!("{prefix}.b5x5_1"), input, 48, 1, 1);
    let b2 = push_conv(layers, format!("{prefix}.b5x5_2"), b2a, 64, 5, 1);
    // Branch 3: 1x1 -> 3x3 -> 3x3
    let b3a = push_conv(layers, format!("{prefix}.b3x3dbl_1"), input, 64, 1, 1);
    let b3b = push_conv(layers, format!("{prefix}.b3x3dbl_2"), b3a, 96, 3, 1);
    let b3 = push_conv(layers, format!("{prefix}.b3x3dbl_3"), b3b, 96, 3, 1);
    // Branch 4: pool -> 1x1
    let pool =
        Layer::new(format!("{prefix}.pool"), LayerKind::Pool { kernel: 3, stride: 1 }, input);
    let pool_out = pool.output;
    layers.push(pool);
    let b4 = push_conv(layers, format!("{prefix}.pool_proj"), pool_out, pool_proj, 1, 1);
    let out_channels = b1.channels + b2.channels + b3.channels + b4.channels;
    let cat = Layer::concat(format!("{prefix}.concat"), b1, out_channels);
    let out = cat.output;
    layers.push(cat);
    out
}

/// Inception-B style block with factorized 7×7 branches (modelled as pairs of
/// asymmetric convolutions approximated by 3×3/5×3 cost), returning the
/// concatenated output shape.
fn inception_b(layers: &mut Vec<Layer>, prefix: &str, input: TensorShape, mid: u32) -> TensorShape {
    // Branch 1: 1x1
    let b1 = push_conv(layers, format!("{prefix}.b1x1"), input, 192, 1, 1);
    // Branch 2: 1x1 -> 1x7 -> 7x1 (two asymmetric convolutions).
    let b2a = push_conv(layers, format!("{prefix}.b7x7_1"), input, mid, 1, 1);
    let b2b = push_conv(layers, format!("{prefix}.b7x7_2"), b2a, mid, 3, 1);
    let b2 = push_conv(layers, format!("{prefix}.b7x7_3"), b2b, 192, 3, 1);
    // Branch 3: 1x1 -> four asymmetric convolutions.
    let b3a = push_conv(layers, format!("{prefix}.b7x7dbl_1"), input, mid, 1, 1);
    let b3b = push_conv(layers, format!("{prefix}.b7x7dbl_2"), b3a, mid, 3, 1);
    let b3c = push_conv(layers, format!("{prefix}.b7x7dbl_3"), b3b, mid, 3, 1);
    let b3d = push_conv(layers, format!("{prefix}.b7x7dbl_4"), b3c, mid, 3, 1);
    let b3 = push_conv(layers, format!("{prefix}.b7x7dbl_5"), b3d, 192, 3, 1);
    // Branch 4: pool -> 1x1
    let pool =
        Layer::new(format!("{prefix}.pool"), LayerKind::Pool { kernel: 3, stride: 1 }, input);
    let pool_out = pool.output;
    layers.push(pool);
    let b4 = push_conv(layers, format!("{prefix}.pool_proj"), pool_out, 192, 1, 1);
    let out_channels = b1.channels + b2.channels + b3.channels + b4.channels;
    let cat = Layer::concat(format!("{prefix}.concat"), b1, out_channels);
    let out = cat.output;
    layers.push(cat);
    out
}

/// Inception-C style block at 7×7 resolution, returning the output shape.
fn inception_c(layers: &mut Vec<Layer>, prefix: &str, input: TensorShape) -> TensorShape {
    let b1 = push_conv(layers, format!("{prefix}.b1x1"), input, 320, 1, 1);
    // Branch 2: 1x1 -> split 1x3 / 3x1.
    let b2a = push_conv(layers, format!("{prefix}.b3x3_1"), input, 384, 1, 1);
    let b2b = push_conv(layers, format!("{prefix}.b3x3_2a"), b2a, 384, 3, 1);
    let b2c = push_conv(layers, format!("{prefix}.b3x3_2b"), b2a, 384, 3, 1);
    // Branch 3: 1x1 -> 3x3 -> split.
    let b3a = push_conv(layers, format!("{prefix}.b3x3dbl_1"), input, 448, 1, 1);
    let b3b = push_conv(layers, format!("{prefix}.b3x3dbl_2"), b3a, 384, 3, 1);
    let b3c = push_conv(layers, format!("{prefix}.b3x3dbl_3a"), b3b, 384, 3, 1);
    let b3d = push_conv(layers, format!("{prefix}.b3x3dbl_3b"), b3b, 384, 3, 1);
    // Branch 4: pool projection.
    let pool =
        Layer::new(format!("{prefix}.pool"), LayerKind::Pool { kernel: 3, stride: 1 }, input);
    let pool_out = pool.output;
    layers.push(pool);
    let b4 = push_conv(layers, format!("{prefix}.pool_proj"), pool_out, 192, 1, 1);
    let out_channels =
        b1.channels + b2b.channels + b2c.channels + b3c.channels + b3d.channels + b4.channels;
    let cat = Layer::concat(format!("{prefix}.concat"), b1, out_channels);
    let out = cat.output;
    layers.push(cat);
    out
}

/// Grid-size reduction block (stride-2 branches + pooling).
fn reduction(
    layers: &mut Vec<Layer>,
    prefix: &str,
    input: TensorShape,
    out_a: u32,
    out_b: u32,
) -> TensorShape {
    let b1 = push_conv(layers, format!("{prefix}.b3x3"), input, out_a, 3, 2);
    let b2a = push_conv(layers, format!("{prefix}.b3x3dbl_1"), input, out_b, 1, 1);
    let b2b = push_conv(layers, format!("{prefix}.b3x3dbl_2"), b2a, out_b, 3, 1);
    let b2 = push_conv(layers, format!("{prefix}.b3x3dbl_3"), b2b, out_b, 3, 2);
    let pool =
        Layer::new(format!("{prefix}.pool"), LayerKind::Pool { kernel: 3, stride: 2 }, input);
    let pool_out = pool.output;
    layers.push(pool);
    let out_channels = b1.channels + b2.channels + pool_out.channels;
    let cat = Layer::concat(format!("{prefix}.concat"), b1, out_channels);
    let out = cat.output;
    layers.push(cat);
    out
}

/// Builds the InceptionV3 graph divided into four stages: stem + Inception-A,
/// reduction + first Inception-B half, second Inception-B half + reduction,
/// Inception-C + classifier head.
pub fn inception_v3() -> ModelGraph {
    let mut layers = Vec::new();
    let input = TensorShape::imagenet();

    // ---- Stem ----
    let mut x = push_conv(&mut layers, "stem.conv1".into(), input, 32, 3, 2);
    x = push_conv(&mut layers, "stem.conv2".into(), x, 32, 3, 1);
    x = push_conv(&mut layers, "stem.conv3".into(), x, 64, 3, 1);
    let pool1 = Layer::new("stem.pool1", LayerKind::Pool { kernel: 3, stride: 2 }, x);
    x = pool1.output;
    layers.push(pool1);
    x = push_conv(&mut layers, "stem.conv4".into(), x, 80, 1, 1);
    x = push_conv(&mut layers, "stem.conv5".into(), x, 192, 3, 1);
    let pool2 = Layer::new("stem.pool2", LayerKind::Pool { kernel: 3, stride: 2 }, x);
    x = pool2.output;
    layers.push(pool2);

    // ---- Stage 1: 3 Inception-A blocks at 28x28 ----
    x = inception_a(&mut layers, "mixed5b", x, 32);
    x = inception_a(&mut layers, "mixed5c", x, 64);
    x = inception_a(&mut layers, "mixed5d", x, 64);
    let end_stage1 = layers.len();

    // ---- Stage 2: reduction + 2 Inception-B blocks at 14x14 ----
    x = reduction(&mut layers, "mixed6a", x, 384, 96);
    x = inception_b(&mut layers, "mixed6b", x, 128);
    x = inception_b(&mut layers, "mixed6c", x, 160);
    let end_stage2 = layers.len();

    // ---- Stage 3: 2 more Inception-B blocks + reduction to 7x7 ----
    x = inception_b(&mut layers, "mixed6d", x, 160);
    x = inception_b(&mut layers, "mixed6e", x, 192);
    x = reduction(&mut layers, "mixed7a", x, 320, 192);
    let end_stage3 = layers.len();

    // ---- Stage 4: 2 Inception-C blocks + head ----
    x = inception_c(&mut layers, "mixed7b", x);
    x = inception_c(&mut layers, "mixed7c", x);
    let gap = Layer::new("avgpool", LayerKind::GlobalPool, x);
    let gap_out = gap.output;
    layers.push(gap);
    layers.push(Layer::new(
        "fc",
        LayerKind::Linear { in_features: gap_out.channels, out_features: 1000 },
        gap_out,
    ));
    let end_stage4 = layers.len();

    ModelGraph::new(
        DnnKind::InceptionV3,
        layers,
        vec![
            ("stem+inceptionA", end_stage1),
            ("reduceA+inceptionB(1)", end_stage2),
            ("inceptionB(2)+reduceB", end_stage3),
            ("inceptionC+head", end_stage4),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inception_structure() {
        let g = inception_v3();
        // Many more kernel launches than the linear networks.
        assert!(g.layer_count() >= 90, "{}", g.layer_count());
        let gflops = g.total_flops() / 1e9;
        assert!(gflops > 2.0 && gflops < 12.0, "{gflops}");
        let params_m = g.total_params() as f64 / 1e6;
        assert!(params_m > 15.0 && params_m < 35.0, "{params_m}");
    }

    #[test]
    fn kernels_are_individually_small() {
        // Median per-layer FLOPs should be much smaller than ResNet18's: the
        // defining property behind Inception's batching hunger.
        let g = inception_v3();
        let mut flops: Vec<f64> = g.layers.iter().map(|l| l.flops()).collect();
        flops.sort_by(f64::total_cmp);
        let median = flops[flops.len() / 2];
        let r18 = super::super::resnet18();
        let mut r18_flops: Vec<f64> = r18.layers.iter().map(|l| l.flops()).collect();
        r18_flops.sort_by(f64::total_cmp);
        let r18_median = r18_flops[r18_flops.len() / 2];
        assert!(median < r18_median, "median {median} vs ResNet18 {r18_median}");
    }

    #[test]
    fn head_outputs_1000_classes() {
        let g = inception_v3();
        let fc = g.layers.last().unwrap();
        assert_eq!(fc.output.elements(), 1000);
    }

    #[test]
    fn spatial_resolution_shrinks_through_reductions() {
        let g = inception_v3();
        let mixed6b = g.layers.iter().find(|l| l.name == "mixed6b.b1x1").unwrap();
        assert!(mixed6b.input.height <= 14);
        let mixed7b = g.layers.iter().find(|l| l.name == "mixed7b.b1x1").unwrap();
        assert!(mixed7b.input.height <= 7);
    }
}
