//! ResNet-18 and ResNet-50 layer graphs (He et al., CVPR 2016).
//!
//! The paper divides ResNet into four stages along its four residual
//! super-blocks (`layer1`..`layer4`); the stem is folded into the first stage
//! and the classifier head into the last, matching Sec. III-B1.

use super::push_conv;
use crate::{DnnKind, Layer, LayerKind, ModelGraph, TensorShape};

/// Appends a basic residual block (two 3×3 convolutions + skip add) and
/// returns the output shape.
fn basic_block(
    layers: &mut Vec<Layer>,
    prefix: &str,
    input: TensorShape,
    out_channels: u32,
    stride: u32,
) -> TensorShape {
    let mid = push_conv(layers, format!("{prefix}.conv1"), input, out_channels, 3, stride);
    let out = push_conv(layers, format!("{prefix}.conv2"), mid, out_channels, 3, 1);
    if stride != 1 || input.channels != out_channels {
        push_conv(layers, format!("{prefix}.downsample"), input, out_channels, 1, stride);
    }
    layers.push(Layer::new(format!("{prefix}.add"), LayerKind::Add, out));
    out
}

/// Appends a bottleneck residual block (1×1 reduce, 3×3, 1×1 expand) and
/// returns the output shape.
fn bottleneck_block(
    layers: &mut Vec<Layer>,
    prefix: &str,
    input: TensorShape,
    mid_channels: u32,
    stride: u32,
) -> TensorShape {
    let expansion = 4;
    let out_channels = mid_channels * expansion;
    let a = push_conv(layers, format!("{prefix}.conv1"), input, mid_channels, 1, 1);
    let b = push_conv(layers, format!("{prefix}.conv2"), a, mid_channels, 3, stride);
    let out = push_conv(layers, format!("{prefix}.conv3"), b, out_channels, 1, 1);
    if stride != 1 || input.channels != out_channels {
        push_conv(layers, format!("{prefix}.downsample"), input, out_channels, 1, stride);
    }
    layers.push(Layer::new(format!("{prefix}.add"), LayerKind::Add, out));
    out
}

fn stem(layers: &mut Vec<Layer>) -> TensorShape {
    let input = TensorShape::imagenet();
    let c1 = push_conv(layers, "conv1".into(), input, 64, 7, 2);
    let pool = Layer::new("maxpool", LayerKind::Pool { kernel: 3, stride: 2 }, c1);
    let out = pool.output;
    layers.push(pool);
    out
}

fn head(layers: &mut Vec<Layer>, input: TensorShape, features: u32) {
    let gap = Layer::new("avgpool", LayerKind::GlobalPool, input);
    let gap_out = gap.output;
    layers.push(gap);
    layers.push(Layer::new(
        "fc",
        LayerKind::Linear { in_features: features, out_features: 1000 },
        gap_out,
    ));
}

/// Builds the ResNet-18 graph (basic blocks, [2, 2, 2, 2]).
pub fn resnet18() -> ModelGraph {
    let mut layers = Vec::new();
    let mut x = stem(&mut layers);
    // layer1: 64 channels, stride 1.
    for b in 0..2 {
        x = basic_block(&mut layers, &format!("layer1.{b}"), x, 64, 1);
    }
    let end_stage1 = layers.len();
    for b in 0..2 {
        x = basic_block(&mut layers, &format!("layer2.{b}"), x, 128, if b == 0 { 2 } else { 1 });
    }
    let end_stage2 = layers.len();
    for b in 0..2 {
        x = basic_block(&mut layers, &format!("layer3.{b}"), x, 256, if b == 0 { 2 } else { 1 });
    }
    let end_stage3 = layers.len();
    for b in 0..2 {
        x = basic_block(&mut layers, &format!("layer4.{b}"), x, 512, if b == 0 { 2 } else { 1 });
    }
    head(&mut layers, x, 512);
    let end_stage4 = layers.len();
    ModelGraph::new(
        DnnKind::ResNet18,
        layers,
        vec![
            ("stem+layer1", end_stage1),
            ("layer2", end_stage2),
            ("layer3", end_stage3),
            ("layer4+head", end_stage4),
        ],
    )
}

/// Builds the ResNet-50 graph (bottleneck blocks, [3, 4, 6, 3]).
pub fn resnet50() -> ModelGraph {
    let mut layers = Vec::new();
    let mut x = stem(&mut layers);
    let plan: [(u32, usize); 4] = [(64, 3), (128, 4), (256, 6), (512, 3)];
    let mut boundaries = Vec::new();
    for (stage_idx, (mid, blocks)) in plan.iter().enumerate() {
        for b in 0..*blocks {
            let stride = if stage_idx > 0 && b == 0 { 2 } else { 1 };
            x = bottleneck_block(
                &mut layers,
                &format!("layer{}.{b}", stage_idx + 1),
                x,
                *mid,
                stride,
            );
        }
        if stage_idx == 3 {
            head(&mut layers, x, 2048);
        }
        let name = match stage_idx {
            0 => "stem+layer1",
            1 => "layer2",
            2 => "layer3",
            _ => "layer4+head",
        };
        boundaries.push((name, layers.len()));
    }
    ModelGraph::new(DnnKind::ResNet50, layers, boundaries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_structure() {
        let g = resnet18();
        // 2 stem + 8 blocks * (2/3 convs + add) + gap + fc
        assert!(g.layer_count() >= 28 && g.layer_count() <= 36, "{}", g.layer_count());
        // ~1.8 GMACs = ~3.6 GFLOPs, ~11.7 M params at 224x224.
        let gflops = g.total_flops() / 1e9;
        assert!(gflops > 2.8 && gflops < 4.8, "{gflops}");
        let params_m = g.total_params() as f64 / 1e6;
        assert!((params_m - 11.7).abs() < 1.5, "{params_m}");
        // Final feature map is 512x7x7 before the head.
        let fc = g.layers.iter().find(|l| l.name == "fc").unwrap();
        assert_eq!(fc.output, TensorShape::flat(1000));
    }

    #[test]
    fn resnet50_structure() {
        let g = resnet50();
        assert!(g.layer_count() >= 60, "{}", g.layer_count());
        // ~4.1 GMACs = ~8.2 GFLOPs at 224x224.
        let gflops = g.total_flops() / 1e9;
        assert!(gflops > 6.5 && gflops < 10.0, "{gflops}");
        let params_m = g.total_params() as f64 / 1e6;
        assert!((params_m - 25.6).abs() < 3.0, "{params_m}");
    }

    #[test]
    fn stage_flops_are_reasonably_balanced() {
        // No stage should dominate with more than 60 % of total compute;
        // virtual deadlines (Eq. 8) need meaningful per-stage shares.
        for g in [resnet18(), resnet50()] {
            let flops = g.stage_flops();
            let total: f64 = flops.iter().sum();
            for (i, f) in flops.iter().enumerate() {
                assert!(f / total < 0.6, "{:?} stage {i} has {}", g.kind, f / total);
                assert!(f / total > 0.05, "{:?} stage {i} has {}", g.kind, f / total);
            }
        }
    }

    #[test]
    fn downsample_blocks_change_resolution() {
        let g = resnet18();
        let l2 = g.layers.iter().find(|l| l.name == "layer2.0.conv1").unwrap();
        assert_eq!(l2.input.height, 56);
        assert_eq!(l2.output.height, 28);
        let l4 = g.layers.iter().find(|l| l.name == "layer4.1.conv2").unwrap();
        assert_eq!(l4.output, TensorShape::new(512, 7, 7));
    }
}
