//! UNet layer graph (Ronneberger et al., MICCAI 2015) at 224×224×3 input.
//!
//! UNet's wide feature maps keep the GPU busy even at batch size 1, which is
//! why Table I reports only a 1.08× batching gain for it; the graph here
//! preserves that "wide, few kernels" character.

use super::push_conv;
use crate::{DnnKind, Layer, LayerKind, ModelGraph, TensorShape};

/// Two 3×3 convolutions at the same resolution (the classic UNet double
/// convolution), returning the output shape.
fn double_conv(
    layers: &mut Vec<Layer>,
    prefix: &str,
    input: TensorShape,
    out_channels: u32,
) -> TensorShape {
    let a = push_conv(layers, format!("{prefix}.conv1"), input, out_channels, 3, 1);
    push_conv(layers, format!("{prefix}.conv2"), a, out_channels, 3, 1)
}

/// Builds the UNet graph: a 4-level encoder, bottleneck, and 4-level decoder
/// with skip-connection concatenations, divided into four stages
/// (encoder-top, encoder-bottom + bottleneck, decoder-bottom, decoder-top).
pub fn unet() -> ModelGraph {
    let mut layers = Vec::new();
    let input = TensorShape::imagenet();
    let base = 64u32;

    // ---- Encoder ----
    let mut skips: Vec<TensorShape> = Vec::new();
    let mut x = input;
    for level in 0..4u32 {
        let ch = base << level; // 64, 128, 256, 512
        x = double_conv(&mut layers, &format!("enc{}", level + 1), x, ch);
        skips.push(x);
        let pool = Layer::new(
            format!("enc{}.pool", level + 1),
            LayerKind::Pool { kernel: 2, stride: 2 },
            x,
        );
        x = pool.output;
        layers.push(pool);
        if level == 1 {
            // End of stage 1 after the second encoder level.
        }
    }
    let end_stage1 = {
        // Stage 1 = enc1 + enc2 (layers up to and including enc2.pool).
        layers.iter().position(|l| l.name == "enc2.pool").expect("enc2.pool exists") + 1
    };

    // ---- Bottleneck ----
    x = double_conv(&mut layers, "bottleneck", x, base << 4); // 1024 @ 14x14
    let end_stage2 = layers.len();

    // ---- Decoder ----
    for level in (0..4u32).rev() {
        let ch = base << level; // 512, 256, 128, 64
        let name = format!("dec{}", level + 1);
        let up = Layer::new(format!("{name}.upsample"), LayerKind::Upsample { scale: 2 }, x);
        let up_out = up.output;
        layers.push(up);
        // Up-convolution halving the channel count.
        let upconv = push_conv(&mut layers, format!("{name}.upconv"), up_out, ch, 2, 1);
        // Concatenate with the matching encoder skip.
        let skip = skips[level as usize];
        let cat = Layer::concat(format!("{name}.concat"), upconv, ch + skip.channels);
        let cat_out = cat.output;
        layers.push(cat);
        x = double_conv(&mut layers, &name, cat_out, ch);
    }
    let end_stage3 =
        { layers.iter().position(|l| l.name == "dec3.conv2").expect("dec3.conv2 exists") + 1 };

    // Final 1×1 segmentation head (binary mask as in the paper's medical
    // segmentation motivation).
    push_conv(&mut layers, "head".into(), x, 2, 1, 1);
    let end_stage4 = layers.len();

    ModelGraph::new(
        DnnKind::UNet,
        layers,
        vec![
            ("encoder-top", end_stage1),
            ("encoder-bottom+bottleneck", end_stage2),
            ("decoder-bottom", end_stage3),
            ("decoder-top+head", end_stage4),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unet_structure() {
        let g = unet();
        // 4 enc levels * 3 + 2 bottleneck + 4 dec levels * 5 + head = ~35
        assert!(g.layer_count() >= 30 && g.layer_count() <= 45, "{}", g.layer_count());
        let gflops = g.total_flops() / 1e9;
        // UNet at 224x224 is tens of GFLOPs — far heavier than ResNet18.
        assert!(gflops > 20.0, "{gflops}");
        let params_m = g.total_params() as f64 / 1e6;
        assert!(params_m > 20.0 && params_m < 45.0, "{params_m}");
    }

    #[test]
    fn decoder_restores_input_resolution() {
        let g = unet();
        let head = g.layers.last().unwrap();
        assert_eq!(head.name, "head");
        assert_eq!(head.output.height, 224);
        assert_eq!(head.output.width, 224);
        assert_eq!(head.output.channels, 2);
    }

    #[test]
    fn skip_concats_double_channels() {
        let g = unet();
        let cat = g.layers.iter().find(|l| l.name == "dec4.concat").unwrap();
        assert_eq!(cat.output.channels, 1024);
        let cat1 = g.layers.iter().find(|l| l.name == "dec1.concat").unwrap();
        assert_eq!(cat1.output.channels, 128);
    }

    #[test]
    fn wide_layers_dominate() {
        // The average FLOPs per kernel-launching layer of UNet should exceed
        // ResNet18's by a wide margin — this is what limits its batching gain.
        let unet = unet();
        let r18 = super::super::resnet18();
        let avg = |g: &ModelGraph| g.total_flops() / g.layer_count() as f64;
        assert!(avg(&unet) > 5.0 * avg(&r18));
    }
}
