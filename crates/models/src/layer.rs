//! Neural-network layers and their cost model.

use std::fmt;

use crate::TensorShape;

/// The kinds of layers needed to describe the paper's four networks.
///
/// Element-wise operations that frameworks fuse into the preceding
/// convolution (batch-norm, ReLU) are folded into [`LayerKind::Conv2d`] /
/// [`LayerKind::Linear`] cost via a small constant, mirroring how LibTorch
/// executes them with cuDNN fused kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayerKind {
    /// 2-D convolution (+ fused batch-norm + activation).
    Conv2d {
        /// Input channels.
        in_channels: u32,
        /// Output channels.
        out_channels: u32,
        /// Square kernel size.
        kernel: u32,
        /// Stride.
        stride: u32,
    },
    /// Max or average pooling.
    Pool {
        /// Pooling window.
        kernel: u32,
        /// Stride.
        stride: u32,
    },
    /// Global average pooling down to 1×1.
    GlobalPool,
    /// Fully connected layer (+ fused activation).
    Linear {
        /// Input features.
        in_features: u32,
        /// Output features.
        out_features: u32,
    },
    /// Element-wise residual addition.
    Add,
    /// Channel concatenation (UNet skip connections, Inception merges).
    Concat,
    /// Nearest/bilinear upsampling by an integer factor (UNet decoder).
    Upsample {
        /// Scale factor.
        scale: u32,
    },
}

/// A single layer: its kind, input shape and output shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Human-readable name, e.g. `"layer3.0.conv2"`.
    pub name: String,
    /// Operation performed.
    pub kind: LayerKind,
    /// Input activation shape (per sample).
    pub input: TensorShape,
    /// Output activation shape (per sample).
    pub output: TensorShape,
}

impl Layer {
    /// Creates a layer, computing the output shape from the kind.
    pub fn new(name: impl Into<String>, kind: LayerKind, input: TensorShape) -> Self {
        let output = match kind {
            LayerKind::Conv2d { out_channels, stride, .. } => input.strided(out_channels, stride),
            LayerKind::Pool { stride, .. } => input.strided(input.channels, stride),
            LayerKind::GlobalPool => TensorShape::flat(input.channels),
            LayerKind::Linear { out_features, .. } => TensorShape::flat(out_features),
            LayerKind::Add => input,
            LayerKind::Concat => input,
            LayerKind::Upsample { scale } => input.upsampled(input.channels, scale),
        };
        Layer { name: name.into(), kind, input, output }
    }

    /// Creates a concat layer with an explicit output channel count (the sum
    /// of the concatenated branches).
    pub fn concat(name: impl Into<String>, input: TensorShape, out_channels: u32) -> Self {
        Layer {
            name: name.into(),
            kind: LayerKind::Concat,
            input,
            output: input.with_channels(out_channels),
        }
    }

    /// Floating-point operations per sample (multiply-accumulate counted as
    /// two FLOPs), including a 5 % overhead for fused batch-norm/activation
    /// on convolution and linear layers.
    pub fn flops(&self) -> f64 {
        let out_elems = self.output.elements() as f64;
        match self.kind {
            LayerKind::Conv2d { in_channels, kernel, .. } => {
                2.0 * out_elems * f64::from(in_channels) * f64::from(kernel * kernel) * 1.05
            }
            LayerKind::Linear { in_features, .. } => {
                2.0 * out_elems * f64::from(in_features) * 1.05
            }
            LayerKind::Pool { kernel, .. } => out_elems * f64::from(kernel * kernel),
            LayerKind::GlobalPool => self.input.elements() as f64,
            LayerKind::Add | LayerKind::Concat => out_elems,
            LayerKind::Upsample { .. } => out_elems * 4.0,
        }
    }

    /// Trainable parameter count (weights + biases/BN affine).
    pub fn params(&self) -> u64 {
        match self.kind {
            LayerKind::Conv2d { in_channels, out_channels, kernel, .. } => {
                u64::from(in_channels) * u64::from(out_channels) * u64::from(kernel * kernel)
                    + 2 * u64::from(out_channels)
            }
            LayerKind::Linear { in_features, out_features } => {
                u64::from(in_features) * u64::from(out_features) + u64::from(out_features)
            }
            _ => 0,
        }
    }

    /// Bytes of parameters assuming `f32` weights.
    pub fn param_bytes(&self) -> u64 {
        self.params() * 4
    }

    /// Whether the layer launches a GPU kernel of its own (pure reshapes do,
    /// too, but we fold zero-param element-wise layers into real kernels only
    /// when their cost is negligible).
    pub fn launches_kernel(&self) -> bool {
        true
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} -> {})", self.name, self.input, self.output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_shape_and_flops() {
        let layer = Layer::new(
            "conv1",
            LayerKind::Conv2d { in_channels: 3, out_channels: 64, kernel: 7, stride: 2 },
            TensorShape::imagenet(),
        );
        assert_eq!(layer.output, TensorShape::new(64, 112, 112));
        // 2 * 112*112*64 * 3 * 49 * 1.05 ≈ 248 MFLOPs
        let flops = layer.flops();
        assert!(flops > 2.0e8 && flops < 2.6e8, "{flops}");
        assert_eq!(layer.params(), 3 * 64 * 49 + 128);
    }

    #[test]
    fn linear_layer_costs() {
        let layer = Layer::new(
            "fc",
            LayerKind::Linear { in_features: 512, out_features: 1000 },
            TensorShape::flat(512),
        );
        assert_eq!(layer.output, TensorShape::flat(1000));
        assert_eq!(layer.params(), 512 * 1000 + 1000);
        assert!(layer.flops() > 1.0e6);
    }

    #[test]
    fn pool_and_global_pool_shapes() {
        let pool = Layer::new(
            "maxpool",
            LayerKind::Pool { kernel: 3, stride: 2 },
            TensorShape::new(64, 112, 112),
        );
        assert_eq!(pool.output, TensorShape::new(64, 56, 56));
        let gap = Layer::new("gap", LayerKind::GlobalPool, TensorShape::new(512, 7, 7));
        assert_eq!(gap.output, TensorShape::flat(512));
        assert_eq!(gap.params(), 0);
    }

    #[test]
    fn add_upsample_concat() {
        let add = Layer::new("add", LayerKind::Add, TensorShape::new(64, 56, 56));
        assert_eq!(add.output, add.input);
        let up = Layer::new("up", LayerKind::Upsample { scale: 2 }, TensorShape::new(128, 28, 28));
        assert_eq!(up.output, TensorShape::new(128, 56, 56));
        let cat = Layer::concat("cat", TensorShape::new(128, 56, 56), 256);
        assert_eq!(cat.output.channels, 256);
    }

    #[test]
    fn display_contains_name_and_shapes() {
        let layer = Layer::new("gap", LayerKind::GlobalPool, TensorShape::new(512, 7, 7));
        let text = layer.to_string();
        assert!(text.contains("gap") && text.contains("512x7x7"));
    }
}
