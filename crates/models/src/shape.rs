//! Tensor shapes (channels × height × width).

use std::fmt;

/// A CHW activation-tensor shape (per sample, batch dimension excluded).
///
/// ```
/// use daris_models::TensorShape;
/// let input = TensorShape::new(3, 224, 224);
/// assert_eq!(input.elements(), 3 * 224 * 224);
/// assert_eq!(input.bytes_f32(), 3 * 224 * 224 * 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorShape {
    /// Channels.
    pub channels: u32,
    /// Height.
    pub height: u32,
    /// Width.
    pub width: u32,
}

impl TensorShape {
    /// Creates a shape.
    pub const fn new(channels: u32, height: u32, width: u32) -> Self {
        TensorShape { channels, height, width }
    }

    /// The 224×224×3 image input used throughout the paper's evaluation.
    pub const fn imagenet() -> Self {
        TensorShape::new(3, 224, 224)
    }

    /// A flat feature vector (height = width = 1).
    pub const fn flat(features: u32) -> Self {
        TensorShape::new(features, 1, 1)
    }

    /// Number of elements per sample.
    pub fn elements(&self) -> u64 {
        u64::from(self.channels) * u64::from(self.height) * u64::from(self.width)
    }

    /// Bytes per sample assuming `f32` activations.
    pub fn bytes_f32(&self) -> u64 {
        self.elements() * 4
    }

    /// Shape after a convolution/pool with the given stride (spatial dims are
    /// divided by the stride, rounding up; channels replaced).
    pub fn strided(&self, out_channels: u32, stride: u32) -> TensorShape {
        let s = stride.max(1);
        TensorShape::new(out_channels, self.height.div_ceil(s), self.width.div_ceil(s))
    }

    /// Shape after an upsampling by an integer factor.
    pub fn upsampled(&self, out_channels: u32, scale: u32) -> TensorShape {
        TensorShape::new(out_channels, self.height * scale.max(1), self.width * scale.max(1))
    }

    /// Same spatial size, different channel count.
    pub fn with_channels(&self, channels: u32) -> TensorShape {
        TensorShape::new(channels, self.height, self.width)
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_and_byte_counts() {
        let s = TensorShape::imagenet();
        assert_eq!(s.elements(), 150_528);
        assert_eq!(s.bytes_f32(), 602_112);
        assert_eq!(TensorShape::flat(1000).elements(), 1000);
    }

    #[test]
    fn strided_rounds_up() {
        let s = TensorShape::new(3, 224, 224);
        assert_eq!(s.strided(64, 2), TensorShape::new(64, 112, 112));
        assert_eq!(TensorShape::new(64, 7, 7).strided(64, 2), TensorShape::new(64, 4, 4));
        assert_eq!(s.strided(64, 0), TensorShape::new(64, 224, 224));
    }

    #[test]
    fn upsample_and_channel_change() {
        let s = TensorShape::new(128, 28, 28);
        assert_eq!(s.upsampled(64, 2), TensorShape::new(64, 56, 56));
        assert_eq!(s.with_channels(256), TensorShape::new(256, 28, 28));
    }

    #[test]
    fn display_is_chw() {
        assert_eq!(TensorShape::imagenet().to_string(), "3x224x224");
    }
}
