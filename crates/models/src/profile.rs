//! Calibrated model profiles.
//!
//! A [`ModelProfile`] glues a model graph to the kernel lowering and carries
//! two per-model calibration factors:
//!
//! * `work_scale` — chosen so that the profile's isolated single-stream
//!   latency matches the paper's Table I "min JPS";
//! * `par_scale` — chosen so that the best batched throughput matches
//!   Table I "max JPS" (and therefore the batching gain).
//!
//! Both are fitted analytically (no simulation in the loop): the isolated
//! latency of a kernel sequence on an otherwise idle device is simply
//! `Σ (launch + work / min(parallelism, NSM))` plus copy-engine time, which
//! the simulator reproduces exactly.

use daris_gpu::{GpuSpec, KernelDesc};

use crate::{zoo, DnnKind, LoweringConfig, ModelGraph};

/// Batch sizes explored when searching for the best batched throughput
/// (Table I "max JPS" is the best the paper found over its batch sweep).
const BATCH_SWEEP: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Published single-DNN throughput from Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Reference {
    /// Unbatched (batch = 1) single-stream throughput in jobs per second.
    pub min_jps: f64,
    /// Best batched throughput in jobs per second.
    pub max_jps: f64,
}

impl Table1Reference {
    /// The Table I row for `kind`.
    pub fn for_kind(kind: DnnKind) -> Self {
        match kind {
            DnnKind::ResNet18 => Table1Reference { min_jps: 627.0, max_jps: 1025.0 },
            DnnKind::ResNet50 => Table1Reference { min_jps: 250.0, max_jps: 433.0 },
            DnnKind::UNet => Table1Reference { min_jps: 241.0, max_jps: 260.0 },
            DnnKind::InceptionV3 => Table1Reference { min_jps: 142.0, max_jps: 446.0 },
        }
    }

    /// The batching gain (`max / min`, the last column of Table I).
    pub fn gain(&self) -> f64 {
        self.max_jps / self.min_jps
    }
}

/// One point of a batch-size sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchSweepPoint {
    /// Batch size.
    pub batch: u32,
    /// Isolated latency of one batch in microseconds.
    pub latency_us: f64,
    /// Resulting throughput in jobs per second.
    pub jps: f64,
}

/// A calibrated, executable profile of one DNN.
#[derive(Debug, Clone)]
pub struct ModelProfile {
    kind: DnnKind,
    graph: ModelGraph,
    cfg: LoweringConfig,
    sm_count: u32,
    copy_latency_us: f64,
    copy_bandwidth_bytes_per_us: f64,
    work_scale: f64,
    par_scale: f64,
}

impl ModelProfile {
    /// Builds a profile calibrated against Table I for the default evaluation
    /// device (RTX 2080 Ti, 68 SMs).
    pub fn calibrated(kind: DnnKind) -> Self {
        Self::calibrated_for(kind, LoweringConfig::default(), &GpuSpec::rtx_2080_ti())
    }

    /// Builds a profile calibrated against Table I for an arbitrary device
    /// and lowering configuration.
    pub fn calibrated_for(kind: DnnKind, cfg: LoweringConfig, spec: &GpuSpec) -> Self {
        let mut profile = Self::uncalibrated_for(kind, cfg, spec);
        profile.fit_to(Table1Reference::for_kind(kind));
        profile
    }

    /// Builds an uncalibrated profile (`work_scale = par_scale = 1`), mostly
    /// useful for inspecting the raw cost model.
    pub fn uncalibrated(kind: DnnKind) -> Self {
        Self::uncalibrated_for(kind, LoweringConfig::default(), &GpuSpec::rtx_2080_ti())
    }

    fn uncalibrated_for(kind: DnnKind, cfg: LoweringConfig, spec: &GpuSpec) -> Self {
        ModelProfile {
            kind,
            graph: zoo::graph(kind),
            cfg,
            sm_count: spec.sm_count,
            copy_latency_us: spec.copy_latency.as_micros_f64(),
            copy_bandwidth_bytes_per_us: spec.copy_bandwidth_bytes_per_us,
            work_scale: 1.0,
            par_scale: 1.0,
        }
    }

    /// The model kind.
    pub fn kind(&self) -> DnnKind {
        self.kind
    }

    /// The underlying layer graph.
    pub fn graph(&self) -> &ModelGraph {
        &self.graph
    }

    /// The lowering configuration in use.
    pub fn lowering(&self) -> &LoweringConfig {
        &self.cfg
    }

    /// Calibrated work scale (exposed for diagnostics and EXPERIMENTS.md).
    pub fn work_scale(&self) -> f64 {
        self.work_scale
    }

    /// Calibrated parallelism scale.
    pub fn par_scale(&self) -> f64 {
        self.par_scale
    }

    /// Number of stages (`n_i` in the paper's task model).
    pub fn stage_count(&self) -> usize {
        self.graph.stage_count()
    }

    /// The Table I reference values this profile was calibrated against.
    pub fn reference(&self) -> Table1Reference {
        Table1Reference::for_kind(self.kind)
    }

    /// Bytes of resident weights.
    pub fn weight_bytes(&self) -> u64 {
        self.graph.weight_bytes()
    }

    /// Host-to-device input bytes for a batch of `batch` samples.
    pub fn input_bytes(&self, batch: u32) -> u64 {
        self.graph.layers.first().map(|l| l.input.bytes_f32()).unwrap_or(0)
            * u64::from(batch.max(1))
    }

    /// Device-to-host output bytes for a batch of `batch` samples.
    pub fn output_bytes(&self, batch: u32) -> u64 {
        self.graph.layers.last().map(|l| l.output.bytes_f32()).unwrap_or(0)
            * u64::from(batch.max(1))
    }

    /// Kernels of stage `stage` for a batch of `batch` samples.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= stage_count()`.
    pub fn stage_kernels(&self, stage: usize, batch: u32) -> Vec<KernelDesc> {
        self.graph
            .stage_layers(stage)
            .iter()
            .map(|l| self.cfg.lower(l, batch, self.work_scale, self.par_scale))
            .collect()
    }

    /// Kernels of the whole network (all stages concatenated).
    pub fn job_kernels(&self, batch: u32) -> Vec<KernelDesc> {
        (0..self.stage_count()).flat_map(|s| self.stage_kernels(s, batch)).collect()
    }

    /// Analytic isolated latency of stage `stage` at batch `batch`,
    /// in microseconds (kernels only, no copies).
    pub fn isolated_stage_latency_us(&self, stage: usize, batch: u32) -> f64 {
        self.graph.stage_layers(stage).iter().map(|l| self.layer_latency_us(l, batch)).sum()
    }

    /// Analytic isolated end-to-end latency at batch `batch`, in
    /// microseconds, including input/output copies on the copy engine.
    pub fn isolated_latency_us(&self, batch: u32) -> f64 {
        let kernels: f64 =
            (0..self.stage_count()).map(|s| self.isolated_stage_latency_us(s, batch)).sum();
        kernels + self.copy_time_us(batch)
    }

    /// Copy-engine time (both directions) for a batch, in microseconds.
    pub fn copy_time_us(&self, batch: u32) -> f64 {
        let bytes = (self.input_bytes(batch) + self.output_bytes(batch)) as f64;
        2.0 * self.copy_latency_us + bytes / self.copy_bandwidth_bytes_per_us.max(1e-9)
    }

    /// Sweeps batch sizes and reports latency/throughput for each.
    pub fn batch_sweep(&self) -> Vec<BatchSweepPoint> {
        BATCH_SWEEP
            .iter()
            .map(|&b| {
                let latency_us = self.isolated_latency_us(b);
                BatchSweepPoint { batch: b, latency_us, jps: f64::from(b) * 1e6 / latency_us }
            })
            .collect()
    }

    /// The best batched throughput over the sweep: `(batch, jps)`.
    pub fn best_batched_jps(&self) -> (u32, f64) {
        self.batch_sweep()
            .into_iter()
            .map(|p| (p.batch, p.jps))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("sweep is non-empty")
    }

    /// Unbatched single-stream throughput in jobs per second.
    pub fn isolated_jps(&self) -> f64 {
        1e6 / self.isolated_latency_us(1)
    }

    /// The modelled batching gain (best batched JPS over unbatched JPS),
    /// comparable to Table I's last column.
    pub fn batching_gain(&self) -> f64 {
        self.best_batched_jps().1 / self.isolated_jps()
    }

    // ----- calibration ------------------------------------------------------

    fn layer_latency_us(&self, layer: &crate::Layer, batch: u32) -> f64 {
        let work = self.cfg.raw_work(layer, batch) * self.work_scale;
        let par =
            self.cfg.scaled_parallelism(layer, batch, self.par_scale).min(f64::from(self.sm_count));
        self.cfg.launch_overhead_us + work / par.max(1.0)
    }

    /// Fits `work_scale` so the isolated batch-1 latency hits
    /// `1e6 / reference.min_jps` given the current `par_scale`.
    fn fit_work_scale(&mut self, reference: Table1Reference) {
        let target_us = 1e6 / reference.min_jps;
        let fixed: f64 =
            self.graph.layers.len() as f64 * self.cfg.launch_overhead_us + self.copy_time_us(1);
        let variable: f64 = self
            .graph
            .layers
            .iter()
            .map(|l| {
                let par =
                    self.cfg.scaled_parallelism(l, 1, self.par_scale).min(f64::from(self.sm_count));
                self.cfg.raw_work(l, 1) / par.max(1.0)
            })
            .sum();
        let budget = (target_us - fixed).max(target_us * 0.05);
        self.work_scale = budget / variable.max(1e-12);
    }

    /// Bisects `par_scale` so the best batched throughput hits
    /// `reference.max_jps`; refits `work_scale` at every step.
    fn fit_to(&mut self, reference: Table1Reference) {
        let mut lo = 1e-3f64;
        let mut hi = 16.0f64;
        for _ in 0..48 {
            let mid = (lo * hi).sqrt();
            self.par_scale = mid;
            self.fit_work_scale(reference);
            let max_jps = self.best_batched_jps().1;
            if max_jps > reference.max_jps {
                // Too much batching gain: widen kernels.
                lo = mid;
            } else {
                hi = mid;
            }
        }
        self.par_scale = (lo * hi).sqrt();
        self.fit_work_scale(reference);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reference_gains_match_paper() {
        assert!((Table1Reference::for_kind(DnnKind::ResNet18).gain() - 1.63).abs() < 0.02);
        assert!((Table1Reference::for_kind(DnnKind::ResNet50).gain() - 1.73).abs() < 0.02);
        assert!((Table1Reference::for_kind(DnnKind::UNet).gain() - 1.08).abs() < 0.01);
        assert!((Table1Reference::for_kind(DnnKind::InceptionV3).gain() - 3.13).abs() < 0.03);
    }

    #[test]
    fn calibration_reproduces_min_jps() {
        for kind in DnnKind::all() {
            let p = ModelProfile::calibrated(kind);
            let reference = p.reference();
            let err = (p.isolated_jps() - reference.min_jps).abs() / reference.min_jps;
            assert!(err < 0.03, "{kind}: modelled {} vs {}", p.isolated_jps(), reference.min_jps);
        }
    }

    #[test]
    fn calibration_reproduces_max_jps_within_tolerance() {
        for kind in DnnKind::all() {
            let p = ModelProfile::calibrated(kind);
            let reference = p.reference();
            let (_, best) = p.best_batched_jps();
            let err = (best - reference.max_jps).abs() / reference.max_jps;
            assert!(err < 0.10, "{kind}: modelled {best} vs {}", reference.max_jps);
        }
    }

    #[test]
    fn batching_gain_ordering_matches_table1() {
        let gain = |k| ModelProfile::calibrated(k).batching_gain();
        let unet = gain(DnnKind::UNet);
        let r18 = gain(DnnKind::ResNet18);
        let r50 = gain(DnnKind::ResNet50);
        let inc = gain(DnnKind::InceptionV3);
        assert!(unet < r18, "UNet {unet} should gain least (ResNet18 {r18})");
        assert!(r18 < inc, "InceptionV3 {inc} should gain most (ResNet18 {r18})");
        assert!(r50 > r18 * 0.9, "ResNet50 {r50} roughly comparable to ResNet18 {r18}");
    }

    #[test]
    fn stage_latencies_sum_to_job_latency() {
        let p = ModelProfile::calibrated(DnnKind::ResNet18);
        let stages: f64 = (0..p.stage_count()).map(|s| p.isolated_stage_latency_us(s, 1)).sum();
        let job = p.isolated_latency_us(1) - p.copy_time_us(1);
        assert!((stages - job).abs() < 1e-6);
    }

    #[test]
    fn kernels_are_valid_and_labelled() {
        let p = ModelProfile::calibrated(DnnKind::InceptionV3);
        let kernels = p.job_kernels(1);
        assert_eq!(kernels.len(), p.graph().layer_count());
        for k in &kernels {
            assert!(k.validate().is_ok());
            assert!(k.label.is_some());
        }
    }

    #[test]
    fn memory_footprints_are_plausible() {
        let p = ModelProfile::calibrated(DnnKind::ResNet18);
        // ~47 MB of weights, 602 KB input, 4 KB output.
        assert!(p.weight_bytes() > 40_000_000 && p.weight_bytes() < 60_000_000);
        assert_eq!(p.input_bytes(1), 602_112);
        assert_eq!(p.input_bytes(4), 4 * 602_112);
        assert_eq!(p.output_bytes(1), 4_000);
    }

    #[test]
    fn batch_sweep_is_monotone_in_latency() {
        let p = ModelProfile::calibrated(DnnKind::ResNet50);
        let sweep = p.batch_sweep();
        for w in sweep.windows(2) {
            assert!(w[1].latency_us > w[0].latency_us);
            assert!(w[1].batch > w[0].batch);
        }
    }

    #[test]
    fn uncalibrated_profile_has_unit_scales() {
        let p = ModelProfile::uncalibrated(DnnKind::UNet);
        assert_eq!(p.work_scale(), 1.0);
        assert_eq!(p.par_scale(), 1.0);
    }
}
