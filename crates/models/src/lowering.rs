//! Lowering layers into simulated GPU kernels.

use daris_gpu::{KernelDesc, SimDuration};

use crate::Layer;

/// Constants that map layer arithmetic onto simulated-kernel work and
/// parallelism.
///
/// The absolute values are starting points; [`crate::ModelProfile`]
/// calibration multiplies them by per-model `work_scale` / `par_scale`
/// factors so that Table I throughput is reproduced. The defaults roughly
/// correspond to an RTX 2080 Ti: ~0.19 TFLOP/s per SM and a few thousand
/// output elements per SM wave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoweringConfig {
    /// FLOPs one SM retires per microsecond.
    pub flops_per_sm_us: f64,
    /// Output elements one SM covers per kernel wave (drives parallelism).
    pub elements_per_sm: f64,
    /// Per-kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
    /// Lower bound on kernel parallelism.
    pub min_parallelism: u32,
    /// Upper bound on kernel parallelism (well above any real device width so
    /// the device's own SM count is the effective cap).
    pub max_parallelism: u32,
}

impl Default for LoweringConfig {
    fn default() -> Self {
        LoweringConfig {
            flops_per_sm_us: 1.9e5,
            elements_per_sm: 2048.0,
            launch_overhead_us: 5.0,
            min_parallelism: 1,
            max_parallelism: 4096,
        }
    }
}

impl LoweringConfig {
    /// Raw (uncalibrated) kernel work for a layer at batch size `batch`,
    /// in SM-microseconds.
    pub fn raw_work(&self, layer: &Layer, batch: u32) -> f64 {
        layer.flops() * f64::from(batch.max(1)) / self.flops_per_sm_us
    }

    /// Raw (uncalibrated) kernel parallelism for a layer at batch size
    /// `batch`.
    pub fn raw_parallelism(&self, layer: &Layer, batch: u32) -> f64 {
        layer.output.elements() as f64 * f64::from(batch.max(1)) / self.elements_per_sm
    }

    /// Lowers a layer into a kernel description using the given calibration
    /// scales.
    pub fn lower(&self, layer: &Layer, batch: u32, work_scale: f64, par_scale: f64) -> KernelDesc {
        let work = (self.raw_work(layer, batch) * work_scale).max(1e-3);
        let par = (self.raw_parallelism(layer, batch) * par_scale).ceil();
        let parallelism =
            (par as u32).clamp(self.min_parallelism.max(1), self.max_parallelism.max(1));
        KernelDesc::new(work, parallelism)
            .with_launch_overhead(SimDuration::from_micros_f64(self.launch_overhead_us))
            .with_label(layer.name.clone())
    }

    /// Parallelism after calibration, clamped like [`LoweringConfig::lower`]
    /// but returned as a float for analytic latency computations.
    pub fn scaled_parallelism(&self, layer: &Layer, batch: u32, par_scale: f64) -> f64 {
        let par = (self.raw_parallelism(layer, batch) * par_scale).ceil();
        par.clamp(f64::from(self.min_parallelism.max(1)), f64::from(self.max_parallelism.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerKind, TensorShape};

    fn conv() -> Layer {
        Layer::new(
            "conv",
            LayerKind::Conv2d { in_channels: 64, out_channels: 64, kernel: 3, stride: 1 },
            TensorShape::new(64, 56, 56),
        )
    }

    #[test]
    fn work_scales_linearly_with_batch_and_scale() {
        let cfg = LoweringConfig::default();
        let layer = conv();
        let w1 = cfg.raw_work(&layer, 1);
        let w4 = cfg.raw_work(&layer, 4);
        assert!((w4 / w1 - 4.0).abs() < 1e-9);
        let k1 = cfg.lower(&layer, 1, 1.0, 1.0);
        let k2 = cfg.lower(&layer, 1, 2.0, 1.0);
        assert!((k2.work / k1.work - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parallelism_grows_with_batch_and_respects_bounds() {
        let cfg = LoweringConfig::default();
        let layer = conv();
        let k1 = cfg.lower(&layer, 1, 1.0, 1.0);
        let k8 = cfg.lower(&layer, 8, 1.0, 1.0);
        assert!(k8.parallelism > k1.parallelism);
        let tiny = cfg.lower(&layer, 1, 1.0, 1e-9);
        assert_eq!(tiny.parallelism, cfg.min_parallelism.max(1));
        let huge = cfg.lower(&layer, 64, 1.0, 1e9);
        assert_eq!(huge.parallelism, cfg.max_parallelism);
    }

    #[test]
    fn lowered_kernel_has_launch_overhead_and_label() {
        let cfg = LoweringConfig::default();
        let k = cfg.lower(&conv(), 1, 1.0, 1.0);
        assert_eq!(k.launch_overhead, Some(SimDuration::from_micros_f64(cfg.launch_overhead_us)));
        assert_eq!(k.label.as_deref(), Some("conv"));
        assert!(k.validate().is_ok());
    }

    #[test]
    fn scaled_parallelism_matches_lowered_kernel() {
        let cfg = LoweringConfig::default();
        let layer = conv();
        for batch in [1u32, 2, 8] {
            let analytic = cfg.scaled_parallelism(&layer, batch, 0.5);
            let lowered = cfg.lower(&layer, batch, 1.0, 0.5);
            assert_eq!(analytic as u32, lowered.parallelism);
        }
    }
}
