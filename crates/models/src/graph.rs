//! Model graphs: ordered layer lists with stage boundaries.

use crate::{DnnKind, Layer};

/// A named stage of a model: the unit of DARIS's synchronization-based
/// preemption (Sec. III-B1 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct StageSpec {
    /// Stage name, e.g. `"layer3"`.
    pub name: String,
    /// Index of the first layer belonging to the stage.
    pub first_layer: usize,
    /// One past the last layer belonging to the stage.
    pub end_layer: usize,
}

impl StageSpec {
    /// Number of layers in the stage.
    pub fn layer_count(&self) -> usize {
        self.end_layer - self.first_layer
    }
}

/// An executable description of a DNN: its layers in execution order and the
/// stage boundaries used for staging.
///
/// Branches of non-linear networks (Inception blocks, UNet skips) are listed
/// in serialized order, which is how a single CUDA stream executes them; the
/// paper found that releasing parallel paths on extra streams gains only ~9 %
/// and instead recommends batching, so the serialized view is the right
/// baseline structure.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelGraph {
    /// Which architecture this graph describes.
    pub kind: DnnKind,
    /// All layers in execution order.
    pub layers: Vec<Layer>,
    /// Stage boundaries covering all layers, in order.
    pub stages: Vec<StageSpec>,
}

impl ModelGraph {
    /// Builds a graph from layers and stage boundaries expressed as
    /// `(name, end_layer_exclusive)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the boundaries do not cover all layers in increasing order;
    /// this is a programming error in the model zoo, not a runtime condition.
    pub fn new(kind: DnnKind, layers: Vec<Layer>, boundaries: Vec<(&str, usize)>) -> Self {
        let mut stages = Vec::with_capacity(boundaries.len());
        let mut start = 0usize;
        for (name, end) in boundaries {
            assert!(end > start && end <= layers.len(), "invalid stage boundary {name}: {end}");
            stages.push(StageSpec { name: name.to_owned(), first_layer: start, end_layer: end });
            start = end;
        }
        assert_eq!(start, layers.len(), "stage boundaries must cover every layer");
        ModelGraph { kind, layers, stages }
    }

    /// Number of stages (`n_i` in the paper's task model).
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Number of layers.
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// The layers belonging to stage `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= stage_count()`.
    pub fn stage_layers(&self, index: usize) -> &[Layer] {
        let s = &self.stages[index];
        &self.layers[s.first_layer..s.end_layer]
    }

    /// Total floating-point operations per sample.
    pub fn total_flops(&self) -> f64 {
        self.layers.iter().map(Layer::flops).sum()
    }

    /// Total trainable parameters.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(Layer::params).sum()
    }

    /// Total parameter bytes (`f32` weights), i.e. the resident model size.
    pub fn weight_bytes(&self) -> u64 {
        self.total_params() * 4
    }

    /// FLOPs of each stage, in stage order.
    pub fn stage_flops(&self) -> Vec<f64> {
        (0..self.stage_count())
            .map(|i| self.stage_layers(i).iter().map(Layer::flops).sum())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerKind, TensorShape};

    fn tiny_graph() -> ModelGraph {
        let input = TensorShape::imagenet();
        let l1 = Layer::new(
            "conv1",
            LayerKind::Conv2d { in_channels: 3, out_channels: 8, kernel: 3, stride: 2 },
            input,
        );
        let l2 = Layer::new("pool", LayerKind::Pool { kernel: 2, stride: 2 }, l1.output);
        let l3 = Layer::new("gap", LayerKind::GlobalPool, l2.output);
        let l4 =
            Layer::new("fc", LayerKind::Linear { in_features: 8, out_features: 10 }, l3.output);
        ModelGraph::new(DnnKind::ResNet18, vec![l1, l2, l3, l4], vec![("front", 2), ("back", 4)])
    }

    #[test]
    fn stages_partition_layers() {
        let g = tiny_graph();
        assert_eq!(g.stage_count(), 2);
        assert_eq!(g.layer_count(), 4);
        assert_eq!(g.stage_layers(0).len(), 2);
        assert_eq!(g.stage_layers(1).len(), 2);
        assert_eq!(g.stages[0].layer_count(), 2);
        let total: f64 = g.stage_flops().iter().sum();
        assert!((total - g.total_flops()).abs() < 1e-6);
    }

    #[test]
    fn weight_bytes_are_param_count_times_four() {
        let g = tiny_graph();
        assert_eq!(g.weight_bytes(), g.total_params() * 4);
        assert!(g.total_params() > 0);
    }

    #[test]
    #[should_panic(expected = "stage boundaries must cover every layer")]
    fn uncovered_layers_panic() {
        let g = tiny_graph();
        ModelGraph::new(DnnKind::ResNet18, g.layers, vec![("only", 2)]);
    }
}
