//! Integration tests: the calibrated profiles, executed on the simulated GPU,
//! reproduce the paper's Table I / Fig. 1 within tolerance.

use daris_gpu::{Gpu, GpuSpec, WorkItem};
use daris_models::{DnnKind, ModelProfile};
use proptest::prelude::*;

/// Runs `jobs` back-to-back inferences of `profile` at the given batch size
/// on an otherwise idle simulated GPU and returns the measured JPS.
fn simulate_jps(profile: &ModelProfile, batch: u32, jobs: u32) -> f64 {
    let mut gpu = Gpu::new(GpuSpec::rtx_2080_ti().without_interference());
    let ctx = gpu.add_context(gpu.spec().sm_count).unwrap();
    let stream = gpu.add_stream(ctx).unwrap();
    for j in 0..jobs {
        let item = WorkItem::new(u64::from(j))
            .with_kernels(profile.job_kernels(batch))
            .with_h2d_bytes(profile.input_bytes(batch))
            .with_d2h_bytes(profile.output_bytes(batch));
        gpu.submit(stream, item).unwrap();
    }
    let done = gpu.run_to_idle();
    assert_eq!(done.len() as u32, jobs);
    let elapsed_s = gpu.now().as_secs_f64();
    f64::from(jobs * batch) / elapsed_s
}

#[test]
fn simulated_unbatched_throughput_matches_table1_min_jps() {
    for kind in DnnKind::all() {
        let p = ModelProfile::calibrated(kind);
        let jps = simulate_jps(&p, 1, 20);
        let target = p.reference().min_jps;
        let err = (jps - target).abs() / target;
        assert!(err < 0.08, "{kind}: simulated {jps:.0} JPS vs Table I {target} JPS");
    }
}

#[test]
fn simulated_batched_throughput_matches_table1_max_jps() {
    for kind in DnnKind::all() {
        let p = ModelProfile::calibrated(kind);
        let (best_batch, _) = p.best_batched_jps();
        let jps = simulate_jps(&p, best_batch, 8);
        let target = p.reference().max_jps;
        let err = (jps - target).abs() / target;
        assert!(
            err < 0.15,
            "{kind}: simulated {jps:.0} JPS at batch {best_batch} vs Table I {target} JPS"
        );
    }
}

#[test]
fn analytic_and_simulated_latency_agree() {
    // The calibration is analytic; the simulator must agree with it, or the
    // calibration would be meaningless.
    for kind in DnnKind::all() {
        let p = ModelProfile::calibrated(kind);
        let analytic_us = p.isolated_latency_us(1);
        let mut gpu = Gpu::new(GpuSpec::rtx_2080_ti().without_interference());
        let ctx = gpu.add_context(68).unwrap();
        let stream = gpu.add_stream(ctx).unwrap();
        let item = WorkItem::new(0)
            .with_kernels(p.job_kernels(1))
            .with_h2d_bytes(p.input_bytes(1))
            .with_d2h_bytes(p.output_bytes(1));
        gpu.submit(stream, item).unwrap();
        let done = gpu.run_to_idle();
        let simulated_us = done[0].execution_time().as_micros_f64();
        let err = (analytic_us - simulated_us).abs() / analytic_us;
        assert!(err < 0.02, "{kind}: analytic {analytic_us:.1}us vs simulated {simulated_us:.1}us");
    }
}

#[test]
fn batching_gain_shape_matches_figure_1() {
    // Fig. 1 / Table I ordering: InceptionV3 >> ResNet50 ≳ ResNet18 >> UNet.
    let gain = |kind| ModelProfile::calibrated(kind).batching_gain();
    assert!(gain(DnnKind::InceptionV3) > 2.5);
    assert!(gain(DnnKind::ResNet18) > 1.4 && gain(DnnKind::ResNet18) < 1.9);
    assert!(gain(DnnKind::UNet) < 1.2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Batched latency is monotone non-decreasing in batch size, and per-job
    /// latency is monotone non-increasing (batching never hurts throughput
    /// on an otherwise idle device).
    #[test]
    fn batching_never_reduces_throughput(batch_exp in 1u32..6) {
        let p = ModelProfile::calibrated(DnnKind::InceptionV3);
        let b1 = 1u32 << (batch_exp - 1);
        let b2 = 1u32 << batch_exp;
        let l1 = p.isolated_latency_us(b1);
        let l2 = p.isolated_latency_us(b2);
        prop_assert!(l2 >= l1);
        prop_assert!(l2 / f64::from(b2) <= l1 / f64::from(b1) + 1e-9);
    }

    /// Stage kernels at any batch size remain valid GPU kernels.
    #[test]
    fn stage_kernels_are_always_valid(stage in 0usize..4, batch in 1u32..32) {
        let p = ModelProfile::calibrated(DnnKind::ResNet50);
        for k in p.stage_kernels(stage, batch) {
            prop_assert!(k.validate().is_ok());
            prop_assert!(k.parallelism >= 1);
        }
    }
}
