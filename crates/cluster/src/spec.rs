//! Fleet description: devices, partitions and capacity accounting.

use daris_core::{DarisConfig, GpuPartition};
use daris_gpu::GpuSpec;

use crate::{ClusterError, Result};

/// One member of the fleet: a simulated device plus the GPU partition DARIS
/// uses on it.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable device name, e.g. `"a100-0"`.
    pub name: String,
    /// The simulated hardware.
    pub gpu: GpuSpec,
    /// The spatial partition DARIS runs on this device.
    pub partition: GpuPartition,
}

impl DeviceSpec {
    /// Creates a device spec.
    pub fn new(name: impl Into<String>, gpu: GpuSpec, partition: GpuPartition) -> Self {
        DeviceSpec { name: name.into(), gpu, partition }
    }

    /// The utilization capacity the placement engine packs against: the
    /// device's total stream count (`Nc × Ns`, the same per-context `Ns`
    /// capacity the Eq. 11–12 admission test uses, summed over contexts),
    /// scaled by the device's SM count relative to `reference_sm` — a faster
    /// device serves the same task at a proportionally lower utilization
    /// under saturation, so it can carry proportionally more of them.
    pub fn utilization_capacity(&self, reference_sm: u32) -> f64 {
        let streams = f64::from(self.partition.parallel_tasks());
        streams * f64::from(self.gpu.sm_count) / f64::from(reference_sm.max(1))
    }

    /// Device memory available for resident model weights, in bytes.
    pub fn memory_budget(&self) -> u64 {
        self.gpu.memory_bytes
    }
}

/// An ordered set of devices forming the fleet.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterSpec {
    devices: Vec<DeviceSpec>,
}

impl ClusterSpec {
    /// An empty cluster; add devices with [`with_device`](Self::with_device).
    pub fn new() -> Self {
        ClusterSpec::default()
    }

    /// Adds one device (builder style).
    pub fn with_device(mut self, device: DeviceSpec) -> Self {
        self.devices.push(device);
        self
    }

    /// A homogeneous fleet of `n` copies of (`gpu`, `partition`). Device 0
    /// keeps `gpu`'s own jitter seed (so a 1-device cluster reproduces the
    /// single-GPU path exactly); later devices get decorrelated seeds.
    pub fn homogeneous(n: usize, gpu: GpuSpec, partition: GpuPartition) -> Self {
        let mut cluster = ClusterSpec::new();
        for i in 0..n {
            let seed = gpu.jitter_seed.wrapping_add(i as u64);
            let device_gpu = gpu.clone().with_seed(seed);
            cluster =
                cluster.with_device(DeviceSpec::new(format!("gpu{i}"), device_gpu, partition));
        }
        cluster
    }

    /// The demo heterogeneous fleet used by the cluster experiments: the
    /// paper's RTX 2080 Ti, a data-center A100 and H100, and an embedded
    /// Orin (STR only — the paper notes MPS-scale sharing is not feasible on
    /// embedded parts).
    pub fn heterogeneous_demo() -> Self {
        ClusterSpec::new()
            .with_device(DeviceSpec::new(
                "rtx2080ti-0",
                GpuSpec::rtx_2080_ti(),
                GpuPartition::mps(6, 6.0),
            ))
            .with_device(DeviceSpec::new("a100-0", GpuSpec::a100(), GpuPartition::mps(8, 8.0)))
            .with_device(DeviceSpec::new("h100-0", GpuSpec::h100(), GpuPartition::mps(10, 10.0)))
            .with_device(DeviceSpec::new("orin-0", GpuSpec::orin(), GpuPartition::str_streams(4)))
    }

    /// A heterogeneous fleet of `n` devices cycling through the data-center
    /// and embedded presets — A100, H100, Orin — used by the 16–64-device
    /// scaling sweeps. Seeds are decorrelated per device (device 0 keeps the
    /// preset's own seed, like [`homogeneous`](Self::homogeneous)).
    pub fn heterogeneous_mix(n: usize) -> Self {
        let presets: [(&str, GpuSpec, GpuPartition); 3] = [
            ("a100", GpuSpec::a100(), GpuPartition::mps(8, 8.0)),
            ("h100", GpuSpec::h100(), GpuPartition::mps(10, 10.0)),
            ("orin", GpuSpec::orin(), GpuPartition::str_streams(4)),
        ];
        let mut cluster = ClusterSpec::new();
        for i in 0..n {
            let (name, gpu, partition) = &presets[i % presets.len()];
            let seed = gpu.jitter_seed.wrapping_add(i as u64);
            let device_gpu = gpu.clone().with_seed(seed);
            cluster =
                cluster.with_device(DeviceSpec::new(format!("{name}-{i}"), device_gpu, *partition));
        }
        cluster
    }

    /// The devices in fleet order.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Total SM count across the fleet (the saturated-throughput proxy).
    pub fn total_sms(&self) -> u32 {
        self.devices.iter().map(|d| d.gpu.sm_count).sum()
    }

    /// The contiguous device spans a `racks`-way hierarchical dispatch
    /// partitions this fleet into — balanced to within one device, `racks`
    /// clamped to `1..=len()`. This is the same layout
    /// `ClusterDispatcher` uses for `ClusterConfig::racks`, exposed so
    /// benches and reports can label devices by rack.
    pub fn rack_spans(&self, racks: usize) -> Vec<std::ops::Range<usize>> {
        crate::rack::rack_spans(self.len(), racks)
    }

    /// Validates every device's partition against its hardware.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::EmptyCluster`] for an empty fleet and
    /// [`ClusterError::InvalidDevice`] for an infeasible partition.
    pub fn validate(&self) -> Result<()> {
        if self.devices.is_empty() {
            return Err(ClusterError::EmptyCluster);
        }
        for device in &self.devices {
            DarisConfig::new(device.partition).with_gpu(device.gpu.clone()).validate().map_err(
                |source| ClusterError::InvalidDevice { device: device.name.clone(), source },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_fleet_has_distinct_seeds_and_device_zero_unchanged() {
        let gpu = GpuSpec::rtx_2080_ti();
        let fleet = ClusterSpec::homogeneous(3, gpu.clone(), GpuPartition::mps(6, 6.0));
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.devices()[0].gpu, gpu, "device 0 must match the single-GPU path");
        let mut seeds: Vec<u64> = fleet.devices().iter().map(|d| d.gpu.jitter_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 3);
        assert!(fleet.validate().is_ok());
    }

    #[test]
    fn heterogeneous_demo_is_valid_and_ordered_by_capacity() {
        let fleet = ClusterSpec::heterogeneous_demo();
        assert!(fleet.validate().is_ok());
        assert_eq!(fleet.len(), 4);
        let cap = |i: usize| fleet.devices()[i].utilization_capacity(68);
        // H100 > A100 > 2080 Ti > Orin in effective capacity.
        assert!(cap(2) > cap(1));
        assert!(cap(1) > cap(0));
        assert!(cap(0) > cap(3));
        assert!(fleet.total_sms() > 300);
    }

    #[test]
    fn utilization_capacity_scales_with_sm_ratio() {
        let rtx = DeviceSpec::new("r", GpuSpec::rtx_2080_ti(), GpuPartition::mps(6, 6.0));
        assert!((rtx.utilization_capacity(68) - 6.0).abs() < 1e-9);
        let a100 = DeviceSpec::new("a", GpuSpec::a100(), GpuPartition::mps(6, 6.0));
        assert!((a100.utilization_capacity(68) - 6.0 * 108.0 / 68.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_empty_and_infeasible() {
        assert_eq!(ClusterSpec::new().validate(), Err(ClusterError::EmptyCluster));
        let bad = ClusterSpec::new().with_device(DeviceSpec::new(
            "orin-overpartitioned",
            GpuSpec::orin(),
            GpuPartition::mps(32, 1.0),
        ));
        assert!(matches!(bad.validate(), Err(ClusterError::InvalidDevice { .. })));
    }
}
