//! Fleet-level aggregation of per-device experiment summaries.

use daris_gpu::SimDuration;
use daris_metrics::{ExperimentSummary, PrioritySummary};

/// Aggregate metrics of one cluster run, built from the per-device
/// [`ExperimentSummary`]s (plus the dispatcher's accounting of jobs whose
/// tasks no device could take at placement time).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSummary {
    /// Number of devices in the fleet.
    pub devices: usize,
    /// Simulated duration of the run.
    pub duration: SimDuration,
    /// Aggregate completed inferences per second across the fleet.
    pub throughput_jps: f64,
    /// High-priority outcomes, fleet-wide.
    pub high: PrioritySummary,
    /// Low-priority outcomes, fleet-wide.
    pub low: PrioritySummary,
    /// Combined outcomes, fleet-wide.
    pub total: PrioritySummary,
    /// Mean GPU utilization over devices that reported one.
    pub mean_gpu_utilization: Option<f64>,
    /// Queued jobs migrated across devices at stage boundaries (within a
    /// rack; cross-rack epoch moves are counted separately).
    pub migrations: usize,
    /// Jobs admitted on a non-home device after their home rejected them.
    pub cluster_admissions: usize,
    /// Tasks the placement engine rejected outright.
    pub placement_rejected_tasks: usize,
    /// Number of racks the fleet was partitioned into (1 = flat dispatch).
    pub racks: usize,
    /// Queued jobs migrated across rack lines at rebalance epochs.
    pub cross_rack_migrations: usize,
}

impl ClusterSummary {
    /// Aggregates device summaries (each over a *disjoint* job population).
    /// `extra` carries jobs accounted by the dispatcher itself — releases of
    /// tasks that were never placed on any device.
    pub fn aggregate<'a>(
        parts: impl IntoIterator<Item = &'a ExperimentSummary> + Clone,
        extra: &ExperimentSummary,
        duration: SimDuration,
    ) -> Self {
        let devices = parts.clone().into_iter().count();
        let high = PrioritySummary::merged(
            parts.clone().into_iter().map(|s| &s.high).chain([&extra.high]),
        );
        let low =
            PrioritySummary::merged(parts.clone().into_iter().map(|s| &s.low).chain([&extra.low]));
        let total = PrioritySummary::merged(
            parts.clone().into_iter().map(|s| &s.total).chain([&extra.total]),
        );
        let throughput_jps = if duration.is_zero() {
            0.0
        } else {
            total.completed_inferences as f64 / duration.as_secs_f64()
        };
        let utils: Vec<f64> = parts.into_iter().filter_map(|s| s.gpu_utilization).collect();
        let mean_gpu_utilization = if utils.is_empty() {
            None
        } else {
            Some(utils.iter().sum::<f64>() / utils.len() as f64)
        };
        ClusterSummary {
            devices,
            duration,
            throughput_jps,
            high,
            low,
            total,
            mean_gpu_utilization,
            migrations: 0,
            cluster_admissions: 0,
            placement_rejected_tasks: 0,
            racks: 1,
            cross_rack_migrations: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daris_gpu::{SimDuration, SimTime};
    use daris_metrics::MetricsCollector;
    use daris_models::DnnKind;
    use daris_workload::TaskSet;

    #[test]
    fn aggregate_sums_counts_and_throughput() {
        let ts = TaskSet::table2(DnnKind::UNet);
        let task = &ts.tasks()[0];
        let horizon = SimTime::from_millis(500);
        let device = |jobs: u64| {
            let mut m = MetricsCollector::new();
            for i in 0..jobs {
                let j = task.job(i);
                m.record_release(&j);
                m.record_completion(&j, j.release + SimDuration::from_millis(2));
            }
            m.summarize(horizon).with_gpu_utilization(0.5)
        };
        let a = device(4);
        let b = device(6);
        let empty = MetricsCollector::new().summarize(horizon);
        let s = ClusterSummary::aggregate([&a, &b], &empty, SimDuration::from_millis(500));
        assert_eq!(s.devices, 2);
        assert_eq!(s.total.completed, 10);
        // 10 inferences over 0.5 s = 20 JPS.
        assert!((s.throughput_jps - 20.0).abs() < 1e-9);
        assert_eq!(s.mean_gpu_utilization, Some(0.5));
        // The extra (unplaced) accounting flows into the totals.
        let mut rejected = MetricsCollector::new();
        let j = task.job(99);
        rejected.record_rejection(&j);
        let extra = rejected.summarize(horizon);
        let s2 = ClusterSummary::aggregate([&a], &extra, SimDuration::from_millis(500));
        assert_eq!(s2.total.rejected, 1);
        assert_eq!(s2.total.released, 5);
    }
}
