//! The cluster dispatcher: one scheduler per device — any implementation of
//! the `daris-core` [`Scheduler`] trait, DARIS by default — coordinated
//! through fixed-length **synchronization rounds** with the per-device
//! simulation fanned out to a persistent worker pool in between, and the
//! fleet partitioned into [racks](crate::ClusterConfig::racks) whose
//! boundary work stays local between coarser rebalance epochs.
//!
//! The dispatcher is generic over the per-device scheduler
//! (`ClusterDispatcher<Sch>`): [`ClusterDispatcher::new`] builds the
//! default DARIS fleet, [`ClusterDispatcher::with_factory`] accepts a
//! per-device constructor for anything else (the `daris-baselines` servers,
//! most usefully), and every boundary phase — admission retry, migration,
//! rack rebalance — speaks only the trait surface, so baselines inherit the
//! full cluster machinery unchanged.
//!
//! Three workload shapes share the same round loop, each a different
//! [`ArrivalSource`] per device: strictly periodic task sets
//! ([`run_until`](ClusterDispatcher::run_until)), seeded bursty / diurnal /
//! correlated generators ([`run_generated`](ClusterDispatcher::run_generated),
//! keyed by global task index so local streams preserve the global trace
//! phases), and recorded trace replays
//! ([`run_replay`](ClusterDispatcher::run_replay), the global trace split
//! along the placement). A live generated run and the replay of its recorded
//! trace are byte-identical at any thread count.
//!
//! # Round protocol
//!
//! Simulated time is cut into rounds of [`ClusterConfig::sync_quantum`].
//! Within a round `[t0, t1)` every device is **independent**: it runs its own
//! event loop ([`DarisScheduler::run_span`]) over its own simulator events
//! and the releases of its own placed tasks, each handled at its exact
//! simulated time — the identical call sequence `run_until` issues on a
//! single GPU, which is why a 1-device cluster reproduces the single-GPU
//! path bit for bit (a property test pins this down). Devices only interact
//! at round boundaries:
//!
//! * **rack-local admission** — a job whose home device's admission test
//!   (Eq. 11–12) rejected it mid-round is retried at the boundary on the
//!   least-loaded [`ClusterConfig::retry_fanout`] other devices *of its
//!   home rack*, adopting the task as a *guest* on first contact; only when
//!   every consulted device refuses is the rejection charged to the home
//!   device. Candidates come from an incrementally maintained
//!   [load ordering](crate::rack) — O(fanout + log rack) per rejection
//!   instead of an O(fleet) rescan;
//! * **stage-boundary migration** — queued jobs that have not started their
//!   first stage are pulled from devices with a backlog and no idle streams
//!   onto devices of the same rack that are sitting idle;
//! * **cross-rack rebalance** — every
//!   [`ClusterConfig::rebalance_epoch`] rounds (and only with more than one
//!   rack), racks exchange load summaries and queued-unstarted jobs migrate
//!   across rack lines, in fixed rack/device-index order.
//!
//! With `racks = 1` (the default) the retry and migration domains span the
//! whole fleet and the epoch phase never runs: the hierarchy degenerates to
//! flat dispatch exactly.
//!
//! # Parallel stepping, deterministic join
//!
//! Because a round's per-device work touches nothing but that device's own
//! scheduler and arrival stream, the dispatcher fans the device spans out to
//! the persistent spin/park worker pool in [`crate::pool`]
//! ([`ClusterConfig::threads`] workers spawned once per run, parked between
//! rounds, device `d` always on worker `d % workers`). Per-device results
//! (rejected releases) are collected in fixed device-index order, so
//! completions, retries, migrations and metrics are **byte-identical at any
//! thread count** — thread scheduling can reorder the wall-clock execution
//! but never the simulated outcome. Scheduler construction is fanned out
//! through the same module.
//!
//! Idle devices still cost nothing: a device with no due event and no due
//! release is skipped and its clock trails behind, which is unobservable —
//! every scheduler decision (admission, backlog, idle streams, load
//! fractions) is state-based, not clock-based — until a retry or migration
//! lands on it and [`ClusterDispatcher::catch_up`] fast-forwards it in one
//! jump; `finish` aligns every device at the horizon.

use std::collections::BTreeMap;
use std::ops::Range;

use daris_core::{
    AblationFlags, DarisConfig, DarisScheduler, ExperimentOutcome, RunSpec, Scheduler, Workload,
};
use daris_gpu::{GpuSpec, SimDuration, SimTime};
use daris_metrics::MetricsCollector;
use daris_telemetry::{
    EventKind, MemorySink, RoundPhase, SinkHandle, TelemetryEvent, WallClockProfiler,
    CLUSTER_DEVICE, RACK_DEVICE_BASE,
};
use daris_workload::{
    ArrivalSource, ArrivalStream, GenSpec, GeneratedStream, Job, JobId, LoadDetectorConfig,
    ReleaseJitter, TaskId, TaskSet, Trace, TraceError, TraceEvent, TracePlayer,
};

use crate::pool::{self, DeviceCell, FleetCells};
use crate::rack::{LoadOrder, RackDispatcher};
use crate::{
    place, AutoscaleConfig, ClusterError, ClusterSpec, ClusterSummary, DeviceSpec, ElasticQuantum,
    Placement, PlacementStrategy, Result,
};

/// Upper bound on migrations per synchronization round, a guard against
/// pathological ping-ponging (in practice a round moves at most a few jobs).
const MAX_MIGRATIONS_PER_STEP: usize = 8;

/// Cluster-level scheduling configuration, shared by every device scheduler.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Placement policy for the offline task-to-device assignment.
    pub strategy: PlacementStrategy,
    /// MRET window size (the paper selects 5).
    pub window_size: usize,
    /// Ablation switches, applied on every device.
    pub ablation: AblationFlags,
    /// Apply the admission test to high-priority jobs too (`Overload+HPA`).
    pub hp_admission: bool,
    /// Retry rejected jobs on other devices before giving up.
    pub cluster_admission: bool,
    /// Migrate queued jobs from overloaded to idle devices.
    pub migration: bool,
    /// Device the model profiles are calibrated against (the paper's
    /// measurement device). Pinned fleet-wide so hardware speed emerges from
    /// the simulation instead of being re-calibrated away.
    pub reference_gpu: GpuSpec,
    /// Worker threads the dispatcher fans per-device simulation out to
    /// between synchronization rounds (and during construction). `1` runs
    /// serially on the caller's thread. Results are byte-identical at every
    /// thread count.
    pub threads: usize,
    /// Length of one synchronization round: how often rejected releases are
    /// retried and queued jobs may migrate. Shorter rounds react faster but
    /// synchronize more often. Must not be zero —
    /// [`ClusterDispatcher::new`] rejects a zero quantum with
    /// [`ClusterError::ZeroSyncQuantum`].
    pub sync_quantum: SimDuration,
    /// Number of racks the fleet is partitioned into (contiguous, balanced
    /// device spans). Admission retry and stage-boundary migration stay
    /// rack-local every round; racks exchange load summaries and queued
    /// jobs only at [`rebalance_epoch`](Self::rebalance_epoch) boundaries.
    /// `1` (the default) is flat dispatch over the whole fleet. Clamped to
    /// `1..=devices`.
    pub racks: usize,
    /// Rounds between cross-rack rebalances: at each epoch boundary the
    /// dispatcher exchanges per-rack load summaries and migrates
    /// queued-unstarted jobs from backlogged devices to idle devices of
    /// *other* racks. Only meaningful with `racks > 1`; clamped to ≥ 1.
    pub rebalance_epoch: u64,
    /// Select retry candidates with the flat dispatcher's per-job O(rack)
    /// load rescan instead of the incrementally maintained ordering. Both
    /// paths are byte-identical — a debug assertion checks every selection
    /// and a property test pins whole runs — so this exists purely as the
    /// executable reference the hierarchy is validated against. Leave off.
    pub reference_retry_scan: bool,
    /// How many other devices (ascending active-load order) a rejected job is
    /// retried on before the rejection is charged. Saturated fleets reject on
    /// the least-loaded device almost iff they reject everywhere, so a small
    /// fan-out keeps the boundary serial work O(1) per rejection instead of
    /// O(fleet). `usize::MAX` restores exhaustive retries; `0` disables
    /// retries entirely (like `cluster_admission: false`).
    pub retry_fanout: usize,
    /// Load-elastic bounds for the synchronization quantum. When set, every
    /// round boundary recomputes the *next* round's length from the fleet's
    /// mean active load (a loaded fleet synchronizes often, an idle fleet
    /// strides long rounds); the static [`sync_quantum`](Self::sync_quantum)
    /// — clamped into the bounds — seeds the first round. Quantum changes
    /// apply only at round boundaries, so determinism is untouched: the
    /// round sequence is a pure function of simulated state. `None` (the
    /// default) keeps the quantum fixed.
    pub elastic_quantum: Option<ElasticQuantum>,
    /// Device join/leave autoscaling. When set, the dispatcher drains
    /// devices out of the fleet under sustained low load and rejoins them
    /// under high load, evaluated every [`AutoscaleConfig::epoch`] rounds. A
    /// drained device's pending releases are redirected through the
    /// rack-local retry path and its queued-unstarted jobs re-placed through
    /// the migration path, so autoscaling requires
    /// [`cluster_admission`](Self::cluster_admission) with a non-zero
    /// [`retry_fanout`](Self::retry_fanout) — rejected at construction
    /// otherwise. `None` (the default) keeps every device online.
    pub autoscale: Option<AutoscaleConfig>,
    /// Burst-triggered HP admission for every device scheduler (the
    /// adaptive alternative to the static [`hp_admission`](Self::hp_admission)
    /// flag, which wins when both are set): each device runs a windowed
    /// arrival-rate detector over its own release stream and applies the
    /// Overload+HPA admission test to high-priority jobs only while a burst
    /// is in progress. Forwarded to the default DARIS factory; custom
    /// factories read it from their captured config themselves.
    pub adaptive_hpa: Option<LoadDetectorConfig>,
    /// Fleet-wide telemetry sink. Each device scheduler records into a
    /// private per-device buffer during its (possibly parallel) span; the
    /// dispatcher merges the buffers into this sink at round boundaries in
    /// fixed device order, stamping fleet device ids, and adds its own
    /// cluster-layer events (round spans, retries, migrations). The merged
    /// stream is therefore byte-identical at any thread count. `None` (the
    /// default) keeps every device sink-free.
    pub sink: Option<SinkHandle>,
    /// Wall-clock self-profiling of the round phases (span / retry /
    /// migration / merge), for performance reporting only. Explicitly
    /// **nondeterministic** (it measures host time) and kept strictly out of
    /// the simulated state: attaching or detaching a profiler cannot change
    /// any outcome.
    pub profiler: Option<WallClockProfiler>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            strategy: PlacementStrategy::default(),
            window_size: 5,
            ablation: AblationFlags::full(),
            hp_admission: false,
            cluster_admission: true,
            migration: true,
            reference_gpu: GpuSpec::rtx_2080_ti(),
            threads: 1,
            sync_quantum: SimDuration::from_millis(1),
            racks: 1,
            rebalance_epoch: 8,
            reference_retry_scan: false,
            retry_fanout: 4,
            elastic_quantum: None,
            autoscale: None,
            adaptive_hpa: None,
            sink: None,
            profiler: None,
        }
    }
}

/// One device's share of a cluster run.
#[derive(Debug, Clone)]
pub struct DeviceOutcome {
    /// The device's name from the [`ClusterSpec`].
    pub name: String,
    /// The device's scheduler outcome (empty summary for an idle device that
    /// received no tasks).
    pub outcome: ExperimentOutcome,
}

/// Result of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Fleet-level aggregate metrics.
    pub summary: ClusterSummary,
    /// Per-device outcomes, in fleet order.
    pub devices: Vec<DeviceOutcome>,
}

impl ClusterOutcome {
    /// One hash over the aggregate and every per-device summary: any drift
    /// in counts, rates or float accumulation order changes it. This is the
    /// byte-identity check the determinism suites and the `trace_replay`
    /// runner share — widen it here and every check widens with it.
    pub fn summary_hash(&self) -> u64 {
        use std::hash::{DefaultHasher, Hash, Hasher};
        let mut hasher = DefaultHasher::new();
        format!("{:?}", self.summary).hash(&mut hasher);
        for device in &self.devices {
            format!("{:?}", device.outcome.summary).hash(&mut hasher);
        }
        hasher.finish()
    }
}

#[derive(Debug)]
struct DeviceRuntime<Sch> {
    name: String,
    /// `None` for a device the placement left without tasks: it idles for
    /// the whole run (it has no scheduler to adopt guests into either).
    scheduler: Option<Sch>,
    /// Global task index → device-local task id (placed and adopted tasks).
    local_of_global: BTreeMap<usize, TaskId>,
    /// The inverse map, indexed by local task id.
    global_of_local: Vec<usize>,
    /// Private telemetry buffer the device's scheduler records into during
    /// its span (only when [`ClusterConfig::sink`] is set). Merged into the
    /// fleet sink at round boundaries in device order, so worker threads
    /// never contend on — or reorder — the user's sink.
    buffer: Option<MemorySink>,
}

/// One device's construction context, handed to the scheduler factory of
/// [`ClusterDispatcher::with_factory`] — everything a per-device scheduler
/// build needs, in fleet order.
#[derive(Debug)]
pub struct DeviceSlot<'a> {
    /// The device's fleet index.
    pub index: usize,
    /// The device's spec from the [`ClusterSpec`].
    pub spec: &'a DeviceSpec,
    /// The device's placed task set (device-local task ids).
    pub taskset: &'a TaskSet,
    /// The fleet-wide reference calibration device
    /// ([`ClusterConfig::reference_gpu`]).
    pub reference: &'a GpuSpec,
    /// Handle on the device's private telemetry buffer, present iff the
    /// cluster config carries a [`sink`](ClusterConfig::sink). Schedulers
    /// that record telemetry should adopt it; others may drop it.
    pub sink: Option<SinkHandle>,
}

/// Runs a [`TaskSet`] on a fleet of devices, one `Sch` scheduler per device.
///
/// `Sch` is any [`Scheduler`] implementation; the default is the DARIS
/// runtime ([`ClusterDispatcher::new`]), and
/// [`ClusterDispatcher::with_factory`] builds a fleet of anything else.
#[derive(Debug)]
pub struct ClusterDispatcher<Sch = DarisScheduler> {
    config: ClusterConfig,
    taskset: TaskSet,
    placement: Placement,
    devices: Vec<DeviceRuntime<Sch>>,
    /// Accounts releases of tasks no device could take at placement time.
    unplaced: MetricsCollector,
    migrations: usize,
    cluster_admissions: usize,
    cross_rack_migrations: usize,
}

fn localize(mut job: Job, local: TaskId) -> Job {
    job.id.task = local;
    job
}

impl ClusterDispatcher {
    /// Places `taskset` on `cluster` and builds one DARIS scheduler per
    /// device that received tasks, via [`with_factory`](Self::with_factory)
    /// with the default DARIS factory (per-device [`DarisConfig`] derived
    /// from the device spec and the cluster config).
    ///
    /// # Errors
    ///
    /// Fails on an empty cluster or task set, a zero
    /// [`sync_quantum`](ClusterConfig::sync_quantum), an infeasible device
    /// partition, or a device scheduler that cannot be built (e.g. a plan
    /// whose model weights exceed device memory — the placement engine's
    /// accounting prevents this for the shipped specs). With several failing
    /// devices, the error reported is the lowest-indexed one.
    pub fn new(taskset: &TaskSet, cluster: ClusterSpec, config: ClusterConfig) -> Result<Self> {
        let window_size = config.window_size;
        let ablation = config.ablation;
        let hp_admission = config.hp_admission;
        let adaptive_hpa = config.adaptive_hpa;
        Self::with_factory(taskset, cluster, config, move |slot| {
            let mut device_config = DarisConfig::new(slot.spec.partition)
                .with_gpu(slot.spec.gpu.clone())
                .with_reference_calibration(slot.reference.clone())
                .with_window_size(window_size)
                .with_ablation(ablation);
            if hp_admission {
                device_config = device_config.with_hp_admission();
            }
            if let Some(detector) = adaptive_hpa {
                device_config = device_config.with_adaptive_hpa(detector);
            }
            if let Some(sink) = slot.sink {
                device_config = device_config.with_sink(sink);
            }
            DarisScheduler::new(slot.taskset, device_config)
        })
    }
}

impl<Sch: Scheduler + Send> ClusterDispatcher<Sch> {
    /// Places `taskset` on `cluster` and builds one scheduler per device
    /// that received tasks by calling `factory` with each device's
    /// [`DeviceSlot`]. This is how non-DARIS fleets are assembled — e.g. a
    /// `daris-baselines` server's `scheduler(...)` constructor per device —
    /// while reusing placement, the round loop, retries and migration
    /// unchanged. With `config.threads > 1` the (independent,
    /// profiling-heavy) per-device builds are fanned out through the
    /// worker-pool module; results and errors are collected in device order.
    ///
    /// # Errors
    ///
    /// Fails on an empty cluster or task set, a zero
    /// [`sync_quantum`](ClusterConfig::sync_quantum), an infeasible device
    /// partition, or a factory error (wrapped in
    /// [`ClusterError::Scheduler`] with the device's name). With several
    /// failing devices, the error reported is the lowest-indexed one.
    pub fn with_factory(
        taskset: &TaskSet,
        cluster: ClusterSpec,
        config: ClusterConfig,
        factory: impl Fn(DeviceSlot<'_>) -> daris_core::Result<Sch> + Sync,
    ) -> Result<Self> {
        cluster.validate()?;
        if taskset.is_empty() {
            return Err(ClusterError::EmptyTaskSet);
        }
        if config.sync_quantum.is_zero() {
            return Err(ClusterError::ZeroSyncQuantum);
        }
        if let Some(elastic) = &config.elastic_quantum {
            elastic.validate()?;
        }
        if let Some(autoscale) = &config.autoscale {
            autoscale.validate()?;
            if !config.cluster_admission || config.retry_fanout == 0 {
                return Err(ClusterError::InvalidAdaptiveConfig(
                    "autoscaling redirects drained devices' releases through the admission \
                     retry path; it requires cluster_admission with retry_fanout > 0"
                        .into(),
                ));
            }
        }
        if let Some(detector) = &config.adaptive_hpa {
            if detector.window.is_zero() {
                return Err(ClusterError::InvalidAdaptiveConfig(
                    "adaptive-HPA detector window must be non-zero".into(),
                ));
            }
            if !(detector.calm_ratio > 0.0 && detector.calm_ratio <= detector.burst_ratio) {
                return Err(ClusterError::InvalidAdaptiveConfig(
                    "adaptive-HPA thresholds must satisfy 0 < calm_ratio <= burst_ratio".into(),
                ));
            }
        }
        let placement = place(taskset, &cluster, config.strategy, &config.reference_gpu);

        // One private buffer per device when a fleet sink is attached; the
        // user's sink itself is never handed to a device scheduler.
        let buffers: Vec<Option<MemorySink>> = (0..cluster.len())
            .map(|_| config.sink.as_ref().map(|_| MemorySink::unbounded()))
            .collect();

        let build_one = |device: usize| -> Result<Option<Sch>> {
            let spec = &cluster.devices()[device];
            let plan = &placement.plans[device];
            if plan.taskset.is_empty() {
                return Ok(None);
            }
            factory(DeviceSlot {
                index: device,
                spec,
                taskset: &plan.taskset,
                reference: &config.reference_gpu,
                sink: buffers[device].as_ref().map(|b| SinkHandle::new(b.clone())),
            })
            .map(Some)
            .map_err(|source| ClusterError::Scheduler { device: spec.name.clone(), source })
        };

        let n = cluster.len();
        let workers = config.threads.max(1).min(n);
        let built = pool::build_striped(n, workers, build_one);

        let mut devices = Vec::with_capacity(n);
        for ((result, buffer), (spec, plan)) in
            built.into_iter().zip(buffers).zip(cluster.devices().iter().zip(&placement.plans))
        {
            let scheduler = result?;
            let local_of_global = plan
                .task_indices
                .iter()
                .enumerate()
                .map(|(local, &global)| (global, TaskId(local as u32)))
                .collect();
            devices.push(DeviceRuntime {
                name: spec.name.clone(),
                scheduler,
                local_of_global,
                global_of_local: plan.task_indices.clone(),
                buffer,
            });
        }
        Ok(ClusterDispatcher {
            config,
            taskset: taskset.clone(),
            placement,
            devices,
            unplaced: MetricsCollector::new(),
            migrations: 0,
            cluster_admissions: 0,
            cross_rack_migrations: 0,
        })
    }

    /// The offline placement this dispatcher runs under.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Simulated GPU events processed across the whole fleet so far.
    pub fn events_processed(&self) -> u64 {
        self.devices.iter().filter_map(|d| d.scheduler.as_ref()).map(Sch::events_processed).sum()
    }

    /// Runs the workload described by a [`RunSpec`] on the fleet — the
    /// cluster counterpart of [`Scheduler::run`], and the preferred entry
    /// point; [`run_until`](Self::run_until),
    /// [`run_jittered`](Self::run_jittered),
    /// [`run_generated`](Self::run_generated) and
    /// [`run_replay`](Self::run_replay) are its shape-specific forms. Call
    /// once per dispatcher.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::InvalidRunSpec`] for a spec without a
    /// horizon, a replay whose horizon does not match its trace, or a
    /// workload shape the cluster does not implement (named in the error),
    /// and [`ClusterError::Trace`] for a replay whose trace does not fit
    /// this cluster's task set.
    pub fn run(&mut self, spec: &RunSpec) -> Result<ClusterOutcome> {
        let horizon = spec.horizon().ok_or_else(|| {
            ClusterError::InvalidRunSpec("no horizon (call RunSpec::until)".into())
        })?;
        match spec.workload() {
            Workload::Periodic { jitter: ReleaseJitter::None } => Ok(self.run_until(horizon)),
            Workload::Periodic { jitter } => Ok(self.run_jittered(*jitter, horizon)),
            Workload::Generated(gen) => Ok(self.run_generated(gen, horizon)),
            Workload::Replay(trace) => {
                if horizon != trace.horizon() {
                    return Err(ClusterError::InvalidRunSpec(
                        "replay horizon must match the trace horizon".into(),
                    ));
                }
                self.run_replay(trace)
            }
            // `Workload` is non-exhaustive: name the variant a future shape
            // arrives as instead of a bare "unsupported".
            other => {
                Err(ClusterError::InvalidRunSpec(format!("unsupported workload shape: {other:?}")))
            }
        }
    }

    /// Runs a periodic [`TaskSet`] workload on the fleet until `horizon` and
    /// returns per-device and aggregate outcomes. Call once per dispatcher.
    ///
    /// *Shape-specific form* of [`run`](Self::run) — equivalent to
    /// `run(&RunSpec::periodic().until(horizon))`.
    pub fn run_until(&mut self, horizon: SimTime) -> ClusterOutcome {
        // Releases of tasks no device could take are known a priori (arrivals
        // do not depend on simulation state); account them up front.
        let unplaced_tasks = self.unplaced_taskset();
        for job in ArrivalStream::new(&unplaced_tasks, horizon) {
            self.unplaced.record_rejection(&job);
        }

        // One lazy arrival stream per device over its placed tasks (local
        // ids; placement built the local sets with
        // `TaskSet::preserving_phases`, so the per-device streams together
        // reproduce the global release times exactly).
        let device_tasksets: Vec<TaskSet> =
            self.placement.plans.iter().map(|p| p.taskset.clone()).collect();
        let streams: Vec<ArrivalStream<'_>> =
            device_tasksets.iter().map(|ts| ArrivalStream::new(ts, horizon)).collect();
        self.drive(streams, horizon)
    }

    /// Runs a jittered periodic [`TaskSet`] workload on the fleet until
    /// `horizon`. Each device draws its placed tasks' release delays
    /// locally, with every jitter stream keyed by the task's **global**
    /// index ([`ArrivalStream::with_jitter_keyed`]), so the per-device
    /// streams together reproduce exactly the delays a single device would
    /// draw — the jitter analogue of `TaskSet::preserving_phases` preserving
    /// release phases, and the fix for the old blanket rejection of
    /// jittered specs (whose per-task generators were keyed by device-local
    /// ids). Byte-identical at any thread count and any placement, like
    /// every other shape. Call once per dispatcher.
    ///
    /// *Shape-specific form* of [`run`](Self::run) — equivalent to
    /// `run(&RunSpec::jittered(jitter).until(horizon))`.
    pub fn run_jittered(&mut self, jitter: ReleaseJitter, horizon: SimTime) -> ClusterOutcome {
        let rejected_keys: Vec<u64> =
            self.placement.rejected.iter().map(|id| id.index() as u64).collect();
        let unplaced_tasks = self.unplaced_taskset();
        for job in
            ArrivalStream::with_jitter_keyed(&unplaced_tasks, horizon, jitter, &rejected_keys)
        {
            self.unplaced.record_rejection(&job);
        }

        let device_tasksets: Vec<TaskSet> =
            self.placement.plans.iter().map(|p| p.taskset.clone()).collect();
        let device_keys: Vec<Vec<u64>> = self
            .placement
            .plans
            .iter()
            .map(|p| p.task_indices.iter().map(|&g| g as u64).collect())
            .collect();
        let streams: Vec<ArrivalStream<'_>> = device_tasksets
            .iter()
            .zip(&device_keys)
            .map(|(ts, keys)| ArrivalStream::with_jitter_keyed(ts, horizon, jitter, keys))
            .collect();
        self.drive(streams, horizon)
    }

    /// Runs a seeded [`GenSpec`] workload (bursty, diurnal, correlated) on
    /// the fleet until `horizon`. Each device generates its placed tasks'
    /// releases locally, keyed by the tasks' **global** indices, so the
    /// per-device streams together reproduce the global generator trace
    /// exactly — the generator analogue of `TaskSet::preserving_phases`
    /// preserving release phases. A live generated run is therefore
    /// byte-identical to replaying [`GenSpec::generate`]'s trace of the same
    /// spec via [`run_replay`](Self::run_replay). Call once per dispatcher.
    ///
    /// *Shape-specific form* of [`run`](Self::run) — equivalent to
    /// `run(&RunSpec::generated(spec).until(horizon))`.
    pub fn run_generated(&mut self, spec: &GenSpec, horizon: SimTime) -> ClusterOutcome {
        let rejected_keys: Vec<u64> =
            self.placement.rejected.iter().map(|id| id.index() as u64).collect();
        let unplaced_tasks = self.unplaced_taskset();
        for job in spec.stream_keyed(&unplaced_tasks, horizon, &rejected_keys) {
            self.unplaced.record_rejection(&job);
        }

        let device_tasksets: Vec<TaskSet> =
            self.placement.plans.iter().map(|p| p.taskset.clone()).collect();
        let device_keys: Vec<Vec<u64>> = self
            .placement
            .plans
            .iter()
            .map(|p| p.task_indices.iter().map(|&g| g as u64).collect())
            .collect();
        let streams: Vec<GeneratedStream<'_>> = device_tasksets
            .iter()
            .zip(&device_keys)
            .map(|(ts, keys)| spec.stream_keyed(ts, horizon, keys))
            .collect();
        self.drive(streams, horizon)
    }

    /// Replays a recorded [`Trace`] (over the dispatcher's *global* task
    /// set) on the fleet, to exactly the trace's horizon: the global trace
    /// is split per device along the placement, task ids remapped to each
    /// device's local space — legal because placement preserves the global
    /// relative task order, so the per-device event sequences keep the trace
    /// sort order. Events of tasks the placement rejected are charged as
    /// rejections up front, exactly like the periodic path. Call once per
    /// dispatcher.
    ///
    /// *Shape-specific form* of [`run`](Self::run) — equivalent to
    /// `run(&RunSpec::replay(trace))`.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Trace`] when the trace refers to tasks the
    /// global set does not contain, or a per-device slice violates the trace
    /// contract.
    pub fn run_replay(&mut self, trace: &Trace) -> Result<ClusterOutcome> {
        let horizon = trace.horizon();
        let n_tasks = self.taskset.len();
        let unplaced_of: BTreeMap<usize, TaskId> = self
            .placement
            .rejected
            .iter()
            .enumerate()
            .map(|(position, id)| (id.index(), TaskId(position as u32)))
            .collect();
        let unplaced_tasks = self.unplaced_taskset();
        let mut per_device: Vec<Vec<TraceEvent>> = vec![Vec::new(); self.devices.len()];
        for ev in trace.events() {
            let global = ev.task.index();
            if global >= n_tasks {
                return Err(ClusterError::Trace(TraceError::UnknownTask {
                    task: ev.task,
                    tasks: n_tasks,
                }));
            }
            match self.placement.device_of[global] {
                Some(device) => {
                    let local = self.devices[device].local_of_global[&global];
                    per_device[device].push(TraceEvent { task: local, ..*ev });
                }
                None => {
                    let local = unplaced_of[&global];
                    let spec = unplaced_tasks.task(local).expect("compacted unplaced set");
                    self.unplaced.record_rejection(&ev.job_for(spec));
                }
            }
        }

        let device_tasksets: Vec<TaskSet> =
            self.placement.plans.iter().map(|p| p.taskset.clone()).collect();
        let device_traces: Vec<Trace> = per_device
            .into_iter()
            .map(|events| Trace::new(horizon, trace.lookahead(), events))
            .collect::<std::result::Result<_, _>>()
            .map_err(ClusterError::Trace)?;
        let players: Vec<TracePlayer<'_>> = device_tasksets
            .iter()
            .zip(&device_traces)
            .map(|(ts, tr)| TracePlayer::new(ts, tr))
            .collect::<std::result::Result<_, _>>()
            .map_err(ClusterError::Trace)?;
        Ok(self.drive(players, horizon))
    }

    /// The compacted set of tasks the placement rejected, phases preserved —
    /// the id space `self.unplaced` accounts their releases under.
    fn unplaced_taskset(&self) -> TaskSet {
        TaskSet::preserving_phases(
            self.placement.rejected.iter().map(|id| self.taskset.tasks()[id.index()].clone()),
        )
    }

    /// The synchronization-round loop shared by every workload shape: rounds
    /// of independent per-device spans over `streams` (one source per
    /// device, device-local task ids), boundary-only cross-device work
    /// (rack-local every round, cross-rack at epoch boundaries), then final
    /// accounting. Schedulers and streams move into per-device cells for the
    /// duration of the run so the persistent worker pool can span them; they
    /// move back before `finish`.
    fn drive<S: ArrivalSource + Send>(
        &mut self,
        streams: Vec<S>,
        horizon: SimTime,
    ) -> ClusterOutcome {
        let n = self.devices.len();
        let elastic = self.config.elastic_quantum;
        let autoscale = self.config.autoscale;
        // The quantum is a round-boundary variable: the elastic bounds clamp
        // the static seed and every boundary may recompute it, but a
        // published round always runs to its published end.
        let mut quantum = match elastic {
            Some(bounds) => bounds.clamp(self.config.sync_quantum),
            None => self.config.sync_quantum,
        };
        let workers = self.config.threads.max(1).min(n.max(1));
        let mut racks = RackDispatcher::layout(n, self.config.racks);
        let rack_of = RackDispatcher::rack_of(&racks);
        let rebalance_epoch = self.config.rebalance_epoch.max(1);

        let cells: Vec<DeviceCell<Sch, S>> = self
            .devices
            .iter_mut()
            .zip(streams)
            .map(|(device, stream)| DeviceCell {
                scheduler: device.scheduler.take(),
                stream,
                due: false,
                rejected: Vec::new(),
            })
            .collect();
        let fleet = FleetCells::new(cells);

        pool::drive_rounds(&fleet, workers, |run_round| {
            let mut t0 = SimTime::ZERO;
            let mut round: u64 = 0;
            let mut spans: Vec<(usize, SimTime)> = Vec::with_capacity(n);
            // Fleet membership under autoscaling; every device starts online.
            let mut online: Vec<bool> = vec![true; n];
            // Jobs charged as rejections since the last autoscale
            // evaluation: the fleet's shed-work pressure. Served load alone
            // under-reads demand once admission starts shedding work, so
            // shedding forces a rejoin regardless of the load band.
            let mut shed_since_eval: u64 = 0;
            while t0 < horizon {
                let t1 = t0.saturating_add(quantum).min(horizon);

                self.profile_start(RoundPhase::Span);
                // One pre-round pass marks due devices (snapshotting their
                // pre-span clocks) and checks for a drained fleet. A drained
                // fleet (no pending releases, no pending events) can never
                // create new work at a boundary — stop striding rounds
                // instead of scanning the fleet horizon/quantum more times.
                spans.clear();
                let mut drained = true;
                let mut redirected: Vec<(usize, Vec<Job>)> = Vec::new();
                for (d, &is_online) in online.iter().enumerate() {
                    let mut cell = fleet.cell(d);
                    if !is_online {
                        // An offline device receives no new work: pull its
                        // stream's due releases *before* the span phase (a
                        // due span would consume them) and hand them to the
                        // boundary retry machinery below.
                        let mut pulled = Vec::new();
                        while cell.stream.next_release().is_some_and(|r| r < t1) {
                            match cell.stream.next_job() {
                                Some(job) => pulled.push(job),
                                None => break,
                            }
                        }
                        if !pulled.is_empty() {
                            redirected.push((d, pulled));
                        }
                    }
                    let next_release = cell.stream.next_release();
                    let Some(scheduler) = cell.scheduler.as_ref() else {
                        drained = drained && next_release.is_none();
                        continue;
                    };
                    let next_event = scheduler.next_event_time();
                    drained = drained && next_release.is_none() && next_event.is_none();
                    // An offline device still spans its own *events* — jobs
                    // it already holds finish where they started — it just
                    // sees no new releases.
                    let due = next_event.is_some_and(|t| t < t1)
                        || (is_online && next_release.is_some_and(|r| r < t1));
                    if due {
                        spans.push((d, scheduler.now()));
                    }
                    cell.due = due;
                }
                if drained {
                    self.profile_end(RoundPhase::Span);
                    break;
                }
                if !spans.is_empty() {
                    run_round(t1);
                }
                // Collect the rejected releases in ascending device order —
                // the deterministic join worker timing cannot reorder.
                let mut rejected: Vec<(usize, Vec<Job>)> = Vec::new();
                for &(d, _) in &spans {
                    let mut cell = fleet.cell(d);
                    if !cell.rejected.is_empty() {
                        rejected.push((d, std::mem::take(&mut cell.rejected)));
                    }
                }
                if !redirected.is_empty() {
                    // Fold the offline devices' redirected releases in,
                    // keeping ascending device order; they ride the same
                    // retry path as span rejections, with the offline device
                    // as the charged home.
                    let mut merged: BTreeMap<usize, Vec<Job>> = BTreeMap::new();
                    for (d, jobs) in redirected.into_iter().chain(rejected) {
                        merged.entry(d).or_default().extend(jobs);
                    }
                    rejected = merged.into_iter().collect();
                }
                self.profile_end(RoundPhase::Span);
                for (d, from) in &spans {
                    let (from, d) = (*from, *d as u32);
                    self.emit(d, t1, || EventKind::DeviceSpan { from, to: t1 });
                }
                let span_count = spans.len() as u64;
                self.emit(CLUSTER_DEVICE, t1, || EventKind::PhaseMark {
                    round,
                    phase: RoundPhase::Span,
                    detail: span_count,
                });

                self.profile_start(RoundPhase::Retry);
                let (attempts, charged) =
                    self.retry_rejections(&fleet, &mut racks, &rack_of, &online, rejected, t1);
                shed_since_eval += charged;
                self.profile_end(RoundPhase::Retry);
                self.emit(CLUSTER_DEVICE, t1, || EventKind::PhaseMark {
                    round,
                    phase: RoundPhase::Retry,
                    detail: attempts,
                });

                self.profile_start(RoundPhase::Migration);
                let before = self.migrations + self.cross_rack_migrations;
                if self.config.migration {
                    let spans: Vec<_> = racks.iter().map(|rack| rack.span.clone()).collect();
                    for span in spans {
                        self.rebalance(&fleet, span, &online, t1);
                    }
                    if racks.len() > 1 && (round + 1) % rebalance_epoch == 0 {
                        self.cross_rack_rebalance(&fleet, &racks, &rack_of, &online, t1, round);
                    }
                }
                self.profile_end(RoundPhase::Migration);
                let moved = (self.migrations + self.cross_rack_migrations - before) as u64;
                self.emit(CLUSTER_DEVICE, t1, || EventKind::PhaseMark {
                    round,
                    phase: RoundPhase::Migration,
                    detail: moved,
                });

                self.profile_start(RoundPhase::Merge);
                let merged = self.merge_device_buffers();
                self.profile_end(RoundPhase::Merge);
                self.emit(CLUSTER_DEVICE, t1, || EventKind::PhaseMark {
                    round,
                    phase: RoundPhase::Merge,
                    detail: merged,
                });

                // Adaptive control, evaluated strictly at the boundary: both
                // knobs read the same mean-load sample of the fleet's
                // simulated state, so the decisions are as thread-count
                // invariant as everything else in the round.
                if elastic.is_some() || autoscale.is_some() {
                    let load = Self::mean_online_load(&fleet, &online);
                    if let Some(auto) = autoscale {
                        if (round + 1) % auto.epoch.max(1) == 0 {
                            let shed = std::mem::take(&mut shed_since_eval);
                            self.autoscale_step(&fleet, &mut online, load, shed, round, t1);
                        }
                    }
                    if let Some(bounds) = elastic {
                        let next = bounds.quantum_for(load);
                        if next != quantum {
                            quantum = next;
                            self.emit(CLUSTER_DEVICE, t1, || EventKind::QuantumChanged {
                                round,
                                quantum: next,
                                load,
                            });
                        }
                    }
                }

                round += 1;
                t0 = t1;
            }
        });

        // Hand the schedulers back for `finish` and later accounting.
        for (device, cell) in self.devices.iter_mut().zip(fleet.into_cells()) {
            device.scheduler = cell.scheduler;
        }

        let outcomes: Vec<DeviceOutcome> = self
            .devices
            .iter_mut()
            .map(|device| {
                let outcome = match device.scheduler.as_mut() {
                    Some(scheduler) => scheduler.finish(horizon),
                    None => ExperimentOutcome {
                        summary: MetricsCollector::new().summarize(horizon),
                        mret_trace: Vec::new(),
                        config_label: "idle".to_owned(),
                    },
                };
                DeviceOutcome { name: device.name.clone(), outcome }
            })
            .collect();
        // `finish` above emitted each device's trailing events (everything
        // between the last boundary and the horizon); merge them too.
        self.merge_device_buffers();

        let duration = horizon.duration_since(SimTime::ZERO);
        let mut summary = ClusterSummary::aggregate(
            outcomes.iter().map(|d| &d.outcome.summary).collect::<Vec<_>>(),
            &self.unplaced.summarize(horizon),
            duration,
        );
        summary.migrations = self.migrations;
        summary.cluster_admissions = self.cluster_admissions;
        summary.placement_rejected_tasks = self.placement.rejected.len();
        summary.racks = racks.len();
        summary.cross_rack_migrations = self.cross_rack_migrations;
        ClusterOutcome { summary, devices: outcomes }
    }

    // ----- telemetry --------------------------------------------------------

    /// Emits one event into the fleet sink (if attached). The closure runs
    /// only when a sink is present, so the disabled path never constructs an
    /// event. `device` is a fleet index or [`CLUSTER_DEVICE`].
    fn emit(&self, device: u32, at: SimTime, kind: impl FnOnce() -> EventKind) {
        if let Some(sink) = &self.config.sink {
            sink.record(TelemetryEvent { at, device, kind: kind() });
        }
    }

    /// Starts profiling a round phase (if a profiler is attached).
    fn profile_start(&self, phase: RoundPhase) {
        if let Some(profiler) = &self.config.profiler {
            profiler.phase_started(phase);
        }
    }

    /// Finishes profiling a round phase (if a profiler is attached).
    fn profile_end(&self, phase: RoundPhase) {
        if let Some(profiler) = &self.config.profiler {
            profiler.phase_finished(phase);
        }
    }

    /// Merges every device's private telemetry buffer into the fleet sink in
    /// ascending device order, rewriting the schedulers' device-local id
    /// (always 0) to the fleet index. Returns the number of events merged.
    /// Runs on the single-threaded boundary path only, which is what makes
    /// the merged stream independent of worker timing. Each buffer moves out
    /// whole (no per-event draining) and lands in the sink as one batch —
    /// one sink lock per device per round instead of one per event.
    fn merge_device_buffers(&mut self) -> u64 {
        let Some(sink) = self.config.sink.clone() else { return 0 };
        let mut merged = 0u64;
        for (d, device) in self.devices.iter().enumerate() {
            let Some(buffer) = &device.buffer else { continue };
            let mut events = buffer.take_all();
            if events.is_empty() {
                continue;
            }
            for event in &mut events {
                event.device = d as u32;
            }
            merged += events.len() as u64;
            sink.record_batch(&mut events);
        }
        merged
    }

    /// Retries the round's home-rejected releases rack-locally (in device
    /// order, then release order): each job is offered to the
    /// `retry_fanout` least-loaded other devices of its home rack, adopting
    /// the task as a guest on first contact; if every consulted device
    /// refuses, the rejection is charged to the home device — each job is
    /// accounted exactly once. Candidate selection walks each rack's
    /// incrementally maintained load ordering (rebuilt once per phase,
    /// re-keyed per consultation) — O(fanout + log rack) per rejection
    /// instead of an O(rack) rescan; with
    /// [`ClusterConfig::reference_retry_scan`] the old rescan runs instead,
    /// and a debug assertion pins the two paths against each other. Returns
    /// `(retry offers made, jobs charged as rejections)` — the first feeds
    /// the round's telemetry phase mark, the second the autoscaler's
    /// shed-work pressure signal.
    fn retry_rejections<S: ArrivalSource>(
        &mut self,
        fleet: &FleetCells<Sch, S>,
        racks: &mut [RackDispatcher],
        rack_of: &[usize],
        online: &[bool],
        rejected: Vec<(usize, Vec<Job>)>,
        now: SimTime,
    ) -> (u64, u64) {
        let mut attempts = 0u64;
        let mut charged = 0u64;
        if rejected.is_empty() {
            return (0, 0);
        }
        let retrying = self.config.cluster_admission && self.config.retry_fanout > 0;
        // Offline devices never show up as retry candidates (they receive no
        // new work); they can still be the charged home of a rejection.
        let fresh_loads = |span: Range<usize>| -> Vec<(usize, f64)> {
            span.filter(|&d| online[d])
                .filter_map(|d| {
                    fleet.cell(d).scheduler.as_ref().map(|s| (d, s.active_load_fraction()))
                })
                .collect()
        };
        if retrying && !self.config.reference_retry_scan {
            // Rebuild each retrying rack's ordering once for the phase;
            // within the phase a member's load only changes when a
            // consultation touches it, and `update` below re-keys exactly
            // those members.
            let mut rebuilt = vec![false; racks.len()];
            for (home, _) in &rejected {
                let r = rack_of[*home];
                if !rebuilt[r] {
                    rebuilt[r] = true;
                    racks[r].order.rebuild(fresh_loads(racks[r].span.clone()).into_iter());
                }
            }
        }
        for (home, jobs) in rejected {
            let rack = &mut racks[rack_of[home]];
            for job in jobs {
                let global = self.devices[home].global_of_local[job.id.task.index()];
                let mut admitted = false;
                if retrying {
                    let fanout = self.config.retry_fanout;
                    let candidates = if self.config.reference_retry_scan {
                        LoadOrder::naive_select(&fresh_loads(rack.span.clone()), home, fanout)
                    } else {
                        let selected = rack.order.select(home, fanout);
                        debug_assert_eq!(
                            selected,
                            LoadOrder::naive_select(&fresh_loads(rack.span.clone()), home, fanout),
                            "incremental load order diverged from a fresh rescan"
                        );
                        selected
                    };
                    for device in candidates {
                        let Some(local) = self.local_id_on(fleet, device, global) else { continue };
                        self.catch_up(fleet, device, now);
                        let (accepted, load) = {
                            let mut cell = fleet.cell(device);
                            let scheduler =
                                cell.scheduler.as_mut().expect("candidate has a scheduler");
                            let accepted = scheduler.try_release_job(localize(job, local));
                            if accepted {
                                scheduler.dispatch_ready();
                            }
                            (accepted, scheduler.active_load_fraction())
                        };
                        // The catch-up and (on acceptance) the activation are
                        // the only in-phase load changes; re-key the touched
                        // member so the next selection sees them.
                        rack.order.update(device, load);
                        attempts += 1;
                        self.emit(CLUSTER_DEVICE, now, || EventKind::RetryAttempt {
                            task: TaskId(global as u32),
                            release_index: job.id.release_index,
                            home: home as u32,
                            target: device as u32,
                            admitted: accepted,
                        });
                        if accepted {
                            self.cluster_admissions += 1;
                            admitted = true;
                            break;
                        }
                    }
                }
                if !admitted {
                    charged += 1;
                    fleet
                        .cell(home)
                        .scheduler
                        .as_mut()
                        .expect("home device has a scheduler")
                        .reject_job(&job);
                }
            }
        }
        (attempts, charged)
    }

    /// Fast-forwards a trailing device's clock to `to` (a no-op for devices
    /// that are already current). Devices are only caught up when a retried
    /// release or a migration actually lands on them, so idle devices cost
    /// nothing per round. `advance_to` is *inclusive*, so a completion
    /// sitting exactly on the boundary is consumed here — dispatching right
    /// after keeps its freed stream from stranding queued stages (this is
    /// exactly what the device's own span would have done at `to`).
    fn catch_up<S: ArrivalSource>(&self, fleet: &FleetCells<Sch, S>, device: usize, to: SimTime) {
        let mut cell = fleet.cell(device);
        if let Some(scheduler) = cell.scheduler.as_mut() {
            if scheduler.now() < to {
                scheduler.advance_to(to);
                scheduler.dispatch_ready();
            }
        }
    }

    /// The local id of global task `global` on `device`, adopting the task
    /// as a guest on first contact. `None` if adoption fails (model weights
    /// do not fit in the device's remaining memory).
    fn local_id_on<S: ArrivalSource>(
        &mut self,
        fleet: &FleetCells<Sch, S>,
        device: usize,
        global: usize,
    ) -> Option<TaskId> {
        if let Some(&local) = self.devices[device].local_of_global.get(&global) {
            return Some(local);
        }
        let spec = self.taskset.tasks()[global].clone();
        let local = fleet.cell(device).scheduler.as_mut()?.adopt_task(&spec).ok()?;
        debug_assert_eq!(local.index(), self.devices[device].global_of_local.len());
        self.devices[device].local_of_global.insert(global, local);
        self.devices[device].global_of_local.push(global);
        Some(local)
    }

    /// The global task index behind a device-local task id.
    fn global_of(&self, device: usize, local: TaskId) -> usize {
        self.devices[device].global_of_local[local.index()]
    }

    /// `(device, backlog, idle streams)` for every device of `span`, the
    /// shared input of the migration source/target selections.
    fn pressure_stats<S: ArrivalSource>(
        fleet: &FleetCells<Sch, S>,
        span: Range<usize>,
    ) -> Vec<(usize, usize, usize)> {
        span.map(|d| {
            let cell = fleet.cell(d);
            let (backlog, idle) = cell
                .scheduler
                .as_ref()
                .map(|s| (s.queue_backlog(), s.idle_stream_count()))
                .unwrap_or((0, 0));
            (d, backlog, idle)
        })
        .collect()
    }

    /// Offers `src`'s migratable queued jobs to `dst` (least urgent first,
    /// admission-tested on the receiver) and moves the first one `dst`
    /// takes; both devices are caught up to `now` around the hand-over.
    /// Returns the moved job's `(global task index, release index)`, or
    /// `None` if `dst` took nothing.
    fn transfer_queued_job<S: ArrivalSource>(
        &mut self,
        fleet: &FleetCells<Sch, S>,
        src: usize,
        dst: usize,
        now: SimTime,
    ) -> Option<(usize, u64)> {
        let candidates: Vec<JobId> =
            fleet.cell(src).scheduler.as_ref().map(Sch::migratable_jobs).unwrap_or_default();
        for local_job in candidates {
            let global = self.global_of(src, local_job.task);
            let Some(dst_local) = self.local_id_on(fleet, dst, global) else { continue };
            let priority = self.taskset.tasks()[global].priority;
            let dst_admits = fleet
                .cell(dst)
                .scheduler
                .as_ref()
                .map(|s| s.would_admit(dst_local, priority))
                .unwrap_or(false);
            if !dst_admits {
                continue;
            }
            let Some(withdrawn) =
                fleet.cell(src).scheduler.as_mut().and_then(|s| s.withdraw_queued_job(local_job))
            else {
                continue;
            };
            self.catch_up(fleet, src, now);
            self.catch_up(fleet, dst, now);
            let release_index = withdrawn.id.release_index;
            {
                let mut cell = fleet.cell(dst);
                let dst_scheduler = cell.scheduler.as_mut().expect("dst has a scheduler");
                if dst_scheduler.try_release_job(localize(withdrawn, dst_local)) {
                    dst_scheduler.dispatch_ready();
                    return Some((global, release_index));
                }
            }
            // The receiver changed its mind (should not happen — the
            // admission test was just consulted); restore the job home.
            let mut cell = fleet.cell(src);
            let src_scheduler = cell.scheduler.as_mut().expect("src has a scheduler");
            if !src_scheduler.try_release_job(withdrawn) {
                src_scheduler.reject_job(&withdrawn);
            }
        }
        None
    }

    /// Stage-boundary migration within one rack's device span: while some
    /// device has a backlog it cannot serve (no idle stream) and another
    /// device of the same rack sits idle, move queued not-yet-started jobs
    /// over (least urgent first, admission-tested on the receiver). Devices
    /// a migration lands on are caught up to `now` first.
    fn rebalance<S: ArrivalSource>(
        &mut self,
        fleet: &FleetCells<Sch, S>,
        span: Range<usize>,
        online: &[bool],
        now: SimTime,
    ) {
        for _ in 0..MAX_MIGRATIONS_PER_STEP {
            let stats = Self::pressure_stats(fleet, span.clone());
            let Some(src) = stats
                .iter()
                .filter(|&&(_, backlog, idle)| backlog > 0 && idle == 0)
                .max_by_key(|&&(d, backlog, _)| (backlog, usize::MAX - d))
                .map(|&(d, ..)| d)
            else {
                break;
            };
            // An offline device may still *shed* leftover backlog (src) but
            // never receives migrated work (dst).
            let Some(dst) = stats
                .iter()
                .filter(|&&(d, backlog, idle)| d != src && online[d] && backlog == 0 && idle > 0)
                .max_by_key(|&&(d, _, idle)| (idle, usize::MAX - d))
                .map(|&(d, ..)| d)
            else {
                break;
            };
            let Some((global, release_index)) = self.transfer_queued_job(fleet, src, dst, now)
            else {
                break;
            };
            self.migrations += 1;
            self.emit(CLUSTER_DEVICE, now, || EventKind::Migration {
                task: TaskId(global as u32),
                release_index,
                from: src as u32,
                to: dst as u32,
            });
        }
    }

    /// Mean [`active_load_fraction`](Scheduler::active_load_fraction) over
    /// the online devices that have a scheduler — the controller input of
    /// both adaptive fleet knobs. `0` for a fleet with no such device.
    fn mean_online_load<S: ArrivalSource>(fleet: &FleetCells<Sch, S>, online: &[bool]) -> f64 {
        let mut total = 0.0;
        let mut count = 0u32;
        for (d, &is_online) in online.iter().enumerate() {
            if !is_online {
                continue;
            }
            if let Some(scheduler) = fleet.cell(d).scheduler.as_ref() {
                total += scheduler.active_load_fraction();
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / f64::from(count)
        }
    }

    /// One autoscale evaluation: mean load at or above the scale-up
    /// threshold — or any shed work since the last evaluation, which means
    /// demand exceeded what the online fleet would admit — rejoins the
    /// lowest-indexed offline device; mean load at or below the scale-down
    /// threshold with nothing shed drains the highest-indexed online device
    /// (respecting the device floor); in between the fleet holds. At most
    /// one device changes state per call, so the fleet ramps instead of
    /// flapping.
    fn autoscale_step<S: ArrivalSource>(
        &mut self,
        fleet: &FleetCells<Sch, S>,
        online: &mut [bool],
        load: f64,
        shed: u64,
        round: u64,
        now: SimTime,
    ) {
        let Some(auto) = self.config.autoscale else { return };
        let online_count = online.iter().filter(|&&o| o).count();
        if load >= auto.scale_up_ratio || shed > 0 {
            if let Some(joined) = online.iter().position(|&o| !o) {
                online[joined] = true;
                let count = (online_count + 1) as u32;
                self.emit(CLUSTER_DEVICE, now, || EventKind::DeviceJoined {
                    device: joined as u32,
                    round,
                    online: count,
                });
            }
        } else if load <= auto.scale_down_ratio && online_count > auto.min_devices {
            // `shed == 0` is implied here: any shed work took the join branch.
            let Some(drainee) = online.iter().rposition(|&o| o) else { return };
            online[drainee] = false;
            let moved = self.drain_device(fleet, online, drainee, now);
            let count = (online_count - 1) as u32;
            self.emit(CLUSTER_DEVICE, now, || EventKind::DeviceDrained {
                device: drainee as u32,
                round,
                online: count,
                moved,
            });
        }
    }

    /// Re-places a drained device's queued-unstarted jobs onto online
    /// devices with idle streams through the regular migration hand-over
    /// (admission-tested on each receiver, most-idle receiver first). Jobs
    /// no consulted receiver admits stay queued at home and run as the
    /// drained device's own streams free up. Returns the number of jobs
    /// moved.
    fn drain_device<S: ArrivalSource>(
        &mut self,
        fleet: &FleetCells<Sch, S>,
        online: &[bool],
        src: usize,
        now: SimTime,
    ) -> u64 {
        let mut moved = 0u64;
        'drain: loop {
            let stats = Self::pressure_stats(fleet, 0..fleet.len());
            let mut candidates: Vec<(usize, usize)> = stats
                .iter()
                .filter(|&&(d, _, idle)| d != src && online[d] && idle > 0)
                .map(|&(d, _, idle)| (d, idle))
                .collect();
            candidates.sort_by_key(|&(d, idle)| (usize::MAX - idle, d));
            for (dst, _) in candidates {
                if let Some((global, release_index)) =
                    self.transfer_queued_job(fleet, src, dst, now)
                {
                    self.migrations += 1;
                    moved += 1;
                    self.emit(CLUSTER_DEVICE, now, || EventKind::Migration {
                        task: TaskId(global as u32),
                        release_index,
                        from: src as u32,
                        to: dst as u32,
                    });
                    continue 'drain;
                }
            }
            break;
        }
        moved
    }

    /// The rebalance epoch: racks exchange `(backlog, idle streams)` load
    /// summaries — emitted on the per-rack telemetry tracks in ascending
    /// rack order — and queued not-yet-started jobs migrate from backlogged
    /// devices onto idle devices of *other* racks, again in fixed order, so
    /// the epoch phase is as deterministic as the per-round ones. Runs only
    /// with more than one rack.
    fn cross_rack_rebalance<S: ArrivalSource>(
        &mut self,
        fleet: &FleetCells<Sch, S>,
        racks: &[RackDispatcher],
        rack_of: &[usize],
        online: &[bool],
        now: SimTime,
        round: u64,
    ) {
        let summaries: Vec<(u64, u64)> = racks
            .iter()
            .map(|rack| {
                let mut backlog = 0u64;
                let mut idle = 0u64;
                for d in rack.span.clone() {
                    let cell = fleet.cell(d);
                    if let Some(scheduler) = cell.scheduler.as_ref() {
                        backlog += scheduler.queue_backlog() as u64;
                        idle += scheduler.idle_stream_count() as u64;
                    }
                }
                (backlog, idle)
            })
            .collect();
        for (r, &(backlog, idle_streams)) in summaries.iter().enumerate() {
            self.emit(RACK_DEVICE_BASE + r as u32, now, || EventKind::RackLoad {
                rack: r as u32,
                round,
                backlog,
                idle_streams,
            });
        }
        // Cheap gate from the exchanged summaries: no backlogged rack, or no
        // idle capacity anywhere, means nothing can move this epoch.
        let any_backlog = summaries.iter().any(|&(backlog, _)| backlog > 0);
        let any_idle = summaries.iter().any(|&(_, idle)| idle > 0);
        if !any_backlog || !any_idle {
            return;
        }
        for _ in 0..MAX_MIGRATIONS_PER_STEP {
            let stats = Self::pressure_stats(fleet, 0..fleet.len());
            let Some(src) = stats
                .iter()
                .filter(|&&(_, backlog, idle)| backlog > 0 && idle == 0)
                .max_by_key(|&&(d, backlog, _)| (backlog, usize::MAX - d))
                .map(|&(d, ..)| d)
            else {
                break;
            };
            let Some(dst) = stats
                .iter()
                .filter(|&&(d, backlog, idle)| {
                    rack_of[d] != rack_of[src] && online[d] && backlog == 0 && idle > 0
                })
                .max_by_key(|&&(d, _, idle)| (idle, usize::MAX - d))
                .map(|&(d, ..)| d)
            else {
                break;
            };
            let Some((global, release_index)) = self.transfer_queued_job(fleet, src, dst, now)
            else {
                break;
            };
            self.cross_rack_migrations += 1;
            let (from_rack, to_rack) = (rack_of[src] as u32, rack_of[dst] as u32);
            self.emit(CLUSTER_DEVICE, now, || EventKind::RackMigration {
                task: TaskId(global as u32),
                release_index,
                from: src as u32,
                to: dst as u32,
                from_rack,
                to_rack,
            });
        }
    }
}
