//! The cluster dispatcher: one DARIS scheduler per device, driven by a
//! cluster-level **event calendar** on a single global arrival stream.
//!
//! The dispatcher is deliberately built from the *public* stepping API of
//! [`DarisScheduler`] (`advance_to` / `try_release_job` / `dispatch_ready` /
//! `finish`), issuing exactly the call sequence `run_until` issues
//! internally — which is why a single-device cluster reproduces the
//! single-GPU path bit for bit (a property test pins this down).
//!
//! # Wake-up protocol
//!
//! The run loop keeps a min-heap of `(next_event_time, device, epoch)`
//! entries — one live entry per device with pending simulator work — and per
//! round advances **only** the devices whose entry is due (plus, lazily, any
//! device a release or migration is about to touch, caught up via
//! [`ClusterDispatcher::catch_up`]). Idle devices are never polled or
//! lockstep-advanced; their clocks trail behind and are fast-forwarded in one
//! jump the next time an event, release, or migration lands on them (a
//! trailing clock is unobservable: every scheduler decision — admission,
//! queue backlog, idle streams, load fractions — is state-based, not
//! clock-based, and `finish` aligns every device at the horizon). Entries are
//! invalidated lazily by bumping the device's epoch after a round touches it,
//! exactly like the GPU engine's item epochs.
//!
//! On top of per-device DARIS it adds two cluster-only behaviours:
//!
//! * **cluster-wide admission** — a job whose home device's admission test
//!   (Eq. 11–12) rejects it is retried on the remaining devices in
//!   ascending-load order, adopting the task as a *guest* on first contact;
//!   only when every device refuses is the rejection charged to the home
//!   device;
//! * **stage-boundary migration** — after each dispatch round, queued jobs
//!   that have not started their first stage are pulled from devices with a
//!   backlog and no idle streams onto devices that are sitting idle.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use daris_core::{AblationFlags, DarisConfig, DarisScheduler, ExperimentOutcome};
use daris_gpu::{GpuSpec, SimTime};
use daris_metrics::MetricsCollector;
use daris_workload::{ArrivalStream, Job, TaskId, TaskSet};

use crate::{
    place, ClusterError, ClusterSpec, ClusterSummary, Placement, PlacementStrategy, Result,
};

/// Upper bound on migrations per simulation step, a guard against pathological
/// ping-ponging (in practice a step moves at most a few jobs).
const MAX_MIGRATIONS_PER_STEP: usize = 8;

/// Cluster-level scheduling configuration, shared by every device scheduler.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Placement policy for the offline task-to-device assignment.
    pub strategy: PlacementStrategy,
    /// MRET window size (the paper selects 5).
    pub window_size: usize,
    /// Ablation switches, applied on every device.
    pub ablation: AblationFlags,
    /// Apply the admission test to high-priority jobs too (`Overload+HPA`).
    pub hp_admission: bool,
    /// Retry rejected jobs on other devices before giving up.
    pub cluster_admission: bool,
    /// Migrate queued jobs from overloaded to idle devices.
    pub migration: bool,
    /// Device the model profiles are calibrated against (the paper's
    /// measurement device). Pinned fleet-wide so heterogeneous speed
    /// differences emerge from the simulation.
    pub reference_gpu: GpuSpec,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            strategy: PlacementStrategy::default(),
            window_size: 5,
            ablation: AblationFlags::full(),
            hp_admission: false,
            cluster_admission: true,
            migration: true,
            reference_gpu: GpuSpec::rtx_2080_ti(),
        }
    }
}

/// One device's share of a cluster run.
#[derive(Debug, Clone)]
pub struct DeviceOutcome {
    /// The device's name from the [`ClusterSpec`].
    pub name: String,
    /// The device's scheduler outcome (empty summary for an idle device that
    /// received no tasks).
    pub outcome: ExperimentOutcome,
}

/// Result of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Fleet-level aggregate metrics.
    pub summary: ClusterSummary,
    /// Per-device outcomes, in fleet order.
    pub devices: Vec<DeviceOutcome>,
}

#[derive(Debug)]
struct DeviceRuntime {
    name: String,
    /// `None` for a device the placement left without tasks: it idles for
    /// the whole run (it has no scheduler to adopt guests into either).
    scheduler: Option<DarisScheduler>,
    /// Global task index → device-local task id (placed and adopted tasks).
    local_of_global: HashMap<usize, TaskId>,
    /// The inverse map, indexed by local task id.
    global_of_local: Vec<usize>,
}

/// Runs a [`TaskSet`] on a fleet of devices.
#[derive(Debug)]
pub struct ClusterDispatcher {
    config: ClusterConfig,
    taskset: TaskSet,
    placement: Placement,
    devices: Vec<DeviceRuntime>,
    /// Accounts releases of tasks no device could take at placement time.
    unplaced: MetricsCollector,
    migrations: usize,
    cluster_admissions: usize,
}

fn localize(mut job: Job, local: TaskId) -> Job {
    job.id.task = local;
    job
}

impl ClusterDispatcher {
    /// Places `taskset` on `cluster` and builds one scheduler per device
    /// that received tasks.
    ///
    /// # Errors
    ///
    /// Fails on an empty cluster or task set, an infeasible device
    /// partition, or a device scheduler that cannot be built (e.g. a plan
    /// whose model weights exceed device memory — the placement engine's
    /// accounting prevents this for the shipped specs).
    pub fn new(taskset: &TaskSet, cluster: ClusterSpec, config: ClusterConfig) -> Result<Self> {
        cluster.validate()?;
        if taskset.is_empty() {
            return Err(ClusterError::EmptyTaskSet);
        }
        let placement = place(taskset, &cluster, config.strategy, &config.reference_gpu);
        let mut devices = Vec::with_capacity(cluster.len());
        for (spec, plan) in cluster.devices().iter().zip(&placement.plans) {
            let scheduler = if plan.taskset.is_empty() {
                None
            } else {
                let mut device_config = DarisConfig::new(spec.partition)
                    .with_gpu(spec.gpu.clone())
                    .with_reference_calibration(config.reference_gpu.clone())
                    .with_window_size(config.window_size)
                    .with_ablation(config.ablation);
                if config.hp_admission {
                    device_config = device_config.with_hp_admission();
                }
                Some(DarisScheduler::new(&plan.taskset, device_config).map_err(|source| {
                    ClusterError::Scheduler { device: spec.name.clone(), source }
                })?)
            };
            let local_of_global = plan
                .task_indices
                .iter()
                .enumerate()
                .map(|(local, &global)| (global, TaskId(local as u32)))
                .collect();
            devices.push(DeviceRuntime {
                name: spec.name.clone(),
                scheduler,
                local_of_global,
                global_of_local: plan.task_indices.clone(),
            });
        }
        Ok(ClusterDispatcher {
            config,
            taskset: taskset.clone(),
            placement,
            devices,
            unplaced: MetricsCollector::new(),
            migrations: 0,
            cluster_admissions: 0,
        })
    }

    /// The offline placement this dispatcher runs under.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Simulated GPU events processed across the whole fleet so far.
    pub fn events_processed(&self) -> u64 {
        self.devices
            .iter()
            .filter_map(|d| d.scheduler.as_ref())
            .map(DarisScheduler::events_processed)
            .sum()
    }

    /// Runs the fleet until `horizon` and returns per-device and aggregate
    /// outcomes. Call once per dispatcher.
    pub fn run_until(&mut self, horizon: SimTime) -> ClusterOutcome {
        // Arrivals are pulled lazily (O(tasks) memory, not O(horizon)).
        let taskset = self.taskset.clone();
        let mut arrivals = ArrivalStream::new(&taskset, horizon);

        // The cluster calendar: at most one *live* `(time, device, epoch)`
        // entry per device; stale epochs are discarded when they surface.
        let mut calendar: BinaryHeap<Reverse<(SimTime, usize, u64)>> = BinaryHeap::new();
        let mut epochs: Vec<u64> = vec![0; self.devices.len()];
        for (d, device) in self.devices.iter().enumerate() {
            if let Some(t) = device.scheduler.as_ref().and_then(DarisScheduler::next_event_time) {
                calendar.push(Reverse((t, d, 0)));
            }
        }
        let mut touched: Vec<bool> = vec![false; self.devices.len()];

        loop {
            let cluster_next = loop {
                match calendar.peek() {
                    Some(&Reverse((_, d, e))) if e != epochs[d] => {
                        calendar.pop();
                    }
                    Some(&Reverse((t, _, _))) => break Some(t),
                    None => break None,
                }
            };
            let step_to = match (arrivals.next_release(), cluster_next) {
                (Some(r), Some(g)) => r.min(g),
                (Some(r), None) => r,
                (None, Some(g)) => g,
                (None, None) => break,
            };
            if step_to > horizon {
                break;
            }
            touched.iter_mut().for_each(|t| *t = false);

            // Advance only the devices with an event due at `step_to`.
            while let Some(&Reverse((t, d, e))) = calendar.peek() {
                if e != epochs[d] {
                    calendar.pop();
                    continue;
                }
                if t > step_to {
                    break;
                }
                calendar.pop();
                self.catch_up(d, step_to);
                touched[d] = true;
            }
            while arrivals.next_release().map(|r| r <= step_to).unwrap_or(false) {
                let job = arrivals.next().expect("a pending release was peeked");
                self.route_release(job, step_to, &mut touched);
            }
            // Untouched devices cannot have dispatchable work: their queues
            // and stream occupancy only change when an event, release, or
            // migration touches them.
            for (device, _) in
                self.devices.iter_mut().zip(&touched).filter(|(_, touched)| **touched)
            {
                if let Some(scheduler) = device.scheduler.as_mut() {
                    scheduler.dispatch_ready();
                }
            }
            if self.config.migration {
                self.rebalance(step_to, &mut touched);
            }
            // Re-arm the calendar for every device this round touched.
            for (d, device) in self.devices.iter().enumerate() {
                if !touched[d] {
                    continue;
                }
                epochs[d] += 1;
                if let Some(t) = device.scheduler.as_ref().and_then(DarisScheduler::next_event_time)
                {
                    calendar.push(Reverse((t, d, epochs[d])));
                }
            }
        }

        let outcomes: Vec<DeviceOutcome> = self
            .devices
            .iter_mut()
            .map(|device| {
                let outcome = match device.scheduler.as_mut() {
                    Some(scheduler) => scheduler.finish(horizon),
                    None => ExperimentOutcome {
                        summary: MetricsCollector::new().summarize(horizon),
                        mret_trace: Vec::new(),
                        config_label: "idle".to_owned(),
                    },
                };
                DeviceOutcome { name: device.name.clone(), outcome }
            })
            .collect();

        let duration = horizon.duration_since(SimTime::ZERO);
        let mut summary = ClusterSummary::aggregate(
            outcomes.iter().map(|d| &d.outcome.summary).collect::<Vec<_>>(),
            &self.unplaced.summarize(horizon),
            duration,
        );
        summary.migrations = self.migrations;
        summary.cluster_admissions = self.cluster_admissions;
        summary.placement_rejected_tasks = self.placement.rejected.len();
        ClusterOutcome { summary, devices: outcomes }
    }

    /// Fast-forwards a trailing device's clock to `to` (a no-op for devices
    /// that are already current). Devices are only caught up when an event,
    /// release, or migration actually lands on them, so idle devices cost
    /// nothing per round.
    fn catch_up(&mut self, device: usize, to: SimTime) {
        if let Some(scheduler) = self.devices[device].scheduler.as_mut() {
            if scheduler.now() < to {
                scheduler.advance_to(to);
            }
        }
    }

    /// Routes one release: home device first, then (for jobs the home
    /// admission test rejects) every other device in ascending-load order;
    /// only when the whole fleet refuses is the rejection recorded — on the
    /// home device, so each job is accounted exactly once. Every device the
    /// release touches is caught up to `now` first and marked in `touched`.
    fn route_release(&mut self, job: Job, now: SimTime, touched: &mut [bool]) {
        let global = job.id.task.index();
        let Some(home) = self.placement.device_of[global] else {
            self.unplaced.record_rejection(&job);
            return;
        };
        let home_local = self.devices[home].local_of_global[&global];
        let home_job = localize(job, home_local);
        self.catch_up(home, now);
        touched[home] = true;
        let admitted = self.devices[home]
            .scheduler
            .as_mut()
            .expect("home device has a scheduler")
            .try_release_job(home_job);
        if admitted {
            return;
        }
        if self.config.cluster_admission {
            let mut candidates: Vec<usize> = (0..self.devices.len())
                .filter(|&d| d != home && self.devices[d].scheduler.is_some())
                .collect();
            let load = |d: usize| {
                self.devices[d]
                    .scheduler
                    .as_ref()
                    .map(DarisScheduler::active_load_fraction)
                    .unwrap_or(f64::INFINITY)
            };
            candidates.sort_by(|&a, &b| load(a).total_cmp(&load(b)).then_with(|| a.cmp(&b)));
            for device in candidates {
                let Some(local) = self.local_id_on(device, global) else { continue };
                self.catch_up(device, now);
                touched[device] = true;
                let scheduler =
                    self.devices[device].scheduler.as_mut().expect("candidate has a scheduler");
                if scheduler.try_release_job(localize(job, local)) {
                    self.cluster_admissions += 1;
                    return;
                }
            }
        }
        self.devices[home]
            .scheduler
            .as_mut()
            .expect("home device has a scheduler")
            .reject_job(&home_job);
    }

    /// The local id of global task `global` on `device`, adopting the task
    /// as a guest on first contact. `None` if adoption fails (model weights
    /// do not fit in the device's remaining memory).
    fn local_id_on(&mut self, device: usize, global: usize) -> Option<TaskId> {
        if let Some(&local) = self.devices[device].local_of_global.get(&global) {
            return Some(local);
        }
        let spec = self.taskset.tasks()[global].clone();
        let scheduler = self.devices[device].scheduler.as_mut()?;
        let local = scheduler.adopt_task(&spec).ok()?;
        debug_assert_eq!(local.index(), self.devices[device].global_of_local.len());
        self.devices[device].local_of_global.insert(global, local);
        self.devices[device].global_of_local.push(global);
        Some(local)
    }

    /// The global task index behind a device-local task id.
    fn global_of(&self, device: usize, local: TaskId) -> usize {
        self.devices[device].global_of_local[local.index()]
    }

    /// Stage-boundary migration: while some device has a backlog it cannot
    /// serve (no idle stream) and another device sits idle, move queued
    /// not-yet-started jobs over (least urgent first, admission-tested on
    /// the receiver). Devices a migration lands on are caught up to `now`
    /// and marked in `touched`.
    fn rebalance(&mut self, now: SimTime, touched: &mut [bool]) {
        for _ in 0..MAX_MIGRATIONS_PER_STEP {
            let backlog = |d: &DeviceRuntime| {
                d.scheduler.as_ref().map(DarisScheduler::queue_backlog).unwrap_or(0)
            };
            let idle = |d: &DeviceRuntime| {
                d.scheduler.as_ref().map(DarisScheduler::idle_stream_count).unwrap_or(0)
            };
            let Some(src) = (0..self.devices.len())
                .filter(|&d| backlog(&self.devices[d]) > 0 && idle(&self.devices[d]) == 0)
                .max_by_key(|&d| (backlog(&self.devices[d]), usize::MAX - d))
            else {
                break;
            };
            let Some(dst) = (0..self.devices.len())
                .filter(|&d| {
                    d != src && backlog(&self.devices[d]) == 0 && idle(&self.devices[d]) > 0
                })
                .max_by_key(|&d| (idle(&self.devices[d]), usize::MAX - d))
            else {
                break;
            };

            let candidates = self.devices[src]
                .scheduler
                .as_ref()
                .map(DarisScheduler::migratable_jobs)
                .unwrap_or_default();
            let mut moved = false;
            for local_job in candidates {
                let global = self.global_of(src, local_job.task);
                let Some(dst_local) = self.local_id_on(dst, global) else { continue };
                let priority = self.taskset.tasks()[global].priority;
                let dst_admits = self.devices[dst]
                    .scheduler
                    .as_ref()
                    .map(|s| s.would_admit(dst_local, priority))
                    .unwrap_or(false);
                if !dst_admits {
                    continue;
                }
                let Some(withdrawn) = self.devices[src]
                    .scheduler
                    .as_mut()
                    .and_then(|s| s.withdraw_queued_job(local_job))
                else {
                    continue;
                };
                self.catch_up(src, now);
                self.catch_up(dst, now);
                touched[src] = true;
                touched[dst] = true;
                let dst_scheduler =
                    self.devices[dst].scheduler.as_mut().expect("dst has a scheduler");
                if dst_scheduler.try_release_job(localize(withdrawn, dst_local)) {
                    dst_scheduler.dispatch_ready();
                    self.migrations += 1;
                    moved = true;
                    break;
                }
                // The receiver changed its mind (should not happen — the
                // admission test was just consulted); restore the job home.
                let src_scheduler =
                    self.devices[src].scheduler.as_mut().expect("src has a scheduler");
                if !src_scheduler.try_release_job(withdrawn) {
                    src_scheduler.reject_job(&withdrawn);
                }
            }
            if !moved {
                break;
            }
        }
    }
}
