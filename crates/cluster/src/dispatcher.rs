//! The cluster dispatcher: one DARIS scheduler per device, coordinated
//! through fixed-length **synchronization rounds** with the per-device
//! simulation fanned out to a worker pool in between.
//!
//! Three workload shapes share the same round loop, each a different
//! [`ArrivalSource`] per device: strictly periodic task sets
//! ([`run_until`](ClusterDispatcher::run_until)), seeded bursty / diurnal /
//! correlated generators ([`run_generated`](ClusterDispatcher::run_generated),
//! keyed by global task index so local streams preserve the global trace
//! phases), and recorded trace replays
//! ([`run_replay`](ClusterDispatcher::run_replay), the global trace split
//! along the placement). A live generated run and the replay of its recorded
//! trace are byte-identical at any thread count.
//!
//! # Round protocol
//!
//! Simulated time is cut into rounds of [`ClusterConfig::sync_quantum`].
//! Within a round `[t0, t1)` every device is **independent**: it runs its own
//! event loop ([`DarisScheduler::run_span`]) over its own simulator events
//! and the releases of its own placed tasks, each handled at its exact
//! simulated time — the identical call sequence `run_until` issues on a
//! single GPU, which is why a 1-device cluster reproduces the single-GPU
//! path bit for bit (a property test pins this down). Devices only interact
//! at round boundaries:
//!
//! * **cluster-wide admission** — a job whose home device's admission test
//!   (Eq. 11–12) rejected it mid-round is retried at the boundary on the
//!   least-loaded [`ClusterConfig::retry_fanout`] other devices, adopting
//!   the task as a *guest* on first contact; only when every consulted
//!   device refuses is the rejection charged to the home device;
//! * **stage-boundary migration** — queued jobs that have not started their
//!   first stage are pulled from devices with a backlog and no idle streams
//!   onto devices that are sitting idle.
//!
//! # Parallel stepping, deterministic join
//!
//! Because a round's per-device work touches nothing but that device's own
//! scheduler and arrival stream, the dispatcher fans the device spans out to
//! a `std::thread::scope` worker pool ([`ClusterConfig::threads`]), dealing
//! devices round-robin to workers. Workers return per-device results
//! (rejected releases) that are merged back in fixed device-index order, so
//! completions, retries, migrations and metrics are **byte-identical at any
//! thread count** — thread scheduling can reorder the wall-clock execution
//! but never the simulated outcome. Scheduler construction is fanned out the
//! same way.
//!
//! Idle devices still cost nothing: a device with no due event and no due
//! release is skipped and its clock trails behind, which is unobservable —
//! every scheduler decision (admission, backlog, idle streams, load
//! fractions) is state-based, not clock-based — until a retry or migration
//! lands on it and [`ClusterDispatcher::catch_up`] fast-forwards it in one
//! jump; `finish` aligns every device at the horizon.

use std::collections::BTreeMap;

use daris_core::{AblationFlags, DarisConfig, DarisScheduler, ExperimentOutcome};
use daris_gpu::{GpuSpec, SimDuration, SimTime};
use daris_metrics::MetricsCollector;
use daris_telemetry::{
    EventKind, MemorySink, RoundPhase, SinkHandle, TelemetryEvent, WallClockProfiler,
    CLUSTER_DEVICE,
};
use daris_workload::{
    ArrivalSource, ArrivalStream, GenSpec, GeneratedStream, Job, TaskId, TaskSet, Trace,
    TraceError, TraceEvent, TracePlayer,
};

use crate::{
    place, ClusterError, ClusterSpec, ClusterSummary, Placement, PlacementStrategy, Result,
};

/// Upper bound on migrations per synchronization round, a guard against
/// pathological ping-ponging (in practice a round moves at most a few jobs).
const MAX_MIGRATIONS_PER_STEP: usize = 8;

/// Cluster-level scheduling configuration, shared by every device scheduler.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Placement policy for the offline task-to-device assignment.
    pub strategy: PlacementStrategy,
    /// MRET window size (the paper selects 5).
    pub window_size: usize,
    /// Ablation switches, applied on every device.
    pub ablation: AblationFlags,
    /// Apply the admission test to high-priority jobs too (`Overload+HPA`).
    pub hp_admission: bool,
    /// Retry rejected jobs on other devices before giving up.
    pub cluster_admission: bool,
    /// Migrate queued jobs from overloaded to idle devices.
    pub migration: bool,
    /// Device the model profiles are calibrated against (the paper's
    /// measurement device). Pinned fleet-wide so hardware speed emerges from
    /// the simulation instead of being re-calibrated away.
    pub reference_gpu: GpuSpec,
    /// Worker threads the dispatcher fans per-device simulation out to
    /// between synchronization rounds (and during construction). `1` runs
    /// serially on the caller's thread. Results are byte-identical at every
    /// thread count.
    pub threads: usize,
    /// Length of one synchronization round: how often rejected releases are
    /// retried cluster-wide and queued jobs may migrate. Shorter rounds react
    /// faster but synchronize (and, when `threads > 1`, fork/join) more
    /// often. Must not be zero (clamped to 1 ns).
    pub sync_quantum: SimDuration,
    /// How many other devices (ascending active-load order) a rejected job is
    /// retried on before the rejection is charged. Saturated fleets reject on
    /// the least-loaded device almost iff they reject everywhere, so a small
    /// fan-out keeps the boundary serial work O(1) per rejection instead of
    /// O(fleet). `usize::MAX` restores exhaustive retries; `0` disables
    /// retries entirely (like `cluster_admission: false`).
    pub retry_fanout: usize,
    /// Fleet-wide telemetry sink. Each device scheduler records into a
    /// private per-device buffer during its (possibly parallel) span; the
    /// dispatcher merges the buffers into this sink at round boundaries in
    /// fixed device order, stamping fleet device ids, and adds its own
    /// cluster-layer events (round spans, retries, migrations). The merged
    /// stream is therefore byte-identical at any thread count. `None` (the
    /// default) keeps every device sink-free.
    pub sink: Option<SinkHandle>,
    /// Wall-clock self-profiling of the round phases (span / retry /
    /// migration / merge), for performance reporting only. Explicitly
    /// **nondeterministic** (it measures host time) and kept strictly out of
    /// the simulated state: attaching or detaching a profiler cannot change
    /// any outcome.
    pub profiler: Option<WallClockProfiler>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            strategy: PlacementStrategy::default(),
            window_size: 5,
            ablation: AblationFlags::full(),
            hp_admission: false,
            cluster_admission: true,
            migration: true,
            reference_gpu: GpuSpec::rtx_2080_ti(),
            threads: 1,
            sync_quantum: SimDuration::from_millis(1),
            retry_fanout: 4,
            sink: None,
            profiler: None,
        }
    }
}

/// One device's share of a cluster run.
#[derive(Debug, Clone)]
pub struct DeviceOutcome {
    /// The device's name from the [`ClusterSpec`].
    pub name: String,
    /// The device's scheduler outcome (empty summary for an idle device that
    /// received no tasks).
    pub outcome: ExperimentOutcome,
}

/// Result of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Fleet-level aggregate metrics.
    pub summary: ClusterSummary,
    /// Per-device outcomes, in fleet order.
    pub devices: Vec<DeviceOutcome>,
}

impl ClusterOutcome {
    /// One hash over the aggregate and every per-device summary: any drift
    /// in counts, rates or float accumulation order changes it. This is the
    /// byte-identity check the determinism suites and the `trace_replay`
    /// runner share — widen it here and every check widens with it.
    pub fn summary_hash(&self) -> u64 {
        use std::hash::{DefaultHasher, Hash, Hasher};
        let mut hasher = DefaultHasher::new();
        format!("{:?}", self.summary).hash(&mut hasher);
        for device in &self.devices {
            format!("{:?}", device.outcome.summary).hash(&mut hasher);
        }
        hasher.finish()
    }
}

#[derive(Debug)]
struct DeviceRuntime {
    name: String,
    /// `None` for a device the placement left without tasks: it idles for
    /// the whole run (it has no scheduler to adopt guests into either).
    scheduler: Option<DarisScheduler>,
    /// Global task index → device-local task id (placed and adopted tasks).
    local_of_global: BTreeMap<usize, TaskId>,
    /// The inverse map, indexed by local task id.
    global_of_local: Vec<usize>,
    /// Private telemetry buffer the device's scheduler records into during
    /// its span (only when [`ClusterConfig::sink`] is set). Merged into the
    /// fleet sink at round boundaries in device order, so worker threads
    /// never contend on — or reorder — the user's sink.
    buffer: Option<MemorySink>,
}

/// Runs a [`TaskSet`] on a fleet of devices.
#[derive(Debug)]
pub struct ClusterDispatcher {
    config: ClusterConfig,
    taskset: TaskSet,
    placement: Placement,
    devices: Vec<DeviceRuntime>,
    /// Accounts releases of tasks no device could take at placement time.
    unplaced: MetricsCollector,
    migrations: usize,
    cluster_admissions: usize,
}

fn localize(mut job: Job, local: TaskId) -> Job {
    job.id.task = local;
    job
}

impl ClusterDispatcher {
    /// Places `taskset` on `cluster` and builds one scheduler per device
    /// that received tasks. With `config.threads > 1` the (independent,
    /// profiling-heavy) per-device scheduler builds run on a scoped worker
    /// pool; results and errors are collected in device order.
    ///
    /// # Errors
    ///
    /// Fails on an empty cluster or task set, an infeasible device
    /// partition, or a device scheduler that cannot be built (e.g. a plan
    /// whose model weights exceed device memory — the placement engine's
    /// accounting prevents this for the shipped specs). With several failing
    /// devices, the error reported is the lowest-indexed one.
    pub fn new(taskset: &TaskSet, cluster: ClusterSpec, config: ClusterConfig) -> Result<Self> {
        cluster.validate()?;
        if taskset.is_empty() {
            return Err(ClusterError::EmptyTaskSet);
        }
        let placement = place(taskset, &cluster, config.strategy, &config.reference_gpu);

        // One private buffer per device when a fleet sink is attached; the
        // user's sink itself is never handed to a device scheduler.
        let buffers: Vec<Option<MemorySink>> = (0..cluster.len())
            .map(|_| config.sink.as_ref().map(|_| MemorySink::unbounded()))
            .collect();

        let build_one = |device: usize| -> Result<Option<DarisScheduler>> {
            let spec = &cluster.devices()[device];
            let plan = &placement.plans[device];
            if plan.taskset.is_empty() {
                return Ok(None);
            }
            let mut device_config = DarisConfig::new(spec.partition)
                .with_gpu(spec.gpu.clone())
                .with_reference_calibration(config.reference_gpu.clone())
                .with_window_size(config.window_size)
                .with_ablation(config.ablation);
            if config.hp_admission {
                device_config = device_config.with_hp_admission();
            }
            if let Some(buffer) = &buffers[device] {
                device_config = device_config.with_sink(SinkHandle::new(buffer.clone()));
            }
            DarisScheduler::new(&plan.taskset, device_config)
                .map(Some)
                .map_err(|source| ClusterError::Scheduler { device: spec.name.clone(), source })
        };

        let n = cluster.len();
        let workers = config.threads.max(1).min(n);
        let mut built: Vec<Option<Result<Option<DarisScheduler>>>> = Vec::new();
        built.resize_with(n, || None);
        if workers <= 1 {
            for (device, slot) in built.iter_mut().enumerate() {
                *slot = Some(build_one(device));
            }
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let build_one = &build_one;
                        scope.spawn(move || {
                            (w..n).step_by(workers).map(|d| (d, build_one(d))).collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    for (device, result) in handle.join().expect("scheduler build panicked") {
                        built[device] = Some(result);
                    }
                }
            });
        }

        let mut devices = Vec::with_capacity(n);
        for ((result, buffer), (spec, plan)) in
            built.into_iter().zip(buffers).zip(cluster.devices().iter().zip(&placement.plans))
        {
            let scheduler = result.expect("every device was built")?;
            let local_of_global = plan
                .task_indices
                .iter()
                .enumerate()
                .map(|(local, &global)| (global, TaskId(local as u32)))
                .collect();
            devices.push(DeviceRuntime {
                name: spec.name.clone(),
                scheduler,
                local_of_global,
                global_of_local: plan.task_indices.clone(),
                buffer,
            });
        }
        Ok(ClusterDispatcher {
            config,
            taskset: taskset.clone(),
            placement,
            devices,
            unplaced: MetricsCollector::new(),
            migrations: 0,
            cluster_admissions: 0,
        })
    }

    /// The offline placement this dispatcher runs under.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Simulated GPU events processed across the whole fleet so far.
    pub fn events_processed(&self) -> u64 {
        self.devices
            .iter()
            .filter_map(|d| d.scheduler.as_ref())
            .map(DarisScheduler::events_processed)
            .sum()
    }

    /// Runs a periodic [`TaskSet`] workload on the fleet until `horizon` and
    /// returns per-device and aggregate outcomes. Call once per dispatcher.
    pub fn run_until(&mut self, horizon: SimTime) -> ClusterOutcome {
        // Releases of tasks no device could take are known a priori (arrivals
        // do not depend on simulation state); account them up front.
        let unplaced_tasks = self.unplaced_taskset();
        for job in ArrivalStream::new(&unplaced_tasks, horizon) {
            self.unplaced.record_rejection(&job);
        }

        // One lazy arrival stream per device over its placed tasks (local
        // ids; placement built the local sets with
        // `TaskSet::preserving_phases`, so the per-device streams together
        // reproduce the global release times exactly).
        let device_tasksets: Vec<TaskSet> =
            self.placement.plans.iter().map(|p| p.taskset.clone()).collect();
        let mut streams: Vec<ArrivalStream<'_>> =
            device_tasksets.iter().map(|ts| ArrivalStream::new(ts, horizon)).collect();
        self.drive(&mut streams, horizon)
    }

    /// Runs a seeded [`GenSpec`] workload (bursty, diurnal, correlated) on
    /// the fleet until `horizon`. Each device generates its placed tasks'
    /// releases locally, keyed by the tasks' **global** indices, so the
    /// per-device streams together reproduce the global generator trace
    /// exactly — the generator analogue of `TaskSet::preserving_phases`
    /// preserving release phases. A live generated run is therefore
    /// byte-identical to replaying [`GenSpec::generate`]'s trace of the same
    /// spec via [`run_replay`](Self::run_replay). Call once per dispatcher.
    pub fn run_generated(&mut self, spec: &GenSpec, horizon: SimTime) -> ClusterOutcome {
        let rejected_keys: Vec<u64> =
            self.placement.rejected.iter().map(|id| id.index() as u64).collect();
        let unplaced_tasks = self.unplaced_taskset();
        for job in spec.stream_keyed(&unplaced_tasks, horizon, &rejected_keys) {
            self.unplaced.record_rejection(&job);
        }

        let device_tasksets: Vec<TaskSet> =
            self.placement.plans.iter().map(|p| p.taskset.clone()).collect();
        let device_keys: Vec<Vec<u64>> = self
            .placement
            .plans
            .iter()
            .map(|p| p.task_indices.iter().map(|&g| g as u64).collect())
            .collect();
        let mut streams: Vec<GeneratedStream<'_>> = device_tasksets
            .iter()
            .zip(&device_keys)
            .map(|(ts, keys)| spec.stream_keyed(ts, horizon, keys))
            .collect();
        self.drive(&mut streams, horizon)
    }

    /// Replays a recorded [`Trace`] (over the dispatcher's *global* task
    /// set) on the fleet, to exactly the trace's horizon: the global trace
    /// is split per device along the placement, task ids remapped to each
    /// device's local space — legal because placement preserves the global
    /// relative task order, so the per-device event sequences keep the trace
    /// sort order. Events of tasks the placement rejected are charged as
    /// rejections up front, exactly like the periodic path. Call once per
    /// dispatcher.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Trace`] when the trace refers to tasks the
    /// global set does not contain, or a per-device slice violates the trace
    /// contract.
    pub fn run_replay(&mut self, trace: &Trace) -> Result<ClusterOutcome> {
        let horizon = trace.horizon();
        let n_tasks = self.taskset.len();
        let unplaced_of: BTreeMap<usize, TaskId> = self
            .placement
            .rejected
            .iter()
            .enumerate()
            .map(|(position, id)| (id.index(), TaskId(position as u32)))
            .collect();
        let unplaced_tasks = self.unplaced_taskset();
        let mut per_device: Vec<Vec<TraceEvent>> = vec![Vec::new(); self.devices.len()];
        for ev in trace.events() {
            let global = ev.task.index();
            if global >= n_tasks {
                return Err(ClusterError::Trace(TraceError::UnknownTask {
                    task: ev.task,
                    tasks: n_tasks,
                }));
            }
            match self.placement.device_of[global] {
                Some(device) => {
                    let local = self.devices[device].local_of_global[&global];
                    per_device[device].push(TraceEvent { task: local, ..*ev });
                }
                None => {
                    let local = unplaced_of[&global];
                    let spec = unplaced_tasks.task(local).expect("compacted unplaced set");
                    self.unplaced.record_rejection(&ev.job_for(spec));
                }
            }
        }

        let device_tasksets: Vec<TaskSet> =
            self.placement.plans.iter().map(|p| p.taskset.clone()).collect();
        let device_traces: Vec<Trace> = per_device
            .into_iter()
            .map(|events| Trace::new(horizon, trace.lookahead(), events))
            .collect::<std::result::Result<_, _>>()
            .map_err(ClusterError::Trace)?;
        let mut players: Vec<TracePlayer<'_>> = device_tasksets
            .iter()
            .zip(&device_traces)
            .map(|(ts, tr)| TracePlayer::new(ts, tr))
            .collect::<std::result::Result<_, _>>()
            .map_err(ClusterError::Trace)?;
        Ok(self.drive(&mut players, horizon))
    }

    /// The compacted set of tasks the placement rejected, phases preserved —
    /// the id space `self.unplaced` accounts their releases under.
    fn unplaced_taskset(&self) -> TaskSet {
        TaskSet::preserving_phases(
            self.placement.rejected.iter().map(|id| self.taskset.tasks()[id.index()].clone()),
        )
    }

    /// The synchronization-round loop shared by every workload shape: rounds
    /// of independent per-device spans over `streams` (one source per
    /// device, device-local task ids), boundary-only cross-device work, then
    /// final accounting.
    fn drive<S: ArrivalSource + Send>(
        &mut self,
        streams: &mut [S],
        horizon: SimTime,
    ) -> ClusterOutcome {
        let quantum = self.config.sync_quantum.max(SimDuration::from_nanos(1));
        let mut t0 = SimTime::ZERO;
        let mut round: u64 = 0;
        while t0 < horizon {
            // A drained fleet (no pending releases, no pending events) can
            // never create new work at a boundary — stop striding rounds
            // instead of scanning the fleet horizon/quantum more times.
            let drained = streams.iter().all(|s| s.next_release().is_none())
                && self
                    .devices
                    .iter()
                    .all(|d| d.scheduler.as_ref().map_or(true, |s| s.next_event_time().is_none()));
            if drained {
                break;
            }
            let t1 = t0.saturating_add(quantum).min(horizon);

            self.profile_start(RoundPhase::Span);
            let (spans, rejected) = self.span_fleet(&mut *streams, t1);
            self.profile_end(RoundPhase::Span);
            for (d, from) in &spans {
                let (from, d) = (*from, *d as u32);
                self.emit(d, t1, || EventKind::DeviceSpan { from, to: t1 });
            }
            let span_count = spans.len() as u64;
            self.emit(CLUSTER_DEVICE, t1, || EventKind::PhaseMark {
                round,
                phase: RoundPhase::Span,
                detail: span_count,
            });

            self.profile_start(RoundPhase::Retry);
            let attempts = self.retry_rejections(rejected, t1);
            self.profile_end(RoundPhase::Retry);
            self.emit(CLUSTER_DEVICE, t1, || EventKind::PhaseMark {
                round,
                phase: RoundPhase::Retry,
                detail: attempts,
            });

            self.profile_start(RoundPhase::Migration);
            let before = self.migrations;
            if self.config.migration {
                self.rebalance(t1);
            }
            self.profile_end(RoundPhase::Migration);
            let moved = (self.migrations - before) as u64;
            self.emit(CLUSTER_DEVICE, t1, || EventKind::PhaseMark {
                round,
                phase: RoundPhase::Migration,
                detail: moved,
            });

            self.profile_start(RoundPhase::Merge);
            let merged = self.merge_device_buffers();
            self.profile_end(RoundPhase::Merge);
            self.emit(CLUSTER_DEVICE, t1, || EventKind::PhaseMark {
                round,
                phase: RoundPhase::Merge,
                detail: merged,
            });

            round += 1;
            t0 = t1;
        }

        let outcomes: Vec<DeviceOutcome> = self
            .devices
            .iter_mut()
            .map(|device| {
                let outcome = match device.scheduler.as_mut() {
                    Some(scheduler) => scheduler.finish(horizon),
                    None => ExperimentOutcome {
                        summary: MetricsCollector::new().summarize(horizon),
                        mret_trace: Vec::new(),
                        config_label: "idle".to_owned(),
                    },
                };
                DeviceOutcome { name: device.name.clone(), outcome }
            })
            .collect();
        // `finish` above emitted each device's trailing events (everything
        // between the last boundary and the horizon); merge them too.
        self.merge_device_buffers();

        let duration = horizon.duration_since(SimTime::ZERO);
        let mut summary = ClusterSummary::aggregate(
            outcomes.iter().map(|d| &d.outcome.summary).collect::<Vec<_>>(),
            &self.unplaced.summarize(horizon),
            duration,
        );
        summary.migrations = self.migrations;
        summary.cluster_admissions = self.cluster_admissions;
        summary.placement_rejected_tasks = self.placement.rejected.len();
        ClusterOutcome { summary, devices: outcomes }
    }

    // ----- telemetry --------------------------------------------------------

    /// Emits one event into the fleet sink (if attached). The closure runs
    /// only when a sink is present, so the disabled path never constructs an
    /// event. `device` is a fleet index or [`CLUSTER_DEVICE`].
    fn emit(&self, device: u32, at: SimTime, kind: impl FnOnce() -> EventKind) {
        if let Some(sink) = &self.config.sink {
            sink.record(TelemetryEvent { at, device, kind: kind() });
        }
    }

    /// Starts profiling a round phase (if a profiler is attached).
    fn profile_start(&self, phase: RoundPhase) {
        if let Some(profiler) = &self.config.profiler {
            profiler.phase_started(phase);
        }
    }

    /// Finishes profiling a round phase (if a profiler is attached).
    fn profile_end(&self, phase: RoundPhase) {
        if let Some(profiler) = &self.config.profiler {
            profiler.phase_finished(phase);
        }
    }

    /// Merges every device's private telemetry buffer into the fleet sink in
    /// ascending device order, rewriting the schedulers' device-local id
    /// (always 0) to the fleet index. Returns the number of events merged.
    /// Runs on the single-threaded boundary path only, which is what makes
    /// the merged stream independent of worker timing.
    fn merge_device_buffers(&mut self) -> u64 {
        let Some(sink) = self.config.sink.clone() else { return 0 };
        let mut merged = 0u64;
        for (d, device) in self.devices.iter().enumerate() {
            let Some(buffer) = &device.buffer else { continue };
            for mut event in buffer.drain() {
                event.device = d as u32;
                sink.record(event);
                merged += 1;
            }
        }
        merged
    }

    /// Runs one synchronization round: every device with a due event or
    /// release simulates `[its clock, until)` independently, fanned out to
    /// scoped worker threads when configured. Returns the spanned devices
    /// with their pre-span clocks, plus the releases each home device
    /// rejected, both merged in ascending device order (the deterministic
    /// join — worker timing cannot reorder it).
    #[allow(clippy::type_complexity)]
    fn span_fleet<S: ArrivalSource + Send>(
        &mut self,
        streams: &mut [S],
        until: SimTime,
    ) -> (Vec<(usize, SimTime)>, Vec<(usize, Vec<Job>)>) {
        let threads = self.config.threads.max(1);
        let mut spans: Vec<(usize, SimTime)> = Vec::new();
        let mut due: Vec<(usize, &mut DarisScheduler, &mut S)> = Vec::new();
        for ((d, device), stream) in self.devices.iter_mut().enumerate().zip(streams.iter_mut()) {
            let Some(scheduler) = device.scheduler.as_mut() else { continue };
            let event_due = scheduler.next_event_time().is_some_and(|t| t < until);
            let release_due = stream.next_release().is_some_and(|r| r < until);
            if event_due || release_due {
                spans.push((d, scheduler.now()));
                due.push((d, scheduler, stream));
            }
        }

        let span = |d: usize, scheduler: &mut DarisScheduler, stream: &mut S| {
            let mut rejected = Vec::new();
            scheduler.run_span(stream, until, &mut rejected);
            (d, rejected)
        };

        let mut out: Vec<(usize, Vec<Job>)> = if threads <= 1 || due.len() < 2 {
            due.into_iter().map(|(d, sch, st)| span(d, sch, st)).collect()
        } else {
            // Deal devices round-robin to one bucket per worker; each worker
            // only touches its own devices' state.
            let workers = threads.min(due.len());
            let mut buckets: Vec<Vec<(usize, &mut DarisScheduler, &mut S)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (k, item) in due.into_iter().enumerate() {
                buckets[k % workers].push(item);
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        let span = &span;
                        scope.spawn(move || {
                            bucket
                                .into_iter()
                                .map(|(d, sch, st)| span(d, sch, st))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().expect("span worker panicked")).collect()
            })
        };
        out.retain(|(_, rejected)| !rejected.is_empty());
        out.sort_by_key(|(d, _)| *d);
        (spans, out)
    }

    /// Retries the round's home-rejected releases cluster-wide (in device
    /// order, then release order): each job is offered to the
    /// `retry_fanout` least-loaded other devices, adopting the task as a
    /// guest on first contact; if every consulted device refuses, the
    /// rejection is charged to the home device — each job is accounted
    /// exactly once. Returns the number of retry offers made (for the round's
    /// telemetry phase mark).
    fn retry_rejections(&mut self, rejected: Vec<(usize, Vec<Job>)>, now: SimTime) -> u64 {
        let mut attempts = 0u64;
        for (home, jobs) in rejected {
            for job in jobs {
                let global = self.devices[home].global_of_local[job.id.task.index()];
                let mut admitted = false;
                if self.config.cluster_admission && self.config.retry_fanout > 0 {
                    // Loads are re-read per job (an admitted retry changes the
                    // receiver's load), but only the `retry_fanout` least
                    // loaded candidates are ordered: a partial selection keeps
                    // this O(fleet + fanout log fanout) instead of a full
                    // O(fleet log fleet) sort per rejection.
                    let load = |d: usize| {
                        self.devices[d]
                            .scheduler
                            .as_ref()
                            .map(DarisScheduler::active_load_fraction)
                            .unwrap_or(f64::INFINITY)
                    };
                    let mut candidates: Vec<(f64, usize)> = (0..self.devices.len())
                        .filter(|&d| d != home && self.devices[d].scheduler.is_some())
                        .map(|d| (load(d), d))
                        .collect();
                    let fanout = self.config.retry_fanout.min(candidates.len());
                    let by_load = |a: &(f64, usize), b: &(f64, usize)| {
                        a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1))
                    };
                    if fanout < candidates.len() {
                        candidates.select_nth_unstable_by(fanout, by_load);
                        candidates.truncate(fanout);
                    }
                    candidates.sort_by(by_load);
                    for (_, device) in candidates {
                        let Some(local) = self.local_id_on(device, global) else { continue };
                        self.catch_up(device, now);
                        let scheduler = self.devices[device]
                            .scheduler
                            .as_mut()
                            .expect("candidate has a scheduler");
                        let accepted = scheduler.try_release_job(localize(job, local));
                        if accepted {
                            scheduler.dispatch_ready();
                        }
                        attempts += 1;
                        self.emit(CLUSTER_DEVICE, now, || EventKind::RetryAttempt {
                            task: TaskId(global as u32),
                            release_index: job.id.release_index,
                            home: home as u32,
                            target: device as u32,
                            admitted: accepted,
                        });
                        if accepted {
                            self.cluster_admissions += 1;
                            admitted = true;
                            break;
                        }
                    }
                }
                if !admitted {
                    self.devices[home]
                        .scheduler
                        .as_mut()
                        .expect("home device has a scheduler")
                        .reject_job(&job);
                }
            }
        }
        attempts
    }

    /// Fast-forwards a trailing device's clock to `to` (a no-op for devices
    /// that are already current). Devices are only caught up when a retried
    /// release or a migration actually lands on them, so idle devices cost
    /// nothing per round. `advance_to` is *inclusive*, so a completion
    /// sitting exactly on the boundary is consumed here — dispatching right
    /// after keeps its freed stream from stranding queued stages (this is
    /// exactly what the device's own span would have done at `to`).
    fn catch_up(&mut self, device: usize, to: SimTime) {
        if let Some(scheduler) = self.devices[device].scheduler.as_mut() {
            if scheduler.now() < to {
                scheduler.advance_to(to);
                scheduler.dispatch_ready();
            }
        }
    }

    /// The local id of global task `global` on `device`, adopting the task
    /// as a guest on first contact. `None` if adoption fails (model weights
    /// do not fit in the device's remaining memory).
    fn local_id_on(&mut self, device: usize, global: usize) -> Option<TaskId> {
        if let Some(&local) = self.devices[device].local_of_global.get(&global) {
            return Some(local);
        }
        let spec = self.taskset.tasks()[global].clone();
        let scheduler = self.devices[device].scheduler.as_mut()?;
        let local = scheduler.adopt_task(&spec).ok()?;
        debug_assert_eq!(local.index(), self.devices[device].global_of_local.len());
        self.devices[device].local_of_global.insert(global, local);
        self.devices[device].global_of_local.push(global);
        Some(local)
    }

    /// The global task index behind a device-local task id.
    fn global_of(&self, device: usize, local: TaskId) -> usize {
        self.devices[device].global_of_local[local.index()]
    }

    /// Stage-boundary migration: while some device has a backlog it cannot
    /// serve (no idle stream) and another device sits idle, move queued
    /// not-yet-started jobs over (least urgent first, admission-tested on
    /// the receiver). Devices a migration lands on are caught up to `now`
    /// first.
    fn rebalance(&mut self, now: SimTime) {
        for _ in 0..MAX_MIGRATIONS_PER_STEP {
            let backlog = |d: &DeviceRuntime| {
                d.scheduler.as_ref().map(DarisScheduler::queue_backlog).unwrap_or(0)
            };
            let idle = |d: &DeviceRuntime| {
                d.scheduler.as_ref().map(DarisScheduler::idle_stream_count).unwrap_or(0)
            };
            let Some(src) = (0..self.devices.len())
                .filter(|&d| backlog(&self.devices[d]) > 0 && idle(&self.devices[d]) == 0)
                .max_by_key(|&d| (backlog(&self.devices[d]), usize::MAX - d))
            else {
                break;
            };
            let Some(dst) = (0..self.devices.len())
                .filter(|&d| {
                    d != src && backlog(&self.devices[d]) == 0 && idle(&self.devices[d]) > 0
                })
                .max_by_key(|&d| (idle(&self.devices[d]), usize::MAX - d))
            else {
                break;
            };

            let candidates = self.devices[src]
                .scheduler
                .as_ref()
                .map(DarisScheduler::migratable_jobs)
                .unwrap_or_default();
            let mut moved = false;
            for local_job in candidates {
                let global = self.global_of(src, local_job.task);
                let Some(dst_local) = self.local_id_on(dst, global) else { continue };
                let priority = self.taskset.tasks()[global].priority;
                let dst_admits = self.devices[dst]
                    .scheduler
                    .as_ref()
                    .map(|s| s.would_admit(dst_local, priority))
                    .unwrap_or(false);
                if !dst_admits {
                    continue;
                }
                let Some(withdrawn) = self.devices[src]
                    .scheduler
                    .as_mut()
                    .and_then(|s| s.withdraw_queued_job(local_job))
                else {
                    continue;
                };
                self.catch_up(src, now);
                self.catch_up(dst, now);
                let release_index = withdrawn.id.release_index;
                let dst_scheduler =
                    self.devices[dst].scheduler.as_mut().expect("dst has a scheduler");
                if dst_scheduler.try_release_job(localize(withdrawn, dst_local)) {
                    dst_scheduler.dispatch_ready();
                    self.migrations += 1;
                    self.emit(CLUSTER_DEVICE, now, || EventKind::Migration {
                        task: TaskId(global as u32),
                        release_index,
                        from: src as u32,
                        to: dst as u32,
                    });
                    moved = true;
                    break;
                }
                // The receiver changed its mind (should not happen — the
                // admission test was just consulted); restore the job home.
                let src_scheduler =
                    self.devices[src].scheduler.as_mut().expect("src has a scheduler");
                if !src_scheduler.try_release_job(withdrawn) {
                    src_scheduler.reject_job(&withdrawn);
                }
            }
            if !moved {
                break;
            }
        }
    }
}
