//! The sanctioned worker pool: every thread the cluster crate ever spawns
//! is spawned here (`daris-lint` rule D004 pins this file as the only legal
//! spawn site).
//!
//! Two fan-out shapes live behind this module's API:
//!
//! * [`build_striped`] — a one-shot scoped fan-out used for scheduler
//!   construction, dealing indices to workers in fixed stripes and
//!   collecting results in index order;
//! * [`drive_rounds`] — the **persistent spin/park pool** the round loop
//!   runs on. One `std::thread::scope` spans the *entire* run: workers are
//!   spawned once, then parked between rounds, instead of the old
//!   spawn-per-round pattern whose fork/join cost grew with round count.
//!
//! # Affinity and determinism
//!
//! Worker `w` owns exactly the devices `d` with `d % workers == w` for the
//! whole run (stable device→worker affinity: a device's scheduler state is
//! touched by one worker's cache for every span). Each device's state lives
//! in its own [`Mutex`]-guarded [`DeviceCell`]; during a round the owning
//! worker holds the only claim on its cells, and between rounds — while all
//! workers are parked — the dispatcher's boundary phases (retry, migration,
//! merge) lock cells from the main thread, uncontended. Since every span
//! simulates a disjoint device over a fixed `[t0, t1)` window, wall-clock
//! interleaving of workers cannot reorder any simulated outcome: results
//! are collected in device-index order by the main thread, so the output is
//! byte-identical at any worker count.
//!
//! # Round protocol
//!
//! The main thread publishes a round by bumping `round` (with the span end
//! in `until_ns`) and unparking every worker; each worker spans its stripe,
//! then increments `done`, and the last one unparks the main thread. Both
//! sides spin briefly before parking, so back-to-back rounds — the common
//! case in a saturated sweep — never enter the kernel.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::thread::Thread;

use daris_core::Scheduler;
use daris_gpu::SimTime;
use daris_workload::{ArrivalSource, Job};

/// Iterations to spin before parking, on both sides of the protocol. Spans
/// in a loaded round take far longer than this, so the limit only matters
/// for near-empty rounds, where parking is the right call anyway.
const SPIN_LIMIT: u32 = 128;

/// One device's run state, shared between the owning worker (span phase)
/// and the main thread (boundary phases). Generic over the per-device
/// scheduler — anything implementing the `daris-core` [`Scheduler`] trait
/// fans out identically. The scheduler is `None` for a device the placement
/// left idle.
#[derive(Debug)]
pub(crate) struct DeviceCell<Sch, S> {
    pub scheduler: Option<Sch>,
    pub stream: S,
    /// Set by the main thread's pre-round pass; consumed by the span.
    pub due: bool,
    /// Releases the device's admission test rejected during its span,
    /// collected by the main thread at the boundary.
    pub rejected: Vec<Job>,
}

/// The fleet's per-device cells. Indexing is fleet device order.
#[derive(Debug)]
pub(crate) struct FleetCells<Sch, S> {
    cells: Vec<Mutex<DeviceCell<Sch, S>>>,
}

impl<Sch, S> FleetCells<Sch, S> {
    pub fn new(cells: Vec<DeviceCell<Sch, S>>) -> Self {
        FleetCells { cells: cells.into_iter().map(Mutex::new).collect() }
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Locks one device's cell. Uncontended on every path: workers only
    /// lock their own stripe during a round, the main thread only locks
    /// while workers are parked.
    pub fn cell(&self, device: usize) -> MutexGuard<'_, DeviceCell<Sch, S>> {
        self.cells[device].lock().expect("device cell lock poisoned")
    }

    /// Tears the fleet back down into plain cells (end of run).
    pub fn into_cells(self) -> Vec<DeviceCell<Sch, S>> {
        self.cells.into_iter().map(|m| m.into_inner().expect("device cell lock poisoned")).collect()
    }
}

/// One-shot scoped fan-out over `0..n`, dealing index `i` to worker
/// `i % workers` and collecting the results in index order. Runs on the
/// caller's thread when `workers <= 1`. Used for scheduler construction,
/// whose per-device profiling cost dwarfs the spawn cost.
pub(crate) fn build_striped<T: Send>(
    n: usize,
    workers: usize,
    build: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let workers = workers.max(1).min(n.max(1));
    if workers <= 1 {
        return (0..n).map(build).collect();
    }
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let build = &build;
                scope.spawn(move || {
                    (w..n).step_by(workers).map(|i| (i, build(i))).collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, value) in handle.join().expect("build worker panicked") {
                out[i] = Some(value);
            }
        }
    });
    out.into_iter().map(|v| v.expect("every index was built")).collect()
}

/// Shared state of the round protocol.
struct PoolCtl {
    /// Round counter; a bump is the "go" signal.
    round: AtomicU64,
    /// Span end of the published round, as integer nanoseconds.
    until_ns: AtomicU64,
    /// Workers finished with the published round.
    done: AtomicUsize,
    /// A worker's span panicked; the main thread re-raises.
    panicked: AtomicBool,
    /// Shutdown signal (checked after every round wake-up).
    stop: AtomicBool,
    /// The main thread, unparked by the last worker to finish a round.
    main: Thread,
}

/// Spin-then-park until `ready` holds. The counterpart `unpark` may arrive
/// before the `park` call; `park` consumes the stashed token immediately,
/// and spurious wake-ups just re-check.
fn wait_until(ready: impl Fn() -> bool) {
    let mut spins = 0u32;
    while !ready() {
        spins += 1;
        if spins < SPIN_LIMIT {
            std::hint::spin_loop();
        } else {
            std::thread::park();
        }
    }
}

/// Runs one worker's fixed stripe of the published round: every due device
/// `d ≡ w (mod workers)` spans `[its clock, until)` on its own scheduler
/// and stream, leaving rejected releases in its cell.
fn span_stripe<Sch: Scheduler, S: ArrivalSource>(
    fleet: &FleetCells<Sch, S>,
    w: usize,
    workers: usize,
    until: SimTime,
) {
    for d in (w..fleet.len()).step_by(workers) {
        let mut cell = fleet.cell(d);
        if !cell.due {
            continue;
        }
        cell.due = false;
        let DeviceCell { scheduler, stream, rejected, .. } = &mut *cell;
        let scheduler = scheduler.as_mut().expect("due device has a scheduler");
        scheduler.run_span(stream, until, rejected);
    }
}

fn worker_loop<Sch: Scheduler, S: ArrivalSource>(
    fleet: &FleetCells<Sch, S>,
    ctl: &PoolCtl,
    w: usize,
    workers: usize,
) {
    let mut seen = 0u64;
    loop {
        wait_until(|| ctl.round.load(Ordering::Acquire) != seen);
        seen = ctl.round.load(Ordering::Acquire);
        if ctl.stop.load(Ordering::Acquire) {
            return;
        }
        let until = SimTime::from_nanos(ctl.until_ns.load(Ordering::Acquire));
        // Contain a panicking span so the main thread is never left waiting
        // on a `done` count that cannot be reached; the panic is re-raised
        // on the main thread after the round completes.
        let ok = catch_unwind(AssertUnwindSafe(|| span_stripe(fleet, w, workers, until))).is_ok();
        if !ok {
            ctl.panicked.store(true, Ordering::Release);
        }
        if ctl.done.fetch_add(1, Ordering::AcqRel) + 1 == workers {
            ctl.main.unpark();
        }
        if !ok {
            return;
        }
    }
}

/// Runs `body` with a persistent worker pool. `body` receives a
/// `run_round(until)` callback: each call spans every cell whose `due` flag
/// the caller set, in parallel across `workers` threads with stable
/// `d % workers` affinity, and returns once all spans are complete. With
/// `workers <= 1` no thread is ever spawned and spans run inline on the
/// caller's thread — the serial and parallel paths issue the identical
/// per-device call sequence, which is what makes results thread-count
/// invariant.
pub(crate) fn drive_rounds<Sch: Scheduler + Send, S: ArrivalSource + Send, R>(
    fleet: &FleetCells<Sch, S>,
    workers: usize,
    body: impl FnOnce(&mut dyn FnMut(SimTime)) -> R,
) -> R {
    let workers = workers.max(1).min(fleet.len().max(1));
    if workers <= 1 {
        let mut run_round = |until: SimTime| span_stripe(fleet, 0, 1, until);
        return body(&mut run_round);
    }

    let ctl = PoolCtl {
        round: AtomicU64::new(0),
        until_ns: AtomicU64::new(0),
        done: AtomicUsize::new(workers),
        panicked: AtomicBool::new(false),
        stop: AtomicBool::new(false),
        main: std::thread::current(),
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let ctl = &ctl;
                scope.spawn(move || worker_loop(fleet, ctl, w, workers))
            })
            .collect();
        let worker_threads: Vec<Thread> = handles.iter().map(|h| h.thread().clone()).collect();

        let mut run_round = |until: SimTime| {
            ctl.done.store(0, Ordering::Release);
            ctl.until_ns.store(until.as_nanos(), Ordering::Release);
            ctl.round.fetch_add(1, Ordering::AcqRel);
            for t in &worker_threads {
                t.unpark();
            }
            wait_until(|| ctl.done.load(Ordering::Acquire) >= workers);
            if ctl.panicked.load(Ordering::Acquire) {
                panic!("span worker panicked");
            }
        };
        let out = body(&mut run_round);

        ctl.stop.store(true, Ordering::Release);
        ctl.round.fetch_add(1, Ordering::AcqRel);
        for t in &worker_threads {
            t.unpark();
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stream stub: the pool only ever forwards it to `run_span`, which
    /// these tests never reach (no schedulers), so an empty source is fine.
    #[derive(Debug)]
    struct NoJobs;
    impl ArrivalSource for NoJobs {
        fn next_release(&self) -> Option<SimTime> {
            None
        }
        fn next_job(&mut self) -> Option<Job> {
            None
        }
    }

    fn idle_fleet(n: usize) -> FleetCells<daris_core::DarisScheduler, NoJobs> {
        FleetCells::new(
            (0..n)
                .map(|_| DeviceCell {
                    scheduler: None,
                    stream: NoJobs,
                    due: false,
                    rejected: Vec::new(),
                })
                .collect(),
        )
    }

    #[test]
    fn build_striped_collects_in_index_order() {
        for workers in [1, 2, 3, 8] {
            let built = build_striped(10, workers, |i| i * i);
            assert_eq!(built, (0..10).map(|i| i * i).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn drive_rounds_runs_many_rounds_on_one_pool() {
        // No device is ever due, so rounds are pure protocol: this pins the
        // publish/park handshake over many rounds and both worker counts.
        for workers in [1usize, 4] {
            let fleet = idle_fleet(6);
            let rounds = drive_rounds(&fleet, workers, |run_round| {
                for r in 0..100u64 {
                    run_round(SimTime::from_micros(r + 1));
                }
                100u64
            });
            assert_eq!(rounds, 100);
        }
    }

    #[test]
    fn drive_rounds_serial_never_blocks_on_empty_fleet() {
        let fleet = idle_fleet(0);
        let out = drive_rounds(&fleet, 8, |run_round| {
            run_round(SimTime::from_micros(1));
            42
        });
        assert_eq!(out, 42);
    }
}
