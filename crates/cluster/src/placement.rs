//! Utilization-aware placement of a task set onto a fleet.
//!
//! Placement answers the *offline* question: which device does each task
//! live on? It packs tasks by their Eq. 10 utilization (inflated isolated
//! latency over period — the same estimate that seeds the online admission
//! test of Eq. 11–12) against each device's stream capacity scaled by its SM
//! ratio, while accounting resident model weights against device memory.
//! High-priority tasks are placed first (mirroring Algorithm 1's HP-first
//! context population); every task is either placed on exactly one device or
//! explicitly rejected.

use std::collections::{BTreeMap, BTreeSet};

use daris_core::AFET_INFLATION;
use daris_gpu::GpuSpec;
use daris_models::{DnnKind, ModelProfile};
use daris_workload::{Priority, TaskId, TaskSet, TaskSpec};

use crate::ClusterSpec;

/// The bin-packing policy used by [`place`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// First-fit-decreasing: tasks in decreasing utilization order, each on
    /// the first device (fleet order) with room. Concentrates load on early
    /// devices, minimizing the number of devices touched.
    #[default]
    FirstFitDecreasing,
    /// Greedy balance: tasks in decreasing utilization order, each on the
    /// fitting device with the lowest relative load. Spreads load evenly,
    /// which favors tail latency over consolidation.
    GreedyBalance,
}

/// The tasks one device ends up serving.
#[derive(Debug, Clone)]
pub struct DevicePlan {
    /// Index of the device in the [`ClusterSpec`].
    pub device: usize,
    /// Global task indices placed here, in ascending (original) order.
    pub task_indices: Vec<usize>,
    /// The device-local task set (ids reassigned to `0..n`, original
    /// relative order preserved — a single-device plan over the full set is
    /// exactly the original set).
    pub taskset: TaskSet,
    /// Total packed utilization (Eq. 10 estimates).
    pub utilization: f64,
    /// Bytes of resident model weights this plan requires.
    pub memory_bytes: u64,
}

/// Result of placing a task set onto a fleet.
#[derive(Debug, Clone)]
pub struct Placement {
    /// One plan per device (possibly with no tasks).
    pub plans: Vec<DevicePlan>,
    /// Global task index → device index, `None` for rejected tasks.
    pub device_of: Vec<Option<usize>>,
    /// Tasks no device could take, in id order.
    pub rejected: Vec<TaskId>,
}

impl Placement {
    /// Number of placed tasks.
    pub fn placed_count(&self) -> usize {
        self.device_of.iter().filter(|d| d.is_some()).count()
    }
}

/// Estimated Eq. 10 utilization of one task: inflated isolated latency (on
/// the reference device, at the task's batch size) over its period.
fn task_utilization(task: &TaskSpec, profiles: &BTreeMap<DnnKind, ModelProfile>) -> f64 {
    let profile = &profiles[&task.model];
    let afet_us = profile.isolated_latency_us(task.batch_size) * AFET_INFLATION;
    afet_us / task.period.as_micros_f64().max(1e-9)
}

/// The Eq. 10 utilization estimates the placement engine packs with, one per
/// task, with model profiles calibrated against `reference`. Exposed so
/// tests and capacity planners can audit a [`Placement`] independently.
pub fn utilization_estimates(taskset: &TaskSet, reference: &GpuSpec) -> Vec<f64> {
    let profiles: BTreeMap<DnnKind, ModelProfile> = taskset
        .model_kinds()
        .into_iter()
        .map(|k| (k, ModelProfile::calibrated_for(k, Default::default(), reference)))
        .collect();
    taskset.tasks().iter().map(|t| task_utilization(t, &profiles)).collect()
}

/// Partitions `taskset` across `cluster` under `strategy`.
///
/// `reference` is the device the model profiles are calibrated against (the
/// paper's RTX 2080 Ti in all shipped experiments); device capacities are
/// expressed relative to its SM count.
pub fn place(
    taskset: &TaskSet,
    cluster: &ClusterSpec,
    strategy: PlacementStrategy,
    reference: &GpuSpec,
) -> Placement {
    let profiles: BTreeMap<DnnKind, ModelProfile> = taskset
        .model_kinds()
        .into_iter()
        .map(|k| (k, ModelProfile::calibrated_for(k, Default::default(), reference)))
        .collect();
    let utils: Vec<f64> = taskset.tasks().iter().map(|t| task_utilization(t, &profiles)).collect();
    debug_assert_eq!(utils.len(), taskset.len());

    let n_devices = cluster.len();
    let capacity: Vec<f64> =
        cluster.devices().iter().map(|d| d.utilization_capacity(reference.sm_count)).collect();
    let mut used = vec![0.0f64; n_devices];
    let mut mem_used = vec![0u64; n_devices];
    let mut resident: Vec<BTreeSet<DnnKind>> = vec![BTreeSet::new(); n_devices];
    let mut device_of: Vec<Option<usize>> = vec![None; taskset.len()];
    let mut rejected = Vec::new();

    // HP first, then LP, each class in decreasing utilization order (ties
    // broken by index for determinism) — first-fit-*decreasing*.
    let mut order: Vec<usize> = Vec::with_capacity(taskset.len());
    for priority in Priority::both() {
        let mut class: Vec<usize> =
            (0..taskset.len()).filter(|&i| taskset.tasks()[i].priority == priority).collect();
        class.sort_by(|&a, &b| utils[b].total_cmp(&utils[a]).then_with(|| a.cmp(&b)));
        order.extend(class);
    }

    for idx in order {
        let task = &taskset.tasks()[idx];
        let weight = profiles[&task.model].weight_bytes();
        let fits = |d: usize, used: &[f64], mem_used: &[u64], resident: &[BTreeSet<DnnKind>]| {
            let extra_mem = if resident[d].contains(&task.model) { 0 } else { weight };
            used[d] + utils[idx] <= capacity[d] + 1e-9
                && mem_used[d] + extra_mem <= cluster.devices()[d].memory_budget()
        };
        let candidates = (0..n_devices).filter(|&d| fits(d, &used, &mem_used, &resident));
        let chosen = match strategy {
            PlacementStrategy::FirstFitDecreasing => candidates.min(),
            PlacementStrategy::GreedyBalance => candidates.min_by(|&a, &b| {
                let load = |d: usize| used[d] / capacity[d].max(1e-9);
                load(a).total_cmp(&load(b)).then_with(|| a.cmp(&b))
            }),
        };
        match chosen {
            Some(d) => {
                device_of[idx] = Some(d);
                used[d] += utils[idx];
                if resident[d].insert(task.model) {
                    mem_used[d] += weight;
                }
            }
            None => rejected.push(task.id),
        }
    }
    rejected.sort_unstable();

    let plans = (0..n_devices)
        .map(|d| {
            let task_indices: Vec<usize> =
                (0..taskset.len()).filter(|&i| device_of[i] == Some(d)).collect();
            // Phases must survive sub-setting: the dispatcher feeds each
            // device an arrival stream over its local set, and those streams
            // together must reproduce the global release times exactly.
            let local = TaskSet::preserving_phases(
                task_indices.iter().map(|&i| taskset.tasks()[i].clone()),
            );
            DevicePlan {
                device: d,
                taskset: local,
                task_indices,
                utilization: used[d],
                memory_bytes: mem_used[d],
            }
        })
        .collect();

    Placement { plans, device_of, rejected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceSpec;
    use daris_core::GpuPartition;
    use daris_models::DnnKind;

    fn reference() -> GpuSpec {
        GpuSpec::rtx_2080_ti()
    }

    #[test]
    fn single_device_takes_a_feasible_set_in_original_order() {
        let taskset = TaskSet::table2(DnnKind::UNet);
        let fleet = ClusterSpec::homogeneous(1, reference(), GpuPartition::mps(6, 6.0));
        let p = place(&taskset, &fleet, PlacementStrategy::FirstFitDecreasing, &reference());
        assert!(p.rejected.is_empty());
        assert_eq!(p.placed_count(), taskset.len());
        // The local set preserves the original order, so ids line up 1:1.
        assert_eq!(p.plans[0].taskset.tasks().len(), taskset.len());
        for (a, b) in p.plans[0].taskset.tasks().iter().zip(taskset.tasks()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.model, b.model);
            assert_eq!(a.priority, b.priority);
        }
    }

    #[test]
    fn oversized_set_is_partially_rejected_with_hp_preferred() {
        // 4x the ResNet18 set on one device: far beyond its capacity.
        let taskset = TaskSet::table2_scaled(DnnKind::ResNet18, 4);
        let fleet = ClusterSpec::homogeneous(1, reference(), GpuPartition::mps(6, 6.0));
        let p = place(&taskset, &fleet, PlacementStrategy::FirstFitDecreasing, &reference());
        assert!(!p.rejected.is_empty());
        assert_eq!(p.placed_count() + p.rejected.len(), taskset.len());
        // HP tasks were placed before any LP task.
        let placed_lp = p
            .device_of
            .iter()
            .enumerate()
            .filter(|(i, d)| d.is_some() && taskset.tasks()[*i].priority == Priority::Low)
            .count();
        let rejected_hp = p
            .rejected
            .iter()
            .filter(|id| taskset.task(**id).unwrap().priority == Priority::High)
            .count();
        assert!(
            placed_lp == 0 || rejected_hp == 0,
            "LP must not displace HP: {placed_lp} LP placed while {rejected_hp} HP rejected"
        );
    }

    #[test]
    fn greedy_balance_spreads_while_ffd_concentrates() {
        let taskset = TaskSet::table2(DnnKind::UNet);
        let fleet = ClusterSpec::homogeneous(4, reference(), GpuPartition::mps(6, 6.0));
        let ffd = place(&taskset, &fleet, PlacementStrategy::FirstFitDecreasing, &reference());
        let bal = place(&taskset, &fleet, PlacementStrategy::GreedyBalance, &reference());
        // FFD packs the small set on device 0; balance uses every device.
        assert_eq!(ffd.plans[0].task_indices.len(), taskset.len());
        assert!(bal.plans.iter().all(|p| !p.task_indices.is_empty()));
        let spread_max = bal.plans.iter().map(|p| p.task_indices.len()).max().unwrap();
        let spread_min = bal.plans.iter().map(|p| p.task_indices.len()).min().unwrap();
        assert!(spread_max - spread_min <= 1, "balance should spread evenly");
    }

    #[test]
    fn memory_budget_limits_distinct_models() {
        // A device with almost no memory cannot host any model weights.
        let mut tiny_gpu = reference();
        tiny_gpu.memory_bytes = 1024;
        let fleet = ClusterSpec::new().with_device(DeviceSpec::new(
            "tiny",
            tiny_gpu,
            GpuPartition::mps(6, 6.0),
        ));
        let taskset = TaskSet::table2(DnnKind::UNet);
        let p = place(&taskset, &fleet, PlacementStrategy::FirstFitDecreasing, &reference());
        assert_eq!(p.placed_count(), 0);
        assert_eq!(p.rejected.len(), taskset.len());
    }
}
