//! Error type for the cluster layer.

use std::error::Error;
use std::fmt;

use daris_core::CoreError;
use daris_workload::TraceError;

/// Errors returned by the cluster layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// The cluster has no devices.
    EmptyCluster,
    /// The task set has no tasks.
    EmptyTaskSet,
    /// A device's partition/spec combination is invalid.
    InvalidDevice {
        /// The offending device's name.
        device: String,
        /// The underlying scheduler error.
        source: CoreError,
    },
    /// A per-device scheduler failed to build.
    Scheduler {
        /// The offending device's name.
        device: String,
        /// The underlying scheduler error.
        source: CoreError,
    },
    /// A workload trace could not be replayed on this cluster.
    Trace(TraceError),
    /// `ClusterConfig::sync_quantum` is zero. A zero-length round can never
    /// advance simulated time; rejected loudly instead of silently clamped.
    ZeroSyncQuantum,
    /// A [`RunSpec`](daris_core::RunSpec) cannot be executed on a cluster
    /// (e.g. it has no horizon, or its replay horizon does not match the
    /// trace).
    InvalidRunSpec(String),
    /// An adaptive control-plane knob ([`ElasticQuantum`](crate::ElasticQuantum),
    /// [`AutoscaleConfig`](crate::AutoscaleConfig) or the cluster-level
    /// adaptive-HPA detector) is misconfigured.
    InvalidAdaptiveConfig(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::EmptyCluster => write!(f, "cluster contains no devices"),
            ClusterError::EmptyTaskSet => write!(f, "task set contains no tasks"),
            ClusterError::InvalidDevice { device, source } => {
                write!(f, "invalid device '{device}': {source}")
            }
            ClusterError::Scheduler { device, source } => {
                write!(f, "scheduler for device '{device}' failed: {source}")
            }
            ClusterError::Trace(source) => write!(f, "workload trace error: {source}"),
            ClusterError::ZeroSyncQuantum => {
                write!(f, "sync_quantum must be non-zero (a zero-length round cannot advance time)")
            }
            ClusterError::InvalidRunSpec(reason) => {
                write!(f, "run spec cannot be executed on a cluster: {reason}")
            }
            ClusterError::InvalidAdaptiveConfig(reason) => {
                write!(f, "invalid adaptive control-plane configuration: {reason}")
            }
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::InvalidDevice { source, .. } | ClusterError::Scheduler { source, .. } => {
                Some(source)
            }
            ClusterError::Trace(source) => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(ClusterError::EmptyCluster.to_string().contains("no devices"));
        assert!(ClusterError::EmptyTaskSet.to_string().contains("no tasks"));
        let e =
            ClusterError::InvalidDevice { device: "gpu3".into(), source: CoreError::EmptyTaskSet };
        assert!(e.to_string().contains("gpu3"));
        assert!(e.source().is_some());
        assert!(ClusterError::EmptyCluster.source().is_none());
        let t = ClusterError::Trace(TraceError::Parse { line: 1, reason: "bad".into() });
        assert!(t.to_string().contains("trace"));
        assert!(t.source().is_some());
        let q = ClusterError::ZeroSyncQuantum;
        assert!(q.to_string().contains("sync_quantum"));
        assert!(q.source().is_none());
    }
}
