#![forbid(unsafe_code)]
//! # daris-cluster
//!
//! Fleet-scale DARIS: shards a real-time DNN inference
//! [`TaskSet`](daris_workload::TaskSet) across a cluster of (possibly
//! heterogeneous) simulated GPUs and runs one `daris-core` scheduler per
//! device, coordinated by a cluster dispatcher.
//!
//! The layer decomposes like the single-device system:
//!
//! * [`ClusterSpec`] / [`DeviceSpec`] — the fleet: per-device
//!   [`GpuSpec`](daris_gpu::GpuSpec) (RTX 2080 Ti, A100, H100, Orin, …) and
//!   [`GpuPartition`](daris_core::GpuPartition).
//! * [`place`] — the placement engine: partitions the task set across
//!   devices by utilization-aware bin-packing (first-fit-decreasing on the
//!   Eq. 10/12 utilization, respecting each device's stream capacity scaled
//!   by its SM ratio and its weight-memory budget), with a greedy-balance
//!   alternative for comparison. Every task ends up *placed* on exactly one
//!   device or *explicitly rejected*.
//! * [`ClusterDispatcher`] — drives one scheduler per device through fixed
//!   synchronization rounds, fanning the independent per-device simulation
//!   out to a scoped worker pool (`ClusterConfig::threads`) with a
//!   deterministic device-order join, so results are byte-identical at any
//!   thread count; a low-priority job rejected by its home device's
//!   admission test (Eq. 11–12) is retried on the least-loaded other
//!   devices at the round boundary, and queued-but-unstarted jobs migrate
//!   from overloaded devices to idle ones at stage boundaries.
//! * [`ClusterSummary`] — per-device
//!   [`ExperimentSummary`](daris_metrics::ExperimentSummary)s aggregated
//!   into fleet-level throughput, deadline-miss and response metrics.
//!
//! Beyond periodic task sets, the dispatcher drives any workload shape:
//! seeded bursty/diurnal/correlated generators
//! ([`ClusterDispatcher::run_generated`]) and recorded trace replays
//! ([`ClusterDispatcher::run_replay`]) share the synchronization-round loop
//! through the [`ArrivalSource`](daris_workload::ArrivalSource) trait, and a
//! live generated run is byte-identical to replaying its recorded trace.
//!
//! Model profiles are calibrated once against the paper's measurement device
//! (the RTX 2080 Ti) and *run* on each member device, so heterogeneous speed
//! differences emerge from the simulation (SM counts, copy engines,
//! interference) instead of being calibrated away.
//!
//! # Example
//!
//! ```
//! use daris_cluster::{ClusterConfig, ClusterDispatcher, ClusterSpec};
//! use daris_core::GpuPartition;
//! use daris_gpu::{GpuSpec, SimTime};
//! use daris_models::DnnKind;
//! use daris_workload::TaskSet;
//!
//! # fn main() -> Result<(), daris_cluster::ClusterError> {
//! let fleet = ClusterSpec::homogeneous(2, GpuSpec::rtx_2080_ti(), GpuPartition::mps(6, 6.0));
//! let taskset = TaskSet::table2(DnnKind::UNet);
//! let mut dispatcher = ClusterDispatcher::new(&taskset, fleet, ClusterConfig::default())?;
//! let outcome = dispatcher.run_until(SimTime::from_millis(150));
//! assert_eq!(outcome.summary.devices, 2);
//! assert!(outcome.summary.total.completed > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adaptive;
mod dispatcher;
mod error;
mod placement;
mod pool;
mod rack;
mod spec;
mod summary;

pub use adaptive::{AutoscaleConfig, ElasticQuantum};
pub use dispatcher::{ClusterConfig, ClusterDispatcher, ClusterOutcome, DeviceOutcome, DeviceSlot};
pub use error::ClusterError;
pub use placement::{place, utilization_estimates, DevicePlan, Placement, PlacementStrategy};
pub use spec::{ClusterSpec, DeviceSpec};
pub use summary::ClusterSummary;

/// Convenience result alias.
pub type Result<T, E = ClusterError> = std::result::Result<T, E>;
