//! The rack layer of the two-level dispatch hierarchy.
//!
//! A fleet is partitioned into contiguous, balanced **racks** of devices
//! ([`rack_spans`]). Within each sync round, admission retry and
//! stage-boundary migration are *rack-local*: a [`RackDispatcher`] confines
//! both to its own device span, so per-round boundary work scales with rack
//! size, not fleet size. Racks interact only at the coarser
//! [`rebalance_epoch`](crate::ClusterConfig::rebalance_epoch) boundary,
//! where the top-level dispatcher exchanges per-rack load summaries and
//! migrates queued-unstarted jobs across rack lines — in fixed rack/device
//! index order, so the hierarchy preserves the byte-identical guarantee.
//!
//! With one rack the hierarchy degenerates to the flat dispatcher exactly:
//! the single rack spans the whole fleet and the cross-rack phase never
//! runs.
//!
//! # The incremental load ordering
//!
//! Retry-candidate selection used to rescan every device's
//! `active_load_fraction` per rejected job — O(fleet) per rejection, the
//! dominant boundary cost at scale. [`LoadOrder`] replaces the rescan with
//! an ordered set rebuilt once per retry phase (O(R log R) for rack size R)
//! and updated per consultation: within a retry phase a device's load only
//! changes when the dispatcher touches it (a catch-up completing jobs, an
//! admitted retry activating one), so re-inserting exactly the touched
//! devices reproduces the full rescan bit for bit. Selection walks the set
//! in ascending `(load, device)` order — `f64::total_cmp` then index, the
//! same tie-break the scan used — making fan-out selection
//! O(fanout + log R) instead of O(R). A debug assertion cross-checks every
//! selection against the naive scan in debug builds.

use std::collections::BTreeSet;
use std::ops::Range;

/// An `f64` load ordered by `total_cmp`, so it can key a [`BTreeSet`].
/// Loads are finite fractions in practice; `total_cmp` keeps the order
/// total (and identical to the old comparator) even if they were not.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OrderedLoad(pub f64);

impl PartialEq for OrderedLoad {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0).is_eq()
    }
}
impl Eq for OrderedLoad {}
impl PartialOrd for OrderedLoad {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedLoad {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Incrementally maintained `(load, device)` ordering of one rack's
/// schedulable devices.
#[derive(Debug, Default)]
pub(crate) struct LoadOrder {
    entries: BTreeSet<(OrderedLoad, usize)>,
    /// Current load per member device, to locate a member's entry on update.
    load_of: Vec<(usize, f64)>,
}

impl LoadOrder {
    /// Rebuilds the ordering from scratch (start of a retry phase).
    pub fn rebuild(&mut self, loads: impl Iterator<Item = (usize, f64)>) {
        self.entries.clear();
        self.load_of.clear();
        for (device, load) in loads {
            self.entries.insert((OrderedLoad(load), device));
            self.load_of.push((device, load));
        }
    }

    /// Re-keys one member after the dispatcher touched it. No-op for
    /// non-members (devices without schedulers are never members).
    pub fn update(&mut self, device: usize, load: f64) {
        let Some(slot) = self.load_of.iter_mut().find(|(d, _)| *d == device) else {
            return;
        };
        self.entries.remove(&(OrderedLoad(slot.1), device));
        self.entries.insert((OrderedLoad(load), device));
        slot.1 = load;
    }

    /// The `fanout` least-loaded members other than `home`, ascending by
    /// `(load, device)` — byte-identical to a full rescan with the same
    /// tie-break.
    pub fn select(&self, home: usize, fanout: usize) -> Vec<usize> {
        self.entries.iter().filter(|(_, d)| *d != home).take(fanout).map(|(_, d)| *d).collect()
    }

    /// The selection a full rescan would produce: the debug-build oracle
    /// [`select`](Self::select) is checked against, and the reference path
    /// `ClusterConfig::reference_retry_scan` runs in release builds to pin
    /// the hierarchy against the flat dispatcher.
    pub fn naive_select(loads: &[(usize, f64)], home: usize, fanout: usize) -> Vec<usize> {
        let mut candidates: Vec<(f64, usize)> =
            loads.iter().filter(|(d, _)| *d != home).map(|(d, l)| (*l, *d)).collect();
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        candidates.truncate(fanout);
        candidates.into_iter().map(|(_, d)| d).collect()
    }
}

/// Splits `devices` into `racks` contiguous spans, balanced to within one
/// device (the first `devices % racks` racks get the extra). `racks` is
/// clamped to `1..=devices`.
pub(crate) fn rack_spans(devices: usize, racks: usize) -> Vec<Range<usize>> {
    let racks = racks.clamp(1, devices.max(1));
    let base = devices / racks;
    let extra = devices % racks;
    let mut spans = Vec::with_capacity(racks);
    let mut start = 0;
    for r in 0..racks {
        let len = base + usize::from(r < extra);
        spans.push(start..start + len);
        start += len;
    }
    spans
}

/// One rack: its device span and the load ordering its admission retries
/// select from. The dispatcher drives the boundary phases; the rack owns
/// which devices they may touch.
#[derive(Debug)]
pub(crate) struct RackDispatcher {
    /// Zero-based rack index.
    pub index: usize,
    /// The contiguous fleet-device span this rack owns.
    pub span: Range<usize>,
    /// Retry-candidate ordering, rebuilt per retry phase on first use.
    pub order: LoadOrder,
}

impl RackDispatcher {
    /// Lays a fleet of `devices` out as `racks` rack dispatchers.
    pub fn layout(devices: usize, racks: usize) -> Vec<RackDispatcher> {
        rack_spans(devices, racks)
            .into_iter()
            .enumerate()
            .map(|(index, span)| RackDispatcher { index, span, order: LoadOrder::default() })
            .collect()
    }

    /// The rack index owning each fleet device, derivable from any layout.
    pub fn rack_of(racks: &[RackDispatcher]) -> Vec<usize> {
        let mut of = Vec::new();
        for rack in racks {
            of.resize(rack.span.end, rack.index);
        }
        of
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_contiguous_and_balanced() {
        assert_eq!(rack_spans(8, 1), vec![0..8]);
        assert_eq!(rack_spans(8, 4), vec![0..2, 2..4, 4..6, 6..8]);
        assert_eq!(rack_spans(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
        // Clamped: more racks than devices, and zero racks.
        assert_eq!(rack_spans(3, 8), vec![0..1, 1..2, 2..3]);
        assert_eq!(rack_spans(3, 0), vec![0..3]);
        assert_eq!(rack_spans(0, 4), vec![0..0]);
    }

    #[test]
    fn rack_of_inverts_layout() {
        let racks = RackDispatcher::layout(10, 3);
        let of = RackDispatcher::rack_of(&racks);
        assert_eq!(of, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn select_matches_naive_scan_under_updates() {
        // A deterministic pseudo-load sequence with ties, updated piecemeal:
        // the incremental set must track the full re-sort exactly.
        let mut loads: Vec<(usize, f64)> =
            (0..16).map(|d| (d, f64::from((d as u32 * 7) % 5) / 5.0)).collect();
        let mut order = LoadOrder::default();
        order.rebuild(loads.iter().copied());
        for step in 0..64usize {
            let home = (step * 3) % 16;
            let fanout = step % 6;
            assert_eq!(
                order.select(home, fanout),
                LoadOrder::naive_select(&loads, home, fanout),
                "step {step}"
            );
            // Touch one device, like a consultation would.
            let touched = (step * 5) % 16;
            let new_load = f64::from((step as u32 * 11) % 7) / 7.0;
            loads[touched].1 = new_load;
            order.update(touched, new_load);
        }
    }

    #[test]
    fn update_ignores_non_members() {
        let mut order = LoadOrder::default();
        order.rebuild([(0usize, 0.5f64), (2, 0.1)].into_iter());
        order.update(1, 0.0); // device 1 has no scheduler: not a member
        assert_eq!(order.select(usize::MAX, 4), vec![2, 0]);
    }
}
