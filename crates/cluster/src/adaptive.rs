//! Fleet-level adaptive control knobs: the elastic synchronization quantum
//! and device autoscaling. Both are **reactive feedback loops over simulated
//! state only** — the controller inputs are per-device
//! [`active_load_fraction`](daris_core::Scheduler::active_load_fraction)
//! readings taken at round boundaries, never wall-clock or thread timing, so
//! an adaptive run is as byte-identical across thread counts as a static
//! one.
//!
//! * [`ElasticQuantum`] scales the round length between configurable bounds
//!   with the fleet's mean active load: a loaded fleet synchronizes often
//!   (fast retries and migrations), an idle fleet strides long rounds.
//!   Changes take effect only at round boundaries — a round that has begun
//!   runs to its published end.
//! * [`AutoscaleConfig`] drains devices out of the fleet when mean load
//!   falls below a floor and rejoins them when it exceeds a ceiling,
//!   evaluated every [`epoch`](AutoscaleConfig::epoch) rounds. A drained
//!   device stops receiving releases — they are redirected through the
//!   existing rack-local retry path — and its queued-unstarted jobs are
//!   re-placed through the existing migration path; jobs already running
//!   finish where they started.

use daris_gpu::SimDuration;

use crate::{ClusterError, Result};

/// Bounds for the load-elastic synchronization quantum.
///
/// Each round boundary recomputes the next round's quantum from the fleet's
/// mean active load `u ∈ [0, 1]` as `max - (max - min) · u`: an idle fleet
/// runs `max`-length rounds, a saturated fleet `min`-length rounds. The
/// static [`sync_quantum`](crate::ClusterConfig::sync_quantum) (clamped into
/// the bounds) seeds the first round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticQuantum {
    /// Round length under full load. Must be non-zero and at most `max`.
    pub min: SimDuration,
    /// Round length for an idle fleet.
    pub max: SimDuration,
}

impl Default for ElasticQuantum {
    /// 250 µs under full load to 4 ms idle, bracketing the default static
    /// quantum of 1 ms.
    fn default() -> Self {
        ElasticQuantum { min: SimDuration::from_micros(250), max: SimDuration::from_millis(4) }
    }
}

impl ElasticQuantum {
    /// Rejects a zero `min` (a zero-length round cannot advance time, same
    /// rule as [`ClusterError::ZeroSyncQuantum`]) and inverted bounds.
    pub fn validate(&self) -> Result<()> {
        if self.min.is_zero() {
            return Err(ClusterError::InvalidAdaptiveConfig(
                "elastic quantum min must be non-zero (a zero-length round cannot advance time)"
                    .into(),
            ));
        }
        if self.max < self.min {
            return Err(ClusterError::InvalidAdaptiveConfig(
                "elastic quantum bounds are inverted (max < min)".into(),
            ));
        }
        Ok(())
    }

    /// Clamps a quantum into the configured bounds.
    pub fn clamp(&self, quantum: SimDuration) -> SimDuration {
        quantum.max(self.min).min(self.max)
    }

    /// The quantum for a fleet at mean active load `load` (clamped to
    /// `[0, 1]`): linear interpolation from `max` (idle) down to `min`
    /// (saturated).
    pub fn quantum_for(&self, load: f64) -> SimDuration {
        let load = if load.is_finite() { load.clamp(0.0, 1.0) } else { 0.0 };
        let span = self.max.as_micros_f64() - self.min.as_micros_f64();
        self.clamp(SimDuration::from_micros_f64(self.max.as_micros_f64() - span * load))
    }
}

/// Device join/leave autoscaling, evaluated every [`epoch`](Self::epoch)
/// rounds against the fleet's mean active load over *online* devices.
///
/// Scale decisions are hysteretic: mean load at or above
/// [`scale_up_ratio`](Self::scale_up_ratio) — or any job *shed* (charged as
/// a rejection) since the last evaluation, since served load alone
/// under-reads demand once admission starts shedding work — rejoins the
/// lowest-indexed offline device; mean load at or below
/// [`scale_down_ratio`](Self::scale_down_ratio) with nothing shed drains
/// the highest-indexed online device (never below
/// [`min_devices`](Self::min_devices)); in between the fleet holds. At most
/// one device changes state per epoch, so the fleet ramps instead of
/// flapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Devices the fleet never shrinks below.
    pub min_devices: usize,
    /// Mean active load at or above which an offline device rejoins.
    pub scale_up_ratio: f64,
    /// Mean active load at or below which an online device is drained.
    pub scale_down_ratio: f64,
    /// Rounds between scale evaluations (clamped to ≥ 1).
    pub epoch: u64,
}

impl Default for AutoscaleConfig {
    /// Keep at least one device; drain below 25% mean load, rejoin above
    /// 75%; evaluate every 8 rounds (the default rebalance epoch).
    fn default() -> Self {
        AutoscaleConfig { min_devices: 1, scale_up_ratio: 0.75, scale_down_ratio: 0.25, epoch: 8 }
    }
}

impl AutoscaleConfig {
    /// Rejects a zero device floor and thresholds outside
    /// `0 ≤ down < up` (equal thresholds would drain and rejoin in the same
    /// evaluation).
    pub fn validate(&self) -> Result<()> {
        if self.min_devices == 0 {
            return Err(ClusterError::InvalidAdaptiveConfig(
                "autoscale min_devices must be at least 1".into(),
            ));
        }
        let ordered = self.scale_down_ratio >= 0.0
            && self.scale_down_ratio < self.scale_up_ratio
            && self.scale_up_ratio.is_finite();
        if !ordered {
            return Err(ClusterError::InvalidAdaptiveConfig(
                "autoscale thresholds must satisfy 0 <= scale_down_ratio < scale_up_ratio".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elastic_quantum_interpolates_between_bounds() {
        let e =
            ElasticQuantum { min: SimDuration::from_micros(500), max: SimDuration::from_millis(2) };
        assert_eq!(e.quantum_for(0.0), SimDuration::from_millis(2));
        assert_eq!(e.quantum_for(1.0), SimDuration::from_micros(500));
        assert_eq!(e.quantum_for(0.5), SimDuration::from_micros(1250));
        // Out-of-range and non-finite loads clamp instead of escaping the bounds.
        assert_eq!(e.quantum_for(7.0), e.min);
        assert_eq!(e.quantum_for(-1.0), e.max);
        assert_eq!(e.quantum_for(f64::NAN), e.max);
    }

    #[test]
    fn elastic_quantum_validation() {
        assert!(ElasticQuantum::default().validate().is_ok());
        let zero = ElasticQuantum { min: SimDuration::ZERO, max: SimDuration::from_millis(1) };
        assert!(matches!(zero.validate(), Err(ClusterError::InvalidAdaptiveConfig(_))));
        let inverted =
            ElasticQuantum { min: SimDuration::from_millis(2), max: SimDuration::from_millis(1) };
        assert!(matches!(inverted.validate(), Err(ClusterError::InvalidAdaptiveConfig(_))));
    }

    #[test]
    fn autoscale_validation() {
        assert!(AutoscaleConfig::default().validate().is_ok());
        let no_floor = AutoscaleConfig { min_devices: 0, ..AutoscaleConfig::default() };
        assert!(matches!(no_floor.validate(), Err(ClusterError::InvalidAdaptiveConfig(_))));
        let crossed = AutoscaleConfig {
            scale_up_ratio: 0.2,
            scale_down_ratio: 0.6,
            ..AutoscaleConfig::default()
        };
        assert!(matches!(crossed.validate(), Err(ClusterError::InvalidAdaptiveConfig(_))));
        let equal = AutoscaleConfig {
            scale_up_ratio: 0.5,
            scale_down_ratio: 0.5,
            ..AutoscaleConfig::default()
        };
        assert!(matches!(equal.validate(), Err(ClusterError::InvalidAdaptiveConfig(_))));
    }
}
