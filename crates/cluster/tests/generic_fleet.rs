//! The dispatcher is generic over the per-device scheduler: a fleet of
//! baseline schedulers (built through `ClusterDispatcher::with_factory`)
//! runs through the same round loop, placement and boundary machinery as a
//! DARIS fleet, with the same thread-count byte-identity guarantee, and the
//! `RunSpec` entry point routes every workload shape.

use daris_cluster::{ClusterConfig, ClusterDispatcher, ClusterSpec};
use daris_core::{GpuPartition, RunSpec};
use daris_gpu::{GpuSpec, SimTime};
use daris_models::DnnKind;
use daris_workload::{BurstyConfig, GenSpec, ReleaseJitter, TaskSet};

mod common;
use common::{horizon_capped_ms, outcome_hash};

fn fleet(devices: usize) -> ClusterSpec {
    ClusterSpec::homogeneous(devices, GpuSpec::rtx_2080_ti(), GpuPartition::mps(6, 6.0))
}

fn config(threads: usize) -> ClusterConfig {
    ClusterConfig { threads, ..ClusterConfig::default() }
}

/// Builds a fleet of FIFO baseline schedulers over the same placement the
/// DARIS fleet would use.
fn fifo_fleet(
    taskset: &TaskSet,
    devices: usize,
    threads: usize,
) -> ClusterDispatcher<daris_baselines::BaselineScheduler> {
    let server = daris_baselines::FifoMultiStreamServer::new(4);
    ClusterDispatcher::with_factory(taskset, fleet(devices), config(threads), move |slot| {
        let server = server.clone().with_gpu(slot.spec.gpu.clone());
        server.scheduler(slot.taskset).map_err(daris_core::CoreError::from)
    })
    .expect("baseline fleet builds")
}

#[test]
fn baseline_fleet_serves_jobs_through_the_cluster_round_loop() {
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    let horizon = SimTime::from_millis(horizon_capped_ms(200));
    let outcome = fifo_fleet(&taskset, 2, 1).run_until(horizon);
    assert_eq!(outcome.summary.devices, 2);
    assert!(outcome.summary.total.completed > 0, "baseline fleet completed nothing");
    // FIFO has no admission test, so nothing is ever rejected mid-round and
    // the only rejection channel left is placement (none for this set).
    assert_eq!(outcome.summary.total.rejected, 0);
}

#[test]
fn baseline_fleet_is_byte_identical_at_any_thread_count() {
    let taskset = TaskSet::table2(DnnKind::UNet);
    let horizon = SimTime::from_millis(horizon_capped_ms(150));
    let reference = outcome_hash(&fifo_fleet(&taskset, 4, 1).run_until(horizon));
    for threads in [2, 8] {
        let hash = outcome_hash(&fifo_fleet(&taskset, 4, threads).run_until(horizon));
        assert_eq!(hash, reference, "threads={threads} diverged from serial");
    }
}

#[test]
fn daris_via_trait_dispatch_is_byte_identical_at_1_2_8_threads() {
    // The dispatcher now drives DARIS exclusively through the `Scheduler`
    // trait; this digest pins the trait-driven fleet to the serial reference
    // at every thread count (the refactor's cluster-level differential).
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    let horizon = SimTime::from_millis(horizon_capped_ms(150));
    let run = |threads: usize| {
        let mut dispatcher =
            ClusterDispatcher::new(&taskset, fleet(4), config(threads)).expect("fleet builds");
        outcome_hash(&dispatcher.run(&RunSpec::periodic().until(horizon)).expect("spec runs"))
    };
    let reference = run(1);
    assert_eq!(run(2), reference, "2 threads diverged from serial");
    assert_eq!(run(8), reference, "8 threads diverged from serial");
}

#[test]
fn runspec_periodic_matches_run_until() {
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    let horizon = SimTime::from_millis(horizon_capped_ms(150));
    let mut via_spec = ClusterDispatcher::new(&taskset, fleet(2), config(1)).unwrap();
    let mut direct = ClusterDispatcher::new(&taskset, fleet(2), config(1)).unwrap();
    let spec_outcome = via_spec.run(&RunSpec::periodic().until(horizon)).unwrap();
    let direct_outcome = direct.run_until(horizon);
    assert_eq!(outcome_hash(&spec_outcome), outcome_hash(&direct_outcome));
}

#[test]
fn runspec_rejects_cluster_infeasible_shapes_by_name() {
    // The two remaining infeasible shapes; each error names what was wrong
    // instead of a bare "unsupported".
    let taskset = TaskSet::table2(DnnKind::ResNet18);

    let mut dispatcher = ClusterDispatcher::new(&taskset, fleet(2), config(1)).unwrap();
    let no_horizon = RunSpec::periodic();
    let err = dispatcher.run(&no_horizon).expect_err("missing horizon must be rejected");
    assert!(err.to_string().contains("no horizon"), "unhelpful error: {err}");

    let mut dispatcher = ClusterDispatcher::new(&taskset, fleet(2), config(1)).unwrap();
    let horizon = SimTime::from_millis(100);
    let trace = GenSpec::Bursty(BurstyConfig::default()).generate(&taskset, horizon);
    let mismatched = RunSpec::replay(trace).until(SimTime::from_millis(150));
    let err = dispatcher.run(&mismatched).expect_err("horizon mismatch must be rejected");
    assert!(err.to_string().contains("replay horizon"), "unhelpful error: {err}");
}

#[test]
fn runspec_jittered_matches_run_jittered() {
    // The shape the cluster used to reject outright: jittered periodic
    // releases now route through `run_jittered`, keyed by global task index.
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    let horizon = SimTime::from_millis(horizon_capped_ms(150));
    let jitter = ReleaseJitter::Uniform { max: daris_gpu::SimDuration::from_millis(2), seed: 7 };
    let mut via_spec = ClusterDispatcher::new(&taskset, fleet(2), config(1)).unwrap();
    let mut direct = ClusterDispatcher::new(&taskset, fleet(2), config(1)).unwrap();
    let spec_outcome = via_spec.run(&RunSpec::jittered(jitter).until(horizon)).unwrap();
    let direct_outcome = direct.run_jittered(jitter, horizon);
    assert!(spec_outcome.summary.total.completed > 0, "jittered fleet completed nothing");
    assert_eq!(outcome_hash(&spec_outcome), outcome_hash(&direct_outcome));
}

#[test]
fn jittered_fleet_is_byte_identical_at_1_2_8_threads() {
    let taskset = TaskSet::table2(DnnKind::UNet);
    let horizon = SimTime::from_millis(horizon_capped_ms(150));
    let jitter =
        ReleaseJitter::Uniform { max: daris_gpu::SimDuration::from_millis(3), seed: 0xBEEF };
    let run = |threads: usize| {
        let mut dispatcher =
            ClusterDispatcher::new(&taskset, fleet(4), config(threads)).expect("fleet builds");
        outcome_hash(&dispatcher.run_jittered(jitter, horizon))
    };
    let reference = run(1);
    assert_eq!(run(2), reference, "2 threads diverged from serial");
    assert_eq!(run(8), reference, "8 threads diverged from serial");
}
