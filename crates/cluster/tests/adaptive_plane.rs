//! The adaptive control plane's determinism contract:
//!
//! * an *inert* control plane — every adaptive knob attached but configured
//!   so no threshold can ever be crossed — is byte-identical to the plain
//!   static configuration, on single-device and multi-device fleets
//!   (differential property test);
//! * the *active* control plane (burst-triggered HPA + elastic quantum +
//!   autoscaling, all at defaults) stays byte-identical across 1/2/8 worker
//!   threads on an 8-device heterogeneous fleet under a diurnal workload;
//! * under that diurnal workload the fleet actually scales: devices drain
//!   under the troughs and rejoin under the crests, and the elastic quantum
//!   moves (telemetry-observed).

use daris_cluster::{
    AutoscaleConfig, ClusterConfig, ClusterDispatcher, ClusterError, ClusterSpec, DeviceSpec,
    ElasticQuantum,
};
use daris_core::GpuPartition;
use daris_gpu::{GpuSpec, SimDuration, SimTime, XorShiftRng};
use daris_models::DnnKind;
use daris_telemetry::{EventKind, MemorySink, SinkHandle};
use daris_workload::{
    DiurnalConfig, GenSpec, LoadDetectorConfig, Priority, TaskSet, TaskSetBuilder,
};
use proptest::prelude::*;

mod common;
use common::{horizon_capped_ms, outcome_hash};

/// Deterministic random task set over the Table II model kinds (the same
/// recipe as the `cluster.rs` property tests).
fn random_taskset(seed: u64, n_tasks: usize) -> TaskSet {
    let mut rng = XorShiftRng::new(seed);
    let kinds = [DnnKind::ResNet18, DnnKind::UNet, DnnKind::InceptionV3];
    let mut builder = TaskSetBuilder::new();
    for _ in 0..n_tasks.max(1) {
        let kind = kinds[(rng.next_u64() % 3) as usize];
        let jps = 5.0 + rng.uniform(0.0, 35.0);
        let priority = if rng.next_u64() % 3 == 0 { Priority::High } else { Priority::Low };
        builder = builder.add_tasks(kind, 1, jps, priority);
    }
    builder.build()
}

/// Deterministic random fleet drawn from the shipped specs.
fn random_fleet(seed: u64, n_devices: usize) -> ClusterSpec {
    let mut rng = XorShiftRng::new(seed ^ 0x000f_1ee7);
    let mut fleet = ClusterSpec::new();
    for i in 0..n_devices.max(1) {
        let (gpu, partition) = match rng.next_u64() % 4 {
            0 => (GpuSpec::rtx_2080_ti(), GpuPartition::mps(6, 6.0)),
            1 => (GpuSpec::a100(), GpuPartition::mps(8, 8.0)),
            2 => (GpuSpec::h100(), GpuPartition::mps(10, 10.0)),
            _ => (GpuSpec::orin(), GpuPartition::str_streams(4)),
        };
        fleet = fleet.with_device(DeviceSpec::new(format!("d{i}"), gpu, partition));
    }
    fleet
}

/// The 8-device heterogeneous fleet of the determinism digest suite.
fn hetero_fleet_8() -> ClusterSpec {
    let mut fleet = ClusterSpec::new();
    for i in 0..8usize {
        let (gpu, partition) = match i % 4 {
            0 => (GpuSpec::rtx_2080_ti(), GpuPartition::mps(6, 6.0)),
            1 => (GpuSpec::a100(), GpuPartition::mps(8, 8.0)),
            2 => (GpuSpec::h100(), GpuPartition::mps(10, 10.0)),
            _ => (GpuSpec::orin(), GpuPartition::str_streams(4)),
        };
        fleet = fleet.with_device(DeviceSpec::new(format!("g{i}"), gpu, partition));
    }
    fleet
}

/// Every adaptive knob attached, none able to act: the HPA detector's burst
/// threshold is unreachably high, the elastic bounds pin the quantum to the
/// static default, and the autoscaler's device floor equals the fleet size.
fn inert_adaptive_config(n_devices: usize) -> ClusterConfig {
    ClusterConfig {
        adaptive_hpa: Some(LoadDetectorConfig {
            burst_ratio: 1e9,
            calm_ratio: 1.0,
            ..LoadDetectorConfig::default()
        }),
        elastic_quantum: Some(ElasticQuantum {
            min: SimDuration::from_millis(1),
            max: SimDuration::from_millis(1),
        }),
        autoscale: Some(AutoscaleConfig { min_devices: n_devices, ..AutoscaleConfig::default() }),
        ..ClusterConfig::default()
    }
}

/// The full control plane at its defaults.
fn active_adaptive_config(threads: usize) -> ClusterConfig {
    ClusterConfig {
        threads,
        adaptive_hpa: Some(LoadDetectorConfig::default()),
        elastic_quantum: Some(ElasticQuantum::default()),
        autoscale: Some(AutoscaleConfig::default()),
        ..ClusterConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// With no threshold crossable, the adaptive plane must be a pure
    /// pass-through: every per-device summary and aggregate tally matches
    /// the static configuration bit for bit, from a 1-device "single-GPU"
    /// fleet up.
    #[test]
    fn inert_adaptive_plane_is_byte_identical_to_static(
        seed in 0u64..1_000_000,
        n_tasks in 4usize..40,
        n_devices in 1usize..5,
    ) {
        let taskset = random_taskset(seed, n_tasks);
        let fleet = random_fleet(seed, n_devices);
        let horizon = SimTime::from_millis(120);
        let run = |config: ClusterConfig| {
            let mut dispatcher = ClusterDispatcher::new(&taskset, fleet.clone(), config)
                .expect("dispatcher builds");
            dispatcher.run_until(horizon)
        };
        let static_run = run(ClusterConfig::default());
        let inert = run(inert_adaptive_config(n_devices));
        prop_assert_eq!(&static_run.summary, &inert.summary);
        for (s, a) in static_run.devices.iter().zip(&inert.devices) {
            prop_assert_eq!(&s.outcome.summary, &a.outcome.summary,
                "device {} diverged between static and inert-adaptive", s.name);
        }
    }
}

#[test]
fn inert_adaptive_plane_is_byte_identical_to_static_on_8_device_hetero_fleet() {
    let taskset = TaskSet::table2_scaled(DnnKind::ResNet18, 3);
    let fleet = hetero_fleet_8();
    let horizon = SimTime::from_millis(horizon_capped_ms(150));
    let spec = GenSpec::Diurnal(DiurnalConfig { amplitude: 0.6, ..DiurnalConfig::default() });
    let run = |config: ClusterConfig| {
        let mut dispatcher =
            ClusterDispatcher::new(&taskset, fleet.clone(), config).expect("dispatcher builds");
        outcome_hash(&dispatcher.run_generated(&spec, horizon))
    };
    assert_eq!(run(ClusterConfig::default()), run(inert_adaptive_config(8)));
}

#[test]
fn active_control_plane_is_byte_identical_at_1_2_8_threads() {
    let taskset = TaskSet::table2_scaled(DnnKind::ResNet18, 3);
    let horizon = SimTime::from_millis(horizon_capped_ms(200));
    // Coherent phases so the fleet-wide load actually swings and the
    // autoscaler/elastic quantum act during the digest, not just idle.
    let spec = GenSpec::Diurnal(DiurnalConfig {
        amplitude: 0.8,
        cycle: SimDuration::from_millis(100),
        phase_spread: 0.0,
        ..DiurnalConfig::default()
    });
    let run = |threads: usize| {
        let mut dispatcher =
            ClusterDispatcher::new(&taskset, hetero_fleet_8(), active_adaptive_config(threads))
                .expect("dispatcher builds");
        outcome_hash(&dispatcher.run_generated(&spec, horizon))
    };
    let reference = run(1);
    assert_eq!(run(2), reference, "2 threads diverged from serial");
    assert_eq!(run(8), reference, "8 threads diverged from serial");
}

#[test]
fn diurnal_load_drives_drains_joins_and_quantum_changes() {
    // A homogeneous fleet oversized for the trough load, under *coherent*
    // diurnal phases (`phase_spread: 0.0` — with the default spread the
    // per-task cycles cancel and the fleet-wide rate is flat): the
    // autoscaler should drain devices through the troughs and rejoin one as
    // a crest lands on the shrunken fleet, while the elastic quantum tracks
    // the load swing. Homogeneous on purpose — on a heterogeneous fleet the
    // mean load fraction is dominated by the slowest devices and the drained
    // fleet's big devices absorb the crests below any join threshold.
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    let horizon = SimTime::from_millis(300);
    let spec = GenSpec::Diurnal(DiurnalConfig {
        amplitude: 0.9,
        cycle: SimDuration::from_millis(100),
        phase_spread: 0.0,
        ..DiurnalConfig::default()
    });
    let sink = MemorySink::unbounded();
    let config = ClusterConfig {
        autoscale: Some(AutoscaleConfig {
            min_devices: 2,
            scale_up_ratio: 0.4,
            scale_down_ratio: 0.2,
            epoch: 4,
        }),
        elastic_quantum: Some(ElasticQuantum::default()),
        sink: Some(SinkHandle::new(sink.clone())),
        ..ClusterConfig::default()
    };
    let fleet = ClusterSpec::homogeneous(8, GpuSpec::rtx_2080_ti(), GpuPartition::mps(6, 6.0));
    let mut dispatcher =
        ClusterDispatcher::new(&taskset, fleet, config).expect("dispatcher builds");
    let outcome = dispatcher.run_generated(&spec, horizon);
    assert!(outcome.summary.total.completed > 0);

    let events = sink.take_all();
    let drains =
        events.iter().filter(|e| matches!(e.kind, EventKind::DeviceDrained { .. })).count();
    let joins = events.iter().filter(|e| matches!(e.kind, EventKind::DeviceJoined { .. })).count();
    let quantum_changes =
        events.iter().filter(|e| matches!(e.kind, EventKind::QuantumChanged { .. })).count();
    assert!(drains > 0, "diurnal troughs never drained a device");
    assert!(joins > 0, "diurnal crests never rejoined a device");
    assert!(quantum_changes > 0, "the elastic quantum never moved");
    // The fleet never shrinks below the configured floor.
    for event in &events {
        if let EventKind::DeviceDrained { online, .. } = event.kind {
            assert!(online >= 2, "fleet shrank below min_devices: {online} online");
        }
    }
}

#[test]
fn autoscaling_requires_the_retry_path() {
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    let fleet = hetero_fleet_8();
    let config = ClusterConfig {
        autoscale: Some(AutoscaleConfig::default()),
        cluster_admission: false,
        ..ClusterConfig::default()
    };
    let err = match ClusterDispatcher::new(&taskset, fleet, config) {
        Ok(_) => panic!("autoscaling without the retry path must be rejected"),
        Err(err) => err,
    };
    assert!(matches!(err, ClusterError::InvalidAdaptiveConfig(_)), "wrong error: {err}");
}
