//! Cluster invariants, end to end:
//!
//! * placement never exceeds a device's utilization capacity or memory
//!   budget, and every task is either placed or explicitly rejected
//!   (property tests over random task sets and fleets);
//! * a single-device cluster reproduces the *exact* `ExperimentSummary` of
//!   the existing single-GPU path;
//! * aggregate throughput grows monotonically from 1 to 4 homogeneous
//!   devices on a fixed oversized task set while high-priority deadline
//!   protection holds fleet-wide;
//! * every released job is accounted exactly once, no matter how often it
//!   is retried or migrated across devices;
//! * parallel device stepping is byte-identical to serial stepping: the same
//!   run at any `threads` count produces the same `ClusterOutcome` (a
//!   property test over random task sets and fleets, plus a repeated-run
//!   hash check on an 8-device heterogeneous scenario).

use std::collections::BTreeSet;

use daris_cluster::{
    place, utilization_estimates, ClusterConfig, ClusterDispatcher, ClusterSpec, DeviceSpec,
    PlacementStrategy,
};
use daris_core::{DarisConfig, DarisScheduler, GpuPartition, RunSpec, Scheduler};
use daris_gpu::{GpuSpec, SimTime, XorShiftRng};
use daris_models::DnnKind;
use daris_workload::{ArrivalPlan, Priority, ReleaseJitter, TaskSet, TaskSetBuilder};
use proptest::prelude::*;

mod common;
use common::{horizon_capped_ms, outcome_hash};

fn reference() -> GpuSpec {
    GpuSpec::rtx_2080_ti()
}

/// Deterministic random task set: up to `n_tasks` tasks over the three
/// Table II model kinds with varied rates, priorities and batch sizes.
fn random_taskset(seed: u64, n_tasks: usize) -> TaskSet {
    let mut rng = XorShiftRng::new(seed);
    let kinds = [DnnKind::ResNet18, DnnKind::UNet, DnnKind::InceptionV3];
    let mut builder = TaskSetBuilder::new();
    for _ in 0..n_tasks.max(1) {
        let kind = kinds[(rng.next_u64() % 3) as usize];
        let jps = 5.0 + rng.uniform(0.0, 35.0);
        let priority = if rng.next_u64() % 3 == 0 { Priority::High } else { Priority::Low };
        builder = builder.add_tasks(kind, 1, jps, priority);
    }
    builder.build()
}

/// Deterministic random fleet of 1–4 devices drawn from the shipped specs.
fn random_fleet(seed: u64, n_devices: usize) -> ClusterSpec {
    let mut rng = XorShiftRng::new(seed ^ 0x000f_1ee7);
    let mut fleet = ClusterSpec::new();
    for i in 0..n_devices.max(1) {
        let (gpu, partition) = match rng.next_u64() % 4 {
            0 => (GpuSpec::rtx_2080_ti(), GpuPartition::mps(6, 6.0)),
            1 => (GpuSpec::a100(), GpuPartition::mps(8, 8.0)),
            2 => (GpuSpec::h100(), GpuPartition::mps(10, 10.0)),
            _ => (GpuSpec::orin(), GpuPartition::str_streams(4)),
        };
        fleet = fleet.with_device(DeviceSpec::new(format!("d{i}"), gpu, partition));
    }
    fleet
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Placement never exceeds any device's utilization capacity or memory
    /// budget, and partitions the tasks into placed-exactly-once ∪ rejected.
    #[test]
    fn placement_invariants(seed in 0u64..1_000_000, n_tasks in 1usize..50, n_devices in 1usize..5) {
        let taskset = random_taskset(seed, n_tasks);
        let fleet = random_fleet(seed, n_devices);
        let strategy = if seed % 2 == 0 {
            PlacementStrategy::FirstFitDecreasing
        } else {
            PlacementStrategy::GreedyBalance
        };
        let placement = place(&taskset, &fleet, strategy, &reference());
        let utils = utilization_estimates(&taskset, &reference());

        // Every task is placed exactly once or explicitly rejected.
        let rejected: BTreeSet<usize> = placement.rejected.iter().map(|id| id.index()).collect();
        prop_assert_eq!(placement.placed_count() + rejected.len(), taskset.len());
        let mut seen = BTreeSet::new();
        for (i, device) in placement.device_of.iter().enumerate() {
            match device {
                Some(d) => {
                    prop_assert!(*d < fleet.len());
                    prop_assert!(!rejected.contains(&i), "task {i} both placed and rejected");
                    prop_assert!(placement.plans[*d].task_indices.contains(&i));
                    prop_assert!(seen.insert(i));
                }
                None => prop_assert!(rejected.contains(&i), "task {i} neither placed nor rejected"),
            }
        }

        // Per-device quota and memory accounting, recomputed independently.
        for plan in &placement.plans {
            let device = &fleet.devices()[plan.device];
            let packed: f64 = plan.task_indices.iter().map(|&i| utils[i]).sum();
            let capacity = device.utilization_capacity(reference().sm_count);
            prop_assert!(packed <= capacity + 1e-6,
                "device {} packed {packed} over capacity {capacity}", device.name);
            prop_assert!((plan.utilization - packed).abs() < 1e-6);
            prop_assert!(plan.memory_bytes <= device.memory_budget());
            // Local sets preserve the global relative order.
            let mut sorted = plan.task_indices.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sorted, &plan.task_indices);
            prop_assert_eq!(plan.taskset.len(), plan.task_indices.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Parallel device stepping is byte-identical to the serial path: fanning
    /// the per-device spans out to any number of worker threads never changes
    /// any per-device summary, any aggregate count, or the retry/migration
    /// tallies. This is the contract the deterministic device-order join
    /// guarantees.
    #[test]
    fn parallel_stepping_is_byte_identical_to_serial(
        seed in 0u64..1_000_000,
        n_tasks in 4usize..40,
        n_devices in 2usize..5,
        threads in 2usize..9,
    ) {
        let taskset = random_taskset(seed, n_tasks);
        let fleet = random_fleet(seed, n_devices);
        let horizon = SimTime::from_millis(120);
        let run = |threads: usize| {
            let config = ClusterConfig { threads, ..Default::default() };
            let mut dispatcher =
                ClusterDispatcher::new(&taskset, fleet.clone(), config).expect("dispatcher builds");
            dispatcher.run_until(horizon)
        };
        let serial = run(1);
        let parallel = run(threads);
        prop_assert_eq!(&serial.summary, &parallel.summary);
        prop_assert_eq!(serial.devices.len(), parallel.devices.len());
        for (s, p) in serial.devices.iter().zip(&parallel.devices) {
            prop_assert_eq!(&s.name, &p.name);
            prop_assert_eq!(&s.outcome.summary, &p.outcome.summary,
                "device {} diverged between threads=1 and threads={}", s.name, threads);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The incremental per-rack load ordering selects byte-identically to
    /// the flat dispatcher's per-job load rescan
    /// (`reference_retry_scan: true`, the pre-hierarchy selection path):
    /// whole runs — every per-device summary and every aggregate tally —
    /// must match across random task sets, fleets and rack counts. With
    /// `racks = 1` this pins the hierarchical dispatcher against the flat
    /// one exactly.
    #[test]
    fn incremental_retry_ordering_matches_the_reference_scan(
        seed in 0u64..1_000_000,
        n_tasks in 4usize..40,
        n_devices in 2usize..5,
        racks in 1usize..4,
    ) {
        let taskset = random_taskset(seed, n_tasks);
        let fleet = random_fleet(seed, n_devices);
        let horizon = SimTime::from_millis(120);
        let run = |reference_retry_scan: bool| {
            let config = ClusterConfig { racks, reference_retry_scan, ..Default::default() };
            let mut dispatcher =
                ClusterDispatcher::new(&taskset, fleet.clone(), config).expect("dispatcher builds");
            dispatcher.run_until(horizon)
        };
        let incremental = run(false);
        let rescan = run(true);
        prop_assert_eq!(&incremental.summary, &rescan.summary);
        for (a, b) in incremental.devices.iter().zip(&rescan.devices) {
            prop_assert_eq!(&a.outcome.summary, &b.outcome.summary,
                "device {} diverged between the incremental ordering and the rescan", a.name);
        }
    }

    /// With every cross-device interaction disabled (no cluster admission,
    /// no migration), devices never observe each other — so the rack
    /// partitioning must be entirely invisible: any rack count produces the
    /// same per-device summaries as flat dispatch.
    #[test]
    fn rack_partitioning_is_invisible_without_interaction(
        seed in 0u64..1_000_000,
        n_tasks in 4usize..40,
        n_devices in 2usize..5,
        racks in 2usize..5,
    ) {
        let taskset = random_taskset(seed, n_tasks);
        let fleet = random_fleet(seed, n_devices);
        let horizon = SimTime::from_millis(120);
        let run = |racks: usize| {
            let config = ClusterConfig {
                cluster_admission: false,
                migration: false,
                racks,
                ..Default::default()
            };
            let mut dispatcher =
                ClusterDispatcher::new(&taskset, fleet.clone(), config).expect("dispatcher builds");
            dispatcher.run_until(horizon)
        };
        let flat = run(1);
        let racked = run(racks);
        prop_assert_eq!(&flat.summary.total, &racked.summary.total);
        prop_assert_eq!(&flat.summary.high, &racked.summary.high);
        prop_assert_eq!(&flat.summary.low, &racked.summary.low);
        for (a, b) in flat.devices.iter().zip(&racked.devices) {
            prop_assert_eq!(&a.outcome.summary, &b.outcome.summary,
                "device {} diverged between racks=1 and racks={}", a.name, racks);
        }
    }
}

#[test]
fn cross_rack_rebalance_moves_work_over_rack_lines() {
    // One-starved-device racks: with each rack a single device, rack-local
    // migration has nowhere to move work, so only the cross-rack epoch phase
    // can relieve the starved rack — and it must.
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    let horizon = SimTime::from_millis(300);
    let fleet = ClusterSpec::new()
        .with_device(DeviceSpec::new("tiny", GpuSpec::rtx_2080_ti(), GpuPartition::str_streams(1)))
        .with_device(DeviceSpec::new(
            "big",
            GpuSpec::rtx_2080_ti().with_seed(0x5eed_da14),
            GpuPartition::mps(6, 6.0),
        ));
    let config = ClusterConfig {
        strategy: PlacementStrategy::FirstFitDecreasing,
        cluster_admission: false,
        racks: 2,
        rebalance_epoch: 1,
        ..Default::default()
    };
    let mut dispatcher =
        ClusterDispatcher::new(&taskset, fleet, config).expect("dispatcher builds");
    let outcome = dispatcher.run_until(horizon);
    assert_eq!(outcome.summary.racks, 2);
    assert_eq!(outcome.summary.migrations, 0, "one-device racks cannot migrate locally");
    assert!(
        outcome.summary.cross_rack_migrations > 0,
        "the epoch phase must move work over the rack line: {:?}",
        outcome.summary
    );
}

#[test]
fn zero_sync_quantum_is_rejected_loudly() {
    use daris_cluster::ClusterError;
    use daris_gpu::SimDuration;
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    let fleet = ClusterSpec::homogeneous(2, GpuSpec::rtx_2080_ti(), GpuPartition::mps(6, 6.0));
    let config = ClusterConfig { sync_quantum: SimDuration::ZERO, ..Default::default() };
    assert_eq!(
        ClusterDispatcher::new(&taskset, fleet, config).err(),
        Some(ClusterError::ZeroSyncQuantum)
    );
}

#[test]
fn repeated_hetero_runs_hash_identically_across_thread_counts() {
    // The satellite determinism check: the same 8-device heterogeneous
    // scenario, run 5 times at each thread count, must produce bit-identical
    // `ClusterSummary`s — one hash over the Debug form catches any drift in
    // counts, rates, or float accumulation order.
    let taskset = TaskSet::table2_scaled(DnnKind::ResNet18, 3);
    let fleet = ClusterSpec::heterogeneous_mix(8);
    let horizon = SimTime::from_millis(horizon_capped_ms(300));
    let hash_of = |threads: usize| {
        let config = ClusterConfig { threads, ..Default::default() };
        let mut dispatcher =
            ClusterDispatcher::new(&taskset, fleet.clone(), config).expect("dispatcher builds");
        let outcome = dispatcher.run_until(horizon);
        assert!(outcome.summary.total.completed > 0, "scenario must do real work");
        outcome_hash(&outcome)
    };
    let reference = hash_of(1);
    for threads in [1usize, 2, 8] {
        for repeat in 0..5 {
            assert_eq!(
                hash_of(threads),
                reference,
                "run {repeat} at {threads} threads diverged from the serial reference"
            );
        }
    }
}

#[test]
fn single_device_cluster_reproduces_the_single_gpu_path_exactly() {
    let horizon = SimTime::from_millis(200);
    let partition = GpuPartition::mps(6, 6.0);
    for taskset in [TaskSet::table2(DnnKind::UNet), TaskSet::mixed()] {
        let mut single = DarisScheduler::new(&taskset, DarisConfig::new(partition))
            .expect("single-GPU scheduler builds");
        let expected = single.run_until(horizon);

        let fleet = ClusterSpec::homogeneous(1, GpuSpec::rtx_2080_ti(), partition);
        let mut dispatcher = ClusterDispatcher::new(&taskset, fleet, ClusterConfig::default())
            .expect("dispatcher builds");
        assert!(dispatcher.placement().rejected.is_empty(), "the sets fit one device");
        let outcome = dispatcher.run_until(horizon);

        assert_eq!(
            outcome.devices[0].outcome.summary, expected.summary,
            "1-device cluster must be byte-identical to the single-GPU path"
        );
        assert_eq!(outcome.summary.total, expected.summary.total);
        assert_eq!(outcome.summary.high, expected.summary.high);
        assert_eq!(outcome.summary.migrations, 0);
        assert_eq!(outcome.summary.cluster_admissions, 0);
    }
}

#[test]
fn single_device_cluster_reproduces_the_single_gpu_jittered_path_exactly() {
    // The jittered analogue of the test above: with the per-task delay
    // streams keyed by *global* task index, a 1-device cluster draws exactly
    // the delays the single-GPU path draws, so the summaries stay
    // byte-identical — the property the old blanket rejection claimed was
    // impossible.
    let horizon = SimTime::from_millis(200);
    let partition = GpuPartition::mps(6, 6.0);
    for seed in [0u64, 7, 0xDEAD_BEEF] {
        let jitter = ReleaseJitter::Uniform { max: daris_gpu::SimDuration::from_millis(2), seed };
        let taskset = TaskSet::table2(DnnKind::UNet);
        let mut single = DarisScheduler::new(&taskset, DarisConfig::new(partition))
            .expect("single-GPU scheduler builds");
        let expected =
            single.run(&RunSpec::jittered(jitter).until(horizon)).expect("single-GPU run");

        let fleet = ClusterSpec::homogeneous(1, GpuSpec::rtx_2080_ti(), partition);
        let mut dispatcher = ClusterDispatcher::new(&taskset, fleet, ClusterConfig::default())
            .expect("dispatcher builds");
        assert!(dispatcher.placement().rejected.is_empty(), "the set fits one device");
        let outcome = dispatcher.run_jittered(jitter, horizon);

        assert_eq!(
            outcome.devices[0].outcome.summary, expected.summary,
            "seed {seed}: 1-device jittered cluster diverged from the single-GPU path"
        );
    }
}

#[test]
fn aggregate_throughput_scales_monotonically_to_four_devices() {
    // A fixed oversized workload: 4 devices' worth of the paper's standing
    // 150 % ResNet18 overload.
    let taskset = TaskSet::table2_scaled(DnnKind::ResNet18, 4);
    let horizon = SimTime::from_millis(250);
    let partition = GpuPartition::mps(6, 6.0);

    // Reference: plain single-device DARIS on the same oversized set.
    let mut single = DarisScheduler::new(&taskset, DarisConfig::new(partition))
        .expect("single-GPU scheduler builds");
    let single_outcome = single.run_until(horizon);

    let mut jps = Vec::new();
    let mut hp_dmr = Vec::new();
    for n in [1usize, 2, 4] {
        let fleet = ClusterSpec::homogeneous(n, GpuSpec::rtx_2080_ti(), partition);
        // The scaling experiment's strategy: greedy balance spreads the HP
        // tasks across the fleet (first-fit would consolidate them).
        let config =
            ClusterConfig { strategy: PlacementStrategy::GreedyBalance, ..Default::default() };
        let mut dispatcher =
            ClusterDispatcher::new(&taskset, fleet, config).expect("dispatcher builds");
        let outcome = dispatcher.run_until(horizon);
        assert_eq!(outcome.summary.devices, n);
        jps.push(outcome.summary.throughput_jps);
        hp_dmr.push(outcome.summary.high.deadline_miss_rate);
    }

    assert!(
        jps[0] < jps[1] && jps[1] < jps[2],
        "aggregate JPS must grow monotonically 1→2→4 devices: {jps:?}"
    );
    assert!(jps[2] > 2.5 * jps[0], "4 devices should deliver well over 2.5x one device: {jps:?}");
    for (n, dmr) in [1, 2, 4].into_iter().zip(&hp_dmr) {
        assert!(
            *dmr <= single_outcome.summary.high.deadline_miss_rate + 1e-9,
            "fleet of {n}: HP DMR {dmr} worse than single-device \
             {}",
            single_outcome.summary.high.deadline_miss_rate
        );
    }
    // At 4 balanced devices every device carries a Table II-like share, so
    // the paper's HP deadline protection holds at fleet scale.
    assert!(hp_dmr[2] < 0.05, "HP DMR at 4 balanced devices: {}", hp_dmr[2]);
}

#[test]
fn every_job_is_accounted_exactly_once_across_the_fleet() {
    // An asymmetric overloaded fleet exercises every cross-device path:
    // home admission, cluster-wide retry, migration, and rejection.
    let taskset = TaskSet::table2_scaled(DnnKind::ResNet18, 2);
    let horizon = SimTime::from_millis(300);
    let fleet = ClusterSpec::new()
        .with_device(DeviceSpec::new("small", GpuSpec::rtx_2080_ti(), GpuPartition::str_streams(1)))
        .with_device(DeviceSpec::new(
            "big",
            GpuSpec::rtx_2080_ti().with_seed(0x5eed_da13),
            GpuPartition::mps(6, 6.0),
        ));
    let mut dispatcher = ClusterDispatcher::new(&taskset, fleet, ClusterConfig::default())
        .expect("dispatcher builds");
    let outcome = dispatcher.run_until(horizon);

    let expected_releases = ArrivalPlan::generate(&taskset, horizon, ReleaseJitter::None).len();
    assert_eq!(
        outcome.summary.total.released, expected_releases,
        "released jobs must be conserved across admission retries and migrations"
    );
    let per_device: usize = outcome.devices.iter().map(|d| d.outcome.summary.total.released).sum();
    assert!(per_device <= expected_releases, "no job may be counted on two devices");
    assert_eq!(outcome.summary.total.accepted + outcome.summary.total.rejected, expected_releases);
}

#[test]
fn overloaded_device_offloads_to_an_idle_one() {
    // One starved device (a single stream) next to a large idle one: the
    // dispatcher must move work over — by cluster-wide admission of jobs the
    // small device cannot take, by migrating its queued jobs, or both.
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    let horizon = SimTime::from_millis(300);
    let fleet = ClusterSpec::new()
        .with_device(DeviceSpec::new("tiny", GpuSpec::rtx_2080_ti(), GpuPartition::str_streams(1)))
        .with_device(DeviceSpec::new(
            "big",
            GpuSpec::rtx_2080_ti().with_seed(0x5eed_da14),
            GpuPartition::mps(6, 6.0),
        ));
    let config =
        ClusterConfig { strategy: PlacementStrategy::FirstFitDecreasing, ..Default::default() };
    let mut dispatcher =
        ClusterDispatcher::new(&taskset, fleet, config).expect("dispatcher builds");
    let outcome = dispatcher.run_until(horizon);
    assert!(
        outcome.summary.cluster_admissions + outcome.summary.migrations > 0,
        "no cross-device action on a starved+idle fleet: {:?}",
        outcome.summary
    );
    // With the fleet behind it, HP protection must hold.
    assert!(outcome.summary.high.deadline_miss_rate < 0.05);
}

#[test]
fn heterogeneous_fleet_orders_devices_by_hardware_class() {
    let taskset = TaskSet::table2_scaled(DnnKind::ResNet18, 4);
    let horizon = SimTime::from_millis(200);
    let config = ClusterConfig { strategy: PlacementStrategy::GreedyBalance, ..Default::default() };
    let mut dispatcher =
        ClusterDispatcher::new(&taskset, ClusterSpec::heterogeneous_demo(), config)
            .expect("dispatcher builds");
    let outcome = dispatcher.run_until(horizon);
    assert_eq!(outcome.summary.devices, 4);
    let jps_of = |name: &str| {
        outcome
            .devices
            .iter()
            .find(|d| d.name.starts_with(name))
            .map(|d| d.outcome.summary.throughput_jps)
            .expect("device present")
    };
    // Under a saturating load the H100 out-serves the 2080 Ti, which
    // out-serves the embedded Orin — device speed emerges from the
    // simulation rather than being calibrated away.
    assert!(jps_of("h100") > 1.2 * jps_of("rtx2080ti"), "H100 should clearly lead");
    assert!(jps_of("rtx2080ti") > jps_of("orin"), "the embedded part serves least");
    assert!(outcome.summary.throughput_jps > jps_of("rtx2080ti"));
}
