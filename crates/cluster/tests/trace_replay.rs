//! The trace-replay differential suite, end to end:
//!
//! * record→replay round trip is **byte-identical** — the same completions,
//!   metrics and event counts — on a single GPU and on an 8-device
//!   heterogeneous cluster, at 1, 2 and 8 worker threads, for every
//!   generator shape (bursty, diurnal, correlated) and for a periodic
//!   recording;
//! * the codec sits inside the loop: replaying `decode(encode(trace))`
//!   reproduces the same run as replaying the in-memory trace;
//! * placement-rejected (unplaced) tasks are charged identically by the
//!   live-generator and replay paths;
//! * replay on a fleet whose task set cannot resolve the trace fails loudly.

use daris_cluster::{ClusterConfig, ClusterDispatcher, ClusterError, ClusterSpec};
use daris_core::{DarisConfig, DarisScheduler, GpuPartition};
use daris_gpu::SimTime;
use daris_models::DnnKind;
use daris_workload::{
    BurstyConfig, CorrelatedConfig, DiurnalConfig, GenSpec, TaskSet, Trace, TraceError,
};

mod common;
use common::{horizon_capped_ms, outcome_hash};

fn shapes() -> [GenSpec; 3] {
    [
        GenSpec::Bursty(BurstyConfig { seed: 41, ..Default::default() }),
        GenSpec::Diurnal(DiurnalConfig { seed: 42, ..Default::default() }),
        GenSpec::Correlated(CorrelatedConfig { seed: 43, ..Default::default() }),
    ]
}

fn dispatcher(taskset: &TaskSet, fleet: &ClusterSpec, threads: usize) -> ClusterDispatcher {
    let config = ClusterConfig { threads, ..Default::default() };
    ClusterDispatcher::new(taskset, fleet.clone(), config).expect("dispatcher builds")
}

#[test]
fn generator_record_replay_is_byte_identical_on_a_hetero_8_device_fleet() {
    // The acceptance scenario: an 8-device a100/h100/orin fleet under each
    // generator; a live generator run and the replay of the generator's
    // recorded trace must hash identically, at every thread count, live
    // serial or parallel.
    let taskset = TaskSet::table2_scaled(DnnKind::ResNet18, 3);
    let fleet = ClusterSpec::heterogeneous_mix(8);
    let horizon = SimTime::from_millis(horizon_capped_ms(250));
    for spec in shapes() {
        let live = dispatcher(&taskset, &fleet, 1).run_generated(&spec, horizon);
        assert!(
            live.summary.total.completed > 0,
            "{}: the scenario must do real work",
            spec.label()
        );
        let reference = outcome_hash(&live);

        let trace = spec.generate(&taskset, horizon);
        assert_eq!(trace.horizon(), horizon);
        for threads in [1usize, 2, 8] {
            let replay = dispatcher(&taskset, &fleet, threads)
                .run_replay(&trace)
                .expect("global traces split cleanly along the placement");
            assert_eq!(
                outcome_hash(&replay),
                reference,
                "{} replay at {threads} threads diverged from the live run",
                spec.label()
            );
        }
        // A parallel live run matches too (live ≡ replay ≡ parallel).
        let live_par = dispatcher(&taskset, &fleet, 4).run_generated(&spec, horizon);
        assert_eq!(outcome_hash(&live_par), reference, "{} parallel live run", spec.label());
    }
}

#[test]
fn encoded_traces_replay_the_same_cluster_run() {
    let taskset = TaskSet::table2_scaled(DnnKind::ResNet18, 2);
    let fleet = ClusterSpec::heterogeneous_mix(4);
    let horizon = SimTime::from_millis(horizon_capped_ms(150));
    let spec = GenSpec::Bursty(BurstyConfig::default());
    let trace = spec.generate(&taskset, horizon);
    let decoded = Trace::decode(&trace.encode()).expect("codec round trip");
    assert_eq!(trace, decoded);
    let a = dispatcher(&taskset, &fleet, 1).run_replay(&trace).unwrap();
    let b = dispatcher(&taskset, &fleet, 2).run_replay(&decoded).unwrap();
    assert_eq!(outcome_hash(&a), outcome_hash(&b));
}

#[test]
fn periodic_recording_replays_the_periodic_cluster_run_exactly() {
    // Record the periodic plan's arrival sequence and replay it: the trace
    // path must reproduce `run_until` byte for byte, single GPU and fleet.
    let taskset = TaskSet::table2(DnnKind::UNet);
    let horizon = SimTime::from_millis(horizon_capped_ms(200));
    let trace = Trace::record(&mut daris_workload::ArrivalStream::new(&taskset, horizon), horizon)
        .expect("periodic recordings are valid");

    // Single GPU.
    let partition = GpuPartition::mps(6, 6.0);
    let mut single = DarisScheduler::new(&taskset, DarisConfig::new(partition)).unwrap();
    let expected = single.run_until(horizon);
    let mut replayed = DarisScheduler::new(&taskset, DarisConfig::new(partition)).unwrap();
    let actual = replayed.run_trace(&trace).unwrap();
    assert_eq!(actual.summary, expected.summary);
    assert_eq!(replayed.events_processed(), single.events_processed());

    // 2-device fleet, serial and parallel replay.
    let fleet = ClusterSpec::homogeneous(2, daris_gpu::GpuSpec::rtx_2080_ti(), partition);
    let periodic = dispatcher(&taskset, &fleet, 1).run_until(horizon);
    for threads in [1usize, 2, 8] {
        let replay = dispatcher(&taskset, &fleet, threads).run_replay(&trace).unwrap();
        assert_eq!(
            outcome_hash(&replay),
            outcome_hash(&periodic),
            "periodic replay at {threads} threads"
        );
    }
}

#[test]
fn unplaced_tasks_are_charged_identically_by_live_and_replay_paths() {
    // A deliberately tiny fleet: placement must reject tasks, and both
    // workload paths must account those releases the same way.
    let taskset = TaskSet::table2_scaled(DnnKind::ResNet18, 4);
    let fleet =
        ClusterSpec::homogeneous(1, daris_gpu::GpuSpec::orin(), GpuPartition::str_streams(2));
    let horizon = SimTime::from_millis(horizon_capped_ms(120));
    let spec = GenSpec::Diurnal(DiurnalConfig::default());

    let mut live_d = dispatcher(&taskset, &fleet, 1);
    assert!(
        !live_d.placement().rejected.is_empty(),
        "the scenario must actually reject tasks at placement"
    );
    let live = live_d.run_generated(&spec, horizon);
    assert!(live.summary.total.rejected > 0, "unplaced releases must be charged");

    let trace = spec.generate(&taskset, horizon);
    let replay = dispatcher(&taskset, &fleet, 1).run_replay(&trace).unwrap();
    assert_eq!(outcome_hash(&replay), outcome_hash(&live));
    assert_eq!(replay.summary.total.released, trace.len());
}

#[test]
fn replay_on_an_incompatible_task_set_fails_loudly() {
    let big = TaskSet::table2(DnnKind::ResNet18);
    let horizon = SimTime::from_millis(60);
    let trace = GenSpec::Bursty(BurstyConfig::default()).generate(&big, horizon);
    let small = TaskSet::table2(DnnKind::UNet);
    let fleet =
        ClusterSpec::homogeneous(2, daris_gpu::GpuSpec::rtx_2080_ti(), GpuPartition::mps(6, 6.0));
    let err = dispatcher(&small, &fleet, 1).run_replay(&trace);
    assert!(matches!(err, Err(ClusterError::Trace(TraceError::UnknownTask { .. }))), "{err:?}");
}
