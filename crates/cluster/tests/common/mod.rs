//! Helpers shared by the cluster integration-test binaries.

use daris_cluster::ClusterOutcome;

/// Test horizon in milliseconds: `default_ms` capped by `DARIS_HORIZON_MS`
/// (the same semantics as `daris_bench::horizon_capped_ms`, replicated here
/// because `daris-cluster` sits below the bench crate).
pub fn horizon_capped_ms(default_ms: u64) -> u64 {
    match std::env::var("DARIS_HORIZON_MS") {
        Ok(value) => {
            let cap: u64 = value.trim().parse().unwrap_or_else(|_| {
                panic!("DARIS_HORIZON_MS must be a whole number, got {value:?}")
            });
            default_ms.min(cap.max(50))
        }
        Err(_) => default_ms,
    }
}

/// The shared byte-identity check: see [`ClusterOutcome::summary_hash`].
pub fn outcome_hash(outcome: &ClusterOutcome) -> u64 {
    outcome.summary_hash()
}
