//! Error type for the GPU simulator.

use std::error::Error;
use std::fmt;

use crate::{ContextId, StreamId};

/// Errors returned by [`crate::Gpu`] and related types.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GpuError {
    /// A context id does not refer to an existing context.
    UnknownContext(ContextId),
    /// A stream id does not refer to an existing stream.
    UnknownStream(StreamId),
    /// A context was created with a zero SM quota.
    ZeroQuota,
    /// A context quota exceeds the physical SM count of the device.
    QuotaExceedsDevice {
        /// Requested quota.
        quota: u32,
        /// Physical SM count.
        sm_count: u32,
    },
    /// A work item was submitted with no kernels.
    EmptyWorkItem,
    /// A kernel was described with non-positive or non-finite work.
    InvalidKernel(String),
    /// A device-memory allocation could not be satisfied.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// An allocation handle was freed twice or never existed.
    UnknownAllocation(u64),
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::UnknownContext(id) => write!(f, "unknown GPU context {id}"),
            GpuError::UnknownStream(id) => write!(f, "unknown CUDA stream {id}"),
            GpuError::ZeroQuota => write!(f, "context SM quota must be at least 1"),
            GpuError::QuotaExceedsDevice { quota, sm_count } => {
                write!(f, "context quota of {quota} SMs exceeds the {sm_count} SMs of the device")
            }
            GpuError::EmptyWorkItem => write!(f, "work item contains no kernels"),
            GpuError::InvalidKernel(reason) => write!(f, "invalid kernel description: {reason}"),
            GpuError::OutOfMemory { requested, available } => write!(
                f,
                "device memory exhausted: requested {requested} bytes, {available} available"
            ),
            GpuError::UnknownAllocation(handle) => {
                write!(f, "unknown device memory allocation handle {handle}")
            }
        }
    }
}

impl Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            GpuError::UnknownContext(ContextId(3)),
            GpuError::UnknownStream(StreamId(7)),
            GpuError::ZeroQuota,
            GpuError::QuotaExceedsDevice { quota: 90, sm_count: 68 },
            GpuError::EmptyWorkItem,
            GpuError::InvalidKernel("work is NaN".to_owned()),
            GpuError::OutOfMemory { requested: 10, available: 5 },
            GpuError::UnknownAllocation(1),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GpuError>();
    }
}
