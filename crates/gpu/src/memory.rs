//! A simple device-memory pool.
//!
//! The DARIS paper keeps every DNN resident on the GPU (weights are loaded
//! once per model, not per job), so memory acts as a static capacity
//! constraint rather than a dynamic bottleneck. [`MemoryPool`] models exactly
//! that: named allocations against a fixed capacity, with explicit errors
//! when a task set would not fit on the device.

use std::collections::BTreeMap;

use crate::GpuError;

/// Aggregate statistics of a [`MemoryPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryStats {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Bytes currently allocated.
    pub allocated: u64,
    /// Number of live allocations.
    pub allocations: usize,
    /// High-water mark of allocated bytes.
    pub peak_allocated: u64,
}

/// A fixed-capacity device-memory pool with named allocations.
///
/// ```
/// use daris_gpu::MemoryPool;
/// # fn main() -> Result<(), daris_gpu::GpuError> {
/// let mut pool = MemoryPool::new(1024);
/// let weights = pool.alloc("resnet18.weights", 512)?;
/// assert_eq!(pool.stats().allocated, 512);
/// pool.free(weights)?;
/// assert_eq!(pool.stats().allocated, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemoryPool {
    capacity: u64,
    allocated: u64,
    peak: u64,
    next_handle: u64,
    live: BTreeMap<u64, (String, u64)>,
}

impl MemoryPool {
    /// Creates a pool with `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryPool { capacity, allocated: 0, peak: 0, next_handle: 1, live: BTreeMap::new() }
    }

    /// Allocates `bytes` under a human-readable label, returning an opaque
    /// handle.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::OutOfMemory`] when the allocation does not fit.
    pub fn alloc(&mut self, label: impl Into<String>, bytes: u64) -> Result<u64, GpuError> {
        let available = self.capacity - self.allocated;
        if bytes > available {
            return Err(GpuError::OutOfMemory { requested: bytes, available });
        }
        let handle = self.next_handle;
        self.next_handle += 1;
        self.allocated += bytes;
        self.peak = self.peak.max(self.allocated);
        self.live.insert(handle, (label.into(), bytes));
        Ok(handle)
    }

    /// Frees a previous allocation.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::UnknownAllocation`] for a handle that was never
    /// allocated or was already freed.
    pub fn free(&mut self, handle: u64) -> Result<(), GpuError> {
        match self.live.remove(&handle) {
            Some((_, bytes)) => {
                self.allocated -= bytes;
                Ok(())
            }
            None => Err(GpuError::UnknownAllocation(handle)),
        }
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.allocated
    }

    /// Whether an allocation of `bytes` would currently succeed.
    pub fn would_fit(&self, bytes: u64) -> bool {
        bytes <= self.available()
    }

    /// Snapshot of pool statistics.
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            capacity: self.capacity,
            allocated: self.allocated,
            allocations: self.live.len(),
            peak_allocated: self.peak,
        }
    }

    /// Iterates over live allocations as `(label, bytes)` pairs in
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.live.values().map(|(label, bytes)| (label.as_str(), *bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut pool = MemoryPool::new(100);
        let a = pool.alloc("a", 40).unwrap();
        let b = pool.alloc("b", 40).unwrap();
        assert_eq!(pool.available(), 20);
        assert!(pool.alloc("c", 30).is_err());
        pool.free(a).unwrap();
        assert_eq!(pool.available(), 60);
        let stats = pool.stats();
        assert_eq!(stats.peak_allocated, 80);
        assert_eq!(stats.allocations, 1);
        pool.free(b).unwrap();
        assert_eq!(pool.stats().allocated, 0);
    }

    #[test]
    fn double_free_is_an_error() {
        let mut pool = MemoryPool::new(10);
        let a = pool.alloc("a", 5).unwrap();
        pool.free(a).unwrap();
        assert_eq!(pool.free(a), Err(GpuError::UnknownAllocation(a)));
    }

    #[test]
    fn out_of_memory_reports_availability() {
        let mut pool = MemoryPool::new(10);
        pool.alloc("a", 8).unwrap();
        match pool.alloc("b", 5) {
            Err(GpuError::OutOfMemory { requested, available }) => {
                assert_eq!(requested, 5);
                assert_eq!(available, 2);
            }
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
        assert!(pool.would_fit(2));
        assert!(!pool.would_fit(3));
    }

    #[test]
    fn labels_are_tracked() {
        let mut pool = MemoryPool::new(100);
        pool.alloc("weights", 10).unwrap();
        pool.alloc("activations", 20).unwrap();
        let mut labels: Vec<_> = pool.iter().map(|(l, _)| l.to_owned()).collect();
        labels.sort();
        assert_eq!(labels, vec!["activations", "weights"]);
    }
}
