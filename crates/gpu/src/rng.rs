//! A tiny deterministic pseudo-random number generator.
//!
//! The simulator needs a small amount of randomness (per-kernel execution
//! jitter) but must stay dependency-free and bit-for-bit reproducible across
//! runs, so we use a self-contained xorshift64* generator instead of pulling
//! in the `rand` crate.

/// A deterministic xorshift64* pseudo-random number generator.
///
/// ```
/// use daris_gpu::XorShiftRng;
/// let mut a = XorShiftRng::new(7);
/// let mut b = XorShiftRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShiftRng {
    state: u64,
}

impl XorShiftRng {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant because xorshift has an all-zero fixed point.
    pub fn new(seed: u64) -> Self {
        XorShiftRng { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniformly distributed mantissa.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in `[lo, hi)`. Returns `lo` when the range is empty or
    /// inverted.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.next_f64()
    }

    /// A multiplicative jitter factor uniform in `[1 - half_width, 1 + half_width]`.
    pub fn jitter(&mut self, half_width: f64) -> f64 {
        if half_width <= 0.0 {
            return 1.0;
        }
        self.uniform(1.0 - half_width, 1.0 + half_width)
    }

    /// Uniform integer in `[0, n)`. Returns 0 when `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

impl Default for XorShiftRng {
    fn default() -> Self {
        XorShiftRng::new(0x5eed_da12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShiftRng::new(1234);
        let mut b = XorShiftRng::new(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShiftRng::new(1);
        let mut b = XorShiftRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = XorShiftRng::new(99);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = XorShiftRng::new(5);
        for _ in 0..1_000 {
            let v = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
        assert_eq!(rng.uniform(5.0, 5.0), 5.0);
        assert_eq!(rng.uniform(5.0, 1.0), 5.0);
    }

    #[test]
    fn jitter_centered_on_one() {
        let mut rng = XorShiftRng::new(42);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let j = rng.jitter(0.05);
            assert!((0.95..=1.05).contains(&j));
            sum += j;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 1.0).abs() < 0.005, "mean {mean}");
        assert_eq!(rng.jitter(0.0), 1.0);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = XorShiftRng::new(0);
        assert_ne!(rng.next_u64(), 0);
    }
}
