//! Kernel and work-item descriptions.

use std::fmt;

use crate::{GpuError, SimDuration};

/// Identifier of a kernel instance inside a [`crate::Gpu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(pub(crate) u64);

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// Identifier of a submitted [`WorkItem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkItemId(pub(crate) u64);

impl fmt::Display for WorkItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Execution phases of a kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPhase {
    /// Queued behind other kernels in its stream.
    Queued,
    /// Paying the serial launch overhead (no SMs occupied).
    Launching,
    /// Executing on SMs.
    Computing,
    /// Finished.
    Completed,
}

/// Static description of a GPU kernel as seen by the scheduler: how much
/// compute it carries and how wide it can spread across SMs.
///
/// `work` is expressed in SM-microseconds: a kernel with `work = 680.0` keeps
/// 68 SMs busy for 10 µs, or 10 SMs busy for 68 µs.
///
/// ```
/// use daris_gpu::KernelDesc;
/// let k = KernelDesc::new(680.0, 34);
/// // Alone on an idle RTX 2080 Ti the kernel is limited by its own
/// // parallelism: 680 SM·µs / 34 SMs = 20 µs of compute.
/// assert_eq!(k.isolated_compute_micros(68), 20.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Compute demand in SM-microseconds.
    pub work: f64,
    /// Maximum number of SMs the kernel can occupy concurrently (its grid
    /// width in scheduling terms).
    pub parallelism: u32,
    /// Serial launch overhead; `None` uses the device default.
    pub launch_overhead: Option<SimDuration>,
    /// Optional human-readable label (layer name) used in traces.
    pub label: Option<String>,
}

impl KernelDesc {
    /// Creates a kernel with the given work (SM-microseconds) and maximum
    /// parallelism, using the device's default launch overhead.
    pub fn new(work: f64, parallelism: u32) -> Self {
        KernelDesc { work, parallelism: parallelism.max(1), launch_overhead: None, label: None }
    }

    /// Overrides the launch overhead for this kernel.
    pub fn with_launch_overhead(mut self, overhead: SimDuration) -> Self {
        self.launch_overhead = Some(overhead);
        self
    }

    /// Attaches a label (e.g. the originating layer name).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Compute time in microseconds when the kernel runs alone on a device
    /// with `sm_count` SMs (launch overhead excluded).
    pub fn isolated_compute_micros(&self, sm_count: u32) -> f64 {
        self.work / f64::from(self.parallelism.min(sm_count).max(1))
    }

    /// Validates the description.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::InvalidKernel`] if the work is non-finite or not
    /// strictly positive.
    pub fn validate(&self) -> Result<(), GpuError> {
        if !self.work.is_finite() || self.work <= 0.0 {
            return Err(GpuError::InvalidKernel(format!(
                "work must be finite and positive, got {}",
                self.work
            )));
        }
        Ok(())
    }
}

/// A unit of submission to a CUDA stream: an ordered list of kernels plus
/// optional host<->device transfers, identified by a caller-chosen `tag`.
///
/// In the DARIS reproduction one work item corresponds to one *stage* of one
/// DNN inference job (or a whole job when staging is disabled, or a batched
/// stage when batching is enabled). The caller learns about completion through
/// [`crate::Completion`] events carrying the same tag.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkItem {
    /// Caller-chosen identifier reported back on completion.
    pub tag: u64,
    /// Kernels executed sequentially within the owning stream.
    pub kernels: Vec<KernelDesc>,
    /// Bytes copied host-to-device before the first kernel starts.
    pub h2d_bytes: u64,
    /// Bytes copied device-to-host after the last kernel finishes.
    pub d2h_bytes: u64,
}

impl WorkItem {
    /// Creates an empty work item with the given tag; add kernels with
    /// [`WorkItem::with_kernel`] or [`WorkItem::with_kernels`].
    pub fn new(tag: u64) -> Self {
        WorkItem { tag, kernels: Vec::new(), h2d_bytes: 0, d2h_bytes: 0 }
    }

    /// Appends one kernel.
    pub fn with_kernel(mut self, kernel: KernelDesc) -> Self {
        self.kernels.push(kernel);
        self
    }

    /// Appends several kernels.
    pub fn with_kernels<I: IntoIterator<Item = KernelDesc>>(mut self, kernels: I) -> Self {
        self.kernels.extend(kernels);
        self
    }

    /// Sets the host-to-device transfer size (e.g. the input tensor).
    pub fn with_h2d_bytes(mut self, bytes: u64) -> Self {
        self.h2d_bytes = bytes;
        self
    }

    /// Sets the device-to-host transfer size (e.g. the output logits).
    pub fn with_d2h_bytes(mut self, bytes: u64) -> Self {
        self.d2h_bytes = bytes;
        self
    }

    /// Total compute work (SM-microseconds) across the item's kernels.
    pub fn total_work(&self) -> f64 {
        self.kernels.iter().map(|k| k.work).sum()
    }

    /// Number of kernels in the item.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Validates the item and all of its kernels.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::EmptyWorkItem`] when there are no kernels, or the
    /// first kernel validation error.
    pub fn validate(&self) -> Result<(), GpuError> {
        if self.kernels.is_empty() {
            return Err(GpuError::EmptyWorkItem);
        }
        for k in &self.kernels {
            k.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_isolated_time_respects_device_width() {
        let k = KernelDesc::new(1360.0, 200);
        // Parallelism is clamped to the device width.
        assert_eq!(k.isolated_compute_micros(68), 20.0);
        let narrow = KernelDesc::new(1360.0, 10);
        assert_eq!(narrow.isolated_compute_micros(68), 136.0);
    }

    #[test]
    fn kernel_validation() {
        assert!(KernelDesc::new(1.0, 1).validate().is_ok());
        assert!(KernelDesc::new(0.0, 1).validate().is_err());
        assert!(KernelDesc::new(-5.0, 1).validate().is_err());
        assert!(KernelDesc::new(f64::NAN, 1).validate().is_err());
    }

    #[test]
    fn parallelism_is_at_least_one() {
        let k = KernelDesc::new(10.0, 0);
        assert_eq!(k.parallelism, 1);
    }

    #[test]
    fn work_item_builder_and_totals() {
        let item = WorkItem::new(9)
            .with_kernel(KernelDesc::new(10.0, 4))
            .with_kernels(vec![KernelDesc::new(20.0, 8), KernelDesc::new(30.0, 8)])
            .with_h2d_bytes(1024)
            .with_d2h_bytes(64);
        assert_eq!(item.kernel_count(), 3);
        assert_eq!(item.total_work(), 60.0);
        assert_eq!(item.h2d_bytes, 1024);
        assert_eq!(item.d2h_bytes, 64);
        assert!(item.validate().is_ok());
    }

    #[test]
    fn empty_work_item_is_rejected() {
        assert_eq!(WorkItem::new(1).validate(), Err(GpuError::EmptyWorkItem));
    }

    #[test]
    fn ids_display() {
        assert_eq!(KernelId(3).to_string(), "k3");
        assert_eq!(WorkItemId(4).to_string(), "w4");
    }
}
