//! Simulation time primitives.
//!
//! All simulator timing is expressed in integer nanoseconds to keep event
//! ordering deterministic and free of floating-point drift. [`SimTime`] is an
//! absolute instant since simulation start; [`SimDuration`] is a span.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute simulation instant, in nanoseconds since simulation start.
///
/// ```
/// use daris_gpu::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_millis(2);
/// assert_eq!(t.as_micros_f64(), 2_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// ```
/// use daris_gpu::SimDuration;
/// let d = SimDuration::from_micros_f64(1.5);
/// assert_eq!(d.as_nanos(), 1_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation origin.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant, usable as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds, saturating at [`SimTime::MAX`].
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    /// Creates an instant from milliseconds, saturating at [`SimTime::MAX`].
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Creates an instant from a floating-point number of seconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        // daris-lint: allow(D005, reason = "this IS the sanctioned float->time entry point: rounds to the nearest exact integer nanosecond before the cast")
        SimTime((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Instant expressed in microseconds (lossy for very large values).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Instant expressed in milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Instant expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds, saturating at [`SimDuration::MAX`].
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Creates a duration from milliseconds, saturating at [`SimDuration::MAX`].
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Creates a duration from a floating-point number of microseconds.
    ///
    /// Negative or non-finite inputs clamp to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        if !us.is_finite() || us <= 0.0 {
            return SimDuration::ZERO;
        }
        // daris-lint: allow(D005, reason = "this IS the sanctioned float->duration entry point: rounds to the nearest exact integer nanosecond before the cast")
        SimDuration((us * 1e3).round() as u64)
    }

    /// Creates a duration from a floating-point number of milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_micros_f64(ms * 1e3)
    }

    /// Creates a duration from a floating-point number of seconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        Self::from_micros_f64(secs * 1e6)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration in milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative factor.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        Self::from_micros_f64(self.as_micros_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl From<SimDuration> for SimTime {
    fn from(d: SimDuration) -> Self {
        SimTime(d.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let d = SimDuration::from_millis(3);
        assert_eq!(d.as_millis_f64(), 3.0);
        assert_eq!(d.as_micros_f64(), 3_000.0);
        assert_eq!(d.as_nanos(), 3_000_000);
        let t = SimTime::from_micros(1_500);
        assert_eq!(t.as_millis_f64(), 1.5);
        assert_eq!(SimTime::from_secs_f64(0.25).as_millis_f64(), 250.0);
    }

    #[test]
    fn arithmetic() {
        let t0 = SimTime::from_millis(10);
        let t1 = t0 + SimDuration::from_millis(5);
        assert_eq!((t1 - t0).as_millis_f64(), 5.0);
        assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
        assert_eq!(t1.duration_since(t0), SimDuration::from_millis(5));
        assert_eq!(SimDuration::from_millis(8) - SimDuration::from_millis(10), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros(4) * 3, SimDuration::from_micros(12));
        assert_eq!(SimDuration::from_micros(12) / 4, SimDuration::from_micros(3));
    }

    #[test]
    fn negative_and_nan_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_micros_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
        assert_eq!(format!("{}", SimTime::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_micros(100);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_micros(250));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }
}
