//! Device specification and interference model.

use crate::SimDuration;

/// Describes how colocated kernels degrade each other beyond simple SM
/// sharing.
///
/// The allocation model already scales SM allocations down proportionally
/// whenever the aggregate demand of busy contexts exceeds the physical SM
/// count (time-multiplexing of oversubscribed SMs). On real hardware there is
/// an *additional* cost: cache and memory-bandwidth contention, plus MPS
/// scheduling overhead, grow with the number of co-running contexts and with
/// the oversubscription ratio. The DARIS paper observes this as execution-time
/// variability (Fig. 9) and as the non-monotonic deadline-miss behaviour of
/// high oversubscription levels (Sec. VI-E).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceModel {
    /// Fractional slowdown added per *additional* concurrently busy context
    /// (the first context is free). Default `0.01`.
    pub per_context_penalty: f64,
    /// Fractional slowdown per unit of demand overshoot, i.e. when busy
    /// contexts demand `d > 1.0` of the device this adds
    /// `oversubscription_penalty * (d - 1.0)`. Default `0.02` — NVIDIA's MPS
    /// time-slices oversubscribed SMs fairly cheaply, which is why the paper
    /// finds oversubscription consistently beneficial.
    pub oversubscription_penalty: f64,
    /// Relative half-width of the uniform multiplicative jitter applied to
    /// each kernel instance's work (models run-to-run variability that MRET
    /// has to track). Default `0.04` (±4 %).
    pub work_jitter: f64,
}

impl InterferenceModel {
    /// An idealized device with no cross-context interference and no jitter.
    pub fn none() -> Self {
        InterferenceModel {
            per_context_penalty: 0.0,
            oversubscription_penalty: 0.0,
            work_jitter: 0.0,
        }
    }

    /// Efficiency factor (`0 < e <= 1`) applied to every SM allocation when
    /// `busy_contexts` contexts are concurrently busy and their aggregate SM
    /// demand is `demand_ratio` times the physical SM count.
    pub fn efficiency(&self, busy_contexts: usize, demand_ratio: f64) -> f64 {
        let extra_ctx = busy_contexts.saturating_sub(1) as f64;
        let overshoot = (demand_ratio - 1.0).max(0.0);
        1.0 / (1.0
            + self.per_context_penalty * extra_ctx
            + self.oversubscription_penalty * overshoot)
    }
}

impl Default for InterferenceModel {
    fn default() -> Self {
        InterferenceModel {
            per_context_penalty: 0.01,
            oversubscription_penalty: 0.02,
            work_jitter: 0.04,
        }
    }
}

/// Static description of the simulated GPU device.
///
/// ```
/// let spec = daris_gpu::GpuSpec::rtx_2080_ti();
/// assert_eq!(spec.sm_count, 68);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Number of physical streaming multiprocessors (`NSM,max` in the paper).
    pub sm_count: u32,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Copy-engine bandwidth in bytes per microsecond (host <-> device).
    pub copy_bandwidth_bytes_per_us: f64,
    /// Fixed per-transfer latency of the copy engine.
    pub copy_latency: SimDuration,
    /// Default per-kernel launch overhead when a kernel does not override it.
    pub default_launch_overhead: SimDuration,
    /// Cross-context interference model.
    pub interference: InterferenceModel,
    /// Seed for the simulator's deterministic work-jitter generator.
    pub jitter_seed: u64,
}

impl GpuSpec {
    /// The GPU used in the paper's evaluation: an RTX 2080 Ti with 68 SMs and
    /// 11 GB of device memory, PCIe 3.0 x16 host link (~12 GB/s effective).
    pub fn rtx_2080_ti() -> Self {
        GpuSpec {
            sm_count: 68,
            memory_bytes: 11 * 1024 * 1024 * 1024,
            copy_bandwidth_bytes_per_us: 12_000.0,
            copy_latency: SimDuration::from_micros(8),
            default_launch_overhead: SimDuration::from_micros(5),
            interference: InterferenceModel::default(),
            jitter_seed: 0x5eed_da12,
        }
    }

    /// A data-center A100 (SXM/PCIe 40 GB): 108 SMs, PCIe 4.0 x16 host link
    /// (~24 GB/s effective). The larger L2 and HBM bandwidth show up as a
    /// milder interference model than the consumer RTX 2080 Ti.
    pub fn a100() -> Self {
        GpuSpec {
            sm_count: 108,
            memory_bytes: 40 * 1024 * 1024 * 1024,
            copy_bandwidth_bytes_per_us: 24_000.0,
            copy_latency: SimDuration::from_micros(6),
            default_launch_overhead: SimDuration::from_micros(4),
            interference: InterferenceModel {
                per_context_penalty: 0.008,
                oversubscription_penalty: 0.015,
                work_jitter: 0.03,
            },
            jitter_seed: 0x5eed_a100,
        }
    }

    /// A data-center H100 (80 GB): 132 SMs, PCIe 5.0 x16 host link (~50 GB/s
    /// effective), the gentlest interference model of the presets.
    pub fn h100() -> Self {
        GpuSpec {
            sm_count: 132,
            memory_bytes: 80 * 1024 * 1024 * 1024,
            copy_bandwidth_bytes_per_us: 50_000.0,
            copy_latency: SimDuration::from_micros(5),
            default_launch_overhead: SimDuration::from_micros(3),
            interference: InterferenceModel {
                per_context_penalty: 0.006,
                oversubscription_penalty: 0.012,
                work_jitter: 0.025,
            },
            jitter_seed: 0x5eed_4100,
        }
    }

    /// An embedded Jetson Orin-class device: 16 SMs on shared LPDDR5 memory.
    /// Contention on the shared memory system makes colocation noticeably
    /// more expensive than on the discrete cards, and the weaker host CPU
    /// shows up as higher copy/launch latencies.
    pub fn orin() -> Self {
        GpuSpec {
            sm_count: 16,
            memory_bytes: 32 * 1024 * 1024 * 1024,
            copy_bandwidth_bytes_per_us: 10_000.0,
            copy_latency: SimDuration::from_micros(10),
            default_launch_overhead: SimDuration::from_micros(10),
            interference: InterferenceModel {
                per_context_penalty: 0.025,
                oversubscription_penalty: 0.05,
                work_jitter: 0.06,
            },
            jitter_seed: 0x5eed_0419,
        }
    }

    /// A small embedded-class GPU without MPS-scale resources (useful in
    /// tests and in the embedded example; the paper notes that on such GPUs
    /// only the STR policy is feasible).
    pub fn embedded_xavier_like() -> Self {
        GpuSpec {
            sm_count: 8,
            memory_bytes: 8 * 1024 * 1024 * 1024,
            copy_bandwidth_bytes_per_us: 6_000.0,
            copy_latency: SimDuration::from_micros(12),
            default_launch_overhead: SimDuration::from_micros(8),
            interference: InterferenceModel::default(),
            jitter_seed: 0x5eed_da12,
        }
    }

    /// Returns a copy of the spec with interference and jitter disabled,
    /// which makes execution times fully deterministic. Used by calibration
    /// and by tests that assert exact timing.
    pub fn without_interference(mut self) -> Self {
        self.interference = InterferenceModel::none();
        self
    }

    /// Returns a copy with a different jitter seed (useful for repeated
    /// trials in experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        GpuSpec::rtx_2080_ti()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx_preset_matches_paper_hardware() {
        let spec = GpuSpec::rtx_2080_ti();
        assert_eq!(spec.sm_count, 68);
        assert!(spec.memory_bytes > 10 * 1024 * 1024 * 1024);
    }

    #[test]
    fn efficiency_decreases_with_contexts_and_overshoot() {
        let m = InterferenceModel::default();
        let e1 = m.efficiency(1, 1.0);
        let e2 = m.efficiency(4, 1.0);
        let e3 = m.efficiency(4, 2.0);
        assert_eq!(e1, 1.0);
        assert!(e2 < e1);
        assert!(e3 < e2);
        assert!(e3 > 0.0);
    }

    #[test]
    fn fleet_presets_are_distinct_and_ordered_by_class() {
        let rtx = GpuSpec::rtx_2080_ti();
        let a100 = GpuSpec::a100();
        let h100 = GpuSpec::h100();
        let orin = GpuSpec::orin();
        // SM counts: embedded < consumer < A100 < H100.
        assert!(orin.sm_count < rtx.sm_count);
        assert!(rtx.sm_count < a100.sm_count);
        assert!(a100.sm_count < h100.sm_count);
        // Interference gets milder with the device class.
        assert!(h100.interference.per_context_penalty < a100.interference.per_context_penalty);
        assert!(a100.interference.per_context_penalty < rtx.interference.per_context_penalty);
        assert!(orin.interference.per_context_penalty > rtx.interference.per_context_penalty);
        // Distinct default jitter seeds keep fleet devices decorrelated.
        let seeds = [rtx.jitter_seed, a100.jitter_seed, h100.jitter_seed, orin.jitter_seed];
        let mut unique = seeds.to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn none_model_is_ideal() {
        let m = InterferenceModel::none();
        assert_eq!(m.efficiency(8, 4.0), 1.0);
    }

    #[test]
    fn without_interference_clears_model() {
        let spec = GpuSpec::rtx_2080_ti().without_interference();
        assert_eq!(spec.interference, InterferenceModel::none());
    }
}
