//! The discrete-event GPU engine.
//!
//! The engine advances simulated time by repeatedly finding the next state
//! transition (a kernel finishing its launch phase, a kernel exhausting its
//! work, a copy completing), applying it, and re-planning SM allocations for
//! everything still running. SM allocation follows a two-level model:
//!
//! 1. **Within a context**: the context's SM quota is water-filled across its
//!    concurrently computing kernels, capped by each kernel's parallelism.
//! 2. **Across contexts**: if the summed allocations of busy contexts exceed
//!    the physical SM count (oversubscription), every allocation is scaled
//!    down proportionally and an [`InterferenceModel`](crate::InterferenceModel)
//!    efficiency factor is applied.
//!
//! Kernel progress is the time-integral of its allocated SMs; a kernel
//! completes when the integral reaches its `work`.
//!
//! # Event calendar
//!
//! Time advancement is driven by a [`BinaryHeap`] **event calendar** of
//! `(SimTime, EventKind)` entries with *lazy invalidation*: every work item
//! carries an epoch counter that is bumped whenever its state or predicted
//! finish time changes, and calendar entries record the epoch they were
//! scheduled under. Stale entries (mismatched epoch) are discarded when they
//! surface at the top of the heap, so [`Gpu::next_event_time`] is a plain
//! heap peek instead of a scan over all in-flight items.
//!
//! * **Launch** and **copy** completions are scheduled once: their remaining
//!   times shrink by exact integer-nanosecond subtraction, so the absolute
//!   completion instant never moves.
//! * **Compute** completions depend on the floating-point SM rate, which can
//!   change on every [`replan`](Gpu::submit); they are rescheduled (epoch
//!   bump + new entry) whenever allocations are recomputed — with the same
//!   arithmetic the previous scan-based engine used, keeping event times
//!   bit-identical (pinned by the golden-trace tests).
//!
//! Bookkeeping that used to scan every pending item is incremental: a
//! `running` set (at most one item per stream) bounds progress application
//! and transition checks, and per-context *computing* sets with dirty flags
//! let `replan` reuse cached water-filling for contexts whose membership did
//! not change.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

use crate::context::Context;
use crate::kernel::{KernelDesc, KernelPhase, WorkItem, WorkItemId};
use crate::stream::Stream;
use crate::trace::{ReplanEvent, Trace, TraceEvent, TraceEventKind};
use crate::{
    ContextId, ContextState, GpuError, GpuSpec, MemoryPool, Result, SimDuration, SimTime, StreamId,
    StreamState, XorShiftRng,
};

/// Work below this many SM-microseconds counts as finished (guards against
/// floating-point residue keeping a kernel alive forever).
const WORK_EPSILON: f64 = 1e-6;

/// Completion notification for a submitted [`WorkItem`].
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Caller-chosen tag from the submitted work item.
    pub tag: u64,
    /// Engine-assigned item id.
    pub item: WorkItemId,
    /// Stream the item ran on.
    pub stream: StreamId,
    /// Context owning that stream.
    pub context: ContextId,
    /// When the item was submitted to the stream.
    pub submitted_at: SimTime,
    /// When the item started occupying device resources (copy-in or first
    /// kernel launch), i.e. when it reached the front of its stream.
    pub started_at: SimTime,
    /// When the item fully completed (after its device-to-host copy).
    pub finished_at: SimTime,
}

impl Completion {
    /// Time from reaching the front of the stream to completion: the
    /// "execution time" that DARIS feeds into its MRET estimator.
    pub fn execution_time(&self) -> SimDuration {
        self.finished_at - self.started_at
    }

    /// Time from submission to completion (includes stream queueing).
    pub fn turnaround(&self) -> SimDuration {
        self.finished_at - self.submitted_at
    }
}

/// A sample of instantaneous device utilization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuUtilizationSample {
    /// Sample time.
    pub at: SimTime,
    /// SMs allocated across all contexts (after contention scaling).
    pub allocated_sms: f64,
    /// `allocated_sms / sm_count`.
    pub fraction: f64,
}

#[derive(Debug, Clone, PartialEq)]
enum ItemState {
    /// Behind other items in its stream.
    Queued,
    /// At the front of its stream, waiting for the copy engine.
    PendingCopyIn,
    /// Host-to-device copy in flight.
    CopyingIn,
    /// Executing kernel `kernel_index`.
    Running(KernelPhase),
    /// Waiting for the copy engine for its output transfer.
    PendingCopyOut,
    /// Device-to-host copy in flight.
    CopyingOut,
    /// Finished (kept only until reported).
    Done,
}

#[derive(Debug, Clone)]
struct ItemInstance {
    tag: u64,
    stream: StreamId,
    context: ContextId,
    spec: WorkItem,
    submitted_at: SimTime,
    started_at: Option<SimTime>,
    state: ItemState,
    kernel_index: usize,
    launch_remaining: SimDuration,
    work_remaining: f64,
    /// Lazy-invalidation epoch: calendar entries scheduled for this item are
    /// only honoured while their recorded epoch matches.
    epoch: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyDirection {
    HostToDevice,
    DeviceToHost,
}

#[derive(Debug, Clone)]
struct ActiveCopy {
    item: WorkItemId,
    direction: CopyDirection,
    remaining: SimDuration,
}

/// What a calendar entry announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// The single copy engine finishes its active transfer.
    Copy { epoch: u64 },
    /// `item` finishes its serial kernel-launch phase.
    Launch { item: WorkItemId, epoch: u64 },
    /// `item` exhausts its kernel's work at the rate in force when scheduled.
    Compute { item: WorkItemId, epoch: u64 },
}

/// One entry of the event calendar. Ordered by `(at, seq)`; `seq` is a
/// deterministic tie-breaker (scheduling order) so heap order never depends
/// on the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CalendarEntry {
    at: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialOrd for CalendarEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CalendarEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// The simulated GPU device.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Gpu {
    spec: GpuSpec,
    now: SimTime,
    contexts: Vec<Context>,
    streams: Vec<Stream>,
    items: BTreeMap<WorkItemId, ItemInstance>,
    next_item_id: u64,
    copy_queue: VecDeque<(WorkItemId, CopyDirection)>,
    active_copy: Option<ActiveCopy>,
    /// Current SM rate (SMs × efficiency) per actively computing item.
    rates: BTreeMap<WorkItemId, f64>,
    /// The event calendar (min-heap by event time, lazily invalidated).
    calendar: BinaryHeap<Reverse<CalendarEntry>>,
    /// Monotonic scheduling counter used as the calendar tie-breaker.
    cal_seq: u64,
    /// Epoch of the copy engine's active transfer (bumped per transfer).
    copy_epoch: u64,
    /// Items currently launching or computing (at most one per stream).
    running: BTreeSet<WorkItemId>,
    /// Computing items per context (indexed by context), kept incrementally.
    computing: Vec<BTreeSet<WorkItemId>>,
    /// Contexts whose computing membership changed since the last replan.
    ctx_dirty: Vec<bool>,
    /// Cached water-fill allocation per context (valid while not dirty).
    ctx_alloc: Vec<Vec<(WorkItemId, f64)>>,
    memory: MemoryPool,
    trace: Trace,
    rng: XorShiftRng,
    completed_work: f64,
    busy_sm_integral_us: f64,
    pending_count: usize,
    events_processed: u64,
}

impl Gpu {
    /// Creates a device from a [`GpuSpec`].
    pub fn new(spec: GpuSpec) -> Self {
        let memory = MemoryPool::new(spec.memory_bytes);
        let rng = XorShiftRng::new(spec.jitter_seed);
        Gpu {
            spec,
            now: SimTime::ZERO,
            contexts: Vec::new(),
            streams: Vec::new(),
            items: BTreeMap::new(),
            next_item_id: 0,
            copy_queue: VecDeque::new(),
            active_copy: None,
            rates: BTreeMap::new(),
            calendar: BinaryHeap::new(),
            cal_seq: 0,
            copy_epoch: 0,
            running: BTreeSet::new(),
            computing: Vec::new(),
            ctx_dirty: Vec::new(),
            ctx_alloc: Vec::new(),
            memory,
            trace: Trace::new(),
            rng,
            completed_work: 0.0,
            busy_sm_integral_us: 0.0,
            pending_count: 0,
            events_processed: 0,
        }
    }

    /// Device specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Creates an MPS context with an SM quota (clamped to the device width).
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::ZeroQuota`] for a zero quota.
    pub fn add_context(&mut self, sm_quota: u32) -> Result<ContextId> {
        if sm_quota == 0 {
            return Err(GpuError::ZeroQuota);
        }
        let quota = sm_quota.min(self.spec.sm_count);
        let id = ContextId(self.contexts.len() as u32);
        self.contexts.push(Context::new(id, quota));
        self.computing.push(BTreeSet::new());
        self.ctx_dirty.push(false);
        self.ctx_alloc.push(Vec::new());
        Ok(id)
    }

    /// Creates a CUDA stream inside `context`.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::UnknownContext`] for an unknown context.
    pub fn add_stream(&mut self, context: ContextId) -> Result<StreamId> {
        if context.index() >= self.contexts.len() {
            return Err(GpuError::UnknownContext(context));
        }
        let id = StreamId(self.streams.len() as u32);
        self.streams.push(Stream::new(id, context));
        self.contexts[context.index()].streams.push(id);
        Ok(id)
    }

    /// Number of contexts created so far.
    pub fn context_count(&self) -> usize {
        self.contexts.len()
    }

    /// Number of streams created so far.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Ids of all contexts in creation order, without allocating.
    pub fn context_ids(&self) -> impl ExactSizeIterator<Item = ContextId> + '_ {
        self.contexts.iter().map(|c| c.id)
    }

    /// Ids of all streams in creation order, without allocating.
    pub fn stream_ids(&self) -> impl ExactSizeIterator<Item = StreamId> + '_ {
        self.streams.iter().map(|s| s.id)
    }

    /// Ids of the streams belonging to `context`, as a borrowed slice.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::UnknownContext`] for an unknown context.
    pub fn streams_of(&self, context: ContextId) -> Result<&[StreamId]> {
        self.contexts
            .get(context.index())
            .map(|c| c.streams.as_slice())
            .ok_or(GpuError::UnknownContext(context))
    }

    /// Enables kernel/item tracing.
    pub fn enable_tracing(&mut self) {
        self.trace.enable();
    }

    /// The recorded trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the recorded trace, so a telemetry forwarder can
    /// drain events incrementally without cloning.
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Shared device-memory pool.
    pub fn memory(&self) -> &MemoryPool {
        &self.memory
    }

    /// Mutable access to the device-memory pool (weight loading and the like).
    pub fn memory_mut(&mut self) -> &mut MemoryPool {
        &mut self.memory
    }

    /// Submits a work item to a stream; the item starts when it reaches the
    /// front of that stream's FIFO.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::UnknownStream`] for an unknown stream, or a
    /// validation error for an empty/invalid item.
    pub fn submit(&mut self, stream: StreamId, item: WorkItem) -> Result<WorkItemId> {
        item.validate()?;
        let context = self
            .streams
            .get(stream.index())
            .map(|s| s.context)
            .ok_or(GpuError::UnknownStream(stream))?;
        let id = WorkItemId(self.next_item_id);
        self.next_item_id += 1;
        let tag = item.tag;
        let instance = ItemInstance {
            tag,
            stream,
            context,
            spec: item,
            submitted_at: self.now,
            started_at: None,
            state: ItemState::Queued,
            kernel_index: 0,
            launch_remaining: SimDuration::ZERO,
            work_remaining: 0.0,
            epoch: 0,
        };
        self.items.insert(id, instance);
        self.streams[stream.index()].queue.push_back(id);
        self.pending_count += 1;
        self.trace.record(TraceEvent {
            at: self.now,
            kind: TraceEventKind::ItemSubmitted,
            item: id,
            tag,
            stream,
            context,
            label: None,
        });
        // If the stream was idle, the new item starts immediately.
        if self.streams[stream.index()].queue.len() == 1 {
            self.activate_front(stream);
        }
        self.replan();
        Ok(id)
    }

    /// Whether `stream` currently has no queued or running work.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::UnknownStream`] for an unknown stream.
    pub fn stream_is_idle(&self, stream: StreamId) -> Result<bool> {
        self.streams
            .get(stream.index())
            .map(|s| s.queue.is_empty())
            .ok_or(GpuError::UnknownStream(stream))
    }

    /// Number of work items queued on `stream` (including the running one).
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::UnknownStream`] for an unknown stream.
    pub fn stream_depth(&self, stream: StreamId) -> Result<usize> {
        self.streams
            .get(stream.index())
            .map(|s| s.queue.len())
            .ok_or(GpuError::UnknownStream(stream))
    }

    /// Snapshot of a stream's state.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::UnknownStream`] for an unknown stream.
    pub fn stream_state(&self, stream: StreamId) -> Result<StreamState> {
        let s = self.streams.get(stream.index()).ok_or(GpuError::UnknownStream(stream))?;
        let busy = s
            .active_item()
            .and_then(|id| self.items.get(&id))
            .map(|i| !matches!(i.state, ItemState::Queued | ItemState::Done))
            .unwrap_or(false);
        Ok(StreamState { id: s.id, context: s.context, queued_items: s.queue.len(), busy })
    }

    /// Snapshot of a context's state.
    ///
    /// # Errors
    ///
    /// Returns [`GpuError::UnknownContext`] for an unknown context.
    pub fn context_state(&self, context: ContextId) -> Result<ContextState> {
        let c = self.contexts.get(context.index()).ok_or(GpuError::UnknownContext(context))?;
        let mut busy_streams = 0;
        let mut allocated = 0.0;
        for sid in &c.streams {
            if let Ok(st) = self.stream_state(*sid) {
                if st.busy {
                    busy_streams += 1;
                }
            }
            if let Some(item) = self.streams[sid.index()].active_item() {
                allocated += self.rates.get(&item).copied().unwrap_or(0.0);
            }
        }
        Ok(ContextState {
            id: c.id,
            sm_quota: c.sm_quota,
            stream_count: c.streams.len(),
            busy_streams,
            allocated_sms: allocated,
        })
    }

    /// Number of work items not yet completed.
    pub fn pending_items(&self) -> usize {
        self.pending_count
    }

    /// Total compute work completed so far, in SM-microseconds.
    pub fn completed_work(&self) -> f64 {
        self.completed_work
    }

    /// Number of discrete state transitions fired so far (copy completions,
    /// launch→compute flips, kernel completions). The denominator-independent
    /// "simulated events" figure the perf harness reports as events/sec.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Average device utilization (busy SM-time divided by `sm_count ×
    /// elapsed time`) since simulation start. Returns 0 before any time has
    /// elapsed.
    pub fn average_utilization(&self) -> f64 {
        let elapsed_us = self.now.as_micros_f64();
        if elapsed_us <= 0.0 {
            return 0.0;
        }
        self.busy_sm_integral_us / (elapsed_us * f64::from(self.spec.sm_count))
    }

    /// Instantaneous utilization sample.
    pub fn utilization_sample(&self) -> GpuUtilizationSample {
        let allocated: f64 = self.rates.values().sum();
        GpuUtilizationSample {
            at: self.now,
            allocated_sms: allocated,
            fraction: allocated / f64::from(self.spec.sm_count),
        }
    }

    /// Time of the next internal state transition, if any work is in flight.
    ///
    /// A heap peek: every public mutation re-establishes the invariant that
    /// the calendar's top entry is live, so no scan is needed.
    pub fn next_event_time(&self) -> Option<SimTime> {
        debug_assert!(
            self.calendar.peek().map(|Reverse(e)| self.entry_live(e)).unwrap_or(true),
            "calendar top must be live at public boundaries"
        );
        self.calendar.peek().map(|Reverse(e)| e.at)
    }

    /// Advances the simulation to exactly `target`, processing every internal
    /// transition on the way, and returns the work items that completed (in
    /// completion order).
    ///
    /// If `target` is in the past, the call is a no-op returning an empty
    /// vector.
    pub fn advance_to(&mut self, target: SimTime) -> Vec<Completion> {
        let mut completions = Vec::new();
        while self.now < target {
            let next = self.next_event_time();
            let step_to = match next {
                Some(t) if t <= target => t,
                _ => target,
            };
            let dt = step_to - self.now;
            self.apply_progress(dt);
            self.now = step_to;
            self.apply_transitions(&mut completions);
        }
        // Transitions may also fall exactly on `target` when now == target.
        self.apply_transitions(&mut completions);
        completions
    }

    /// Runs until the device is fully idle and returns all completions.
    pub fn run_to_idle(&mut self) -> Vec<Completion> {
        let mut completions = Vec::new();
        while let Some(t) = self.next_event_time() {
            completions.extend(self.advance_to(t));
        }
        completions
    }

    // ----- internal helpers -------------------------------------------------

    /// Starts the item at the front of `stream` if it is still `Queued`.
    fn activate_front(&mut self, stream: StreamId) {
        let Some(item_id) = self.streams[stream.index()].active_item() else { return };
        let Some(item) = self.items.get_mut(&item_id) else { return };
        if item.state != ItemState::Queued {
            return;
        }
        item.started_at = Some(self.now);
        if item.spec.h2d_bytes > 0 {
            item.state = ItemState::PendingCopyIn;
            self.copy_queue.push_back((item_id, CopyDirection::HostToDevice));
            self.trace.record(TraceEvent {
                at: self.now,
                kind: TraceEventKind::CopyInStarted,
                item: item_id,
                tag: item.tag,
                stream,
                context: item.context,
                label: None,
            });
            self.pump_copy_engine();
        } else {
            self.start_kernel(item_id, 0);
        }
    }

    /// Puts kernel `index` of `item_id` into its launch phase.
    fn start_kernel(&mut self, item_id: WorkItemId, index: usize) {
        let jitter = {
            let half = self.spec.interference.work_jitter;
            self.rng.jitter(half)
        };
        let default_launch = self.spec.default_launch_overhead;
        let now = self.now;
        let Some(item) = self.items.get_mut(&item_id) else { return };
        // A back-to-back kernel of the same item leaves the computing set.
        let was_computing = matches!(item.state, ItemState::Running(KernelPhase::Computing));
        let ctx = item.context.index();
        let desc: &KernelDesc = &item.spec.kernels[index];
        item.kernel_index = index;
        item.launch_remaining = desc.launch_overhead.unwrap_or(default_launch);
        item.work_remaining = desc.work * jitter;
        item.state = ItemState::Running(KernelPhase::Launching);
        item.epoch += 1;
        let epoch = item.epoch;
        let at = now + item.launch_remaining;
        let (tag, stream, context) = (item.tag, item.stream, item.context);
        let label = if index == 0 { item.spec.kernels[0].label.clone() } else { None };
        if was_computing {
            self.computing[ctx].remove(&item_id);
            self.ctx_dirty[ctx] = true;
        }
        self.running.insert(item_id);
        self.push_event(at, EventKind::Launch { item: item_id, epoch });
        if index == 0 {
            self.trace.record(TraceEvent {
                at: self.now,
                kind: TraceEventKind::ExecutionStarted,
                item: item_id,
                tag,
                stream,
                context,
                label,
            });
        }
    }

    /// Starts the next queued copy if the engine is idle.
    fn pump_copy_engine(&mut self) {
        if self.active_copy.is_some() {
            return;
        }
        let Some((item_id, direction)) = self.copy_queue.pop_front() else { return };
        let Some(item) = self.items.get_mut(&item_id) else { return };
        let bytes = match direction {
            CopyDirection::HostToDevice => item.spec.h2d_bytes,
            CopyDirection::DeviceToHost => item.spec.d2h_bytes,
        };
        let transfer = SimDuration::from_micros_f64(
            bytes as f64 / self.spec.copy_bandwidth_bytes_per_us.max(1e-9),
        );
        let remaining = self.spec.copy_latency + transfer;
        item.state = match direction {
            CopyDirection::HostToDevice => ItemState::CopyingIn,
            CopyDirection::DeviceToHost => ItemState::CopyingOut,
        };
        let (tag, stream, context) = (item.tag, item.stream, item.context);
        self.active_copy = Some(ActiveCopy { item: item_id, direction, remaining });
        if direction == CopyDirection::DeviceToHost {
            self.trace.record(TraceEvent {
                at: self.now,
                kind: TraceEventKind::CopyOutStarted,
                item: item_id,
                tag,
                stream,
                context,
                label: None,
            });
        }
        // Copy durations shrink by exact integer subtraction, so the
        // completion instant is fixed at start: schedule it once.
        self.copy_epoch += 1;
        self.push_event(self.now + remaining, EventKind::Copy { epoch: self.copy_epoch });
    }

    /// Applies `dt` of progress to every running kernel and the active copy.
    ///
    /// Only the `running` set (at most one item per stream) is visited;
    /// queued items have no progress to apply.
    fn apply_progress(&mut self, dt: SimDuration) {
        if dt.is_zero() {
            return;
        }
        let dt_us = dt.as_micros_f64();
        let mut executed = 0.0;
        for id in &self.running {
            let Some(item) = self.items.get_mut(id) else { continue };
            match item.state {
                ItemState::Running(KernelPhase::Launching) => {
                    item.launch_remaining = item.launch_remaining.saturating_sub(dt);
                }
                ItemState::Running(KernelPhase::Computing) => {
                    let rate = self.rates.get(id).copied().unwrap_or(0.0);
                    let done = (rate * dt_us).min(item.work_remaining);
                    item.work_remaining -= done;
                    executed += done;
                }
                _ => {}
            }
        }
        if let Some(copy) = &mut self.active_copy {
            copy.remaining = copy.remaining.saturating_sub(dt);
        }
        self.completed_work += executed;
        self.busy_sm_integral_us += executed;
    }

    /// Fires every transition that is due at the current time, then replans
    /// allocations.
    fn apply_transitions(&mut self, completions: &mut Vec<Completion>) {
        let mut changed = true;
        while changed {
            changed = false;

            // Copy completion.
            let copy_done =
                self.active_copy.as_ref().map(|c| c.remaining.is_zero()).unwrap_or(false);
            if copy_done {
                let copy = self.active_copy.take().expect("checked above");
                changed = true;
                self.events_processed += 1;
                match copy.direction {
                    CopyDirection::HostToDevice => {
                        self.start_kernel(copy.item, 0);
                    }
                    CopyDirection::DeviceToHost => {
                        self.finish_item(copy.item, completions);
                    }
                }
                self.pump_copy_engine();
            }

            // Kernel phase transitions: only running items can transition.
            let ids: Vec<WorkItemId> = self.running.iter().copied().collect();
            for id in ids {
                let (state, launch_left, work_left, kernel_index, kernel_count) = {
                    let Some(item) = self.items.get(&id) else { continue };
                    (
                        item.state.clone(),
                        item.launch_remaining,
                        item.work_remaining,
                        item.kernel_index,
                        item.spec.kernels.len(),
                    )
                };
                match state {
                    ItemState::Running(KernelPhase::Launching) if launch_left.is_zero() => {
                        if let Some(item) = self.items.get_mut(&id) {
                            item.state = ItemState::Running(KernelPhase::Computing);
                            item.epoch += 1;
                            let ctx = item.context.index();
                            self.computing[ctx].insert(id);
                            self.ctx_dirty[ctx] = true;
                        }
                        changed = true;
                        self.events_processed += 1;
                    }
                    ItemState::Running(KernelPhase::Computing) if work_left <= WORK_EPSILON => {
                        changed = true;
                        self.events_processed += 1;
                        let (tag, stream, context, label) = {
                            let item = self.items.get(&id).expect("item exists");
                            (
                                item.tag,
                                item.stream,
                                item.context,
                                item.spec.kernels[kernel_index].label.clone(),
                            )
                        };
                        self.trace.record(TraceEvent {
                            at: self.now,
                            kind: TraceEventKind::KernelCompleted,
                            item: id,
                            tag,
                            stream,
                            context,
                            label,
                        });
                        if kernel_index + 1 < kernel_count {
                            self.start_kernel(id, kernel_index + 1);
                        } else {
                            let d2h = self.items.get(&id).map(|i| i.spec.d2h_bytes).unwrap_or(0);
                            if d2h > 0 {
                                if let Some(item) = self.items.get_mut(&id) {
                                    item.state = ItemState::PendingCopyOut;
                                    item.epoch += 1;
                                    let ctx = item.context.index();
                                    self.computing[ctx].remove(&id);
                                    self.ctx_dirty[ctx] = true;
                                }
                                self.running.remove(&id);
                                self.copy_queue.push_back((id, CopyDirection::DeviceToHost));
                                self.pump_copy_engine();
                            } else {
                                self.finish_item(id, completions);
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        self.replan();
    }

    /// Marks an item complete, emits its completion, and activates the next
    /// item in its stream.
    fn finish_item(&mut self, item_id: WorkItemId, completions: &mut Vec<Completion>) {
        let Some(item) = self.items.get_mut(&item_id) else { return };
        item.state = ItemState::Done;
        let completion = Completion {
            tag: item.tag,
            item: item_id,
            stream: item.stream,
            context: item.context,
            submitted_at: item.submitted_at,
            started_at: item.started_at.unwrap_or(item.submitted_at),
            finished_at: self.now,
        };
        let stream = item.stream;
        self.trace.record(TraceEvent {
            at: self.now,
            kind: TraceEventKind::ItemCompleted,
            item: item_id,
            tag: item.tag,
            stream,
            context: item.context,
            label: None,
        });
        completions.push(completion);
        let context = self.items[&item_id].context.index();
        self.items.remove(&item_id);
        self.rates.remove(&item_id);
        self.running.remove(&item_id);
        if self.computing[context].remove(&item_id) {
            self.ctx_dirty[context] = true;
        }
        self.pending_count = self.pending_count.saturating_sub(1);
        // Only the item at the front of its stream can be in flight, so
        // finishing is an O(1) pop — never a scan of the backlog.
        let s = &mut self.streams[stream.index()];
        debug_assert_eq!(s.queue.front(), Some(&item_id), "finished item must be its stream front");
        if s.queue.front() == Some(&item_id) {
            s.queue.pop_front();
        }
        self.activate_front(stream);
    }

    /// Recomputes SM allocation rates for every computing kernel and
    /// reschedules their compute-finish events on the calendar.
    ///
    /// Water-filling is cached per context and only recomputed for contexts
    /// whose computing membership changed since the last replan (`ctx_dirty`).
    /// The cross-context contention scale still applies globally, but that is
    /// a single multiply per computing item.
    fn replan(&mut self) {
        self.rates.clear();
        // Refresh the water-fill cache of dirty contexts.
        for ctx in 0..self.contexts.len() {
            if !self.ctx_dirty[ctx] {
                continue;
            }
            self.ctx_dirty[ctx] = false;
            let kernels: Vec<(WorkItemId, u32)> = self.computing[ctx]
                .iter()
                .map(|id| {
                    let item = &self.items[id];
                    (*id, item.spec.kernels[item.kernel_index].parallelism)
                })
                .collect();
            let quota = f64::from(self.contexts[ctx].sm_quota);
            self.ctx_alloc[ctx] = water_fill(quota, &kernels);
        }
        let mut total = 0.0;
        let mut busy_contexts = 0usize;
        for ctx in 0..self.contexts.len() {
            if self.computing[ctx].is_empty() {
                continue;
            }
            busy_contexts += 1;
            for (_, a) in &self.ctx_alloc[ctx] {
                total += *a;
            }
        }
        if busy_contexts == 0 {
            if self.trace.is_enabled() {
                self.trace.record_replan(ReplanEvent {
                    at: self.now,
                    computing: 0,
                    utilization: 0.0,
                });
            }
            self.clean_calendar();
            return;
        }
        let sm_count = f64::from(self.spec.sm_count);
        let scale = if total > sm_count { sm_count / total } else { 1.0 };
        let demand_ratio = total / sm_count;
        let efficiency = self.spec.interference.efficiency(busy_contexts, demand_ratio);
        let factor = scale * efficiency;
        if self.trace.is_enabled() {
            let allocated = (total * factor / sm_count).min(1.0);
            self.trace.record_replan(ReplanEvent {
                at: self.now,
                computing: busy_contexts as u32,
                utilization: allocated,
            });
        }
        // Apply the global factor and reschedule each compute-finish event
        // with the exact arithmetic the scan-based engine used.
        let now = self.now;
        for ctx in 0..self.contexts.len() {
            for i in 0..self.ctx_alloc[ctx].len() {
                let (id, alloc) = self.ctx_alloc[ctx][i];
                let rate = alloc * factor;
                self.rates.insert(id, rate);
                let Some(item) = self.items.get_mut(&id) else { continue };
                item.epoch += 1;
                let epoch = item.epoch;
                if rate > 0.0 {
                    let us = item.work_remaining / rate;
                    let mut d = SimDuration::from_micros_f64(us);
                    if d.is_zero() {
                        d = SimDuration::from_nanos(1);
                    }
                    self.push_event(now + d, EventKind::Compute { item: id, epoch });
                }
            }
        }
        self.clean_calendar();
    }

    /// Schedules a calendar entry.
    fn push_event(&mut self, at: SimTime, kind: EventKind) {
        self.cal_seq += 1;
        self.calendar.push(Reverse(CalendarEntry { at, seq: self.cal_seq, kind }));
    }

    /// Whether a calendar entry still refers to a live scheduled event.
    fn entry_live(&self, entry: &CalendarEntry) -> bool {
        match entry.kind {
            EventKind::Copy { epoch } => epoch == self.copy_epoch && self.active_copy.is_some(),
            EventKind::Launch { item, epoch } => self
                .items
                .get(&item)
                .map(|i| {
                    i.epoch == epoch
                        && matches!(i.state, ItemState::Running(KernelPhase::Launching))
                })
                .unwrap_or(false),
            EventKind::Compute { item, epoch } => self
                .items
                .get(&item)
                .map(|i| {
                    i.epoch == epoch
                        && matches!(i.state, ItemState::Running(KernelPhase::Computing))
                })
                .unwrap_or(false),
        }
    }

    /// Restores the "calendar top is live" invariant (lazy invalidation) and
    /// occasionally compacts the heap so stale entries cannot accumulate
    /// beyond a small multiple of the live set.
    fn clean_calendar(&mut self) {
        while let Some(Reverse(entry)) = self.calendar.peek() {
            if self.entry_live(entry) {
                break;
            }
            self.calendar.pop();
        }
        let live_bound = 8 * (self.running.len() + 2);
        if self.calendar.len() > 64 && self.calendar.len() > live_bound {
            let heap = std::mem::take(&mut self.calendar);
            self.calendar =
                heap.into_iter().filter(|Reverse(entry)| self.entry_live(entry)).collect();
        }
    }
}

/// Distributes `quota` SMs across kernels, capping each kernel at its own
/// parallelism and spreading leftover capacity over the kernels that can
/// still absorb it (classic water-filling).
fn water_fill(quota: f64, kernels: &[(WorkItemId, u32)]) -> Vec<(WorkItemId, f64)> {
    let n = kernels.len();
    if n == 0 {
        return Vec::new();
    }
    let mut alloc = vec![0.0f64; n];
    let mut remaining = quota;
    let mut unsatisfied: Vec<usize> = (0..n).collect();
    while remaining > 1e-9 && !unsatisfied.is_empty() {
        let share = remaining / unsatisfied.len() as f64;
        let mut next_unsatisfied = Vec::new();
        let mut consumed = 0.0;
        for &i in &unsatisfied {
            let cap = f64::from(kernels[i].1);
            let want = cap - alloc[i];
            if want <= share + 1e-12 {
                alloc[i] = cap;
                consumed += want;
            } else {
                alloc[i] += share;
                consumed += share;
                next_unsatisfied.push(i);
            }
        }
        remaining -= consumed;
        // If nobody was saturated this round, the distribution is final.
        if next_unsatisfied.len() == unsatisfied.len() {
            break;
        }
        unsatisfied = next_unsatisfied;
    }
    kernels.iter().zip(alloc).map(|((id, _), a)| (*id, a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_spec() -> GpuSpec {
        GpuSpec::rtx_2080_ti().without_interference()
    }

    #[test]
    fn single_kernel_timing_is_exact() {
        let mut gpu = Gpu::new(quiet_spec());
        let ctx = gpu.add_context(68).unwrap();
        let s = gpu.add_stream(ctx).unwrap();
        // 680 SM·µs over 68 SMs = 10 µs of compute + 5 µs launch overhead.
        let item = WorkItem::new(1).with_kernel(KernelDesc::new(680.0, 68));
        gpu.submit(s, item).unwrap();
        let done = gpu.run_to_idle();
        assert_eq!(done.len(), 1);
        assert!((done[0].execution_time().as_micros_f64() - 15.0).abs() < 0.01);
    }

    #[test]
    fn narrow_kernel_is_limited_by_its_parallelism() {
        let mut gpu = Gpu::new(quiet_spec());
        let ctx = gpu.add_context(68).unwrap();
        let s = gpu.add_stream(ctx).unwrap();
        let item = WorkItem::new(1).with_kernel(KernelDesc::new(680.0, 10));
        gpu.submit(s, item).unwrap();
        let done = gpu.run_to_idle();
        // 680 / 10 = 68 µs + 5 µs launch.
        assert!((done[0].execution_time().as_micros_f64() - 73.0).abs() < 0.01);
    }

    #[test]
    fn quota_limits_kernel_width() {
        let mut gpu = Gpu::new(quiet_spec());
        let ctx = gpu.add_context(17).unwrap();
        let s = gpu.add_stream(ctx).unwrap();
        let item = WorkItem::new(1).with_kernel(KernelDesc::new(680.0, 68));
        gpu.submit(s, item).unwrap();
        let done = gpu.run_to_idle();
        // Limited to the context's 17-SM quota: 40 µs + 5 µs launch.
        assert!((done[0].execution_time().as_micros_f64() - 45.0).abs() < 0.01);
    }

    #[test]
    fn kernels_serialize_within_a_stream() {
        let mut gpu = Gpu::new(quiet_spec());
        let ctx = gpu.add_context(68).unwrap();
        let s = gpu.add_stream(ctx).unwrap();
        let item = WorkItem::new(1)
            .with_kernel(KernelDesc::new(680.0, 68))
            .with_kernel(KernelDesc::new(680.0, 68));
        gpu.submit(s, item).unwrap();
        let done = gpu.run_to_idle();
        assert!((done[0].execution_time().as_micros_f64() - 30.0).abs() < 0.01);
    }

    #[test]
    fn two_streams_share_the_context_quota() {
        let mut gpu = Gpu::new(quiet_spec());
        let ctx = gpu.add_context(68).unwrap();
        let s1 = gpu.add_stream(ctx).unwrap();
        let s2 = gpu.add_stream(ctx).unwrap();
        // Each kernel could use the whole device alone; together they halve.
        gpu.submit(s1, WorkItem::new(1).with_kernel(KernelDesc::new(680.0, 68))).unwrap();
        gpu.submit(s2, WorkItem::new(2).with_kernel(KernelDesc::new(680.0, 68))).unwrap();
        let done = gpu.run_to_idle();
        assert_eq!(done.len(), 2);
        for c in &done {
            // 680 / 34 = 20 µs + 5 µs launch.
            assert!((c.execution_time().as_micros_f64() - 25.0).abs() < 0.1, "{c:?}");
        }
    }

    #[test]
    fn narrow_kernels_run_concurrently_without_slowdown() {
        let mut gpu = Gpu::new(quiet_spec());
        let ctx = gpu.add_context(68).unwrap();
        let s1 = gpu.add_stream(ctx).unwrap();
        let s2 = gpu.add_stream(ctx).unwrap();
        gpu.submit(s1, WorkItem::new(1).with_kernel(KernelDesc::new(300.0, 30))).unwrap();
        gpu.submit(s2, WorkItem::new(2).with_kernel(KernelDesc::new(300.0, 30))).unwrap();
        let done = gpu.run_to_idle();
        for c in &done {
            // 30 + 30 SMs fit in 68: each runs at its own width, 10 µs + 5 µs.
            assert!((c.execution_time().as_micros_f64() - 15.0).abs() < 0.1, "{c:?}");
        }
    }

    #[test]
    fn oversubscribed_contexts_are_scaled_proportionally() {
        let mut gpu = Gpu::new(quiet_spec());
        let c1 = gpu.add_context(68).unwrap();
        let c2 = gpu.add_context(68).unwrap();
        let s1 = gpu.add_stream(c1).unwrap();
        let s2 = gpu.add_stream(c2).unwrap();
        gpu.submit(s1, WorkItem::new(1).with_kernel(KernelDesc::new(680.0, 68))).unwrap();
        gpu.submit(s2, WorkItem::new(2).with_kernel(KernelDesc::new(680.0, 68))).unwrap();
        let done = gpu.run_to_idle();
        for c in &done {
            // Demand 136 SMs on a 68-SM device: each gets 34 → 20 µs + 5 µs.
            assert!((c.execution_time().as_micros_f64() - 25.0).abs() < 0.1, "{c:?}");
        }
    }

    #[test]
    fn isolated_quotas_waste_capacity_when_one_context_idles() {
        // One busy context with a 34-SM quota on a 68-SM device cannot use the
        // other half even though it is idle (the OS = 1 effect of the paper).
        let mut gpu = Gpu::new(quiet_spec());
        let c1 = gpu.add_context(34).unwrap();
        let _c2 = gpu.add_context(34).unwrap();
        let s1 = gpu.add_stream(c1).unwrap();
        gpu.submit(s1, WorkItem::new(1).with_kernel(KernelDesc::new(680.0, 68))).unwrap();
        let done = gpu.run_to_idle();
        assert!((done[0].execution_time().as_micros_f64() - 25.0).abs() < 0.1);
    }

    #[test]
    fn copy_engine_adds_latency_and_serializes() {
        let mut gpu = Gpu::new(quiet_spec());
        let ctx = gpu.add_context(68).unwrap();
        let s1 = gpu.add_stream(ctx).unwrap();
        let s2 = gpu.add_stream(ctx).unwrap();
        // 12_000 bytes at 12_000 bytes/µs = 1 µs + 8 µs fixed latency.
        let mk =
            |tag| WorkItem::new(tag).with_kernel(KernelDesc::new(68.0, 68)).with_h2d_bytes(12_000);
        gpu.submit(s1, mk(1)).unwrap();
        gpu.submit(s2, mk(2)).unwrap();
        let done = gpu.run_to_idle();
        assert_eq!(done.len(), 2);
        let mut times: Vec<f64> = done.iter().map(|c| c.execution_time().as_micros_f64()).collect();
        times.sort_by(f64::total_cmp);
        // First item: 9 µs copy + 5 launch + 1 compute = 15 µs.
        assert!((times[0] - 15.0).abs() < 0.1, "{times:?}");
        // Second item waits for the copy engine: 9 more µs before its copy.
        assert!(times[1] > times[0] + 8.0, "{times:?}");
    }

    #[test]
    fn completions_report_queueing_separately() {
        let mut gpu = Gpu::new(quiet_spec());
        let ctx = gpu.add_context(68).unwrap();
        let s = gpu.add_stream(ctx).unwrap();
        gpu.submit(s, WorkItem::new(1).with_kernel(KernelDesc::new(680.0, 68))).unwrap();
        gpu.submit(s, WorkItem::new(2).with_kernel(KernelDesc::new(680.0, 68))).unwrap();
        let done = gpu.run_to_idle();
        let second = done.iter().find(|c| c.tag == 2).unwrap();
        assert!(second.turnaround() > second.execution_time());
        assert_eq!(second.submitted_at, SimTime::ZERO);
        assert!(second.started_at > SimTime::ZERO);
    }

    #[test]
    fn advance_to_is_incremental() {
        let mut gpu = Gpu::new(quiet_spec());
        let ctx = gpu.add_context(68).unwrap();
        let s = gpu.add_stream(ctx).unwrap();
        gpu.submit(s, WorkItem::new(7).with_kernel(KernelDesc::new(680.0, 68))).unwrap();
        let none = gpu.advance_to(SimTime::from_micros(10));
        assert!(none.is_empty());
        assert_eq!(gpu.now(), SimTime::from_micros(10));
        assert_eq!(gpu.pending_items(), 1);
        let done = gpu.advance_to(SimTime::from_micros(20));
        assert_eq!(done.len(), 1);
        assert_eq!(gpu.pending_items(), 0);
        assert_eq!(gpu.now(), SimTime::from_micros(20));
    }

    #[test]
    fn utilization_accounting() {
        let mut gpu = Gpu::new(quiet_spec());
        let ctx = gpu.add_context(68).unwrap();
        let s = gpu.add_stream(ctx).unwrap();
        gpu.submit(
            s,
            WorkItem::new(1)
                .with_kernel(KernelDesc::new(680.0, 68).with_launch_overhead(SimDuration::ZERO)),
        )
        .unwrap();
        gpu.run_to_idle();
        assert!((gpu.completed_work() - 680.0).abs() < 1e-6);
        // 10 µs fully busy out of 10 µs elapsed.
        assert!((gpu.average_utilization() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tracing_records_lifecycle() {
        let mut gpu = Gpu::new(quiet_spec());
        gpu.enable_tracing();
        let ctx = gpu.add_context(68).unwrap();
        let s = gpu.add_stream(ctx).unwrap();
        gpu.submit(
            s,
            WorkItem::new(3)
                .with_kernel(KernelDesc::new(68.0, 68))
                .with_kernel(KernelDesc::new(68.0, 68)),
        )
        .unwrap();
        gpu.run_to_idle();
        let trace = gpu.trace();
        assert_eq!(trace.of_kind(TraceEventKind::ItemSubmitted).count(), 1);
        assert_eq!(trace.of_kind(TraceEventKind::KernelCompleted).count(), 2);
        assert_eq!(trace.of_kind(TraceEventKind::ItemCompleted).count(), 1);
    }

    #[test]
    fn errors_for_unknown_handles() {
        let mut gpu = Gpu::new(quiet_spec());
        assert_eq!(gpu.add_stream(ContextId(0)), Err(GpuError::UnknownContext(ContextId(0))));
        assert_eq!(gpu.add_context(0), Err(GpuError::ZeroQuota));
        let item = WorkItem::new(1).with_kernel(KernelDesc::new(1.0, 1));
        assert_eq!(gpu.submit(StreamId(9), item), Err(GpuError::UnknownStream(StreamId(9))));
        assert!(gpu.stream_is_idle(StreamId(0)).is_err());
        assert!(gpu.context_state(ContextId(4)).is_err());
    }

    #[test]
    fn quota_is_clamped_to_device_width() {
        let mut gpu = Gpu::new(quiet_spec());
        let ctx = gpu.add_context(1_000).unwrap();
        assert_eq!(gpu.context_state(ctx).unwrap().sm_quota, 68);
    }

    #[test]
    fn water_fill_respects_caps_and_quota() {
        let ids = [(WorkItemId(0), 10u32), (WorkItemId(1), 60u32), (WorkItemId(2), 60u32)];
        let alloc = water_fill(68.0, &ids);
        let total: f64 = alloc.iter().map(|(_, a)| a).sum();
        assert!(total <= 68.0 + 1e-9);
        let by_id: BTreeMap<_, _> = alloc.into_iter().collect();
        assert!((by_id[&WorkItemId(0)] - 10.0).abs() < 1e-9);
        assert!((by_id[&WorkItemId(1)] - 29.0).abs() < 1e-9);
        assert!((by_id[&WorkItemId(2)] - 29.0).abs() < 1e-9);
    }

    #[test]
    fn water_fill_with_spare_capacity_gives_everyone_their_cap() {
        let ids = [(WorkItemId(0), 10u32), (WorkItemId(1), 20u32)];
        let alloc = water_fill(68.0, &ids);
        let by_id: BTreeMap<_, _> = alloc.into_iter().collect();
        assert_eq!(by_id[&WorkItemId(0)], 10.0);
        assert_eq!(by_id[&WorkItemId(1)], 20.0);
    }

    #[test]
    fn jitter_makes_execution_times_vary_but_stay_bounded() {
        let spec = GpuSpec::rtx_2080_ti(); // default 4 % jitter
        let mut gpu = Gpu::new(spec);
        let ctx = gpu.add_context(68).unwrap();
        let s = gpu.add_stream(ctx).unwrap();
        let mut times = Vec::new();
        for tag in 0..20 {
            gpu.submit(s, WorkItem::new(tag).with_kernel(KernelDesc::new(6_800.0, 68))).unwrap();
        }
        for c in gpu.run_to_idle() {
            times.push(c.execution_time().as_micros_f64());
        }
        let min = times.iter().cloned().fold(f64::MAX, f64::min);
        let max = times.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min, "jitter should produce variation");
        assert!(max < min * 1.15, "variation should stay small: {min} vs {max}");
    }
}
