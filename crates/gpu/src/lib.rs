#![forbid(unsafe_code)]
//! # daris-gpu
//!
//! A discrete-event simulator of an NVIDIA-style GPU as seen by an inference
//! scheduler: a pool of Streaming Multiprocessors (SMs), MPS *contexts* that
//! each own an SM quota (possibly oversubscribed), FIFO *CUDA streams*, and
//! *kernels* that occupy SMs for a model-dependent amount of work.
//!
//! The DARIS paper evaluates on a real RTX 2080 Ti; this crate is the
//! substitute substrate (see `DESIGN.md`). It reproduces the first-order
//! timing phenomena that the DARIS scheduler exploits:
//!
//! * a kernel can only use SMs from its context's quota, so isolating SMs
//!   (`OS = 1`) wastes capacity whenever a context idles;
//! * when the quotas of concurrently busy contexts exceed the physical SM
//!   count (oversubscription), allocations are scaled down proportionally and
//!   a configurable interference penalty is applied;
//! * kernels serialize within a stream, and every kernel pays a launch
//!   overhead that batching amortizes;
//! * host-to-device / device-to-host copies serialize on a single copy engine.
//!
//! # Example
//!
//! ```
//! use daris_gpu::{Gpu, GpuSpec, KernelDesc, WorkItem};
//!
//! # fn main() -> Result<(), daris_gpu::GpuError> {
//! let mut gpu = Gpu::new(GpuSpec::rtx_2080_ti());
//! let ctx = gpu.add_context(68)?;
//! let stream = gpu.add_stream(ctx)?;
//! let item = WorkItem::new(42).with_kernel(KernelDesc::new(6800.0, 68));
//! gpu.submit(stream, item)?;
//! let completions = gpu.run_to_idle();
//! assert_eq!(completions.len(), 1);
//! assert_eq!(completions[0].tag, 42);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod context;
mod engine;
mod error;
mod kernel;
mod memory;
mod rng;
mod spec;
mod stream;
mod time;
mod trace;

pub use context::{ContextId, ContextState};
pub use engine::{Completion, Gpu, GpuUtilizationSample};
pub use error::GpuError;
pub use kernel::{KernelDesc, KernelId, KernelPhase, WorkItem, WorkItemId};
pub use memory::{MemoryPool, MemoryStats};
pub use rng::XorShiftRng;
pub use spec::{GpuSpec, InterferenceModel};
pub use stream::{StreamId, StreamState};
pub use time::{SimDuration, SimTime};
pub use trace::{ReplanEvent, Trace, TraceEvent, TraceEventKind};

/// Convenience result alias used across the crate.
pub type Result<T, E = GpuError> = std::result::Result<T, E>;

/// Rounds `value` up to the nearest even integer, as required by Eq. (9) of
/// the DARIS paper when computing per-context SM quotas.
///
/// ```
/// assert_eq!(daris_gpu::ceil_even(11.3), 12);
/// assert_eq!(daris_gpu::ceil_even(12.0), 12);
/// assert_eq!(daris_gpu::ceil_even(12.1), 14);
/// assert_eq!(daris_gpu::ceil_even(0.5), 2);
/// ```
pub fn ceil_even(value: f64) -> u32 {
    if value <= 0.0 {
        return 0;
    }
    let c = value.ceil() as u32;
    if c % 2 == 0 {
        c
    } else {
        c + 1
    }
}

/// Computes the per-context SM quota of Eq. (9):
/// `NSM = ceil_even(OS * NSM_max / Nc)`.
///
/// `oversubscription` is the OS value (`1.0 <= OS <= Nc` in the paper), and
/// `n_contexts` the number of MPS contexts.
///
/// ```
/// // RTX 2080 Ti, 6 contexts, OS = 1: each context gets 12 SMs.
/// assert_eq!(daris_gpu::sm_quota(68, 1.0, 6), 12);
/// // OS = 6 (full sharing): every context sees all 68 SMs.
/// assert_eq!(daris_gpu::sm_quota(68, 6.0, 6), 68);
/// ```
pub fn sm_quota(sm_max: u32, oversubscription: f64, n_contexts: u32) -> u32 {
    if n_contexts == 0 {
        return 0;
    }
    let raw = oversubscription * f64::from(sm_max) / f64::from(n_contexts);
    ceil_even(raw).min(sm_max.max(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_even_basic() {
        assert_eq!(ceil_even(0.0), 0);
        assert_eq!(ceil_even(-3.0), 0);
        assert_eq!(ceil_even(1.0), 2);
        assert_eq!(ceil_even(2.0), 2);
        assert_eq!(ceil_even(67.9), 68);
        assert_eq!(ceil_even(68.0), 68);
    }

    #[test]
    fn sm_quota_matches_paper_examples() {
        // 6 contexts on a 68-SM GPU.
        assert_eq!(sm_quota(68, 1.0, 6), 12);
        assert_eq!(sm_quota(68, 1.5, 6), 18);
        assert_eq!(sm_quota(68, 2.0, 6), 24);
        assert_eq!(sm_quota(68, 6.0, 6), 68);
        // Quota never exceeds the physical SM count.
        assert_eq!(sm_quota(68, 10.0, 2), 68);
        // Degenerate cases.
        assert_eq!(sm_quota(68, 1.0, 0), 0);
    }

    #[test]
    fn sm_quota_is_even() {
        for nc in 1..=10u32 {
            for os10 in 10..=60u32 {
                let q = sm_quota(68, f64::from(os10) / 10.0, nc);
                assert_eq!(q % 2, 0, "quota {q} for nc={nc} os={os10} not even");
            }
        }
    }
}
