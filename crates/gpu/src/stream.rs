//! CUDA streams: FIFO execution lanes inside a context.

use std::collections::VecDeque;
use std::fmt;

use crate::{ContextId, WorkItemId};

/// Identifier of a CUDA stream on the simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub(crate) u32);

impl StreamId {
    /// Index of the stream in creation order (0-based, global across
    /// contexts).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Read-only view of a stream's instantaneous state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamState {
    /// The stream id.
    pub id: StreamId,
    /// Context that owns the stream.
    pub context: ContextId,
    /// Work items queued (including the one currently executing).
    pub queued_items: usize,
    /// Whether any kernel of this stream is launching or computing right now.
    pub busy: bool,
}

/// Internal mutable stream record.
#[derive(Debug, Clone)]
pub(crate) struct Stream {
    pub(crate) id: StreamId,
    pub(crate) context: ContextId,
    /// FIFO of pending work items (front = currently active item).
    pub(crate) queue: VecDeque<WorkItemId>,
}

impl Stream {
    pub(crate) fn new(id: StreamId, context: ContextId) -> Self {
        Stream { id, context, queue: VecDeque::new() }
    }

    pub(crate) fn active_item(&self) -> Option<WorkItemId> {
        self.queue.front().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        assert_eq!(StreamId(2).to_string(), "s2");
        assert_eq!(StreamId(2).index(), 2);
    }

    #[test]
    fn fifo_order() {
        let mut s = Stream::new(StreamId(0), ContextId(0));
        assert!(s.active_item().is_none());
        s.queue.push_back(WorkItemId(1));
        s.queue.push_back(WorkItemId(2));
        assert_eq!(s.active_item(), Some(WorkItemId(1)));
        s.queue.pop_front();
        assert_eq!(s.active_item(), Some(WorkItemId(2)));
    }
}
