//! MPS contexts: SM quota owners.

use std::fmt;

/// Identifier of an MPS context on the simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContextId(pub(crate) u32);

impl ContextId {
    /// Index of the context in creation order (0-based).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

/// Read-only view of an MPS context's configuration and instantaneous state.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextState {
    /// The context id.
    pub id: ContextId,
    /// SM quota assigned at creation (Eq. 9 of the paper).
    pub sm_quota: u32,
    /// Streams created inside this context.
    pub stream_count: usize,
    /// Streams currently executing or launching a kernel.
    pub busy_streams: usize,
    /// SMs currently allocated to this context's kernels after contention
    /// scaling (zero when the context is idle).
    pub allocated_sms: f64,
}

/// Internal mutable context record.
#[derive(Debug, Clone)]
pub(crate) struct Context {
    pub(crate) id: ContextId,
    pub(crate) sm_quota: u32,
    pub(crate) streams: Vec<crate::StreamId>,
}

impl Context {
    pub(crate) fn new(id: ContextId, sm_quota: u32) -> Self {
        Context { id, sm_quota, streams: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_index() {
        let id = ContextId(5);
        assert_eq!(id.to_string(), "ctx5");
        assert_eq!(id.index(), 5);
    }

    #[test]
    fn context_records_streams() {
        let mut ctx = Context::new(ContextId(0), 34);
        assert!(ctx.streams.is_empty());
        ctx.streams.push(crate::StreamId(0));
        assert_eq!(ctx.streams.len(), 1);
        assert_eq!(ctx.sm_quota, 34);
    }
}
