//! Execution tracing.
//!
//! Traces record what happened on the device at kernel and work-item
//! granularity. They back the response-time analysis of Fig. 8 and the
//! execution-time/MRET traces of Fig. 9, and are invaluable when debugging
//! scheduler behaviour.

use crate::{ContextId, SimTime, StreamId, WorkItemId};

/// The kind of event recorded in a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A work item was enqueued on a stream.
    ItemSubmitted,
    /// The item's host-to-device copy started.
    CopyInStarted,
    /// The item's device-to-host copy claimed the copy engine.
    CopyOutStarted,
    /// The item's first kernel started launching.
    ExecutionStarted,
    /// A kernel of the item completed.
    KernelCompleted,
    /// The item (including its device-to-host copy) completed.
    ItemCompleted,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub at: SimTime,
    /// Event kind.
    pub kind: TraceEventKind,
    /// The work item involved.
    pub item: WorkItemId,
    /// Caller tag of the work item.
    pub tag: u64,
    /// Stream on which the item runs.
    pub stream: StreamId,
    /// Context owning the stream.
    pub context: ContextId,
    /// Optional label (kernel/layer name) for kernel-level events.
    pub label: Option<String>,
}

/// One water-filling replan, recorded alongside the item-level events.
///
/// Replans happen whenever the set of computing kernels changes; the
/// utilization value is piecewise-constant between consecutive replans,
/// which is exactly the shape a windowed aggregator integrates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplanEvent {
    /// Simulation time of the replan.
    pub at: SimTime,
    /// Number of items computing after the replan.
    pub computing: u32,
    /// Fraction of physical SMs allocated after the replan (0.0–1.0).
    pub utilization: f64,
}

/// An in-memory execution trace.
///
/// Tracing is disabled by default; call [`Trace::enable`] (or
/// [`crate::Gpu::enable_tracing`]) to start recording.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
    replans: Vec<ReplanEvent>,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Starts recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stops recording (already-recorded events are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether the trace is currently recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if tracing is enabled.
    pub(crate) fn record(&mut self, event: TraceEvent) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// Records a replan if tracing is enabled.
    pub(crate) fn record_replan(&mut self, event: ReplanEvent) {
        if self.enabled {
            self.replans.push(event);
        }
    }

    /// All recorded events in chronological order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// All recorded replans in chronological order.
    pub fn replans(&self) -> &[ReplanEvent] {
        &self.replans
    }

    /// Removes and returns all recorded events (a telemetry forwarder's
    /// drain; recording stays enabled).
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Removes and returns all recorded replans.
    pub fn take_replans(&mut self) -> Vec<ReplanEvent> {
        std::mem::take(&mut self.replans)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Clears all recorded events and replans.
    pub fn clear(&mut self) {
        self.events.clear();
        self.replans.clear();
    }

    /// Events of a particular kind.
    pub fn of_kind(&self, kind: TraceEventKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Events belonging to a particular caller tag.
    pub fn for_tag(&self, tag: u64) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: TraceEventKind, tag: u64, at_us: u64) -> TraceEvent {
        TraceEvent {
            at: SimTime::from_micros(at_us),
            kind,
            item: WorkItemId(tag),
            tag,
            stream: StreamId(0),
            context: ContextId(0),
            label: None,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut trace = Trace::new();
        trace.record(event(TraceEventKind::ItemSubmitted, 1, 0));
        assert!(trace.is_empty());
    }

    #[test]
    fn enabled_trace_records_and_filters() {
        let mut trace = Trace::new();
        trace.enable();
        assert!(trace.is_enabled());
        trace.record(event(TraceEventKind::ItemSubmitted, 1, 0));
        trace.record(event(TraceEventKind::ItemCompleted, 1, 10));
        trace.record(event(TraceEventKind::ItemSubmitted, 2, 5));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.of_kind(TraceEventKind::ItemSubmitted).count(), 2);
        assert_eq!(trace.for_tag(1).count(), 2);
        trace.clear();
        assert!(trace.is_empty());
    }
}
