//! Property-based tests of the GPU simulator's core invariants.

use daris_gpu::{ceil_even, sm_quota, Gpu, GpuSpec, KernelDesc, SimTime, WorkItem};
use proptest::prelude::*;

fn quiet() -> GpuSpec {
    GpuSpec::rtx_2080_ti().without_interference()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ceil_even always returns an even value that is >= the input.
    #[test]
    fn ceil_even_properties(v in 0.0f64..10_000.0) {
        let c = ceil_even(v);
        prop_assert_eq!(c % 2, 0);
        prop_assert!(f64::from(c) + 1e-9 >= v);
        prop_assert!(f64::from(c) < v + 2.0);
    }

    /// Eq. 9 quotas are positive, never exceed the device, and are even
    /// unless they were clamped to an odd device width.
    #[test]
    fn sm_quota_properties(sm in 2u32..256, os in 1.0f64..8.0, nc in 1u32..12) {
        let q = sm_quota(sm, os, nc);
        prop_assert!(q % 2 == 0 || q == sm.max(2));
        prop_assert!(q >= 2);
        prop_assert!(q <= sm.max(2));
    }

    /// A kernel running alone never finishes faster than its ideal time and
    /// never slower than its parallelism-limited time plus launch overhead.
    #[test]
    fn isolated_kernel_time_bounds(work in 10.0f64..100_000.0, par in 1u32..200) {
        let mut gpu = Gpu::new(quiet());
        let ctx = gpu.add_context(68).unwrap();
        let s = gpu.add_stream(ctx).unwrap();
        gpu.submit(s, WorkItem::new(0).with_kernel(KernelDesc::new(work, par))).unwrap();
        let done = gpu.run_to_idle();
        prop_assert_eq!(done.len(), 1);
        let t = done[0].execution_time().as_micros_f64();
        let ideal = work / 68.0 + 5.0;
        let limit = work / f64::from(par.min(68)) + 5.0;
        prop_assert!(t + 1e-3 >= ideal, "t={} ideal={}", t, ideal);
        prop_assert!(t <= limit + 1.0, "t={} limit={}", t, limit);
    }

    /// Work is conserved: total completed work equals the sum of submitted
    /// kernel work (no interference, no jitter).
    #[test]
    fn work_conservation(works in prop::collection::vec(10.0f64..5_000.0, 1..20)) {
        let mut gpu = Gpu::new(quiet());
        let ctx = gpu.add_context(68).unwrap();
        let s1 = gpu.add_stream(ctx).unwrap();
        let s2 = gpu.add_stream(ctx).unwrap();
        let mut total = 0.0;
        for (i, w) in works.iter().enumerate() {
            total += *w;
            let stream = if i % 2 == 0 { s1 } else { s2 };
            gpu.submit(stream, WorkItem::new(i as u64).with_kernel(KernelDesc::new(*w, 32))).unwrap();
        }
        let done = gpu.run_to_idle();
        prop_assert_eq!(done.len(), works.len());
        prop_assert!((gpu.completed_work() - total).abs() < 1e-3 * total.max(1.0));
    }

    /// More SMs in the context quota never makes an isolated work item slower.
    #[test]
    fn more_quota_never_slower(work in 100.0f64..50_000.0, q1 in 2u32..68, extra in 0u32..66) {
        let q2 = (q1 + extra).min(68);
        let run = |quota: u32| {
            let mut gpu = Gpu::new(quiet());
            let ctx = gpu.add_context(quota).unwrap();
            let s = gpu.add_stream(ctx).unwrap();
            gpu.submit(s, WorkItem::new(0).with_kernel(KernelDesc::new(work, 68))).unwrap();
            gpu.run_to_idle()[0].execution_time().as_micros_f64()
        };
        let t1 = run(q1);
        let t2 = run(q2);
        prop_assert!(t2 <= t1 + 1e-3, "quota {} -> {}, time {} -> {}", q1, q2, t1, t2);
    }

    /// Advancing in arbitrary random split points yields the *identical*
    /// completion stream (same order, same nanosecond timestamps) as one
    /// all-at-once advance: the event calendar must be insensitive to how
    /// callers slice time.
    #[test]
    fn random_advance_splits_never_change_completions(seed in 0u64..1_000_000, n_items in 1usize..24) {
        let build = || {
            // Jitter + interference on: the hardest setting for exactness.
            let mut gpu = Gpu::new(GpuSpec::rtx_2080_ti());
            let mut rng = daris_gpu::XorShiftRng::new(seed);
            let mut streams = Vec::new();
            for quota in [34u32, 68] {
                let ctx = gpu.add_context(quota).unwrap();
                streams.push(gpu.add_stream(ctx).unwrap());
                streams.push(gpu.add_stream(ctx).unwrap());
            }
            for tag in 0..n_items as u64 {
                let stream = streams[(rng.next_u64() % streams.len() as u64) as usize];
                let mut item = WorkItem::new(tag)
                    .with_kernel(KernelDesc::new(rng.uniform(40.0, 3_000.0), 8 + (rng.next_u64() % 60) as u32));
                if rng.next_u64() % 2 == 0 {
                    item = item.with_kernel(KernelDesc::new(rng.uniform(40.0, 1_000.0), 16));
                }
                if rng.next_u64() % 2 == 0 {
                    item = item.with_h2d_bytes(1 + rng.next_u64() % 100_000);
                }
                gpu.submit(stream, item).unwrap();
            }
            gpu
        };

        // Reference: drain with run_to_idle.
        let mut reference = build();
        let expected = reference.run_to_idle();
        let end = reference.now();

        // Same workload, advanced over random split points.
        let mut split = build();
        let mut split_rng = daris_gpu::XorShiftRng::new(seed ^ 0x5911_77ed);
        let mut got = Vec::new();
        let mut t = SimTime::ZERO;
        while split.pending_items() > 0 {
            t += daris_gpu::SimDuration::from_micros_f64(split_rng.uniform(0.1, 25.0));
            got.extend(split.advance_to(t));
        }
        prop_assert_eq!(&expected, &got, "completion streams must be split-invariant");
        prop_assert!(split.now() >= end);
    }

    /// Completions are never reported before the submission time and the
    /// device clock never runs backwards.
    #[test]
    fn time_monotonicity(count in 1usize..15, work in 50.0f64..2_000.0) {
        let mut gpu = Gpu::new(quiet());
        let ctx = gpu.add_context(34).unwrap();
        let s = gpu.add_stream(ctx).unwrap();
        for i in 0..count {
            gpu.submit(s, WorkItem::new(i as u64).with_kernel(KernelDesc::new(work, 16))).unwrap();
        }
        let mut last = SimTime::ZERO;
        let mut step = SimTime::from_micros(10);
        let mut all = Vec::new();
        while gpu.pending_items() > 0 {
            let done = gpu.advance_to(step);
            prop_assert!(gpu.now() >= last);
            last = gpu.now();
            all.extend(done);
            step += daris_gpu::SimDuration::from_micros(10);
        }
        prop_assert_eq!(all.len(), count);
        for c in &all {
            prop_assert!(c.finished_at >= c.started_at);
            prop_assert!(c.started_at >= c.submitted_at);
        }
    }
}
