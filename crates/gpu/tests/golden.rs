//! Golden-trace equivalence tests for the GPU engine.
//!
//! Three seeded workloads were run on the *seed* (scan-everything) engine
//! before the event-calendar refactor, and their full [`Completion`] streams
//! were committed under `tests/golden/`. The tests here replay the same
//! workloads on the current engine and assert the completion streams match
//! **exactly** (nanosecond timestamps included), pinning the refactored
//! engine to the original behaviour.
//!
//! To regenerate (only legitimate after an *intentional* semantic change):
//!
//! ```sh
//! DARIS_REGEN_GOLDEN=1 cargo test -p daris-gpu --test golden
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use daris_gpu::{Completion, Gpu, GpuSpec, KernelDesc, SimTime, WorkItem, XorShiftRng};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.trace"))
}

fn serialize(completions: &[Completion]) -> String {
    let mut out = String::new();
    out.push_str("# tag item stream context submitted_ns started_ns finished_ns\n");
    for c in completions {
        writeln!(
            out,
            "{} {} {} {} {} {} {}",
            c.tag,
            c.item,
            c.stream,
            c.context,
            c.submitted_at.as_nanos(),
            c.started_at.as_nanos(),
            c.finished_at.as_nanos()
        )
        .expect("writing to a String cannot fail");
    }
    out
}

fn check_or_regen(name: &str, completions: &[Completion]) {
    let path = golden_path(name);
    let actual = serialize(completions);
    if std::env::var_os("DARIS_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir has a parent"))
            .expect("create golden dir");
        std::fs::write(&path, &actual).expect("write golden trace");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace {path:?} ({e}); regenerate with \
             DARIS_REGEN_GOLDEN=1 cargo test -p daris-gpu --test golden"
        )
    });
    if expected != actual {
        let diverging = expected
            .lines()
            .zip(actual.lines())
            .enumerate()
            .find(|(_, (e, a))| e != a)
            .map(|(i, (e, a))| {
                format!("first divergence at line {i}:\n  golden: {e}\n  actual: {a}")
            })
            .unwrap_or_else(|| {
                format!(
                    "line counts differ: golden {} vs actual {}",
                    expected.lines().count(),
                    actual.lines().count()
                )
            });
        panic!("completion stream diverged from golden trace {name}: {diverging}");
    }
}

/// A pseudo-random work item: 1–3 kernels, varying work/parallelism, and
/// (for some items) host/device copies.
fn random_item(rng: &mut XorShiftRng, tag: u64) -> WorkItem {
    let mut item = WorkItem::new(tag);
    let kernels = 1 + (rng.next_u64() % 3) as usize;
    for _ in 0..kernels {
        let work = rng.uniform(50.0, 4_000.0);
        let parallelism = 4 + (rng.next_u64() % 64) as u32;
        item = item.with_kernel(KernelDesc::new(work, parallelism));
    }
    if rng.next_u64() % 2 == 0 {
        item = item.with_h2d_bytes(1_000 + rng.next_u64() % 200_000);
    }
    if rng.next_u64() % 3 == 0 {
        item = item.with_d2h_bytes(500 + rng.next_u64() % 50_000);
    }
    item
}

/// Workload 1: a t=0 burst of 48 mixed items over 3 quota-limited contexts
/// with the default jitter + interference model, drained with run_to_idle.
#[test]
fn golden_burst_multi_context() {
    let mut rng = XorShiftRng::new(0xB0B5_0001);
    let mut gpu = Gpu::new(GpuSpec::rtx_2080_ti());
    let mut streams = Vec::new();
    for _ in 0..3 {
        let ctx = gpu.add_context(34).unwrap();
        for _ in 0..2 {
            streams.push(gpu.add_stream(ctx).unwrap());
        }
    }
    for tag in 0..48u64 {
        let stream = streams[(rng.next_u64() % streams.len() as u64) as usize];
        gpu.submit(stream, random_item(&mut rng, tag)).unwrap();
    }
    let done = gpu.run_to_idle();
    assert_eq!(done.len(), 48);
    check_or_regen("burst_multi_context", &done);
}

/// Workload 2: staggered submissions — batches arrive at random times while
/// earlier work is still in flight, advancing in uneven steps.
#[test]
fn golden_staggered_arrivals() {
    let mut rng = XorShiftRng::new(0xB0B5_0002);
    let mut gpu = Gpu::new(GpuSpec::rtx_2080_ti());
    let mut streams = Vec::new();
    for quota in [68u32, 24] {
        let ctx = gpu.add_context(quota).unwrap();
        for _ in 0..3 {
            streams.push(gpu.add_stream(ctx).unwrap());
        }
    }
    let mut all = Vec::new();
    let mut tag = 0u64;
    let mut t = SimTime::ZERO;
    for _ in 0..24 {
        t += daris_gpu::SimDuration::from_micros_f64(rng.uniform(3.0, 120.0));
        all.extend(gpu.advance_to(t));
        let batch = 1 + rng.next_u64() % 4;
        for _ in 0..batch {
            let stream = streams[(rng.next_u64() % streams.len() as u64) as usize];
            gpu.submit(stream, random_item(&mut rng, tag)).unwrap();
            tag += 1;
        }
    }
    all.extend(gpu.run_to_idle());
    assert_eq!(all.len(), tag as usize);
    check_or_regen("staggered_arrivals", &all);
}

/// Workload 3: heavy oversubscription — 4 full-width contexts fighting for
/// the device, drained through many small advance_to steps.
#[test]
fn golden_oversubscribed_small_steps() {
    let mut rng = XorShiftRng::new(0xB0B5_0003);
    let mut gpu = Gpu::new(GpuSpec::rtx_2080_ti());
    let mut streams = Vec::new();
    for _ in 0..4 {
        let ctx = gpu.add_context(68).unwrap();
        streams.push(gpu.add_stream(ctx).unwrap());
        streams.push(gpu.add_stream(ctx).unwrap());
    }
    for tag in 0..40u64 {
        let stream = streams[(rng.next_u64() % streams.len() as u64) as usize];
        gpu.submit(stream, random_item(&mut rng, tag)).unwrap();
    }
    let mut all = Vec::new();
    let mut t = SimTime::ZERO;
    while gpu.pending_items() > 0 {
        t += daris_gpu::SimDuration::from_micros_f64(rng.uniform(0.5, 40.0));
        all.extend(gpu.advance_to(t));
    }
    assert_eq!(all.len(), 40);
    check_or_regen("oversubscribed_small_steps", &all);
}

/// FNV-1a over the serialized completion stream: a stable digest for
/// comparing whole runs without committing another fixture.
fn trace_hash(completions: &[Completion]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in serialize(completions).bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The engine's per-item state (`items`, the water-filling `rates`) lives in
/// `BTreeMap`s precisely so that two runs of the same workload are
/// byte-identical. Each fresh engine would get fresh (per-process-random)
/// hasher state if those maps ever regressed to `HashMap` and iteration order
/// leaked into the results — this repeated-run hash test is the dynamic pin
/// for daris-lint rule D001 (see crates/lint).
#[test]
fn repeated_runs_hash_identically() {
    let run_once = || {
        // Oversubscribed multi-context burst: maximum pressure on the
        // water-filling `rates` state and the copy-engine queue.
        let mut rng = XorShiftRng::new(0xD1CE_0006);
        let mut gpu = Gpu::new(GpuSpec::rtx_2080_ti());
        let mut streams = Vec::new();
        for _ in 0..4 {
            let ctx = gpu.add_context(40).unwrap();
            streams.push(gpu.add_stream(ctx).unwrap());
            streams.push(gpu.add_stream(ctx).unwrap());
        }
        for tag in 0..64u64 {
            let stream = streams[(rng.next_u64() % streams.len() as u64) as usize];
            gpu.submit(stream, random_item(&mut rng, tag)).unwrap();
        }
        let done = gpu.run_to_idle();
        assert_eq!(done.len(), 64);
        trace_hash(&done)
    };
    let first = run_once();
    for rep in 1..5 {
        assert_eq!(run_once(), first, "run {rep} diverged from run 0");
    }
}
