//! Error type for the scheduler crate.

use std::error::Error;
use std::fmt;

use daris_gpu::GpuError;
use daris_workload::TraceError;

/// Errors returned by the DARIS scheduler.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The partition/config combination is invalid (e.g. zero contexts).
    InvalidConfig(String),
    /// The task set is empty.
    EmptyTaskSet,
    /// An error bubbled up from the GPU simulator.
    Gpu(GpuError),
    /// A workload trace could not be replayed against the scheduler's tasks.
    Trace(TraceError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(reason) => {
                write!(f, "invalid scheduler configuration: {reason}")
            }
            CoreError::EmptyTaskSet => write!(f, "task set contains no tasks"),
            CoreError::Gpu(e) => write!(f, "gpu simulator error: {e}"),
            CoreError::Trace(e) => write!(f, "workload trace error: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Gpu(e) => Some(e),
            CoreError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpuError> for CoreError {
    fn from(e: GpuError) -> Self {
        CoreError::Gpu(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidConfig("zero contexts".into());
        assert!(e.to_string().contains("zero contexts"));
        assert!(e.source().is_none());
        let g = CoreError::from(GpuError::ZeroQuota);
        assert!(g.to_string().contains("gpu"));
        assert!(g.source().is_some());
        assert!(CoreError::EmptyTaskSet.to_string().contains("no tasks"));
        let t = CoreError::Trace(TraceError::Parse { line: 3, reason: "bad".into() });
        assert!(t.to_string().contains("trace"));
        assert!(t.source().is_some());
    }
}
