//! [`RunSpec`]: one builder-style description of *what to run* — a workload
//! shape plus a horizon — consumed by every standalone and cluster entry
//! point.
//!
//! Before this type, six `run_*` entry points had accreted across
//! `daris-core` and `daris-cluster` (`run_until`, `run_with_source`,
//! `run_trace`; cluster `run_until`, `run_generated`, `run_replay`), each
//! hard-wiring one workload shape. They all survive as thin documented
//! shims, but new code writes:
//!
//! ```
//! use daris_core::{DarisConfig, DarisScheduler, GpuPartition, RunSpec, Scheduler};
//! use daris_models::DnnKind;
//! use daris_gpu::SimTime;
//! use daris_workload::TaskSet;
//!
//! # fn main() -> Result<(), daris_core::CoreError> {
//! let taskset = TaskSet::table2(DnnKind::UNet);
//! let mut scheduler =
//!     DarisScheduler::new(&taskset, DarisConfig::new(GpuPartition::mps(6, 2.0)))?;
//! let spec = RunSpec::periodic().until(SimTime::from_millis(300));
//! let outcome = scheduler.run(&spec)?;
//! assert!(outcome.summary.throughput_jps > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! Telemetry sinks stay *construction-time* configuration
//! ([`DarisConfig::sink`](crate::DarisConfig)): device tracing must be
//! enabled when the simulated GPU is built, so a sink cannot be attached
//! per-run without violating the byte-identical replay guarantee.

use daris_gpu::SimTime;
use daris_workload::{GenSpec, ReleaseJitter, Trace};

use crate::{CoreError, Result};

/// The workload shape of a [`RunSpec`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Workload {
    /// Strictly periodic releases from the task set's periods, optionally
    /// jittered.
    Periodic {
        /// Per-release jitter applied to the periodic schedule.
        jitter: ReleaseJitter,
    },
    /// Releases from a seeded generator (bursty / diurnal / correlated).
    Generated(GenSpec),
    /// Byte-exact replay of a recorded trace.
    Replay(Trace),
}

/// A builder-style run description: workload + horizon.
///
/// Construct with [`periodic`](RunSpec::periodic),
/// [`jittered`](RunSpec::jittered), [`generated`](RunSpec::generated) or
/// [`replay`](RunSpec::replay), then set the horizon with
/// [`until`](RunSpec::until). Replay specs default to the trace's own
/// horizon.
#[derive(Debug, Clone)]
pub struct RunSpec {
    workload: Workload,
    horizon: Option<SimTime>,
}

impl RunSpec {
    /// Strictly periodic releases (the task set's periods, no jitter).
    pub fn periodic() -> Self {
        RunSpec { workload: Workload::Periodic { jitter: ReleaseJitter::None }, horizon: None }
    }

    /// Periodic releases with per-release jitter.
    pub fn jittered(jitter: ReleaseJitter) -> Self {
        RunSpec { workload: Workload::Periodic { jitter }, horizon: None }
    }

    /// Releases from a seeded generator.
    pub fn generated(spec: GenSpec) -> Self {
        RunSpec { workload: Workload::Generated(spec), horizon: None }
    }

    /// Byte-exact replay of `trace`. The horizon defaults to the trace's
    /// own horizon; [`until`](RunSpec::until) may truncate it.
    pub fn replay(trace: Trace) -> Self {
        RunSpec { workload: Workload::Replay(trace), horizon: None }
    }

    /// Sets the horizon: releases stop there, and final accounting runs
    /// there.
    #[must_use]
    pub fn until(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// The workload shape.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The explicitly set horizon, if any.
    pub fn horizon(&self) -> Option<SimTime> {
        match (&self.workload, self.horizon) {
            (Workload::Replay(trace), None) => Some(trace.horizon()),
            (_, h) => h,
        }
    }

    /// The horizon, or [`CoreError::InvalidConfig`] when the spec does not
    /// determine one (periodic/generated workloads need
    /// [`until`](RunSpec::until)).
    pub fn required_horizon(&self) -> Result<SimTime> {
        self.horizon().ok_or_else(|| {
            CoreError::InvalidConfig("run spec has no horizon: call RunSpec::until(..)".to_string())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_spec_requires_explicit_horizon() {
        let spec = RunSpec::periodic();
        assert!(spec.required_horizon().is_err());
        let spec = spec.until(SimTime::from_millis(10));
        assert_eq!(spec.required_horizon().unwrap(), SimTime::from_millis(10));
    }

    #[test]
    fn replay_spec_defaults_to_trace_horizon() {
        let trace = Trace::new(SimTime::from_millis(25), daris_gpu::SimDuration::ZERO, Vec::new())
            .expect("empty trace is valid");
        let spec = RunSpec::replay(trace);
        assert_eq!(spec.horizon(), Some(SimTime::from_millis(25)));
        let truncated = spec.until(SimTime::from_millis(5));
        assert_eq!(truncated.required_horizon().unwrap(), SimTime::from_millis(5));
    }
}
