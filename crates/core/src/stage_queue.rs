//! The stage scheduler: eight fixed priority levels with EDF tie-breaking
//! (Sec. IV-B2).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use daris_gpu::SimTime;
use daris_workload::{JobId, Priority};

use crate::AblationFlags;

/// A stage that is ready to be dispatched to a GPU stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyStage {
    /// The job this stage belongs to.
    pub job: JobId,
    /// Stage index within the job.
    pub stage: usize,
    /// Task priority level.
    pub priority: Priority,
    /// Whether this is the job's final stage.
    pub is_last_stage: bool,
    /// Whether the immediately preceding stage missed its virtual deadline.
    pub predecessor_missed: bool,
    /// Deadline used for EDF ordering inside a priority level: the stage's
    /// absolute virtual deadline (the job's absolute deadline for the last
    /// stage).
    pub edf_deadline: SimTime,
}

impl ReadyStage {
    /// The fixed priority level of this stage under the given ablation flags:
    /// 0 is the most urgent, 7 the least.
    ///
    /// The paper extends the two task priorities to eight stage levels: HP
    /// before LP, then (last stage && predecessor missed) before (last stage)
    /// before (predecessor missed) before ordinary stages. Ablations collapse
    /// the corresponding bit.
    pub fn level(&self, flags: &AblationFlags) -> u8 {
        let class = if flags.fixed_task_priority && self.priority == Priority::Low { 4 } else { 0 };
        let last = flags.prioritize_last_stage && self.is_last_stage;
        let missed = flags.boost_after_miss && self.predecessor_missed;
        let sub = match (last, missed) {
            (true, true) => 0,
            (true, false) => 1,
            (false, true) => 2,
            (false, false) => 3,
        };
        class + sub
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct QueuedStage {
    level: u8,
    edf_deadline: SimTime,
    sequence: u64,
    stage: ReadyStage,
}

impl Ord for QueuedStage {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the smallest (level, deadline)
        // pops first. The sequence number keeps ordering total and FIFO among
        // exact ties.
        other
            .level
            .cmp(&self.level)
            .then_with(|| other.edf_deadline.cmp(&self.edf_deadline))
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl PartialOrd for QueuedStage {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of ready stages for one context.
///
/// ```
/// use daris_core::{AblationFlags, ReadyStage, StageQueue};
/// use daris_gpu::SimTime;
/// use daris_workload::{JobId, Priority, TaskId};
///
/// let mut q = StageQueue::new(AblationFlags::full());
/// let mk = |task, priority, deadline_ms| ReadyStage {
///     job: JobId { task: TaskId(task), release_index: 0 },
///     stage: 0,
///     priority,
///     is_last_stage: false,
///     predecessor_missed: false,
///     edf_deadline: SimTime::from_millis(deadline_ms),
/// };
/// q.push(mk(1, Priority::Low, 5));
/// q.push(mk(2, Priority::High, 50));
/// // The high-priority stage pops first despite its later deadline.
/// assert_eq!(q.pop().unwrap().job.task, TaskId(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct StageQueue {
    flags: AblationFlags,
    heap: BinaryHeap<QueuedStage>,
    next_sequence: u64,
}

impl StageQueue {
    /// Creates an empty queue using the given ablation flags for level
    /// computation.
    pub fn new(flags: AblationFlags) -> Self {
        StageQueue { flags, heap: BinaryHeap::new(), next_sequence: 0 }
    }

    /// Enqueues a ready stage.
    pub fn push(&mut self, stage: ReadyStage) {
        let level = stage.level(&self.flags);
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(QueuedStage { level, edf_deadline: stage.edf_deadline, sequence, stage });
    }

    /// Removes and returns the most urgent stage.
    pub fn pop(&mut self) -> Option<ReadyStage> {
        self.heap.pop().map(|q| q.stage)
    }

    /// Peeks at the most urgent stage without removing it.
    pub fn peek(&self) -> Option<&ReadyStage> {
        self.heap.peek().map(|q| &q.stage)
    }

    /// Removes every queued stage of `job` (a job has at most one stage
    /// queued at a time), returning whether anything was removed. Used when a
    /// cluster dispatcher withdraws a queued job for migration. Sequence
    /// numbers are untouched, so FIFO ordering among the survivors holds.
    pub fn remove(&mut self, job: JobId) -> bool {
        let before = self.heap.len();
        self.heap.retain(|q| q.stage.job != job);
        self.heap.len() != before
    }

    /// Iterates over the queued stages in arbitrary (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = &ReadyStage> {
        self.heap.iter().map(|q| &q.stage)
    }

    /// Number of queued stages.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daris_workload::TaskId;

    fn stage(
        task: u32,
        priority: Priority,
        last: bool,
        missed: bool,
        deadline_ms: u64,
    ) -> ReadyStage {
        ReadyStage {
            job: JobId { task: TaskId(task), release_index: 0 },
            stage: 0,
            priority,
            is_last_stage: last,
            predecessor_missed: missed,
            edf_deadline: SimTime::from_millis(deadline_ms),
        }
    }

    #[test]
    fn levels_span_eight_values() {
        let flags = AblationFlags::full();
        let mut seen = std::collections::BTreeSet::new();
        for priority in [Priority::High, Priority::Low] {
            for last in [true, false] {
                for missed in [true, false] {
                    seen.insert(stage(0, priority, last, missed, 1).level(&flags));
                }
            }
        }
        assert_eq!(seen.len(), 8);
        assert_eq!(*seen.iter().next().unwrap(), 0);
        assert_eq!(*seen.iter().last().unwrap(), 7);
    }

    #[test]
    fn hp_always_beats_lp_with_fixed_priority() {
        let flags = AblationFlags::full();
        // Even the least favourable HP stage outranks the best LP stage.
        let hp_plain = stage(0, Priority::High, false, false, 100).level(&flags);
        let lp_best = stage(1, Priority::Low, true, true, 1).level(&flags);
        assert!(hp_plain < lp_best);
    }

    #[test]
    fn ablations_collapse_levels() {
        let no_last = AblationFlags::no_last();
        assert_eq!(
            stage(0, Priority::High, true, false, 1).level(&no_last),
            stage(0, Priority::High, false, false, 1).level(&no_last)
        );
        let no_prior = AblationFlags::no_prior();
        assert_eq!(
            stage(0, Priority::Low, false, true, 1).level(&no_prior),
            stage(0, Priority::Low, false, false, 1).level(&no_prior)
        );
        let no_fixed = AblationFlags::no_fixed();
        assert_eq!(
            stage(0, Priority::High, false, false, 1).level(&no_fixed),
            stage(0, Priority::Low, false, false, 1).level(&no_fixed)
        );
    }

    #[test]
    fn edf_breaks_ties_within_a_level() {
        let mut q = StageQueue::new(AblationFlags::full());
        q.push(stage(1, Priority::High, false, false, 30));
        q.push(stage(2, Priority::High, false, false, 10));
        q.push(stage(3, Priority::High, false, false, 20));
        assert_eq!(q.pop().unwrap().job.task, TaskId(2));
        assert_eq!(q.pop().unwrap().job.task, TaskId(3));
        assert_eq!(q.pop().unwrap().job.task, TaskId(1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn last_stage_and_miss_boost_ordering() {
        let mut q = StageQueue::new(AblationFlags::full());
        q.push(stage(1, Priority::High, false, false, 1));
        q.push(stage(2, Priority::High, true, false, 50));
        q.push(stage(3, Priority::High, false, true, 50));
        q.push(stage(4, Priority::High, true, true, 90));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|s| s.job.task.0).collect();
        assert_eq!(order, vec![4, 2, 3, 1]);
    }

    #[test]
    fn remove_extracts_one_job_and_preserves_order() {
        let mut q = StageQueue::new(AblationFlags::full());
        q.push(stage(1, Priority::High, false, false, 10));
        q.push(stage(2, Priority::High, false, false, 20));
        q.push(stage(3, Priority::High, false, false, 30));
        assert!(q.remove(JobId { task: TaskId(2), release_index: 0 }));
        assert!(!q.remove(JobId { task: TaskId(9), release_index: 0 }));
        assert_eq!(q.iter().count(), 2);
        assert_eq!(q.pop().unwrap().job.task, TaskId(1));
        assert_eq!(q.pop().unwrap().job.task, TaskId(3));
    }

    #[test]
    fn fifo_among_exact_ties() {
        let mut q = StageQueue::new(AblationFlags::full());
        q.push(stage(1, Priority::Low, false, false, 10));
        q.push(stage(2, Priority::Low, false, false, 10));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek().unwrap().job.task, TaskId(1));
        assert_eq!(q.pop().unwrap().job.task, TaskId(1));
        assert_eq!(q.pop().unwrap().job.task, TaskId(2));
        assert!(q.is_empty());
    }
}
