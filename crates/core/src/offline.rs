//! Offline phase: initial context population (Algorithm 1).

use daris_workload::{Priority, TaskId, TaskSpec};

/// Assigns every task to a context, balancing total utilization across
/// contexts (Algorithm 1 of the paper).
///
/// High-priority tasks are placed first (they keep fixed contexts during the
/// online phase); low-priority tasks are then distributed to balance the
/// residual load. Each task goes to the context with the lowest accumulated
/// utilization at the time of its placement.
///
/// `utilization(task)` supplies `u_i(0)` — in the paper this is the AFET-based
/// estimate (Eq. 10).
///
/// Returns a vector of context indices parallel to `tasks`.
///
/// ```
/// use daris_core::populate_contexts;
/// use daris_workload::TaskSet;
/// use daris_models::DnnKind;
///
/// let ts = TaskSet::table2(DnnKind::UNet);
/// let assignment = populate_contexts(ts.tasks(), 3, |_| 0.25);
/// assert_eq!(assignment.len(), ts.len());
/// assert!(assignment.iter().all(|&c| c < 3));
/// ```
pub fn populate_contexts<F>(tasks: &[TaskSpec], n_contexts: usize, utilization: F) -> Vec<usize>
where
    F: Fn(&TaskSpec) -> f64,
{
    let n_contexts = n_contexts.max(1);
    let mut context_util = vec![0.0f64; n_contexts];
    let mut assignment = vec![0usize; tasks.len()];

    let place = |order: &[usize], context_util: &mut Vec<f64>, assignment: &mut Vec<usize>| {
        for &idx in order {
            let task = &tasks[idx];
            let util = utilization(task);
            // minUtil(pool): the least-loaded context.
            let (ctx, _) = context_util
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .expect("at least one context");
            assignment[idx] = ctx;
            context_util[ctx] += util;
        }
    };

    // Lines 3–7: high-priority tasks first.
    let hp_order: Vec<usize> = tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.priority == Priority::High)
        .map(|(i, _)| i)
        .collect();
    place(&hp_order, &mut context_util, &mut assignment);

    // Lines 8–12: low-priority tasks.
    let lp_order: Vec<usize> = tasks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.priority == Priority::Low)
        .map(|(i, _)| i)
        .collect();
    place(&lp_order, &mut context_util, &mut assignment);

    assignment
}

/// Convenience view of a context assignment: the task ids placed on each
/// context.
pub fn assignment_by_context(
    tasks: &[TaskSpec],
    assignment: &[usize],
    n_contexts: usize,
) -> Vec<Vec<TaskId>> {
    let mut per_context = vec![Vec::new(); n_contexts.max(1)];
    for (idx, &ctx) in assignment.iter().enumerate() {
        per_context[ctx.min(n_contexts.saturating_sub(1))].push(tasks[idx].id);
    }
    per_context
}

#[cfg(test)]
mod tests {
    use super::*;
    use daris_models::DnnKind;
    use daris_workload::TaskSet;

    #[test]
    fn every_task_gets_a_context_in_range() {
        let ts = TaskSet::table2(DnnKind::ResNet18);
        let assignment = populate_contexts(ts.tasks(), 6, |_| 0.1);
        assert_eq!(assignment.len(), ts.len());
        assert!(assignment.iter().all(|&c| c < 6));
        let by_ctx = assignment_by_context(ts.tasks(), &assignment, 6);
        let total: usize = by_ctx.iter().map(Vec::len).sum();
        assert_eq!(total, ts.len());
    }

    #[test]
    fn load_is_balanced_for_uniform_tasks() {
        let ts = TaskSet::table2(DnnKind::ResNet18);
        let assignment = populate_contexts(ts.tasks(), 6, |_| 0.1);
        let mut counts = vec![0usize; 6];
        for &c in &assignment {
            counts[c] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max - min <= 1, "uniform tasks should spread evenly: {counts:?}");
    }

    #[test]
    fn hp_tasks_are_spread_before_lp_tasks() {
        let ts = TaskSet::table2(DnnKind::InceptionV3);
        // 9 HP tasks on 3 contexts must land 3 per context regardless of the
        // 18 LP tasks placed afterwards.
        let assignment = populate_contexts(ts.tasks(), 3, |_| 0.2);
        let mut hp_counts = vec![0usize; 3];
        for (i, t) in ts.tasks().iter().enumerate() {
            if t.priority == Priority::High {
                hp_counts[assignment[i]] += 1;
            }
        }
        assert_eq!(hp_counts, vec![3, 3, 3]);
    }

    #[test]
    fn heavier_tasks_balance_by_utilization_not_count() {
        let ts = TaskSet::mixed();
        // UNet tasks are ~4x heavier than ResNet18 tasks here.
        let util = |t: &TaskSpec| match t.model {
            DnnKind::UNet => 0.4,
            _ => 0.1,
        };
        let assignment = populate_contexts(ts.tasks(), 4, util);
        let mut per_ctx_util = vec![0.0; 4];
        for (i, t) in ts.tasks().iter().enumerate() {
            per_ctx_util[assignment[i]] += util(t);
        }
        let min = per_ctx_util.iter().cloned().fold(f64::MAX, f64::min);
        let max = per_ctx_util.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min < 0.45, "utilization imbalance too high: {per_ctx_util:?}");
    }

    #[test]
    fn single_context_degenerates_gracefully() {
        let ts = TaskSet::table2(DnnKind::UNet);
        let assignment = populate_contexts(ts.tasks(), 0, |_| 0.1);
        assert!(assignment.iter().all(|&c| c == 0));
    }
}
