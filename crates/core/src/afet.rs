//! Average Full-load Execution Time (AFET) profiling (Sec. IV-A1).
//!
//! Before any execution history exists, DARIS needs a pessimistic per-stage
//! execution-time estimate to seed the MRET estimator and to drive the
//! offline context population (Eq. 10). The paper measures the target task
//! while the remaining streams execute other tasks ("full load"). The
//! profiler below reproduces that procedure on the simulator: for every model
//! kind present in the task set, it runs a few inferences of that model on
//! one stream while every other stream of the partition continuously executes
//! the other kinds, and averages the per-stage execution times.

use std::collections::BTreeMap;

use daris_gpu::{Gpu, SimDuration, WorkItem};
use daris_models::{DnnKind, ModelProfile};
use daris_workload::TaskSet;

use crate::{CoreError, DarisConfig, Result};

/// Number of measured repetitions per target model.
const REPETITIONS: usize = 3;

/// Per-model-kind AFET estimates.
#[derive(Debug, Clone, Default)]
pub struct AfetProfiler {
    per_kind: BTreeMap<DnnKind, Vec<SimDuration>>,
}

impl AfetProfiler {
    /// Profiles every model kind appearing in `taskset` under the partition
    /// described by `config`, using `profiles` for kernel lowering.
    ///
    /// The background load cycles deterministically through the other model
    /// kinds of the task set (the paper uses random co-runners; a fixed
    /// rotation keeps runs reproducible and is equally "full load").
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (which indicate a configuration bug).
    pub fn profile(
        taskset: &TaskSet,
        config: &DarisConfig,
        profiles: &BTreeMap<DnnKind, ModelProfile>,
    ) -> Result<Self> {
        let kinds = taskset.model_kinds();
        let mut per_kind = BTreeMap::new();
        for &target in &kinds {
            let profile = profiles
                .get(&target)
                .ok_or_else(|| CoreError::InvalidConfig(format!("missing profile for {target}")))?;
            let stage_times = measure_full_load(target, profile, &kinds, config, profiles)?;
            per_kind.insert(target, stage_times);
        }
        Ok(AfetProfiler { per_kind })
    }

    /// Builds an AFET table directly from isolated latencies inflated by a
    /// fixed factor (a cheap fallback used in tests and when the caller does
    /// not want a profiling pass).
    pub fn from_isolated(profiles: &BTreeMap<DnnKind, ModelProfile>, inflation: f64) -> Self {
        let mut per_kind = BTreeMap::new();
        for (kind, profile) in profiles {
            let stages = (0..profile.stage_count())
                .map(|s| {
                    SimDuration::from_micros_f64(
                        profile.isolated_stage_latency_us(s, 1) * inflation,
                    )
                })
                .collect();
            per_kind.insert(*kind, stages);
        }
        AfetProfiler { per_kind }
    }

    /// Per-stage AFETs of a model kind (empty slice if never profiled).
    pub fn stage_afets(&self, kind: DnnKind) -> &[SimDuration] {
        self.per_kind.get(&kind).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whole-task AFET of a model kind.
    pub fn task_afet(&self, kind: DnnKind) -> SimDuration {
        self.stage_afets(kind).iter().fold(SimDuration::ZERO, |a, d| a + *d)
    }

    /// Model kinds covered by this profiler.
    pub fn kinds(&self) -> Vec<DnnKind> {
        let mut kinds: Vec<DnnKind> = self.per_kind.keys().copied().collect();
        kinds.sort();
        kinds
    }
}

/// Runs the full-load measurement for one target model.
fn measure_full_load(
    target: DnnKind,
    target_profile: &ModelProfile,
    all_kinds: &[DnnKind],
    config: &DarisConfig,
    profiles: &BTreeMap<DnnKind, ModelProfile>,
) -> Result<Vec<SimDuration>> {
    let partition = config.partition;
    let mut gpu = Gpu::new(config.gpu.clone());
    let quota = partition.sm_quota(config.gpu.sm_count);
    let mut streams = Vec::new();
    for _ in 0..partition.n_contexts {
        let ctx = gpu.add_context(quota)?;
        for _ in 0..partition.streams_per_context {
            streams.push(gpu.add_stream(ctx)?);
        }
    }
    let target_stream = streams[0];
    let background: Vec<_> = streams.iter().skip(1).copied().collect();

    // Keep the background streams saturated for the whole measurement: queue
    // enough whole-model jobs of the other kinds on each of them.
    let mut tag = 1_000_000u64;
    for (i, stream) in background.iter().enumerate() {
        let kind = if all_kinds.len() > 1 {
            // Rotate over the *other* kinds where possible.
            let others: Vec<_> = all_kinds.iter().copied().filter(|k| *k != target).collect();
            others[i % others.len()]
        } else {
            target
        };
        let profile = profiles.get(&kind).unwrap_or(target_profile);
        for _ in 0..(REPETITIONS + 2) {
            let item = WorkItem::new(tag)
                .with_kernels(profile.job_kernels(1))
                .with_h2d_bytes(profile.input_bytes(1))
                .with_d2h_bytes(profile.output_bytes(1));
            gpu.submit(*stream, item)?;
            tag += 1;
        }
    }

    // Measure the target's stages back-to-back, REPETITIONS times.
    let stage_count = target_profile.stage_count();
    let mut sums = vec![0.0f64; stage_count];
    for rep in 0..REPETITIONS {
        for (stage, sum) in sums.iter_mut().enumerate() {
            let stage_tag = (rep * stage_count + stage) as u64;
            let mut item =
                WorkItem::new(stage_tag).with_kernels(target_profile.stage_kernels(stage, 1));
            if stage == 0 {
                item = item.with_h2d_bytes(target_profile.input_bytes(1));
            }
            if stage + 1 == stage_count {
                item = item.with_d2h_bytes(target_profile.output_bytes(1));
            }
            gpu.submit(target_stream, item)?;
            // Run until this stage finishes (background work keeps flowing).
            while let Some(t) = gpu.next_event_time() {
                let completions = gpu.advance_to(t);
                let mut done = false;
                for c in completions {
                    if c.stream == target_stream && c.tag == stage_tag {
                        *sum += c.execution_time().as_micros_f64();
                        done = true;
                    }
                }
                if done {
                    break;
                }
            }
        }
    }
    Ok(sums
        .into_iter()
        // daris-lint: allow(D005, reason = "mean of per-repetition micros; REPETITIONS is a small exact-in-f64 constant and the result re-enters integer time via the rounding from_micros_f64 constructor")
        .map(|total| SimDuration::from_micros_f64(total / REPETITIONS as f64))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuPartition;
    use daris_workload::TaskSet;

    fn profiles_for(taskset: &TaskSet) -> BTreeMap<DnnKind, ModelProfile> {
        taskset.model_kinds().into_iter().map(|k| (k, ModelProfile::calibrated(k))).collect()
    }

    #[test]
    fn full_load_afet_exceeds_isolated_latency() {
        let taskset = TaskSet::mixed();
        let profiles = profiles_for(&taskset);
        let config = DarisConfig::new(GpuPartition::mps(4, 1.0));
        let afet = AfetProfiler::profile(&taskset, &config, &profiles).unwrap();
        for kind in taskset.model_kinds() {
            let isolated = profiles[&kind].isolated_latency_us(1);
            let full_load = afet.task_afet(kind).as_micros_f64();
            assert!(
                full_load > isolated,
                "{kind}: AFET {full_load:.0}us should exceed isolated {isolated:.0}us"
            );
            assert_eq!(afet.stage_afets(kind).len(), profiles[&kind].stage_count());
        }
        assert_eq!(afet.kinds().len(), 3);
    }

    #[test]
    fn from_isolated_inflates_uniformly() {
        let taskset = TaskSet::table2(DnnKind::UNet);
        let profiles = profiles_for(&taskset);
        let afet = AfetProfiler::from_isolated(&profiles, 2.0);
        let isolated_kernels: f64 = (0..profiles[&DnnKind::UNet].stage_count())
            .map(|s| profiles[&DnnKind::UNet].isolated_stage_latency_us(s, 1))
            .sum();
        let total = afet.task_afet(DnnKind::UNet).as_micros_f64();
        assert!((total - 2.0 * isolated_kernels).abs() / total < 0.01);
    }

    #[test]
    fn unknown_kind_has_empty_afet() {
        let afet = AfetProfiler::default();
        assert!(afet.stage_afets(DnnKind::ResNet18).is_empty());
        assert_eq!(afet.task_afet(DnnKind::ResNet18), SimDuration::ZERO);
    }
}
