//! The DARIS online scheduler and its simulation runtime.
//!
//! [`DarisScheduler`] owns a simulated GPU configured according to the chosen
//! [`GpuPartition`](crate::GpuPartition), plus all scheduler state (MRET
//! estimator, per-context utilization, ready-stage queues, active jobs). Its
//! [`run_until`](DarisScheduler::run_until) method drives the event loop:
//! job releases from the workload's arrival plan, stage completions from the
//! GPU, admission/migration decisions, and stage dispatch.

use std::collections::{BTreeMap, BTreeSet};

use daris_gpu::{Gpu, SimDuration, SimTime, StreamId, TraceEventKind, WorkItem};
use daris_metrics::{ExperimentSummary, MetricsCollector};
use daris_models::{DnnKind, ModelProfile};
use daris_telemetry::{AdmissionTest, EventKind, SinkHandle, TelemetryEvent};
use daris_workload::{
    ArrivalSource, Job, JobId, LoadDetector, Priority, TaskId, TaskSet, TaskSpec, Trace,
    TracePlayer,
};

use crate::{
    populate_contexts, virtual_deadlines, AfetProfiler, ContextLoad, CoreError, DarisConfig,
    MretEstimator, ReadyStage, Result, StageQueue,
};

/// Inflation applied to isolated latencies to approximate the full-load AFET
/// (Eq. 10) when no profiling pass is available: pessimistic enough to keep
/// the first admission honest, corrected by MRET within a window. Shared by
/// guest-task seeding here and by `daris-cluster`'s placement utilization
/// estimates, so the offline packing and the online admission currency agree.
pub const AFET_INFLATION: f64 = 1.5;

/// One execution-time observation paired with the MRET prediction that was in
/// force when the stage was dispatched (the data behind Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MretSample {
    /// Completion time of the stage.
    pub at: SimTime,
    /// Task the stage belongs to.
    pub task: TaskId,
    /// Stage index.
    pub stage: usize,
    /// Measured execution time.
    pub actual: SimDuration,
    /// MRET prediction prior to this observation.
    pub predicted: SimDuration,
}

/// Result of one scheduler run.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Aggregated throughput / deadline-miss / response-time metrics.
    pub summary: ExperimentSummary,
    /// MRET trace (empty unless [`DarisConfig::record_mret_trace`] is set).
    pub mret_trace: Vec<MretSample>,
    /// The configuration label, e.g. `"MPS 6x1 OS6"`.
    pub config_label: String,
}

#[derive(Debug, Clone)]
struct ActiveJob {
    job: Job,
    context: usize,
    next_stage: usize,
    stage_count: usize,
    /// Absolute virtual deadline per stage (Eq. 8 applied to the release).
    virtual_deadlines: Vec<SimTime>,
    predecessor_missed: bool,
}

/// The DARIS scheduler bound to a simulated GPU.
#[derive(Debug)]
pub struct DarisScheduler {
    config: DarisConfig,
    taskset: TaskSet,
    profiles: BTreeMap<DnnKind, ModelProfile>,
    gpu: Gpu,
    /// Streams grouped by context index.
    streams: Vec<Vec<StreamId>>,
    stream_busy: BTreeMap<StreamId, bool>,
    loads: Vec<ContextLoad>,
    queues: Vec<StageQueue>,
    mret: MretEstimator,
    /// Task index → context index (HP fixed; LP updated on migration).
    assignment: Vec<usize>,
    active: BTreeMap<JobId, ActiveJob>,
    /// Active jobs indexed by context, in deterministic (job id) order, so
    /// the admission path (`predicted_finish_us`) walks only the jobs of one
    /// context instead of scanning every active job on the device.
    active_of: Vec<BTreeSet<JobId>>,
    tag_map: BTreeMap<u64, (JobId, usize)>,
    next_tag: u64,
    metrics: MetricsCollector,
    mret_trace: Vec<MretSample>,
    /// Telemetry sink (from [`DarisConfig::sink`]). `None` keeps the hot
    /// paths event-free: every emission site guards on this before even
    /// constructing the event.
    sink: Option<SinkHandle>,
    /// Burst detector driving the adaptive Overload/HPA admission mode
    /// (from [`DarisConfig::adaptive_hpa`]). Observed exclusively from the
    /// release path, so its state is a pure function of the release
    /// sequence — never of how a driver splits spans or rounds.
    detector: Option<LoadDetector>,
    now: SimTime,
}

impl DarisScheduler {
    /// Builds a scheduler for `taskset` under `config`: creates the GPU
    /// partition, loads model weights, runs the AFET profiling pass and the
    /// offline context population (Algorithm 1).
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid configuration, an empty task set, or
    /// if the task set's models do not fit in device memory.
    pub fn new(taskset: &TaskSet, config: DarisConfig) -> Result<Self> {
        config.validate()?;
        if taskset.is_empty() {
            return Err(CoreError::EmptyTaskSet);
        }
        let profiles: BTreeMap<DnnKind, ModelProfile> = taskset
            .model_kinds()
            .into_iter()
            .map(|k| {
                (k, ModelProfile::calibrated_for(k, Default::default(), config.calibration_spec()))
            })
            .collect();

        // Spatial partition: Nc contexts × Ns streams with the Eq. 9 quota.
        let mut gpu = Gpu::new(config.gpu.clone());
        if config.sink.is_some() {
            // Device-level tracing is only worth paying for when someone is
            // listening; the trace is drained into the sink on every advance.
            gpu.enable_tracing();
        }
        let quota = config.partition.sm_quota(config.gpu.sm_count);
        let mut streams = Vec::new();
        for _ in 0..config.partition.n_contexts {
            let ctx = gpu.add_context(quota)?;
            let mut ctx_streams = Vec::new();
            for _ in 0..config.partition.streams_per_context {
                ctx_streams.push(gpu.add_stream(ctx)?);
            }
            streams.push(ctx_streams);
        }
        let stream_busy = streams.iter().flatten().map(|s| (*s, false)).collect();

        // Every model stays resident on the device for the whole run.
        for (kind, profile) in &profiles {
            gpu.memory_mut().alloc(format!("{kind}.weights"), profile.weight_bytes())?;
        }

        // AFET profiling pass (Sec. IV-A1) seeds MRET and drives Algorithm 1.
        let afet = AfetProfiler::profile(taskset, &config, &profiles)?;
        let mut mret = MretEstimator::new(config.window_size);
        for task in taskset.tasks() {
            let seeds = effective_stage_seeds(&afet, task, &config);
            mret.seed(task.id, seeds);
        }

        let n_contexts = config.partition.n_contexts as usize;
        let assignment = populate_contexts(taskset.tasks(), n_contexts, |t| {
            afet.task_afet(t.model).as_micros_f64() / t.period.as_micros_f64()
        });
        let mut loads: Vec<ContextLoad> = (0..n_contexts)
            .map(|_| ContextLoad::new(config.partition.streams_per_context))
            .collect();
        for (idx, task) in taskset.tasks().iter().enumerate() {
            let util = mret.task_utilization(task.id, task.period);
            loads[assignment[idx]].assign_task(task.id, task.priority, util);
        }
        let queues = (0..n_contexts).map(|_| StageQueue::new(config.ablation)).collect();

        let sink = config.sink.clone();
        let detector = config.adaptive_hpa.map(|det| LoadDetector::new(det, taskset.offered_jps()));
        Ok(DarisScheduler {
            config,
            taskset: taskset.clone(),
            profiles,
            gpu,
            streams,
            stream_busy,
            loads,
            queues,
            mret,
            assignment,
            active: BTreeMap::new(),
            active_of: (0..n_contexts).map(|_| BTreeSet::new()).collect(),
            tag_map: BTreeMap::new(),
            next_tag: 0,
            metrics: MetricsCollector::new(),
            mret_trace: Vec::new(),
            sink,
            detector,
            now: SimTime::ZERO,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &DarisConfig {
        &self.config
    }

    /// The task set this scheduler was built over, including any adopted
    /// guest tasks.
    pub fn taskset(&self) -> &TaskSet {
        &self.taskset
    }

    /// Read access to the underlying simulated GPU (inspection in tests and
    /// examples).
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Read access to the MRET estimator.
    pub fn mret(&self) -> &MretEstimator {
        &self.mret
    }

    /// Simulated GPU events processed so far (see
    /// [`Gpu::events_processed`](daris_gpu::Gpu::events_processed)).
    pub fn events_processed(&self) -> u64 {
        self.gpu.events_processed()
    }

    /// The current offline/online context assignment, indexed by task.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Runs the online phase until `horizon` and returns the outcome.
    ///
    /// Job releases stop at the horizon; jobs still in flight at the horizon
    /// count as deadline misses if their deadline has already passed (the
    /// same accounting the paper's DMR uses).
    ///
    /// *Legacy shim*: new code writes
    /// `scheduler.run(&RunSpec::periodic().until(horizon))` via the
    /// [`Scheduler`](crate::Scheduler) trait — same loop, same result.
    pub fn run_until(&mut self, horizon: SimTime) -> ExperimentOutcome {
        crate::Scheduler::run(self, &crate::RunSpec::periodic().until(horizon))
            .expect("a periodic spec with a horizon cannot fail")
    }

    /// Runs the online phase until `horizon` pulling releases from an
    /// arbitrary [`ArrivalSource`] — a jittered stream, a seeded generator,
    /// a replayed trace recording. Rejected releases are charged here (the
    /// standalone single-device accounting); a cluster dispatcher drives
    /// [`run_span`](Self::run_span) directly instead so it can retry them on
    /// other devices.
    ///
    /// The source's jobs must belong to this scheduler's task set (same task
    /// ids); the convenient way to guarantee that is to build the source
    /// over the same [`TaskSet`] the scheduler was constructed with.
    ///
    /// *Legacy shim*: prefer [`RunSpec`](crate::RunSpec) +
    /// [`Scheduler::run`](crate::Scheduler::run) for the standard workload
    /// shapes; this remains for custom [`ArrivalSource`] implementations.
    pub fn run_with_source(
        &mut self,
        arrivals: &mut impl ArrivalSource,
        horizon: SimTime,
    ) -> ExperimentOutcome {
        let mut rejected = Vec::new();
        self.run_span(arrivals, horizon, &mut rejected);
        for job in &rejected {
            self.reject_job(job);
        }
        self.finish(horizon)
    }

    /// Replays a recorded [`Trace`] against this scheduler's task set, to
    /// exactly the trace's horizon. Replaying a trace recorded from a live
    /// run reproduces that run byte for byte (same completions, same
    /// metrics) — the round-trip guarantee the differential test suite pins.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Trace`] when the trace refers to tasks this
    /// scheduler's set does not contain.
    ///
    /// *Legacy shim*: new code writes
    /// `scheduler.run(&RunSpec::replay(trace))` via the
    /// [`Scheduler`](crate::Scheduler) trait.
    pub fn run_trace(&mut self, trace: &Trace) -> Result<ExperimentOutcome> {
        let taskset = self.taskset.clone();
        let mut player = TracePlayer::new(&taskset, trace).map_err(CoreError::Trace)?;
        Ok(self.run_with_source(&mut player, trace.horizon()))
    }

    /// Runs the device-local event loop — stage completions, releases from
    /// `arrivals` (any [`ArrivalSource`]: periodic stream, generator, trace
    /// replay), and stage dispatch, in exact time order — up to (but not
    /// including) `until`. Releases the admission test rejects are pushed to
    /// `rejected` instead of being recorded, so an external driver (the
    /// cluster dispatcher) can retry them on other devices at the next
    /// synchronization round; a standalone run charges them via
    /// [`reject_job`](Self::reject_job).
    ///
    /// Everything strictly before `until` is handled at its exact simulated
    /// time; events at or after `until` stay pending (they are processed by a
    /// later span or by [`finish`](Self::finish)). Driving consecutive spans
    /// is therefore byte-identical to one big span — the span boundary only
    /// bounds how far this call simulates. This is the unit of work the
    /// cluster dispatcher fans out to worker threads: the loop touches
    /// nothing but this scheduler's own state.
    pub fn run_span(
        &mut self,
        arrivals: &mut impl ArrivalSource,
        until: SimTime,
        rejected: &mut Vec<Job>,
    ) {
        loop {
            let next_release = arrivals.next_release().filter(|r| *r < until);
            let gpu_next = self.next_event_time().filter(|t| *t < until);
            let step_to = match (next_release, gpu_next) {
                (Some(r), Some(g)) => r.min(g),
                (Some(r), None) => r,
                (None, Some(g)) => g,
                (None, None) => break,
            };
            self.advance_to(step_to);
            while arrivals.next_release().map(|r| r <= self.now).unwrap_or(false) {
                let job = arrivals.next_job().expect("a pending release was peeked");
                if !self.try_release_job(job) {
                    rejected.push(job);
                }
            }
            self.dispatch();
        }
    }

    // ----- external driving (cluster dispatcher) ----------------------------
    //
    // `run_until` is built entirely out of the public methods below, so an
    // external event loop (e.g. `daris-cluster`'s dispatcher, which steps
    // several schedulers in lockstep) reproduces the exact single-device
    // behaviour by issuing the same call sequence.

    /// Earliest pending simulator event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.gpu.next_event_time()
    }

    /// The scheduler's current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the simulated GPU to `target` and processes every stage
    /// completion on the way (without dispatching queued stages; call
    /// [`dispatch_ready`](Self::dispatch_ready) afterwards).
    pub fn advance_to(&mut self, target: SimTime) {
        let completions = self.gpu.advance_to(target);
        self.now = target;
        if self.sink.is_some() {
            self.forward_gpu_trace();
        }
        for completion in completions {
            self.handle_completion(
                completion.tag,
                completion.finished_at,
                completion.execution_time(),
                completion.stream,
            );
        }
    }

    /// Dispatches ready stages onto idle streams, most urgent first.
    pub fn dispatch_ready(&mut self) {
        self.dispatch();
    }

    /// Final accounting: advances to `horizon` and produces the outcome.
    pub fn finish(&mut self, horizon: SimTime) -> ExperimentOutcome {
        self.advance_to(horizon);
        let summary =
            self.metrics.summarize(horizon).with_gpu_utilization(self.gpu.average_utilization());
        ExperimentOutcome {
            summary,
            mret_trace: std::mem::take(&mut self.mret_trace),
            config_label: format!(
                "{} {}",
                self.config.partition.policy,
                self.config.partition.label()
            ),
        }
    }

    /// The admission test (Eq. 11–12) exposed for external callers: whether a
    /// release of `task` (a task of *this* scheduler's set) at priority
    /// `priority` would currently be admitted on some context. High-priority
    /// jobs are only ever tested when the `Overload+HPA` mode is enabled.
    pub fn would_admit(&self, task: TaskId, priority: Priority) -> bool {
        let Some(spec) = self.taskset.task(task) else { return false };
        match priority {
            Priority::High if !self.hp_admission_active() => true,
            _ => {
                let util = self.mret.task_utilization(task, spec.period);
                let home = self.assignment[task.index()];
                self.admit(spec, priority, util, home).is_some()
            }
        }
    }

    /// Registers a *guest* task — one that was placed on another device but
    /// is being admitted or migrated here by a cluster dispatcher — and
    /// returns its local id. Loads the model's weights if the kind is new
    /// (which can fail on device memory; the residency is kept for future
    /// retries of the same kind), seeds MRET from inflated isolated
    /// latencies (a cheap stand-in for the AFET pass, corrected by MRET
    /// within a few jobs), and homes the task on the least-loaded context.
    ///
    /// Unlike tasks placed here offline, a guest charges **no assigned
    /// utilization**: it only pays the active-job charge while its jobs run,
    /// so adopting a task that then never releases here (the dispatcher
    /// retries it elsewhere) does not shrink the device's Eq. 11 LP
    /// headroom.
    ///
    /// # Errors
    ///
    /// Returns an error if the model's weights do not fit in device memory.
    pub fn adopt_task(&mut self, task: &TaskSpec) -> Result<TaskId> {
        if !self.profiles.contains_key(&task.model) {
            let profile = ModelProfile::calibrated_for(
                task.model,
                Default::default(),
                self.config.calibration_spec(),
            );
            self.gpu
                .memory_mut()
                .alloc(format!("{}.weights", task.model), profile.weight_bytes())?;
            self.profiles.insert(task.model, profile);
        }
        let local = self.taskset.adopt(task.clone());
        let spec = self.taskset.task(local).expect("just adopted").clone();
        let profiles: BTreeMap<DnnKind, ModelProfile> =
            [(spec.model, self.profiles[&spec.model].clone())].into_iter().collect();
        let afet = AfetProfiler::from_isolated(&profiles, AFET_INFLATION);
        let seeds = effective_stage_seeds(&afet, &spec, &self.config);
        self.mret.seed(local, seeds);
        let ctx = (0..self.loads.len())
            .min_by(|a, b| self.loads[*a].total_util().total_cmp(&self.loads[*b].total_util()))
            .expect("at least one context");
        self.assignment.push(ctx);
        Ok(local)
    }

    /// Releases `job` (of a task of this scheduler's set), applying the
    /// admission test. Returns `false` — recording *nothing* — when the job
    /// is rejected, so a cluster dispatcher can retry it on another device
    /// before charging the rejection somewhere via
    /// [`reject_job`](Self::reject_job).
    pub fn try_release_job(&mut self, job: Job) -> bool {
        // Feed the burst detector *before* deciding admission, so the
        // release that tips a window over the threshold is already treated
        // under the new mode. The detector sees every release — admitted or
        // not — making its state independent of admission outcomes.
        let flipped = self.detector.as_mut().is_some_and(|det| det.observe(job.release));
        if flipped {
            let det = self.detector.as_ref().expect("a transition implies a detector");
            let (hpa_enabled, load_ratio) = (det.is_burst(), det.load_ratio());
            self.emit(|| EventKind::AdmissionModeChanged { hpa_enabled, load_ratio });
        }
        let task = self
            .taskset
            .task(job.id.task)
            .expect("released job refers to a task of this set")
            .clone();
        let util = self.mret.task_utilization(task.id, task.period);
        let home = self.assignment[task.id.index()];
        self.loads[home].update_task_util(task.id, util);

        let needs_admission = match job.priority {
            Priority::Low => true,
            Priority::High => self.hp_admission_active(),
        };
        let context = if needs_admission {
            match self.admit(&task, job.priority, util, home) {
                Some(ctx) => ctx,
                None => {
                    self.emit(|| EventKind::AdmissionRejected {
                        task: job.id.task,
                        release_index: job.id.release_index,
                        priority: job.priority,
                        test: match job.priority {
                            Priority::Low => AdmissionTest::LpUtilization,
                            Priority::High => AdmissionTest::HpUtilization,
                        },
                    });
                    return false;
                }
            }
        } else {
            home
        };
        self.metrics.record_release(&job);
        let migrated = context != home && job.priority == Priority::Low;
        self.emit(|| EventKind::AdmissionAccepted {
            task: job.id.task,
            release_index: job.id.release_index,
            priority: job.priority,
            context: context as u32,
            migrated,
        });
        if migrated {
            // Zero-delay migration: the task's home context moves with it.
            self.loads[home].unassign_task(task.id);
            self.loads[context].assign_task(task.id, task.priority, util);
            self.assignment[task.id.index()] = context;
        }
        self.loads[context].activate_job(job.id, job.priority, util);

        let stage_mrets = self.mret.stage_mrets(task.id);
        let relative = virtual_deadlines(&stage_mrets, task.relative_deadline);
        let virtual_deadlines: Vec<SimTime> = relative.iter().map(|d| job.release + *d).collect();
        let stage_count = stage_mrets.len().max(1);
        let active = ActiveJob {
            job,
            context,
            next_stage: 0,
            stage_count,
            virtual_deadlines,
            predecessor_missed: false,
        };
        let ready = self.ready_stage(&active);
        self.queues[context].push(ready);
        self.active.insert(job.id, active);
        self.active_of[context].insert(job.id);
        true
    }

    /// Records `job` as rejected here. A cluster dispatcher calls this on the
    /// job's home device after every retry device also refused it, so that
    /// each job is accounted by exactly one device.
    pub fn reject_job(&mut self, job: &Job) {
        self.metrics.record_rejection(job);
        self.emit(|| EventKind::JobRejected {
            task: job.id.task,
            release_index: job.id.release_index,
            priority: job.priority,
        });
    }

    /// Withdraws an admitted job whose *first* stage is still queued (nothing
    /// dispatched yet), removing every trace of it — queue entry, active
    /// state, load charge and metrics — and returns the job so it can be
    /// re-released on another device. Returns `None` once any stage has been
    /// dispatched: partially executed jobs never migrate across devices.
    pub fn withdraw_queued_job(&mut self, job: JobId) -> Option<Job> {
        let active = self.active.get(&job)?;
        if active.next_stage != 0 {
            return None;
        }
        let context = active.context;
        if !self.queues[context].remove(job) {
            // Stage 0 is already on a stream.
            return None;
        }
        let active = self.active.remove(&job).expect("checked above");
        self.active_of[context].remove(&job);
        self.loads[context].deactivate_job(job);
        self.metrics.forget(job);
        Some(active.job)
    }

    /// Jobs eligible for cross-device migration — admitted, first stage still
    /// queued — least urgent (latest EDF deadline) first.
    pub fn migratable_jobs(&self) -> Vec<JobId> {
        let mut jobs: Vec<(SimTime, JobId)> = self
            .queues
            .iter()
            .flat_map(StageQueue::iter)
            .filter(|ready| ready.stage == 0)
            .map(|ready| (ready.edf_deadline, ready.job))
            .collect();
        jobs.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        jobs.into_iter().map(|(_, job)| job).collect()
    }

    /// Total number of queued (undispatched) ready stages across contexts.
    pub fn queue_backlog(&self) -> usize {
        self.queues.iter().map(StageQueue::len).sum()
    }

    /// Number of currently idle streams across contexts.
    pub fn idle_stream_count(&self) -> usize {
        self.stream_busy.values().filter(|busy| !**busy).count()
    }

    /// Fraction of stream capacity charged by currently active jobs, the
    /// load signal a cluster dispatcher uses to rank retry candidates.
    pub fn active_load_fraction(&self) -> f64 {
        let capacity: f64 = self.loads.iter().map(ContextLoad::capacity).sum();
        if capacity <= 0.0 {
            return 0.0;
        }
        let active: f64 = self
            .loads
            .iter()
            .map(|l| l.active_util(Priority::High) + l.active_util(Priority::Low))
            .sum();
        active / capacity
    }

    /// Whether high-priority releases are currently subject to the
    /// admission test: statically via [`DarisConfig::hp_admission`], or
    /// dynamically while the adaptive detector signals a burst in progress.
    fn hp_admission_active(&self) -> bool {
        self.config.hp_admission || self.detector.as_ref().is_some_and(LoadDetector::is_burst)
    }

    /// The adaptive-HPA burst detector, when
    /// [`DarisConfig::adaptive_hpa`] is configured.
    pub fn load_detector(&self) -> Option<&LoadDetector> {
        self.detector.as_ref()
    }

    // ----- telemetry --------------------------------------------------------

    /// Emits a scheduler-layer event at the current simulated time. The
    /// closure runs only when a sink is attached, so the disabled path costs
    /// one `Option` check and never allocates.
    fn emit(&self, kind: impl FnOnce() -> EventKind) {
        self.emit_at(self.now, kind);
    }

    /// Emits an event stamped with an explicit simulated time (completion
    /// handlers stamp the GPU's `finished_at`, not the span target).
    fn emit_at(&self, at: SimTime, kind: impl FnOnce() -> EventKind) {
        if let Some(sink) = &self.sink {
            sink.record(TelemetryEvent { at, device: 0, kind: kind() });
        }
    }

    /// Drains the GPU's execution trace into the sink, translating device
    /// events into telemetry events. Item submissions are skipped (the
    /// scheduler's own `StageDispatched` already covers them with richer
    /// context); everything else maps one-to-one.
    fn forward_gpu_trace(&mut self) {
        let Some(sink) = self.sink.clone() else { return };
        for ev in self.gpu.trace_mut().take_events() {
            let (tag, stream, context) =
                (ev.tag, ev.stream.index() as u32, ev.context.index() as u32);
            let kind = match ev.kind {
                TraceEventKind::ItemSubmitted => continue,
                TraceEventKind::CopyInStarted => EventKind::CopyInStarted { tag, stream, context },
                TraceEventKind::CopyOutStarted => {
                    EventKind::CopyOutStarted { tag, stream, context }
                }
                TraceEventKind::ExecutionStarted => EventKind::ItemStarted { tag, stream, context },
                TraceEventKind::KernelCompleted => {
                    EventKind::KernelFinished { tag, stream, context, label: ev.label }
                }
                TraceEventKind::ItemCompleted => EventKind::ItemFinished { tag, stream, context },
            };
            sink.record(TelemetryEvent { at: ev.at, device: 0, kind });
        }
        for replan in self.gpu.trace_mut().take_replans() {
            sink.record(TelemetryEvent {
                at: replan.at,
                device: 0,
                kind: EventKind::Replan {
                    computing: replan.computing,
                    utilization: replan.utilization,
                },
            });
        }
    }

    // ----- event handlers ---------------------------------------------------

    /// Admission test (Eq. 11–12) with migration: returns the context to run
    /// in, or `None` if every context rejects the job.
    fn admit(&self, task: &TaskSpec, priority: Priority, util: f64, home: usize) -> Option<usize> {
        let admits = |ctx: usize| -> bool {
            match priority {
                Priority::Low => self.loads[ctx].admits_lp(util),
                Priority::High => self.loads[ctx].admits_hp(util),
            }
        };
        if admits(home) {
            return Some(home);
        }
        // Migration candidates: every other context that passes the test;
        // pick the one with the earliest predicted finish time.
        let mut best: Option<(usize, f64)> = None;
        for ctx in 0..self.loads.len() {
            if ctx == home || !admits(ctx) {
                continue;
            }
            let finish =
                self.predicted_finish_us(ctx) + self.mret.task_mret(task.id).as_micros_f64();
            if best.map(|(_, f)| finish < f).unwrap_or(true) {
                best = Some((ctx, finish));
            }
        }
        best.map(|(ctx, _)| ctx)
    }

    /// Predicted time (µs from now) for context `ctx` to drain its currently
    /// active jobs, assuming its streams share the backlog evenly. Walks the
    /// per-context active-job index (deterministic job-id order) instead of
    /// scanning every active job on the device.
    fn predicted_finish_us(&self, ctx: usize) -> f64 {
        let backlog: f64 = self.active_of[ctx]
            .iter()
            .map(|id| {
                let a = &self.active[id];
                self.mret.remaining_mret(a.job.id.task, a.next_stage).as_micros_f64()
            })
            .sum();
        backlog / f64::from(self.config.partition.streams_per_context.max(1))
    }

    fn ready_stage(&self, active: &ActiveJob) -> ReadyStage {
        let stage = active.next_stage;
        let is_last = stage + 1 == active.stage_count;
        let edf_deadline = if is_last {
            active.job.absolute_deadline
        } else {
            active.virtual_deadlines.get(stage).copied().unwrap_or(active.job.absolute_deadline)
        };
        ReadyStage {
            job: active.job.id,
            stage,
            priority: active.job.priority,
            is_last_stage: is_last,
            predecessor_missed: active.predecessor_missed,
            edf_deadline,
        }
    }

    fn handle_completion(
        &mut self,
        tag: u64,
        finished_at: SimTime,
        execution: SimDuration,
        stream: StreamId,
    ) {
        let Some((job_id, stage)) = self.tag_map.remove(&tag) else { return };
        self.stream_busy.insert(stream, false);
        let task = job_id.task;
        if self.config.record_mret_trace {
            let predicted = self.mret.stage_mret(task, stage);
            self.mret_trace.push(MretSample {
                at: finished_at,
                task,
                stage,
                actual: execution,
                predicted,
            });
        }
        self.mret.record(task, stage, execution);

        let Some(mut active) = self.active.remove(&job_id) else { return };
        let missed_virtual =
            active.virtual_deadlines.get(stage).map(|d| finished_at > *d).unwrap_or(false);
        if stage + 1 < active.stage_count {
            self.emit_at(finished_at, || EventKind::StageBoundary {
                task: job_id.task,
                release_index: job_id.release_index,
                completed_stage: stage as u32,
                missed_virtual,
            });
            active.next_stage = stage + 1;
            active.predecessor_missed = missed_virtual;
            let ready = self.ready_stage(&active);
            self.queues[active.context].push(ready);
            self.active.insert(job_id, active);
        } else {
            let missed = finished_at > active.job.absolute_deadline;
            self.emit_at(finished_at, || EventKind::JobCompleted {
                task: job_id.task,
                release_index: job_id.release_index,
                priority: active.job.priority,
                missed,
                response: finished_at.duration_since(active.job.release),
            });
            if missed {
                self.emit_at(finished_at, || EventKind::DeadlineMissed {
                    task: job_id.task,
                    release_index: job_id.release_index,
                    priority: active.job.priority,
                });
            }
            self.metrics.record_completion(&active.job, finished_at);
            self.loads[active.context].deactivate_job(job_id);
            self.active_of[active.context].remove(&job_id);
        }
    }

    /// Dispatches ready stages onto idle streams, most urgent first.
    fn dispatch(&mut self) {
        for ctx in 0..self.queues.len() {
            loop {
                if self.queues[ctx].is_empty() {
                    break;
                }
                let Some(stream) = self.idle_stream(ctx) else { break };
                let Some(ready) = self.queues[ctx].pop() else { break };
                if let Err(_e) = self.submit_stage(stream, &ready) {
                    // Submission can only fail on internal inconsistencies;
                    // drop the stage rather than wedging the whole run.
                    debug_assert!(false, "stage submission failed");
                }
            }
        }
    }

    fn idle_stream(&self, ctx: usize) -> Option<StreamId> {
        self.streams[ctx]
            .iter()
            .copied()
            .find(|s| !self.stream_busy.get(s).copied().unwrap_or(false))
    }

    fn submit_stage(&mut self, stream: StreamId, ready: &ReadyStage) -> Result<()> {
        let Some(active) = self.active.get(&ready.job) else { return Ok(()) };
        let job = active.job;
        let (stage_count, dispatch_context) = (active.stage_count, active.context);
        let profile = self.profiles.get(&job.model).ok_or_else(|| {
            CoreError::InvalidConfig(format!("missing profile for {}", job.model))
        })?;
        let staging = self.config.ablation.staging;
        let kernels = if staging {
            profile.stage_kernels(ready.stage, job.batch_size)
        } else {
            profile.job_kernels(job.batch_size)
        };
        let is_first = ready.stage == 0;
        let is_last = ready.stage + 1 == active.stage_count;
        let tag = self.next_tag;
        self.next_tag += 1;
        let mut item = WorkItem::new(tag).with_kernels(kernels);
        if is_first {
            item = item.with_h2d_bytes(profile.input_bytes(job.batch_size));
        }
        if is_last {
            item = item.with_d2h_bytes(profile.output_bytes(job.batch_size));
        }
        self.gpu.submit(stream, item)?;
        self.stream_busy.insert(stream, true);
        self.tag_map.insert(tag, (ready.job, ready.stage));
        self.emit(|| EventKind::StageDispatched {
            task: ready.job.task,
            release_index: ready.job.release_index,
            stage: ready.stage as u32,
            stage_count: stage_count as u32,
            context: dispatch_context as u32,
            stream: stream.index() as u32,
            tag,
        });
        Ok(())
    }
}

/// The [`Scheduler`](crate::Scheduler) trait impl: pure delegation to the
/// inherent methods above, so trait-driven and direct callers execute the
/// *identical* code path — the property the cross-crate differential suite
/// pins byte-for-byte. `run_span` delegates to the inherent loop rather than
/// taking the trait's (textually identical) default so there is exactly one
/// loop body in this crate.
impl crate::Scheduler for DarisScheduler {
    fn now(&self) -> SimTime {
        DarisScheduler::now(self)
    }

    fn next_event_time(&self) -> Option<SimTime> {
        DarisScheduler::next_event_time(self)
    }

    fn advance_to(&mut self, target: SimTime) {
        DarisScheduler::advance_to(self, target);
    }

    fn dispatch_ready(&mut self) {
        DarisScheduler::dispatch_ready(self);
    }

    fn try_release_job(&mut self, job: Job) -> bool {
        DarisScheduler::try_release_job(self, job)
    }

    fn reject_job(&mut self, job: &Job) {
        DarisScheduler::reject_job(self, job);
    }

    fn would_admit(&self, task: TaskId, priority: Priority) -> bool {
        DarisScheduler::would_admit(self, task, priority)
    }

    fn adopt_task(&mut self, task: &TaskSpec) -> Result<TaskId> {
        DarisScheduler::adopt_task(self, task)
    }

    fn withdraw_queued_job(&mut self, job: JobId) -> Option<Job> {
        DarisScheduler::withdraw_queued_job(self, job)
    }

    fn migratable_jobs(&self) -> Vec<JobId> {
        DarisScheduler::migratable_jobs(self)
    }

    fn queue_backlog(&self) -> usize {
        DarisScheduler::queue_backlog(self)
    }

    fn idle_stream_count(&self) -> usize {
        DarisScheduler::idle_stream_count(self)
    }

    fn active_load_fraction(&self) -> f64 {
        DarisScheduler::active_load_fraction(self)
    }

    fn events_processed(&self) -> u64 {
        DarisScheduler::events_processed(self)
    }

    fn taskset(&self) -> &TaskSet {
        DarisScheduler::taskset(self)
    }

    fn finish(&mut self, horizon: SimTime) -> ExperimentOutcome {
        DarisScheduler::finish(self, horizon)
    }

    fn run_span(
        &mut self,
        mut arrivals: &mut dyn ArrivalSource,
        until: SimTime,
        rejected: &mut Vec<Job>,
    ) {
        DarisScheduler::run_span(self, &mut arrivals, until, rejected);
    }
}

/// Per-stage MRET seeds for a task, respecting the staging ablation (a job
/// dispatched as a whole unit has a single "stage" whose seed is the whole
/// AFET).
fn effective_stage_seeds(
    afet: &AfetProfiler,
    task: &TaskSpec,
    config: &DarisConfig,
) -> Vec<SimDuration> {
    let stages = afet.stage_afets(task.model);
    if config.ablation.staging {
        stages.to_vec()
    } else {
        vec![stages.iter().fold(SimDuration::ZERO, |a, d| a + *d)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuPartition;
    use daris_workload::{ArrivalPlan, ArrivalStream, ReleaseJitter};

    fn short_run(config: DarisConfig, taskset: &TaskSet, millis: u64) -> ExperimentOutcome {
        let mut scheduler = DarisScheduler::new(taskset, config).expect("scheduler builds");
        scheduler.run_until(SimTime::from_millis(millis))
    }

    #[test]
    fn unet_taskset_completes_jobs_under_mps() {
        let taskset = TaskSet::table2(DnnKind::UNet);
        let outcome = short_run(DarisConfig::new(GpuPartition::mps(6, 6.0)), &taskset, 250);
        assert!(outcome.summary.total.completed > 20, "{:?}", outcome.summary.total);
        assert!(outcome.summary.throughput_jps > 100.0);
        // HP jobs are never rejected without Overload+HPA.
        assert_eq!(outcome.summary.high.rejected, 0);
        assert!(outcome.summary.gpu_utilization.unwrap() > 0.2);
        assert!(outcome.config_label.contains("MPS"));
    }

    #[test]
    fn str_policy_uses_a_single_context() {
        let taskset = TaskSet::table2(DnnKind::UNet);
        let config = DarisConfig::new(GpuPartition::str_streams(4));
        let scheduler = DarisScheduler::new(&taskset, config).unwrap();
        assert_eq!(scheduler.gpu().context_count(), 1);
        assert_eq!(scheduler.gpu().stream_count(), 4);
        assert!(scheduler.assignment().iter().all(|&c| c == 0));
    }

    #[test]
    fn high_priority_misses_are_rare_and_lp_misses_bounded() {
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let outcome = short_run(DarisConfig::new(GpuPartition::mps(6, 6.0)), &taskset, 400);
        let hp = &outcome.summary.high;
        let lp = &outcome.summary.low;
        assert!(hp.completed > 50);
        assert!(
            hp.deadline_miss_rate < 0.02,
            "HP DMR should be (near) zero, got {}",
            hp.deadline_miss_rate
        );
        assert!(lp.deadline_miss_rate < 0.30, "LP DMR {}", lp.deadline_miss_rate);
    }

    #[test]
    fn overloaded_lp_jobs_are_rejected_not_missed() {
        // The ResNet18 set offers 150 % of capacity; the admission test must
        // shed LP load.
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let outcome = short_run(DarisConfig::new(GpuPartition::mps(6, 2.0)), &taskset, 300);
        assert!(outcome.summary.low.rejected > 0, "admission test never rejected anything");
        assert_eq!(outcome.summary.high.rejected, 0);
    }

    #[test]
    fn hp_admission_flag_allows_hp_rejections() {
        let taskset =
            TaskSet::with_ratio(DnnKind::ResNet18, daris_workload::RatioScenario::Overload, 0.9);
        let config = DarisConfig::new(GpuPartition::mps(6, 6.0)).with_hp_admission();
        let outcome = short_run(config, &taskset, 300);
        assert!(outcome.summary.high.rejected > 0, "Overload+HPA should drop some HP jobs");
        assert!(outcome.summary.high.deadline_miss_rate < 0.05);
    }

    #[test]
    fn adaptive_hpa_follows_the_burst_signal() {
        use daris_telemetry::{EventKind, MemorySink, SinkHandle};
        use daris_workload::{BurstyConfig, GenSpec, LoadDetectorConfig};
        // A 3× bursty stream must flip the admission mode in both
        // directions, and HP rejections may only happen while HPA is on.
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let sink = MemorySink::unbounded();
        let config = DarisConfig::new(GpuPartition::mps(6, 2.0))
            .with_adaptive_hpa(LoadDetectorConfig::default())
            .with_sink(SinkHandle::new(sink.clone()));
        let mut scheduler = DarisScheduler::new(&taskset, config).unwrap();
        let spec = crate::RunSpec::generated(GenSpec::Bursty(BurstyConfig::default()))
            .until(SimTime::from_millis(300));
        crate::Scheduler::run(&mut scheduler, &spec).unwrap();

        let mut hpa_on = false;
        let (mut ons, mut offs) = (0u64, 0u64);
        for ev in sink.events() {
            match ev.kind {
                EventKind::AdmissionModeChanged { hpa_enabled, load_ratio } => {
                    assert_ne!(hpa_enabled, hpa_on, "transitions must alternate");
                    assert!(load_ratio >= 0.0);
                    hpa_on = hpa_enabled;
                    if hpa_enabled {
                        ons += 1;
                    } else {
                        offs += 1;
                    }
                }
                EventKind::AdmissionRejected { priority: Priority::High, .. } => {
                    assert!(hpa_on, "HP release tested while the admission mode was off");
                }
                _ => {}
            }
        }
        assert!(ons >= 1 && offs >= 1, "expected both transitions, got {ons} on / {offs} off");
        let detector = scheduler.load_detector().expect("adaptive config builds a detector");
        assert_eq!(detector.transitions(), ons + offs, "every transition must be emitted");
    }

    #[test]
    fn mret_trace_is_recorded_when_enabled() {
        let taskset = TaskSet::table2(DnnKind::UNet);
        let config = DarisConfig::new(GpuPartition::mps(4, 4.0)).with_mret_trace();
        let outcome = short_run(config, &taskset, 150);
        assert!(!outcome.mret_trace.is_empty());
        for sample in &outcome.mret_trace {
            assert!(sample.actual > SimDuration::ZERO);
            assert!(sample.predicted > SimDuration::ZERO);
        }
    }

    #[test]
    fn no_staging_dispatches_whole_jobs() {
        let taskset = TaskSet::table2(DnnKind::UNet);
        let config = DarisConfig::new(GpuPartition::mps(4, 4.0))
            .with_ablation(crate::AblationFlags::no_staging());
        let mut scheduler = DarisScheduler::new(&taskset, config).unwrap();
        let outcome = scheduler.run_until(SimTime::from_millis(200));
        assert!(outcome.summary.total.completed > 10);
        // Each completed job produced exactly one MRET window entry per task
        // (a single stage), so stage count seen by the estimator is 1.
        assert_eq!(scheduler.mret().stage_count(taskset.tasks()[0].id), 1);
    }

    #[test]
    fn stepping_api_reproduces_run_until_exactly() {
        // The external-driving API must be able to reproduce `run_until`
        // byte for byte — this is the contract the cluster dispatcher's
        // single-device equivalence rests on.
        let taskset = TaskSet::table2(DnnKind::UNet);
        let config = DarisConfig::new(GpuPartition::mps(4, 4.0));
        let horizon = SimTime::from_millis(200);

        let mut reference = DarisScheduler::new(&taskset, config.clone()).unwrap();
        let expected = reference.run_until(horizon);

        let mut driven = DarisScheduler::new(&taskset, config).unwrap();
        let plan = ArrivalPlan::generate(&taskset, horizon, ReleaseJitter::None);
        let arrivals: Vec<Job> = plan.into_iter().collect();
        let mut next = 0usize;
        loop {
            let next_release = arrivals.get(next).map(|j| j.release);
            let step_to = match (next_release, driven.next_event_time()) {
                (Some(r), Some(g)) => r.min(g),
                (Some(r), None) => r,
                (None, Some(g)) => g,
                (None, None) => break,
            };
            if step_to > horizon {
                break;
            }
            driven.advance_to(step_to);
            while next < arrivals.len() && arrivals[next].release <= driven.now() {
                let job = arrivals[next];
                next += 1;
                if !driven.try_release_job(job) {
                    driven.reject_job(&job);
                }
            }
            driven.dispatch_ready();
        }
        let actual = driven.finish(horizon);
        assert_eq!(actual.summary, expected.summary);
    }

    #[test]
    fn recorded_live_run_replays_byte_identically() {
        // The recorder round trip: wrap the live run's arrival stream, then
        // replay the captured trace on a fresh scheduler — completions and
        // metrics must match byte for byte. This is the single-device anchor
        // of the differential suite.
        use daris_workload::{Trace, TraceRecorder};
        let taskset = TaskSet::table2(DnnKind::UNet);
        let config = DarisConfig::new(GpuPartition::mps(4, 4.0));
        let horizon = SimTime::from_millis(200);

        let mut live = DarisScheduler::new(&taskset, config.clone()).unwrap();
        let mut recorder = TraceRecorder::new(ArrivalStream::new(&taskset, horizon));
        let expected = live.run_with_source(&mut recorder, horizon);
        let trace = recorder.into_trace(horizon).expect("periodic recordings are valid");
        assert!(!trace.is_empty());

        let mut replay = DarisScheduler::new(&taskset, config.clone()).unwrap();
        let actual = replay.run_trace(&trace).expect("trace binds to its own task set");
        assert_eq!(actual.summary, expected.summary);
        assert_eq!(replay.events_processed(), live.events_processed());

        // The codec keeps the guarantee: decode(encode(trace)) replays the
        // same run.
        let decoded = Trace::decode(&trace.encode()).unwrap();
        let mut replay2 = DarisScheduler::new(&taskset, config).unwrap();
        assert_eq!(replay2.run_trace(&decoded).unwrap().summary, expected.summary);
    }

    #[test]
    fn generated_source_matches_its_recorded_trace_exactly() {
        use daris_workload::{BurstyConfig, GenSpec};
        let taskset = TaskSet::table2(DnnKind::UNet);
        let config = DarisConfig::new(GpuPartition::mps(4, 4.0));
        let horizon = SimTime::from_millis(200);
        let spec = GenSpec::Bursty(BurstyConfig::default());

        let mut live = DarisScheduler::new(&taskset, config.clone()).unwrap();
        let mut stream = spec.stream(&taskset, horizon);
        let expected = live.run_with_source(&mut stream, horizon);
        assert!(expected.summary.total.completed > 0, "bursty load must do real work");

        let trace = spec.generate(&taskset, horizon);
        let mut replay = DarisScheduler::new(&taskset, config).unwrap();
        let actual = replay.run_trace(&trace).unwrap();
        assert_eq!(actual.summary, expected.summary);
    }

    #[test]
    fn run_trace_rejects_traces_for_foreign_tasks() {
        use daris_workload::GenSpec;
        // A trace over the 51-task ResNet18 set cannot replay on the 15-task
        // UNet scheduler.
        let foreign = TaskSet::table2(DnnKind::ResNet18);
        let trace =
            GenSpec::Correlated(Default::default()).generate(&foreign, SimTime::from_millis(50));
        let taskset = TaskSet::table2(DnnKind::UNet);
        let mut scheduler =
            DarisScheduler::new(&taskset, DarisConfig::new(GpuPartition::mps(4, 4.0))).unwrap();
        let err = scheduler.run_trace(&trace);
        assert!(matches!(err, Err(CoreError::Trace(_))), "{err:?}");
    }

    #[test]
    fn adopt_task_registers_a_guest_and_admits_its_jobs() {
        let taskset = TaskSet::table2(DnnKind::UNet);
        let config = DarisConfig::new(GpuPartition::mps(4, 4.0));
        let mut scheduler = DarisScheduler::new(&taskset, config).unwrap();
        let allocations_before = scheduler.gpu().memory().stats().allocations;

        // Adopt a ResNet18 guest: new model kind, so weights get resident.
        let guest = TaskSet::table2(DnnKind::ResNet18).tasks()[0].clone();
        let local = scheduler.adopt_task(&guest).unwrap();
        assert_eq!(local.index(), taskset.len());
        assert_eq!(scheduler.gpu().memory().stats().allocations, allocations_before + 1);
        assert!(scheduler.mret().task_mret(local) > SimDuration::ZERO);
        assert!(scheduler.would_admit(local, Priority::High), "HP without HPA always admits");

        // Releasing a job of the guest works end to end.
        let mut job = guest.job(0);
        job.id.task = local;
        assert!(scheduler.try_release_job(job));
        scheduler.dispatch_ready();
        while let Some(t) = scheduler.next_event_time() {
            scheduler.advance_to(t);
            scheduler.dispatch_ready();
        }
        let outcome = scheduler.finish(SimTime::from_millis(100));
        assert_eq!(outcome.summary.total.completed, 1);
    }

    #[test]
    fn withdraw_queued_job_removes_all_traces() {
        let taskset = TaskSet::table2(DnnKind::UNet);
        // One context, one stream: a second release at the same instant must
        // queue behind the first.
        let config = DarisConfig::new(GpuPartition::str_streams(1));
        let mut scheduler = DarisScheduler::new(&taskset, config).unwrap();
        let t0 = taskset.tasks()[0].clone();
        let t1 = taskset.tasks()[1].clone();
        let j0 = t0.job(0);
        let mut j1 = t1.job(0);
        j1.release = j0.release;
        assert!(scheduler.try_release_job(j0));
        assert!(scheduler.try_release_job(j1));
        scheduler.dispatch_ready();
        // j0 occupies the only stream; j1 is queued and migratable.
        assert_eq!(scheduler.queue_backlog(), 1);
        assert_eq!(scheduler.idle_stream_count(), 0);
        assert_eq!(scheduler.migratable_jobs(), vec![j1.id]);
        assert!(scheduler.withdraw_queued_job(j0.id).is_none(), "dispatched jobs cannot migrate");
        let withdrawn = scheduler.withdraw_queued_job(j1.id).expect("queued job withdraws");
        assert_eq!(withdrawn.id, j1.id);
        assert_eq!(scheduler.queue_backlog(), 0);
        assert!(scheduler.withdraw_queued_job(j1.id).is_none(), "already withdrawn");
        // The withdrawn job left no metric trace: only j0 is accounted.
        let outcome = scheduler.finish(SimTime::from_millis(200));
        assert_eq!(outcome.summary.total.released, 1);
    }

    #[test]
    fn would_admit_matches_try_release_for_lp_jobs() {
        // Saturate a tiny partition with LP activations, then check the
        // exposed admission test agrees with the internal one.
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let config = DarisConfig::new(GpuPartition::mps(2, 1.0));
        let mut scheduler = DarisScheduler::new(&taskset, config).unwrap();
        let lp_tasks: Vec<TaskSpec> =
            taskset.tasks().iter().filter(|t| t.priority == Priority::Low).cloned().collect();
        let mut disagreements = 0;
        for t in &lp_tasks {
            let predicted = scheduler.would_admit(t.id, Priority::Low);
            let admitted = scheduler.try_release_job(t.job(0));
            if predicted != admitted {
                disagreements += 1;
            }
        }
        assert_eq!(disagreements, 0);
        // The saturated scheduler rejects at least one LP release.
        assert!(lp_tasks.iter().any(|t| !scheduler.would_admit(t.id, Priority::Low)));
    }

    #[test]
    fn telemetry_sink_sees_the_full_event_stream_without_perturbing_the_run() {
        use daris_telemetry::{EventKind, MemorySink, SinkHandle};
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let horizon = SimTime::from_millis(150);
        // Overloaded partition so the admission test rejects some LP jobs.
        let config = DarisConfig::new(GpuPartition::mps(6, 2.0));

        let mut silent = DarisScheduler::new(&taskset, config.clone()).unwrap();
        let expected = silent.run_until(horizon);

        let sink = MemorySink::unbounded();
        let observed_config = config.with_sink(SinkHandle::new(sink.clone()));
        let mut observed = DarisScheduler::new(&taskset, observed_config).unwrap();
        let outcome = observed.run_until(horizon);

        // Observation is free of feedback: identical summary either way.
        assert_eq!(outcome.summary, expected.summary);

        let events = sink.events();
        let count = |f: &dyn Fn(&EventKind) -> bool| events.iter().filter(|e| f(&e.kind)).count();
        let admitted = count(&|k| matches!(k, EventKind::AdmissionAccepted { .. }));
        let rejected = count(&|k| matches!(k, EventKind::JobRejected { .. }));
        let completed = count(&|k| matches!(k, EventKind::JobCompleted { .. }));
        let missed = count(&|k| matches!(k, EventKind::DeadlineMissed { .. }));
        assert_eq!(admitted, outcome.summary.total.accepted);
        assert_eq!(rejected, outcome.summary.total.rejected);
        assert_eq!(completed, outcome.summary.total.completed);
        // `DeadlineMissed` fires on late completions; the summary also counts
        // jobs still in flight at the horizon whose deadline already passed.
        assert!(missed <= outcome.summary.total.deadline_misses);
        // Rejections name the failing test; this overload is LP-only.
        assert!(
            count(&|k| matches!(
                k,
                EventKind::AdmissionRejected {
                    test: daris_telemetry::AdmissionTest::LpUtilization,
                    ..
                }
            )) > 0
        );
        // The device layer streams through too.
        assert!(count(&|k| matches!(k, EventKind::StageDispatched { .. })) > 0);
        assert!(count(&|k| matches!(k, EventKind::KernelFinished { .. })) > 0);
        assert!(count(&|k| matches!(k, EventKind::Replan { .. })) > 0);
        assert!(count(&|k| matches!(k, EventKind::CopyInStarted { .. })) > 0);
        assert!(count(&|k| matches!(k, EventKind::CopyOutStarted { .. })) > 0);
        // Event times never run backwards within the scheduler layer's own
        // emissions (device events interleave at span granularity).
        assert!(events.iter().all(|e| e.at <= horizon));
    }

    #[test]
    fn empty_taskset_is_rejected() {
        let empty: TaskSet = std::iter::empty::<TaskSpec>().collect();
        let err = DarisScheduler::new(&empty, DarisConfig::new(GpuPartition::mps(2, 1.0)));
        assert!(matches!(err, Err(CoreError::EmptyTaskSet)));
    }

    #[test]
    fn weights_are_resident_in_device_memory() {
        let taskset = TaskSet::mixed();
        let scheduler =
            DarisScheduler::new(&taskset, DarisConfig::new(GpuPartition::mps(6, 2.0))).unwrap();
        let stats = scheduler.gpu().memory().stats();
        assert_eq!(stats.allocations, 3, "one weight allocation per model kind");
        assert!(stats.allocated > 100_000_000);
    }
}
