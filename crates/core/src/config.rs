//! Scheduler configuration: partitioning policies, oversubscription and
//! ablation switches.

use std::fmt;

use daris_gpu::{sm_quota, GpuSpec};
use daris_telemetry::SinkHandle;
use daris_workload::LoadDetectorConfig;

use crate::CoreError;

/// How the GPU is partitioned across concurrent DNNs (Sec. V of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionPolicy {
    /// `STR`: a single context, one stream per parallel DNN.
    Str,
    /// `MPS`: one MPS context per parallel DNN, one stream each.
    Mps,
    /// `MPS+STR`: several contexts, several streams per context.
    MpsStr,
}

impl fmt::Display for PartitionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionPolicy::Str => f.write_str("STR"),
            PartitionPolicy::Mps => f.write_str("MPS"),
            PartitionPolicy::MpsStr => f.write_str("MPS+STR"),
        }
    }
}

/// A concrete GPU partition: `Nc` contexts × `Ns` streams with an
/// oversubscription level `OS` (Sec. III-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuPartition {
    /// The policy this partition realizes.
    pub policy: PartitionPolicy,
    /// Number of MPS contexts `Nc`.
    pub n_contexts: u32,
    /// Streams per context `Ns`.
    pub streams_per_context: u32,
    /// Oversubscription level `OS` (`1 ≤ OS ≤ Nc`).
    pub oversubscription: f64,
}

impl GpuPartition {
    /// `STR` partition: one context owning the whole GPU with `np` streams.
    pub fn str_streams(np: u32) -> Self {
        GpuPartition {
            policy: PartitionPolicy::Str,
            n_contexts: 1,
            streams_per_context: np.max(1),
            oversubscription: 1.0,
        }
    }

    /// `MPS` partition: `np` contexts with one stream each at oversubscription
    /// `os`.
    pub fn mps(np: u32, os: f64) -> Self {
        GpuPartition {
            policy: PartitionPolicy::Mps,
            n_contexts: np.max(1),
            streams_per_context: 1,
            oversubscription: os,
        }
    }

    /// `MPS+STR` partition: `nc` contexts × `ns` streams at oversubscription
    /// `os`.
    pub fn mps_str(nc: u32, ns: u32, os: f64) -> Self {
        GpuPartition {
            policy: PartitionPolicy::MpsStr,
            n_contexts: nc.max(1),
            streams_per_context: ns.max(1),
            oversubscription: os,
        }
    }

    /// Maximum number of concurrently executing DNNs `Np = Nc × Ns`.
    pub fn parallel_tasks(&self) -> u32 {
        self.n_contexts * self.streams_per_context
    }

    /// Per-context SM quota from Eq. 9 for a device with `sm_max` SMs. A
    /// single-context (`STR`) partition always owns the full device.
    pub fn sm_quota(&self, sm_max: u32) -> u32 {
        if self.n_contexts <= 1 {
            return sm_max;
        }
        sm_quota(sm_max, self.oversubscription, self.n_contexts)
    }

    /// The paper's configuration label, e.g. `"6x1 OS6"` or `"1x4"`.
    pub fn label(&self) -> String {
        if self.n_contexts <= 1 {
            format!("{}x{}", self.n_contexts, self.streams_per_context)
        } else {
            let os = if (self.oversubscription - self.oversubscription.round()).abs() < 1e-9 {
                format!("{}", self.oversubscription.round() as i64)
            } else {
                format!("{}", self.oversubscription)
            };
            format!("{}x{} OS{}", self.n_contexts, self.streams_per_context, os)
        }
    }

    /// Validates the partition against a device.
    pub(crate) fn validate(&self, spec: &GpuSpec) -> Result<(), CoreError> {
        if self.n_contexts == 0 || self.streams_per_context == 0 {
            return Err(CoreError::InvalidConfig(
                "partition needs at least one context and stream".into(),
            ));
        }
        if self.oversubscription < 1.0 - 1e-9 {
            return Err(CoreError::InvalidConfig(format!(
                "oversubscription must be >= 1, got {}",
                self.oversubscription
            )));
        }
        if self.oversubscription > f64::from(self.n_contexts) + 1e-9 {
            return Err(CoreError::InvalidConfig(format!(
                "oversubscription {} exceeds the number of contexts {}",
                self.oversubscription, self.n_contexts
            )));
        }
        if self.n_contexts > spec.sm_count {
            return Err(CoreError::InvalidConfig(format!(
                "{} contexts cannot each own at least one SM on a {}-SM device",
                self.n_contexts, spec.sm_count
            )));
        }
        Ok(())
    }
}

/// Switches for the module-contribution study of Fig. 8. All flags default to
/// `true` (full DARIS); clearing one reproduces the corresponding ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AblationFlags {
    /// `No Staging` when false: jobs are dispatched as whole units.
    pub staging: bool,
    /// `No Last` when false: the final stage of a job is not boosted.
    pub prioritize_last_stage: bool,
    /// `No Prior` when false: a stage following a missed virtual deadline is
    /// not boosted.
    pub boost_after_miss: bool,
    /// `No Fixed` when false: high- and low-priority stages share one level
    /// (pure EDF across tasks).
    pub fixed_task_priority: bool,
}

impl Default for AblationFlags {
    fn default() -> Self {
        AblationFlags {
            staging: true,
            prioritize_last_stage: true,
            boost_after_miss: true,
            fixed_task_priority: true,
        }
    }
}

impl AblationFlags {
    /// Full DARIS (all modules enabled).
    pub fn full() -> Self {
        Self::default()
    }

    /// The `No Staging` scenario of Fig. 8.
    pub fn no_staging() -> Self {
        AblationFlags { staging: false, ..Self::default() }
    }

    /// The `No Last` scenario of Fig. 8.
    pub fn no_last() -> Self {
        AblationFlags { prioritize_last_stage: false, ..Self::default() }
    }

    /// The `No Prior` scenario of Fig. 8.
    pub fn no_prior() -> Self {
        AblationFlags { boost_after_miss: false, ..Self::default() }
    }

    /// The `No Fixed` scenario of Fig. 8.
    pub fn no_fixed() -> Self {
        AblationFlags { fixed_task_priority: false, ..Self::default() }
    }

    /// All five Fig. 8 scenarios as `(name, flags)` pairs.
    pub fn figure8_scenarios() -> [(&'static str, AblationFlags); 5] {
        [
            ("DARIS", Self::full()),
            ("No Staging", Self::no_staging()),
            ("No Last", Self::no_last()),
            ("No Prior", Self::no_prior()),
            ("No Fixed", Self::no_fixed()),
        ]
    }
}

/// Complete scheduler configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DarisConfig {
    /// Spatial partitioning of the GPU.
    pub partition: GpuPartition,
    /// MRET sliding-window size `ws` (the paper selects 5).
    pub window_size: usize,
    /// Ablation switches (all enabled for full DARIS).
    pub ablation: AblationFlags,
    /// Apply the admission test to high-priority jobs too
    /// (`Overload+HPA`, Sec. VI-I). Default off.
    pub hp_admission: bool,
    /// Adaptive HPA: flip the Overload/HPA admission mode at runtime from a
    /// windowed arrival-rate burst detector instead of configuring it once
    /// up front — HP jobs bypass admission in calm phases and are tested
    /// during bursts. `None` (the default) keeps the static
    /// [`hp_admission`](Self::hp_admission) behaviour. When set together
    /// with `hp_admission`, the static flag wins (HP admission is always
    /// on).
    pub adaptive_hpa: Option<LoadDetectorConfig>,
    /// Device description (defaults to the paper's RTX 2080 Ti).
    pub gpu: GpuSpec,
    /// Device the model profiles are calibrated against. `None` (the
    /// default) calibrates on [`gpu`](Self::gpu) itself, which re-anchors
    /// Table I on whatever device is simulated. A heterogeneous cluster
    /// instead pins calibration to the paper's measurement device (the RTX
    /// 2080 Ti) on *every* member, so that device speed differences emerge
    /// from the simulation instead of being calibrated away.
    pub calibration_gpu: Option<GpuSpec>,
    /// Record per-stage execution-time vs MRET samples (Fig. 9). Default off
    /// to keep long runs lean.
    pub record_mret_trace: bool,
    /// Telemetry sink receiving the scheduler's sim-time event stream.
    /// `None` (the default) disables telemetry entirely: no events are
    /// constructed and device tracing stays off, so the disabled path costs
    /// one branch per potential emission site.
    pub sink: Option<SinkHandle>,
}

impl DarisConfig {
    /// Creates a configuration with the paper's defaults (`ws = 5`, full
    /// DARIS, no HP admission test) for the given partition.
    pub fn new(partition: GpuPartition) -> Self {
        DarisConfig {
            partition,
            window_size: 5,
            ablation: AblationFlags::full(),
            hp_admission: false,
            adaptive_hpa: None,
            gpu: GpuSpec::rtx_2080_ti(),
            calibration_gpu: None,
            record_mret_trace: false,
            sink: None,
        }
    }

    /// Sets the MRET window size.
    pub fn with_window_size(mut self, ws: usize) -> Self {
        self.window_size = ws.max(1);
        self
    }

    /// Sets the ablation flags.
    pub fn with_ablation(mut self, ablation: AblationFlags) -> Self {
        self.ablation = ablation;
        self
    }

    /// Enables the HP admission test (`Overload+HPA`).
    pub fn with_hp_admission(mut self) -> Self {
        self.hp_admission = true;
        self
    }

    /// Enables adaptive HPA: the Overload/HPA admission mode follows a
    /// windowed burst detector with the given configuration (see
    /// [`adaptive_hpa`](Self::adaptive_hpa)).
    pub fn with_adaptive_hpa(mut self, detector: LoadDetectorConfig) -> Self {
        self.adaptive_hpa = Some(detector);
        self
    }

    /// Replaces the device description.
    pub fn with_gpu(mut self, gpu: GpuSpec) -> Self {
        self.gpu = gpu;
        self
    }

    /// Pins model-profile calibration to `reference` instead of the simulated
    /// device (see [`calibration_gpu`](Self::calibration_gpu)).
    pub fn with_reference_calibration(mut self, reference: GpuSpec) -> Self {
        self.calibration_gpu = Some(reference);
        self
    }

    /// The device model profiles are calibrated against.
    pub fn calibration_spec(&self) -> &GpuSpec {
        self.calibration_gpu.as_ref().unwrap_or(&self.gpu)
    }

    /// Enables MRET tracing (Fig. 9).
    pub fn with_mret_trace(mut self) -> Self {
        self.record_mret_trace = true;
        self
    }

    /// Attaches a telemetry sink. Sinks observe the run; they never change
    /// its outcome (the summary digest is byte-identical with or without
    /// one).
    pub fn with_sink(mut self, sink: SinkHandle) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.window_size == 0 {
            return Err(CoreError::InvalidConfig("window size must be at least 1".into()));
        }
        if let Some(det) = &self.adaptive_hpa {
            if det.window.is_zero() {
                return Err(CoreError::InvalidConfig(
                    "adaptive HPA detector window must be non-zero".into(),
                ));
            }
            if !(det.calm_ratio > 0.0 && det.calm_ratio <= det.burst_ratio) {
                return Err(CoreError::InvalidConfig(format!(
                    "adaptive HPA thresholds must satisfy 0 < calm_ratio <= burst_ratio, got \
                     calm {} burst {}",
                    det.calm_ratio, det.burst_ratio
                )));
            }
        }
        self.partition.validate(&self.gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_constructors_and_labels() {
        let s = GpuPartition::str_streams(4);
        assert_eq!(s.parallel_tasks(), 4);
        assert_eq!(s.label(), "1x4");
        assert_eq!(s.sm_quota(68), 68);

        let m = GpuPartition::mps(6, 6.0);
        assert_eq!(m.parallel_tasks(), 6);
        assert_eq!(m.label(), "6x1 OS6");
        assert_eq!(m.sm_quota(68), 68);

        let m2 = GpuPartition::mps(6, 1.0);
        assert_eq!(m2.sm_quota(68), 12);

        let ms = GpuPartition::mps_str(3, 3, 1.5);
        assert_eq!(ms.parallel_tasks(), 9);
        assert_eq!(ms.label(), "3x3 OS1.5");
        assert_eq!(ms.sm_quota(68), 34);
    }

    #[test]
    fn partition_validation() {
        let spec = GpuSpec::rtx_2080_ti();
        assert!(GpuPartition::mps(6, 2.0).validate(&spec).is_ok());
        assert!(GpuPartition::mps(6, 0.5).validate(&spec).is_err());
        assert!(GpuPartition::mps(6, 7.0).validate(&spec).is_err());
        assert!(GpuPartition::mps(100, 1.0).validate(&spec).is_err());
        let degenerate = GpuPartition { n_contexts: 0, ..GpuPartition::mps(1, 1.0) };
        assert!(degenerate.validate(&spec).is_err());
    }

    #[test]
    fn ablation_scenarios_differ_from_full() {
        let full = AblationFlags::full();
        assert!(full.staging && full.prioritize_last_stage);
        for (name, flags) in AblationFlags::figure8_scenarios().into_iter().skip(1) {
            assert_ne!(flags, full, "{name} should differ from full DARIS");
        }
        assert!(!AblationFlags::no_staging().staging);
        assert!(!AblationFlags::no_last().prioritize_last_stage);
        assert!(!AblationFlags::no_prior().boost_after_miss);
        assert!(!AblationFlags::no_fixed().fixed_task_priority);
    }

    #[test]
    fn config_builder_and_validation() {
        let cfg = DarisConfig::new(GpuPartition::mps(6, 6.0))
            .with_window_size(5)
            .with_hp_admission()
            .with_mret_trace();
        assert!(cfg.validate().is_ok());
        assert!(cfg.hp_admission);
        assert!(cfg.record_mret_trace);
        assert_eq!(cfg.window_size, 5);
        // Calibration defaults to the simulated device and can be pinned.
        assert_eq!(cfg.calibration_spec(), &cfg.gpu);
        let pinned = DarisConfig::new(GpuPartition::mps(6, 6.0))
            .with_gpu(GpuSpec::a100())
            .with_reference_calibration(GpuSpec::rtx_2080_ti());
        assert_eq!(pinned.calibration_spec().sm_count, 68);
        assert_eq!(pinned.gpu.sm_count, 108);
        let bad = DarisConfig::new(GpuPartition::mps(6, 0.2));
        assert!(bad.validate().is_err());
        assert_eq!(
            DarisConfig::new(GpuPartition::str_streams(2)).with_window_size(0).window_size,
            1
        );
    }

    #[test]
    fn policy_display() {
        assert_eq!(PartitionPolicy::Str.to_string(), "STR");
        assert_eq!(PartitionPolicy::Mps.to_string(), "MPS");
        assert_eq!(PartitionPolicy::MpsStr.to_string(), "MPS+STR");
    }
}
