//! Maximum Recent Execution Time (MRET) estimation (Sec. III-B2, Eq. 1–2).

use std::collections::{BTreeMap, VecDeque};

use daris_gpu::SimDuration;
use daris_workload::TaskId;

/// Per-stage sliding-window maximum execution-time estimator.
///
/// MRET is the paper's optimistic replacement for WCET: the maximum execution
/// time observed for a stage over the last `ws` executions. Until a stage has
/// been observed at least once, the estimator falls back to the AFET seed
/// supplied at construction (Eq. 10).
///
/// ```
/// use daris_core::MretEstimator;
/// use daris_gpu::SimDuration;
/// use daris_workload::TaskId;
///
/// let mut est = MretEstimator::new(5);
/// let task = TaskId(0);
/// est.seed(task, vec![SimDuration::from_millis(2); 4]);
/// assert_eq!(est.stage_mret(task, 0), SimDuration::from_millis(2));
/// est.record(task, 0, SimDuration::from_millis(3));
/// assert_eq!(est.stage_mret(task, 0), SimDuration::from_millis(3));
/// ```
#[derive(Debug, Clone)]
pub struct MretEstimator {
    window_size: usize,
    seeds: BTreeMap<TaskId, Vec<SimDuration>>,
    windows: BTreeMap<(TaskId, usize), VecDeque<SimDuration>>,
}

impl MretEstimator {
    /// Creates an estimator with window size `ws` (the paper uses 5).
    pub fn new(window_size: usize) -> Self {
        MretEstimator {
            window_size: window_size.max(1),
            seeds: BTreeMap::new(),
            windows: BTreeMap::new(),
        }
    }

    /// The window size in use.
    pub fn window_size(&self) -> usize {
        self.window_size
    }

    /// Seeds a task's per-stage estimates with AFET values (used before any
    /// measurement exists, Eq. 10).
    pub fn seed(&mut self, task: TaskId, per_stage_afet: Vec<SimDuration>) {
        self.seeds.insert(task, per_stage_afet);
    }

    /// Number of stages known for a task (from its seed).
    pub fn stage_count(&self, task: TaskId) -> usize {
        self.seeds.get(&task).map(Vec::len).unwrap_or(0)
    }

    /// Records a measured execution time for one stage of one task.
    pub fn record(&mut self, task: TaskId, stage: usize, execution: SimDuration) {
        let window = self.windows.entry((task, stage)).or_default();
        window.push_back(execution);
        while window.len() > self.window_size {
            window.pop_front();
        }
    }

    /// MRET of one stage (Eq. 1): the window maximum, or the AFET seed when
    /// no measurement exists yet, or zero when the task was never seeded.
    pub fn stage_mret(&self, task: TaskId, stage: usize) -> SimDuration {
        if let Some(window) = self.windows.get(&(task, stage)) {
            if let Some(max) = window.iter().max() {
                return *max;
            }
        }
        self.seeds.get(&task).and_then(|s| s.get(stage)).copied().unwrap_or(SimDuration::ZERO)
    }

    /// MRET of a whole task (Eq. 2): the sum of its per-stage MRETs.
    pub fn task_mret(&self, task: TaskId) -> SimDuration {
        (0..self.stage_count(task)).fold(SimDuration::ZERO, |acc, s| acc + self.stage_mret(task, s))
    }

    /// Per-stage MRETs of a task.
    pub fn stage_mrets(&self, task: TaskId) -> Vec<SimDuration> {
        (0..self.stage_count(task)).map(|s| self.stage_mret(task, s)).collect()
    }

    /// MRET of the stages from `first_stage` to the end of the task
    /// (remaining work estimate for a partially executed job).
    pub fn remaining_mret(&self, task: TaskId, first_stage: usize) -> SimDuration {
        (first_stage..self.stage_count(task))
            .fold(SimDuration::ZERO, |acc, s| acc + self.stage_mret(task, s))
    }

    /// Task utilization `u_i(t) = mret_i(t) / T_i` (Eq. 3 / Eq. 10).
    pub fn task_utilization(&self, task: TaskId, period: SimDuration) -> f64 {
        if period.is_zero() {
            return 0.0;
        }
        self.task_mret(task).as_micros_f64() / period.as_micros_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn seed_is_used_until_first_measurement() {
        let mut est = MretEstimator::new(5);
        let t = TaskId(1);
        est.seed(t, vec![ms(4), ms(6)]);
        assert_eq!(est.stage_count(t), 2);
        assert_eq!(est.stage_mret(t, 0), ms(4));
        assert_eq!(est.task_mret(t), ms(10));
        est.record(t, 0, ms(2));
        // Stage 0 now uses the (smaller) measurement; stage 1 still the seed.
        assert_eq!(est.stage_mret(t, 0), ms(2));
        assert_eq!(est.stage_mret(t, 1), ms(6));
        assert_eq!(est.task_mret(t), ms(8));
    }

    #[test]
    fn window_keeps_only_recent_maximum() {
        let mut est = MretEstimator::new(3);
        let t = TaskId(0);
        est.seed(t, vec![ms(1)]);
        for v in [10, 2, 3, 4] {
            est.record(t, 0, ms(v));
        }
        // The 10 ms sample has slid out of the 3-wide window.
        assert_eq!(est.stage_mret(t, 0), ms(4));
        est.record(t, 0, ms(9));
        assert_eq!(est.stage_mret(t, 0), ms(9));
    }

    #[test]
    fn unknown_task_has_zero_mret() {
        let est = MretEstimator::new(5);
        assert_eq!(est.task_mret(TaskId(9)), SimDuration::ZERO);
        assert_eq!(est.stage_mret(TaskId(9), 2), SimDuration::ZERO);
        assert_eq!(est.stage_count(TaskId(9)), 0);
    }

    #[test]
    fn remaining_mret_and_utilization() {
        let mut est = MretEstimator::new(5);
        let t = TaskId(2);
        est.seed(t, vec![ms(2), ms(3), ms(5)]);
        assert_eq!(est.remaining_mret(t, 1), ms(8));
        assert_eq!(est.remaining_mret(t, 3), SimDuration::ZERO);
        let u = est.task_utilization(t, ms(20));
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(est.task_utilization(t, SimDuration::ZERO), 0.0);
        assert_eq!(est.stage_mrets(t), vec![ms(2), ms(3), ms(5)]);
    }

    #[test]
    fn window_size_is_at_least_one() {
        let est = MretEstimator::new(0);
        assert_eq!(est.window_size(), 1);
    }
}
