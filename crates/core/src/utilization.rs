//! Per-context utilization accounting (Eq. 3–7) and the admission test
//! (Eq. 11–12).

use std::collections::BTreeMap;

use daris_workload::{JobId, Priority, TaskId};

/// Tracks the utilization of one MPS context.
///
/// * `assigned` utilization (Eq. 4–6) covers every task assigned to the
///   context and is used for offline load balancing;
/// * `active` low-priority utilization (Eq. 7) covers only LP jobs that have
///   been admitted and have not finished, and is what the online admission
///   test charges against.
///
/// Class totals are maintained incrementally (updated on every assign /
/// activate / deactivate) so the admission test and the cluster load signal
/// are O(1) instead of a map scan per query — the admission path is the
/// dominant serial cost in overloaded fleets. Membership maps are `BTreeMap`s
/// so any residual iteration is in deterministic key order.
#[derive(Debug, Clone, Default)]
pub struct ContextLoad {
    /// Streams available in this context (`Ns`), the admission-test capacity.
    streams: u32,
    /// Assigned utilization per task (both priorities), keyed by task.
    assigned: BTreeMap<TaskId, (Priority, f64)>,
    /// Active (admitted, unfinished) jobs and the utilization they charge.
    active: BTreeMap<JobId, (Priority, f64)>,
    /// Running totals: `[high, low]` assigned and active utilization. Each
    /// add/remove contributes ~1 ulp of rounding error, so a class total is
    /// snapped back to exactly 0.0 whenever its membership count drains —
    /// the common oscillation (admit/complete around an empty context)
    /// cannot accumulate drift.
    assigned_sum: [f64; 2],
    active_sum: [f64; 2],
    /// Membership counts per class, `[high, low]`.
    assigned_count: [usize; 2],
    active_count: [usize; 2],
}

fn class(priority: Priority) -> usize {
    match priority {
        Priority::High => 0,
        Priority::Low => 1,
    }
}

impl ContextLoad {
    /// Creates a load tracker for a context with `streams` streams.
    pub fn new(streams: u32) -> Self {
        ContextLoad { streams, ..ContextLoad::default() }
    }

    /// The context capacity used by the admission test (`Ns`).
    pub fn capacity(&self) -> f64 {
        f64::from(self.streams)
    }

    /// Assigns a task to this context with utilization `util` (offline phase
    /// or migration bookkeeping).
    pub fn assign_task(&mut self, task: TaskId, priority: Priority, util: f64) {
        if let Some((prev_priority, prev_util)) = self.assigned.insert(task, (priority, util)) {
            self.assigned_sum[class(prev_priority)] -= prev_util;
            self.assigned_count[class(prev_priority)] -= 1;
            self.snap_assigned(prev_priority);
        }
        self.assigned_sum[class(priority)] += util;
        self.assigned_count[class(priority)] += 1;
    }

    /// Removes a task assignment (migration away from this context).
    pub fn unassign_task(&mut self, task: TaskId) {
        if let Some((priority, util)) = self.assigned.remove(&task) {
            self.assigned_sum[class(priority)] -= util;
            self.assigned_count[class(priority)] -= 1;
            self.snap_assigned(priority);
        }
    }

    /// Snaps an emptied class total back to exactly zero (rounding drift
    /// from incremental add/remove would otherwise survive the drain).
    fn snap_assigned(&mut self, priority: Priority) {
        if self.assigned_count[class(priority)] == 0 {
            self.assigned_sum[class(priority)] = 0.0;
        }
    }

    /// The active-class counterpart of [`snap_assigned`](Self::snap_assigned).
    fn snap_active(&mut self, priority: Priority) {
        if self.active_count[class(priority)] == 0 {
            self.active_sum[class(priority)] = 0.0;
        }
    }

    /// Updates the recorded utilization of an assigned task (MRET drift).
    pub fn update_task_util(&mut self, task: TaskId, util: f64) {
        if let Some(entry) = self.assigned.get_mut(&task) {
            let (priority, prev) = *entry;
            entry.1 = util;
            self.assigned_sum[class(priority)] += util - prev;
        }
    }

    /// Whether the task is assigned to this context.
    pub fn has_task(&self, task: TaskId) -> bool {
        self.assigned.contains_key(&task)
    }

    /// Total assigned utilization of one priority class
    /// (`U^{h,t}_k` / `U^{l,t}_k`, Eq. 4–5).
    pub fn assigned_util(&self, priority: Priority) -> f64 {
        self.assigned_sum[class(priority)]
    }

    /// Total assigned utilization (Eq. 6).
    pub fn total_util(&self) -> f64 {
        self.assigned_sum[0] + self.assigned_sum[1]
    }

    /// Registers an admitted job as active, charging `util`.
    pub fn activate_job(&mut self, job: JobId, priority: Priority, util: f64) {
        if let Some((prev_priority, prev_util)) = self.active.insert(job, (priority, util)) {
            self.active_sum[class(prev_priority)] -= prev_util;
            self.active_count[class(prev_priority)] -= 1;
            self.snap_active(prev_priority);
        }
        self.active_sum[class(priority)] += util;
        self.active_count[class(priority)] += 1;
    }

    /// Releases an active job's utilization (completion or abandonment).
    pub fn deactivate_job(&mut self, job: JobId) {
        if let Some((priority, util)) = self.active.remove(&job) {
            self.active_sum[class(priority)] -= util;
            self.active_count[class(priority)] -= 1;
            self.snap_active(priority);
        }
    }

    /// Active utilization of one priority class (`U^{l,a}_k` for LP, Eq. 7).
    pub fn active_util(&self, priority: Priority) -> f64 {
        self.active_sum[class(priority)]
    }

    /// Number of active jobs of a priority class.
    pub fn active_jobs(&self, priority: Priority) -> usize {
        self.active_count[class(priority)]
    }

    /// Remaining utilization available to LP jobs (Eq. 11):
    /// `U^r_k = Ns - U^{h,t}_k`.
    pub fn remaining_for_lp(&self) -> f64 {
        self.capacity() - self.assigned_util(Priority::High)
    }

    /// The LP admission test (Eq. 12): admit a job of utilization `util` iff
    /// `U^{l,a}_k + u_j < U^r_k`.
    pub fn admits_lp(&self, util: f64) -> bool {
        self.active_util(Priority::Low) + util < self.remaining_for_lp()
    }

    /// The HP admission test used by the `Overload+HPA` mode: admit iff the
    /// total active utilization plus the job stays below the context
    /// capacity.
    pub fn admits_hp(&self, util: f64) -> bool {
        self.active_util(Priority::High) + self.active_util(Priority::Low) + util < self.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(task: u32, idx: u64) -> JobId {
        JobId { task: TaskId(task), release_index: idx }
    }

    #[test]
    fn assigned_utilization_by_class() {
        let mut load = ContextLoad::new(2);
        load.assign_task(TaskId(0), Priority::High, 0.3);
        load.assign_task(TaskId(1), Priority::High, 0.2);
        load.assign_task(TaskId(2), Priority::Low, 0.4);
        assert!((load.assigned_util(Priority::High) - 0.5).abs() < 1e-9);
        assert!((load.assigned_util(Priority::Low) - 0.4).abs() < 1e-9);
        assert!((load.total_util() - 0.9).abs() < 1e-9);
        assert!(load.has_task(TaskId(2)));
        load.unassign_task(TaskId(2));
        assert!(!load.has_task(TaskId(2)));
        assert!((load.total_util() - 0.5).abs() < 1e-9);
        load.update_task_util(TaskId(0), 0.6);
        assert!((load.assigned_util(Priority::High) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn admission_test_matches_equations_11_and_12() {
        let mut load = ContextLoad::new(2);
        // HP tasks reserve 0.8 of the 2.0 capacity.
        load.assign_task(TaskId(0), Priority::High, 0.5);
        load.assign_task(TaskId(1), Priority::High, 0.3);
        assert!((load.remaining_for_lp() - 1.2).abs() < 1e-9);
        // 0.7 active LP: a 0.4 job fits (0.7 + 0.4 < 1.2), a 0.6 job does not.
        load.activate_job(job(5, 0), Priority::Low, 0.7);
        assert!(load.admits_lp(0.4));
        assert!(!load.admits_lp(0.6));
        // Completion frees the utilization.
        load.deactivate_job(job(5, 0));
        assert!(load.admits_lp(0.6));
        assert_eq!(load.active_jobs(Priority::Low), 0);
    }

    #[test]
    fn hp_admission_uses_total_active_load() {
        let mut load = ContextLoad::new(1);
        load.activate_job(job(0, 0), Priority::High, 0.6);
        assert!(load.admits_hp(0.3));
        assert!(!load.admits_hp(0.5));
        load.activate_job(job(1, 0), Priority::Low, 0.3);
        assert!(!load.admits_hp(0.2));
    }

    #[test]
    fn empty_context_admits_up_to_capacity() {
        let load = ContextLoad::new(3);
        assert!(load.admits_lp(2.9));
        assert!(!load.admits_lp(3.0));
        assert_eq!(load.active_jobs(Priority::High), 0);
    }

    #[test]
    fn running_sums_track_reassignments_and_reactivations() {
        let mut load = ContextLoad::new(4);
        // Re-assigning a task replaces its charge instead of double-counting.
        load.assign_task(TaskId(0), Priority::Low, 0.5);
        load.assign_task(TaskId(0), Priority::High, 0.2);
        assert!((load.assigned_util(Priority::Low) - 0.0).abs() < 1e-12);
        assert!((load.assigned_util(Priority::High) - 0.2).abs() < 1e-12);
        // Re-activating a job likewise replaces the old charge.
        load.activate_job(job(0, 0), Priority::Low, 0.3);
        load.activate_job(job(0, 0), Priority::Low, 0.7);
        assert!((load.active_util(Priority::Low) - 0.7).abs() < 1e-12);
        assert_eq!(load.active_jobs(Priority::Low), 1);
        // Deactivating an unknown job is a no-op.
        load.deactivate_job(job(9, 9));
        assert_eq!(load.active_jobs(Priority::Low), 1);
    }

    #[test]
    fn drained_class_totals_snap_back_to_exact_zero() {
        // Values whose sum is inexact in binary float: after add/remove the
        // incremental total would be a few ulp off zero, which could flip a
        // threshold comparison; draining the class must restore exact 0.0.
        let mut load = ContextLoad::new(2);
        for i in 0..1000u64 {
            load.activate_job(job(0, i), Priority::Low, 0.1 + (i as f64) * 1e-3);
        }
        for i in 0..1000u64 {
            load.deactivate_job(job(0, i));
        }
        assert_eq!(load.active_util(Priority::Low), 0.0, "no residual drift");
        assert_eq!(load.active_jobs(Priority::Low), 0);
        load.assign_task(TaskId(1), Priority::High, 0.3);
        load.assign_task(TaskId(2), Priority::High, 0.0403);
        load.unassign_task(TaskId(1));
        load.unassign_task(TaskId(2));
        assert_eq!(load.assigned_util(Priority::High), 0.0);
        // An empty context admits exactly up to capacity again.
        assert!(load.admits_lp(1.9999999999));
    }
}
