//! Per-context utilization accounting (Eq. 3–7) and the admission test
//! (Eq. 11–12).

use std::collections::HashMap;

use daris_workload::{JobId, Priority, TaskId};

/// Tracks the utilization of one MPS context.
///
/// * `assigned` utilization (Eq. 4–6) covers every task assigned to the
///   context and is used for offline load balancing;
/// * `active` low-priority utilization (Eq. 7) covers only LP jobs that have
///   been admitted and have not finished, and is what the online admission
///   test charges against.
#[derive(Debug, Clone, Default)]
pub struct ContextLoad {
    /// Streams available in this context (`Ns`), the admission-test capacity.
    streams: u32,
    /// Assigned utilization per task (both priorities), keyed by task.
    assigned: HashMap<TaskId, (Priority, f64)>,
    /// Active (admitted, unfinished) jobs and the utilization they charge.
    active: HashMap<JobId, (Priority, f64)>,
}

impl ContextLoad {
    /// Creates a load tracker for a context with `streams` streams.
    pub fn new(streams: u32) -> Self {
        ContextLoad { streams, assigned: HashMap::new(), active: HashMap::new() }
    }

    /// The context capacity used by the admission test (`Ns`).
    pub fn capacity(&self) -> f64 {
        f64::from(self.streams)
    }

    /// Assigns a task to this context with utilization `util` (offline phase
    /// or migration bookkeeping).
    pub fn assign_task(&mut self, task: TaskId, priority: Priority, util: f64) {
        self.assigned.insert(task, (priority, util));
    }

    /// Removes a task assignment (migration away from this context).
    pub fn unassign_task(&mut self, task: TaskId) {
        self.assigned.remove(&task);
    }

    /// Updates the recorded utilization of an assigned task (MRET drift).
    pub fn update_task_util(&mut self, task: TaskId, util: f64) {
        if let Some(entry) = self.assigned.get_mut(&task) {
            entry.1 = util;
        }
    }

    /// Whether the task is assigned to this context.
    pub fn has_task(&self, task: TaskId) -> bool {
        self.assigned.contains_key(&task)
    }

    /// Total assigned utilization of one priority class
    /// (`U^{h,t}_k` / `U^{l,t}_k`, Eq. 4–5).
    pub fn assigned_util(&self, priority: Priority) -> f64 {
        self.assigned.values().filter(|(p, _)| *p == priority).map(|(_, u)| u).sum()
    }

    /// Total assigned utilization (Eq. 6).
    pub fn total_util(&self) -> f64 {
        self.assigned.values().map(|(_, u)| u).sum()
    }

    /// Registers an admitted job as active, charging `util`.
    pub fn activate_job(&mut self, job: JobId, priority: Priority, util: f64) {
        self.active.insert(job, (priority, util));
    }

    /// Releases an active job's utilization (completion or abandonment).
    pub fn deactivate_job(&mut self, job: JobId) {
        self.active.remove(&job);
    }

    /// Active utilization of one priority class (`U^{l,a}_k` for LP, Eq. 7).
    pub fn active_util(&self, priority: Priority) -> f64 {
        self.active.values().filter(|(p, _)| *p == priority).map(|(_, u)| u).sum()
    }

    /// Number of active jobs of a priority class.
    pub fn active_jobs(&self, priority: Priority) -> usize {
        self.active.values().filter(|(p, _)| *p == priority).count()
    }

    /// Remaining utilization available to LP jobs (Eq. 11):
    /// `U^r_k = Ns - U^{h,t}_k`.
    pub fn remaining_for_lp(&self) -> f64 {
        self.capacity() - self.assigned_util(Priority::High)
    }

    /// The LP admission test (Eq. 12): admit a job of utilization `util` iff
    /// `U^{l,a}_k + u_j < U^r_k`.
    pub fn admits_lp(&self, util: f64) -> bool {
        self.active_util(Priority::Low) + util < self.remaining_for_lp()
    }

    /// The HP admission test used by the `Overload+HPA` mode: admit iff the
    /// total active utilization plus the job stays below the context
    /// capacity.
    pub fn admits_hp(&self, util: f64) -> bool {
        self.active_util(Priority::High) + self.active_util(Priority::Low) + util < self.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(task: u32, idx: u64) -> JobId {
        JobId { task: TaskId(task), release_index: idx }
    }

    #[test]
    fn assigned_utilization_by_class() {
        let mut load = ContextLoad::new(2);
        load.assign_task(TaskId(0), Priority::High, 0.3);
        load.assign_task(TaskId(1), Priority::High, 0.2);
        load.assign_task(TaskId(2), Priority::Low, 0.4);
        assert!((load.assigned_util(Priority::High) - 0.5).abs() < 1e-9);
        assert!((load.assigned_util(Priority::Low) - 0.4).abs() < 1e-9);
        assert!((load.total_util() - 0.9).abs() < 1e-9);
        assert!(load.has_task(TaskId(2)));
        load.unassign_task(TaskId(2));
        assert!(!load.has_task(TaskId(2)));
        assert!((load.total_util() - 0.5).abs() < 1e-9);
        load.update_task_util(TaskId(0), 0.6);
        assert!((load.assigned_util(Priority::High) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn admission_test_matches_equations_11_and_12() {
        let mut load = ContextLoad::new(2);
        // HP tasks reserve 0.8 of the 2.0 capacity.
        load.assign_task(TaskId(0), Priority::High, 0.5);
        load.assign_task(TaskId(1), Priority::High, 0.3);
        assert!((load.remaining_for_lp() - 1.2).abs() < 1e-9);
        // 0.7 active LP: a 0.4 job fits (0.7 + 0.4 < 1.2), a 0.6 job does not.
        load.activate_job(job(5, 0), Priority::Low, 0.7);
        assert!(load.admits_lp(0.4));
        assert!(!load.admits_lp(0.6));
        // Completion frees the utilization.
        load.deactivate_job(job(5, 0));
        assert!(load.admits_lp(0.6));
        assert_eq!(load.active_jobs(Priority::Low), 0);
    }

    #[test]
    fn hp_admission_uses_total_active_load() {
        let mut load = ContextLoad::new(1);
        load.activate_job(job(0, 0), Priority::High, 0.6);
        assert!(load.admits_hp(0.3));
        assert!(!load.admits_hp(0.5));
        load.activate_job(job(1, 0), Priority::Low, 0.3);
        assert!(!load.admits_hp(0.2));
    }

    #[test]
    fn empty_context_admits_up_to_capacity() {
        let load = ContextLoad::new(3);
        assert!(load.admits_lp(2.9));
        assert!(!load.admits_lp(3.0));
        assert_eq!(load.active_jobs(Priority::High), 0);
    }
}
