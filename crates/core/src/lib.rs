#![forbid(unsafe_code)]
//! # daris-core
//!
//! The DARIS scheduler: a deadline-aware, priority-based, spatio-temporal
//! scheduler for multi-tenant real-time DNN inference on a (simulated) GPU,
//! reproducing Babaei & Chantem, *DARIS*, DAC 2025.
//!
//! The scheduler combines:
//!
//! * **Spatial sharing** — MPS contexts with per-context SM quotas computed
//!   from the oversubscription level (Eq. 9) plus CUDA streams inside each
//!   context ([`GpuPartition`], [`PartitionPolicy`]).
//! * **Temporal sharing** — *staging*: each DNN is split into stages and the
//!   scheduler only dispatches one stage at a time per job, creating
//!   coarse-grained preemption points (Sec. III-B1).
//! * **MRET** — per-stage Maximum Recent Execution Time over a sliding window
//!   as an optimistic dynamic WCET estimate (Eq. 1–2), initialized from an
//!   Average Full-load Execution Time (AFET) profiling pass (Eq. 10).
//! * **Virtual deadlines** — each stage receives a share of the task deadline
//!   proportional to its MRET (Eq. 8).
//! * **Admission control & migration** — low-priority jobs take a
//!   utilization-based admission test per context (Eq. 11–12) and migrate to
//!   the context with the earliest predicted finish time when their own
//!   context is full; high-priority jobs are always admitted unless the
//!   `Overload+HPA` mode is enabled (Sec. VI-I).
//! * **Stage scheduling** — eight fixed priority levels (task priority ×
//!   last-stage × predecessor-missed) with EDF inside each level
//!   (Sec. IV-B2).
//!
//! # Example
//!
//! ```
//! use daris_core::{DarisConfig, DarisScheduler, GpuPartition};
//! use daris_workload::TaskSet;
//! use daris_models::DnnKind;
//! use daris_gpu::SimTime;
//!
//! # fn main() -> Result<(), daris_core::CoreError> {
//! let taskset = TaskSet::table2(DnnKind::UNet);
//! let config = DarisConfig::new(GpuPartition::mps(6, 2.0));
//! let mut scheduler = DarisScheduler::new(&taskset, config)?;
//! let outcome = scheduler.run_until(SimTime::from_millis(300));
//! assert!(outcome.summary.throughput_jps > 0.0);
//! assert_eq!(outcome.summary.high.rejected, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod afet;
mod config;
mod error;
mod mret;
mod offline;
mod runspec;
mod scheduler;
mod stage_queue;
mod traits;
mod utilization;
mod vdeadline;

pub use afet::AfetProfiler;
pub use config::{AblationFlags, DarisConfig, GpuPartition, PartitionPolicy};
pub use error::CoreError;
pub use mret::MretEstimator;
pub use offline::{assignment_by_context, populate_contexts};
pub use runspec::{RunSpec, Workload};
pub use scheduler::{DarisScheduler, ExperimentOutcome, MretSample, AFET_INFLATION};
pub use stage_queue::{ReadyStage, StageQueue};
pub use traits::Scheduler;
pub use utilization::ContextLoad;
pub use vdeadline::virtual_deadlines;

/// Convenience result alias.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;
