//! The [`Scheduler`] trait: the stepping surface a driver needs to run any
//! scheduling policy — DARIS or a baseline — against a simulated GPU.
//!
//! The trait is extracted verbatim from [`DarisScheduler`]'s public stepping
//! API, which `daris-cluster`'s dispatcher already consumed method-for-method.
//! Anything that can implement these methods can be:
//!
//! * driven standalone via the provided [`run`](Scheduler::run) /
//!   [`run_with_source`](Scheduler::run_with_source) loops,
//! * fanned out across a fleet by `ClusterDispatcher`, which steps one
//!   scheduler per device in fixed synchronization rounds, and
//! * swept by the `scheduler_comparison` bench runner against the full
//!   scenario grid.
//!
//! # Contract
//!
//! Implementations must be **deterministic**: the same construction inputs
//! and the same call sequence must produce byte-identical outcomes (this is
//! what lets the cluster pool run devices on any number of worker threads).
//! Time never goes backwards: callers only pass non-decreasing targets to
//! [`advance_to`](Scheduler::advance_to). Releases are only offered for
//! tasks of the scheduler's own [`taskset`](Scheduler::taskset) (locally
//! re-homed via [`adopt_task`](Scheduler::adopt_task) for guests).
//!
//! The provided [`run_span`](Scheduler::run_span) default is the canonical
//! event loop — releases and device events interleaved in exact time order —
//! shared by every policy, so a comparison between two schedulers compares
//! *policies*, never loop plumbing.

use daris_gpu::SimTime;
use daris_workload::{
    ArrivalSource, ArrivalStream, Job, JobId, Priority, TaskId, TaskSet, TaskSpec,
};

use crate::runspec::{RunSpec, Workload};
use crate::{CoreError, ExperimentOutcome, Result};

/// A deadline-aware scheduler bound to one simulated device.
///
/// See the [module docs](self) for the determinism contract. The required
/// methods are the primitive stepping surface; the provided methods compose
/// them into the standard standalone run loops.
pub trait Scheduler {
    /// The scheduler's current simulated time.
    fn now(&self) -> SimTime;

    /// Earliest pending device event, if any.
    fn next_event_time(&self) -> Option<SimTime>;

    /// Advances the simulated device to `target` (non-decreasing),
    /// processing every completion on the way, without dispatching queued
    /// work — call [`dispatch_ready`](Self::dispatch_ready) afterwards.
    fn advance_to(&mut self, target: SimTime);

    /// Dispatches ready work onto idle streams, most urgent first (by the
    /// policy's own notion of urgency).
    fn dispatch_ready(&mut self);

    /// Releases `job`, applying the policy's admission test. Returns `false`
    /// — recording *nothing* — when the job is rejected, so a cluster
    /// dispatcher can retry it on another device before charging the
    /// rejection somewhere via [`reject_job`](Self::reject_job). Policies
    /// without admission control simply always accept.
    fn try_release_job(&mut self, job: Job) -> bool;

    /// Records `job` as rejected here, for exactly-once accounting.
    fn reject_job(&mut self, job: &Job);

    /// Whether a release of `task` at `priority` would currently be
    /// admitted. Policies without admission control return `true` for every
    /// task of their set.
    fn would_admit(&self, task: TaskId, priority: Priority) -> bool;

    /// Registers a *guest* task (placed on another device, admitted or
    /// migrated here by a cluster dispatcher) and returns its local id.
    ///
    /// # Errors
    ///
    /// Returns an error when the device cannot host the task (e.g. its
    /// model's weights do not fit in device memory).
    fn adopt_task(&mut self, task: &TaskSpec) -> Result<TaskId>;

    /// Withdraws an admitted job on which no work has started yet, removing
    /// every trace of it, and returns the job so it can be re-released on
    /// another device. Returns `None` once any work has been dispatched:
    /// partially executed jobs never migrate across devices.
    fn withdraw_queued_job(&mut self, job: JobId) -> Option<Job>;

    /// Jobs eligible for cross-device migration — admitted, no work started
    /// — least urgent first.
    fn migratable_jobs(&self) -> Vec<JobId>;

    /// Number of queued (undispatched) units of ready work.
    fn queue_backlog(&self) -> usize;

    /// Number of currently idle streams.
    fn idle_stream_count(&self) -> usize;

    /// Fraction of device capacity charged by currently active jobs, in
    /// `[0, 1]`-ish (the load signal a dispatcher ranks retry candidates
    /// by). Policies without a utilization model may approximate.
    fn active_load_fraction(&self) -> f64;

    /// Simulated device events processed so far (perf accounting).
    fn events_processed(&self) -> u64;

    /// The task set this scheduler was built over (plus adopted guests).
    fn taskset(&self) -> &TaskSet;

    /// Final accounting: advances to `horizon` and produces the outcome.
    fn finish(&mut self, horizon: SimTime) -> ExperimentOutcome;

    /// Runs the device-local event loop — completions, releases from
    /// `arrivals`, dispatch, in exact time order — up to (but not
    /// including) `until`. Releases the admission test rejects are pushed
    /// to `rejected` instead of being recorded, so an external driver can
    /// retry them elsewhere; a standalone run charges them via
    /// [`reject_job`](Self::reject_job).
    ///
    /// Everything strictly before `until` is handled at its exact simulated
    /// time; events at or after `until` stay pending. Driving consecutive
    /// spans is byte-identical to one big span.
    ///
    /// The default body is the canonical loop [`DarisScheduler`] has always
    /// run; override only to delegate to an inherent twin (as
    /// [`DarisScheduler`] does), never to change semantics.
    ///
    /// [`DarisScheduler`]: crate::DarisScheduler
    fn run_span(
        &mut self,
        arrivals: &mut dyn ArrivalSource,
        until: SimTime,
        rejected: &mut Vec<Job>,
    ) {
        loop {
            let next_release = arrivals.next_release().filter(|r| *r < until);
            let device_next = self.next_event_time().filter(|t| *t < until);
            let step_to = match (next_release, device_next) {
                (Some(r), Some(g)) => r.min(g),
                (Some(r), None) => r,
                (None, Some(g)) => g,
                (None, None) => break,
            };
            self.advance_to(step_to);
            while arrivals.next_release().map(|r| r <= self.now()).unwrap_or(false) {
                let job = arrivals.next_job().expect("a pending release was peeked");
                if !self.try_release_job(job) {
                    rejected.push(job);
                }
            }
            self.dispatch_ready();
        }
    }

    /// Runs until `horizon` pulling releases from an arbitrary
    /// [`ArrivalSource`], charging rejected releases here (standalone
    /// single-device accounting).
    fn run_with_source(
        &mut self,
        arrivals: &mut dyn ArrivalSource,
        horizon: SimTime,
    ) -> ExperimentOutcome {
        let mut rejected = Vec::new();
        self.run_span(arrivals, horizon, &mut rejected);
        for job in &rejected {
            self.reject_job(job);
        }
        self.finish(horizon)
    }

    /// Runs the workload described by `spec` to its horizon — the one
    /// standalone entry point behind which the legacy `run_until` /
    /// `run_with_source` / `run_trace` sprawl now lives.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the spec has no horizon
    /// (periodic/generated workloads require [`RunSpec::until`]) and
    /// [`CoreError::Trace`] when a replayed trace refers to tasks this
    /// scheduler's set does not contain.
    fn run(&mut self, spec: &RunSpec) -> Result<ExperimentOutcome>
    where
        Self: Sized,
    {
        let taskset = self.taskset().clone();
        match spec.workload() {
            Workload::Periodic { jitter } => {
                let horizon = spec.required_horizon()?;
                let mut stream = ArrivalStream::with_jitter(&taskset, horizon, *jitter);
                Ok(self.run_with_source(&mut stream, horizon))
            }
            Workload::Generated(gen) => {
                let horizon = spec.required_horizon()?;
                let mut stream = gen.stream(&taskset, horizon);
                Ok(self.run_with_source(&mut stream, horizon))
            }
            Workload::Replay(trace) => {
                let horizon = spec.horizon().unwrap_or_else(|| trace.horizon());
                let mut player =
                    daris_workload::TracePlayer::new(&taskset, trace).map_err(CoreError::Trace)?;
                Ok(self.run_with_source(&mut player, horizon))
            }
        }
    }
}
