//! Virtual deadlines for stages (Eq. 8, Fig. 2).

use daris_gpu::SimDuration;

/// Splits a task's relative deadline across its stages in proportion to their
/// MRETs (Eq. 8): `D_{i,j} = mret_{i,j} / mret_i * D_i`.
///
/// Returns the *cumulative* relative deadlines, i.e. the offset from the
/// job's release by which stage `j` should have finished; the last entry
/// equals `relative_deadline` (up to rounding). If every MRET is zero the
/// deadline is split evenly.
///
/// ```
/// use daris_core::virtual_deadlines;
/// use daris_gpu::SimDuration;
///
/// let mrets = vec![SimDuration::from_millis(1), SimDuration::from_millis(3)];
/// let vd = virtual_deadlines(&mrets, SimDuration::from_millis(40));
/// assert_eq!(vd[0], SimDuration::from_millis(10));
/// assert_eq!(vd[1], SimDuration::from_millis(40));
/// ```
pub fn virtual_deadlines(
    stage_mrets: &[SimDuration],
    relative_deadline: SimDuration,
) -> Vec<SimDuration> {
    let n = stage_mrets.len();
    if n == 0 {
        return Vec::new();
    }
    let total: f64 = stage_mrets.iter().map(|d| d.as_micros_f64()).sum();
    let deadline_us = relative_deadline.as_micros_f64();
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0.0;
    for (j, mret) in stage_mrets.iter().enumerate() {
        // daris-lint: allow(D005, reason = "n is a stage count (small exact-in-f64 integer); the share is a deterministic ratio evaluated in a fixed stage order, not accumulated time")
        let share = if total > 0.0 { mret.as_micros_f64() / total } else { 1.0 / n as f64 };
        acc += share * deadline_us;
        if j + 1 == n {
            // Avoid rounding drift on the last stage: it owns the full deadline.
            cumulative.push(relative_deadline);
        } else {
            cumulative.push(SimDuration::from_micros_f64(acc));
        }
    }
    cumulative
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn shares_are_proportional_to_mret() {
        let vd = virtual_deadlines(&[ms(2), ms(2), ms(4), ms(2)], ms(100));
        assert_eq!(vd.len(), 4);
        assert_eq!(vd[0], ms(20));
        assert_eq!(vd[1], ms(40));
        assert_eq!(vd[2], ms(80));
        assert_eq!(vd[3], ms(100));
    }

    #[test]
    fn cumulative_deadlines_are_monotone_and_end_at_deadline() {
        let vd = virtual_deadlines(&[ms(5), ms(1), ms(7)], ms(33));
        for w in vd.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*vd.last().unwrap(), ms(33));
    }

    #[test]
    fn zero_mrets_split_evenly() {
        let vd = virtual_deadlines(&[SimDuration::ZERO; 4], ms(40));
        assert_eq!(vd[0], ms(10));
        assert_eq!(vd[3], ms(40));
    }

    #[test]
    fn empty_and_single_stage() {
        assert!(virtual_deadlines(&[], ms(10)).is_empty());
        let vd = virtual_deadlines(&[ms(3)], ms(10));
        assert_eq!(vd, vec![ms(10)]);
    }
}
