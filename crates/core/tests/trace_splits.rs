//! Property tests for the trace-driven scheduler path:
//!
//! * replaying a trace through randomly chosen `run_span` splits never
//!   changes the outcome — for every generator shape *and* for jittered
//!   recordings whose bounded out-of-order window is non-zero, driving the
//!   replay in arbitrary `advance_to`/`run_span` pieces is byte-identical to
//!   one uninterrupted replay;
//! * randomly reordered traces that exceed their declared lookahead bound —
//!   or whose bound reaches the horizon — are rejected loudly, never
//!   replayed wrong (the trace-path extension of the PR 4 jitter ≥ horizon
//!   rejection).

use daris_core::{DarisConfig, DarisScheduler, GpuPartition};
use daris_gpu::{SimDuration, SimTime, XorShiftRng};
use daris_models::DnnKind;
use daris_workload::{
    ArrivalStream, BurstyConfig, CorrelatedConfig, DiurnalConfig, GenSpec, ReleaseJitter, TaskId,
    TaskSet, Trace, TraceError, TraceEvent, TracePlayer,
};
use proptest::prelude::*;

const HORIZON_MS: u64 = 120;

/// A trace of the chosen shape: three seeded generators plus a jittered
/// periodic recording (the one shape with a non-zero out-of-order window).
fn trace_of(kind: usize, seed: u64, taskset: &TaskSet, horizon: SimTime) -> Trace {
    match kind % 4 {
        0 => {
            GenSpec::Bursty(BurstyConfig { seed, ..Default::default() }).generate(taskset, horizon)
        }
        1 => GenSpec::Diurnal(DiurnalConfig { seed, ..Default::default() })
            .generate(taskset, horizon),
        2 => GenSpec::Correlated(CorrelatedConfig { seed, ..Default::default() })
            .generate(taskset, horizon),
        _ => {
            let jitter =
                ReleaseJitter::Uniform { max: SimDuration::from_millis(HORIZON_MS / 2), seed };
            Trace::record(&mut ArrivalStream::with_jitter(taskset, horizon, jitter), horizon)
                .expect("bounded-jitter recordings are valid")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random `advance_to`/`run_span` splits never change the completions of
    /// a trace replay.
    #[test]
    fn trace_replay_is_invariant_under_random_splits(
        seed in 0u64..1_000_000,
        kind in 0usize..4,
        n_splits in 1usize..6,
    ) {
        let taskset = TaskSet::table2(DnnKind::UNet);
        let horizon = SimTime::from_millis(HORIZON_MS);
        let trace = trace_of(kind, seed, &taskset, horizon);
        prop_assert!(!trace.is_empty());
        if kind % 4 == 3 {
            prop_assert!(trace.lookahead() > SimDuration::ZERO,
                "wide jitter must exercise the out-of-order window");
        }
        let config = DarisConfig::new(GpuPartition::mps(4, 4.0));

        let mut reference = DarisScheduler::new(&taskset, config.clone()).expect("builds");
        let expected = reference.run_trace(&trace).expect("trace binds to its set");

        // Drive the same replay in random pieces.
        let mut rng = XorShiftRng::new(seed ^ 0x5711);
        let mut splits: Vec<SimTime> = (0..n_splits)
            .map(|_| SimTime::from_micros(rng.next_below(HORIZON_MS * 1_000)))
            .collect();
        splits.sort_unstable();
        splits.push(horizon);

        let mut split_run = DarisScheduler::new(&taskset, config).expect("builds");
        let mut player = TracePlayer::new(&taskset, &trace).expect("binds");
        let mut rejected = Vec::new();
        for until in splits {
            split_run.run_span(&mut player, until, &mut rejected);
        }
        for job in &rejected {
            split_run.reject_job(job);
        }
        let actual = split_run.finish(horizon);
        prop_assert_eq!(actual.summary, expected.summary,
            "split replay diverged (kind {}, seed {seed})", kind % 4);
        prop_assert_eq!(split_run.events_processed(), reference.events_processed());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Traces that violate the lookahead bound are rejected loudly: a random
    /// within-task reorder wider than the declared bound never constructs,
    /// and an honest bound at or past the horizon never constructs either.
    #[test]
    fn lookahead_violations_are_rejected_loudly(
        seed in 0u64..1_000_000,
        gap_us in 100u64..40_000,
    ) {
        let mut rng = XorShiftRng::new(seed);
        let horizon = SimTime::from_millis(50);
        // Two releases of one task, indices swapped in time: index 1 first,
        // index 0 trailing `gap_us` behind.
        let first = 1_000 + rng.next_below(5_000);
        let events = vec![
            TraceEvent {
                task: TaskId(0),
                release_index: 1,
                release: SimTime::from_micros(first),
                deadline: SimTime::from_micros(first + 100),
            },
            TraceEvent {
                task: TaskId(0),
                release_index: 0,
                release: SimTime::from_micros(first + gap_us),
                deadline: SimTime::from_micros(first + gap_us + 100),
            },
        ];

        // Declared bound strictly below the measured reorder width: loud.
        let declared = SimDuration::from_micros(gap_us - 1);
        let err = Trace::new(horizon, declared, events.clone());
        prop_assert!(
            matches!(err, Err(TraceError::LookaheadExceeded { .. })),
            "{err:?}"
        );

        // Honest bound: fine.
        prop_assert!(Trace::new(horizon, SimDuration::from_micros(gap_us), events.clone()).is_ok());

        // Bound at/past the horizon: loud, like jitter >= horizon on the
        // lazy stream.
        let err = Trace::new(horizon, SimDuration::from_millis(50), events);
        prop_assert!(
            matches!(err, Err(TraceError::LookaheadNotBelowHorizon { .. })),
            "{err:?}"
        );
    }
}
