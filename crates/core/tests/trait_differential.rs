//! The differential suite behind the `Scheduler` trait extraction: DARIS
//! driven *through the trait* (the code path the cluster dispatcher and the
//! comparison harness use) is byte-identical to the direct inherent path,
//! for every workload shape. The trait impl is pure delegation, so any
//! digest drift here means the refactor changed scheduling behaviour.

use std::hash::{DefaultHasher, Hash, Hasher};

use daris_core::{
    DarisConfig, DarisScheduler, ExperimentOutcome, GpuPartition, RunSpec, Scheduler,
};
use daris_gpu::{SimDuration, SimTime};
use daris_models::DnnKind;
use daris_workload::{ArrivalStream, BurstyConfig, GenSpec, ReleaseJitter, TaskSet, Trace};

fn digest(outcome: &ExperimentOutcome) -> u64 {
    let mut hasher = DefaultHasher::new();
    format!("{:?}", outcome.summary).hash(&mut hasher);
    outcome.config_label.hash(&mut hasher);
    hasher.finish()
}

fn scheduler(taskset: &TaskSet) -> DarisScheduler {
    DarisScheduler::new(taskset, DarisConfig::new(GpuPartition::mps(6, 6.0)))
        .expect("valid configuration")
}

/// Drives a scheduler through the trait surface only — the exact generic
/// entry point the comparison harness uses.
fn run_via_trait<S: Scheduler>(scheduler: &mut S, spec: &RunSpec) -> ExperimentOutcome {
    scheduler.run(spec).expect("run spec is valid")
}

#[test]
fn periodic_run_via_trait_matches_direct_run_until() {
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    let horizon = SimTime::from_millis(300);
    let direct = scheduler(&taskset).run_until(horizon);
    let via_trait = run_via_trait(&mut scheduler(&taskset), &RunSpec::periodic().until(horizon));
    assert_eq!(digest(&direct), digest(&via_trait), "trait path diverged from run_until");
}

#[test]
fn jittered_run_via_trait_matches_direct_source_loop() {
    let taskset = TaskSet::table2(DnnKind::UNet);
    let horizon = SimTime::from_millis(250);
    let jitter = ReleaseJitter::Uniform { max: SimDuration::from_millis(2), seed: 42 };
    let mut arrivals = ArrivalStream::with_jitter(&taskset, horizon, jitter);
    let direct = scheduler(&taskset).run_with_source(&mut arrivals, horizon);
    let via_trait =
        run_via_trait(&mut scheduler(&taskset), &RunSpec::jittered(jitter).until(horizon));
    assert_eq!(digest(&direct), digest(&via_trait), "trait path diverged on jittered arrivals");
}

#[test]
fn generated_run_via_trait_matches_direct_source_loop() {
    let taskset = TaskSet::table2(DnnKind::InceptionV3);
    let horizon = SimTime::from_millis(250);
    let spec = GenSpec::Bursty(BurstyConfig::default());
    let mut stream = spec.stream(&taskset, horizon);
    let direct = scheduler(&taskset).run_with_source(&mut stream, horizon);
    let via_trait =
        run_via_trait(&mut scheduler(&taskset), &RunSpec::generated(spec).until(horizon));
    assert_eq!(digest(&direct), digest(&via_trait), "trait path diverged on generated arrivals");
}

#[test]
fn replay_run_via_trait_matches_direct_run_trace() {
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    let horizon = SimTime::from_millis(250);
    let mut source = ArrivalStream::new(&taskset, horizon);
    let trace = Trace::record(&mut source, horizon).expect("trace records");
    let direct = scheduler(&taskset).run_trace(&trace).expect("trace replays");
    let via_trait = run_via_trait(&mut scheduler(&taskset), &RunSpec::replay(trace));
    assert_eq!(digest(&direct), digest(&via_trait), "trait path diverged on trace replay");
}
