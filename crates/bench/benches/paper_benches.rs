//! Criterion benchmarks covering every table/figure of the paper: each bench
//! runs the corresponding experiment at a short simulated horizon so that
//! `cargo bench` exercises the full reproduction pipeline end to end. The
//! full-length numbers (the ones recorded in `EXPERIMENTS.md`) come from the
//! `reproduce_all` binary.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use daris_bench::{run_daris_until, str_partitions};
use daris_core::{AblationFlags, DarisConfig, GpuPartition};
use daris_gpu::SimTime;
use daris_models::{DnnKind, ModelProfile};
use daris_workload::{RatioScenario, TaskSet};

/// Short horizon for benchmark iterations.
fn bench_horizon() -> SimTime {
    SimTime::from_millis(120)
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("table1_batching_sweep", |b| {
        b.iter(|| {
            for kind in DnnKind::all() {
                let profile = ModelProfile::calibrated(kind);
                std::hint::black_box(profile.best_batched_jps());
            }
        })
    });
    group.finish();
}

fn bench_fig4_to_6_tasksets(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_5_6_tasksets");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for kind in DnnKind::task_set_kinds() {
        let taskset = TaskSet::table2(kind);
        group.bench_function(format!("{kind}_mps_6x1_os6"), |b| {
            b.iter(|| {
                run_daris_until(
                    &taskset,
                    DarisConfig::new(GpuPartition::mps(6, 6.0)),
                    bench_horizon(),
                )
            })
        });
        group.bench_function(format!("{kind}_str_1x6"), |b| {
            b.iter(|| {
                run_daris_until(&taskset, DarisConfig::new(str_partitions()[2]), bench_horizon())
            })
        });
    }
    group.finish();
}

fn bench_fig7_mixed(c: &mut Criterion) {
    let taskset = TaskSet::mixed();
    let mut group = c.benchmark_group("fig7_mixed");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("mps_6x1_os6", |b| {
        b.iter(|| {
            run_daris_until(&taskset, DarisConfig::new(GpuPartition::mps(6, 6.0)), bench_horizon())
        })
    });
    group.finish();
}

fn bench_fig8_ablations(c: &mut Criterion) {
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    let mut group = c.benchmark_group("fig8_ablation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (name, flags) in AblationFlags::figure8_scenarios() {
        let label = name.replace(' ', "_").to_lowercase();
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = DarisConfig::new(GpuPartition::mps(6, 6.0)).with_ablation(flags);
                run_daris_until(&taskset, config, bench_horizon())
            })
        });
    }
    group.finish();
}

fn bench_fig9_mret_trace(c: &mut Criterion) {
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    let mut group = c.benchmark_group("fig9_mret");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("trace_6x1_os6", |b| {
        b.iter(|| {
            let config = DarisConfig::new(GpuPartition::mps(6, 6.0)).with_mret_trace();
            run_daris_until(&taskset, config, bench_horizon())
        })
    });
    group.finish();
}

fn bench_fig10_batched(c: &mut Criterion) {
    let taskset = TaskSet::table2(DnnKind::InceptionV3).with_paper_batch_sizes();
    let mut group = c.benchmark_group("fig10_batched");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("inception_batched_mps_6x1_os6", |b| {
        b.iter(|| {
            run_daris_until(&taskset, DarisConfig::new(GpuPartition::mps(6, 6.0)), bench_horizon())
        })
    });
    group.finish();
}

fn bench_fig11_overload(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_overload");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let taskset = TaskSet::with_ratio(DnnKind::ResNet18, RatioScenario::Overload, 0.75);
    group.bench_function("resnet18_hp75_overload_hpa", |b| {
        b.iter(|| {
            let config = DarisConfig::new(GpuPartition::mps(6, 6.0)).with_hp_admission();
            run_daris_until(&taskset, config, bench_horizon())
        })
    });
    group.finish();
}

fn bench_gslice_comparison(c: &mut Criterion) {
    let taskset = TaskSet::resnet50_comparison();
    let mut group = c.benchmark_group("sec6b_gslice");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("daris_resnet50_mps_6x1_os6", |b| {
        b.iter(|| {
            run_daris_until(&taskset, DarisConfig::new(GpuPartition::mps(6, 6.0)), bench_horizon())
        })
    });
    group.bench_function("gslice_resnet50", |b| {
        b.iter(|| {
            daris_baselines::GsliceServer::new(2)
                .run(&taskset, bench_horizon())
                .expect("gslice baseline runs")
        })
    });
    group.finish();
}

criterion_group!(
    paper,
    bench_table1,
    bench_fig4_to_6_tasksets,
    bench_fig7_mixed,
    bench_fig8_ablations,
    bench_fig9_mret_trace,
    bench_fig10_batched,
    bench_fig11_overload,
    bench_gslice_comparison
);
criterion_main!(paper);
