//! Criterion micro-benchmarks of the scheduler's hot-path primitives: the
//! admission test, the stage priority queue, MRET bookkeeping, virtual
//! deadline computation, offline context population and raw kernel
//! submission on the simulated GPU. These quantify the per-decision overhead
//! DARIS adds on top of the GPU work itself.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use daris_core::{
    populate_contexts, virtual_deadlines, AblationFlags, ContextLoad, MretEstimator, ReadyStage,
    StageQueue,
};
use daris_gpu::{Gpu, GpuSpec, KernelDesc, SimDuration, SimTime, WorkItem};
use daris_models::DnnKind;
use daris_workload::{JobId, Priority, TaskId, TaskSet};

fn bench_admission_test(c: &mut Criterion) {
    let mut load = ContextLoad::new(2);
    for i in 0..17u32 {
        load.assign_task(TaskId(i), Priority::High, 0.05);
    }
    for i in 0..30u32 {
        load.activate_job(JobId { task: TaskId(100 + i), release_index: 0 }, Priority::Low, 0.02);
    }
    c.bench_function("admission_test_eq11_12", |b| {
        b.iter(|| std::hint::black_box(load.admits_lp(std::hint::black_box(0.04))))
    });
}

fn bench_stage_queue(c: &mut Criterion) {
    c.bench_function("stage_queue_push_pop_64", |b| {
        b.iter(|| {
            let mut q = StageQueue::new(AblationFlags::full());
            for i in 0..64u32 {
                q.push(ReadyStage {
                    job: JobId { task: TaskId(i), release_index: 0 },
                    stage: (i % 4) as usize,
                    priority: if i % 3 == 0 { Priority::High } else { Priority::Low },
                    is_last_stage: i % 4 == 3,
                    predecessor_missed: i % 5 == 0,
                    edf_deadline: SimTime::from_micros(u64::from(i) * 37),
                });
            }
            while let Some(stage) = q.pop() {
                std::hint::black_box(stage);
            }
        })
    });
}

fn bench_mret_update(c: &mut Criterion) {
    let mut est = MretEstimator::new(5);
    est.seed(TaskId(0), vec![SimDuration::from_millis(1); 4]);
    let mut i = 0u64;
    c.bench_function("mret_record_and_query", |b| {
        b.iter(|| {
            i += 1;
            est.record(TaskId(0), (i % 4) as usize, SimDuration::from_micros(900 + i % 300));
            std::hint::black_box(est.task_mret(TaskId(0)))
        })
    });
}

fn bench_virtual_deadlines(c: &mut Criterion) {
    let mrets = vec![
        SimDuration::from_micros(400),
        SimDuration::from_micros(350),
        SimDuration::from_micros(500),
        SimDuration::from_micros(345),
    ];
    c.bench_function("virtual_deadline_eq8", |b| {
        b.iter(|| std::hint::black_box(virtual_deadlines(&mrets, SimDuration::from_millis(33))))
    });
}

fn bench_offline_population(c: &mut Criterion) {
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    c.bench_function("offline_populate_contexts_alg1", |b| {
        b.iter(|| std::hint::black_box(populate_contexts(taskset.tasks(), 6, |_| 0.08)))
    });
}

fn bench_gpu_submission(c: &mut Criterion) {
    c.bench_function("gpu_submit_and_complete_stage", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuSpec::rtx_2080_ti());
            let ctx = gpu.add_context(68).expect("context");
            let stream = gpu.add_stream(ctx).expect("stream");
            let item = WorkItem::new(0)
                .with_kernels((0..8).map(|_| KernelDesc::new(300.0, 32)))
                .with_h2d_bytes(602_112);
            gpu.submit(stream, item).expect("submit");
            std::hint::black_box(gpu.run_to_idle())
        })
    });
}

criterion_group! {
    name = overhead;
    config = Criterion::default().warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2)).sample_size(20);
    targets =
    bench_admission_test,
    bench_stage_queue,
    bench_mret_update,
    bench_virtual_deadlines,
    bench_offline_population,
    bench_gpu_submission
}
criterion_main!(overhead);
