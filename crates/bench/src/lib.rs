#![forbid(unsafe_code)]
//! # daris-bench
//!
//! Experiment runners that regenerate every table and figure of the DARIS
//! paper on the simulated substrate, plus Criterion micro-benchmarks of the
//! scheduler primitives.
//!
//! Each `figure*`/`table*` function runs the corresponding experiment and
//! returns one or more [`Table`]s formatted like the paper's plots (rows are
//! configurations, columns are the reported series). The binaries in
//! `src/bin/` are thin wrappers that print these tables; `reproduce_all`
//! prints the full paper-vs-measured report used to fill `EXPERIMENTS.md`.
//!
//! The simulated horizon per configuration defaults to 1.5 s and can be
//! overridden with the `DARIS_HORIZON_MS` environment variable (shorter for
//! smoke tests, longer for tighter statistics).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod comparison;
pub mod perf;

use daris_baselines::{BatchingServer, FifoMultiStreamServer, GsliceServer, SingleTenantServer};
use daris_cluster::{
    ClusterConfig, ClusterDispatcher, ClusterOutcome, ClusterSpec, PlacementStrategy,
};
use daris_core::{AblationFlags, DarisConfig, DarisScheduler, ExperimentOutcome, GpuPartition};
use daris_gpu::{GpuSpec, SimTime};
use daris_metrics::report::{fmt_num, fmt_pct, Table};
use daris_metrics::ExperimentSummary;
use daris_models::{DnnKind, ModelProfile, Table1Reference};
use daris_workload::{Priority, RatioScenario, TaskSet};

/// The one place `DARIS_HORIZON_MS` is parsed. A malformed value is a user
/// error that must not silently fall back to the default (it would quietly
/// run a 25x longer experiment than asked for).
///
/// # Panics
///
/// Panics with a clear message when the variable is set but not a whole
/// number of milliseconds.
fn horizon_override_ms() -> Option<u64> {
    match std::env::var("DARIS_HORIZON_MS") {
        Ok(value) => match value.trim().parse::<u64>() {
            Ok(ms) => Some(ms),
            Err(_) => {
                panic!("DARIS_HORIZON_MS must be a whole number of milliseconds, got {value:?}")
            }
        },
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(_)) => {
            panic!("DARIS_HORIZON_MS is set but is not valid unicode")
        }
    }
}

/// Parses a `--threads` argument shared by the runner binaries: a plain
/// count, with `0` meaning "one worker per available core".
///
/// # Panics
///
/// Panics with a clear message when the value is not a whole number.
pub fn parse_thread_count(raw: &str) -> usize {
    let threads: usize =
        raw.parse().unwrap_or_else(|_| panic!("--threads must be a number, got {raw:?}"));
    if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Simulated horizon for each configuration, from `DARIS_HORIZON_MS`
/// (default 1500 ms, floored at 50 ms).
///
/// # Panics
///
/// Panics if `DARIS_HORIZON_MS` is set to a malformed value.
pub fn horizon() -> SimTime {
    SimTime::from_millis(horizon_override_ms().unwrap_or(1500).max(50))
}

/// A test-suite horizon: `default_ms` capped by `DARIS_HORIZON_MS` (floored
/// at 50 ms) when the variable is set. Integration tests pick the shortest
/// horizon at which their claim holds deterministically and let the
/// environment cap them further for quick smoke runs.
///
/// # Panics
///
/// Panics if `DARIS_HORIZON_MS` is set to a malformed value.
pub fn horizon_capped_ms(default_ms: u64) -> u64 {
    match horizon_override_ms() {
        Some(cap) => default_ms.min(cap.max(50)),
        None => default_ms,
    }
}

/// Runs DARIS on `taskset` under `config` until [`horizon`].
///
/// # Panics
///
/// Panics if the configuration is invalid — experiment configurations are
/// hard-coded by the runners and a failure indicates a bug.
pub fn run_daris(taskset: &TaskSet, config: DarisConfig) -> ExperimentOutcome {
    run_daris_until(taskset, config, horizon())
}

/// Runs DARIS on `taskset` under `config` until an explicit horizon.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`run_daris`]).
pub fn run_daris_until(
    taskset: &TaskSet,
    config: DarisConfig,
    horizon: SimTime,
) -> ExperimentOutcome {
    let mut scheduler =
        DarisScheduler::new(taskset, config).expect("valid experiment configuration");
    scheduler.run_until(horizon)
}

/// The MPS partitions swept in Figs. 4–6: `Np ∈ {2,4,6,8,10}` contexts × 1
/// stream, `OS ∈ {1, 1.5, 2, Nc}`.
pub fn mps_partitions() -> Vec<GpuPartition> {
    let mut configs: Vec<GpuPartition> = Vec::new();
    for np in [2u32, 4, 6, 8, 10] {
        for os in [1.0, 1.5, 2.0, f64::from(np)] {
            let candidate = GpuPartition::mps(np, os);
            if !configs.iter().any(|c| c.label() == candidate.label()) {
                configs.push(candidate);
            }
        }
    }
    configs
}

/// The STR partitions swept in Figs. 4–6: one context, `Ns ∈ {2,4,6,8,10}`.
pub fn str_partitions() -> Vec<GpuPartition> {
    [2u32, 4, 6, 8, 10].into_iter().map(GpuPartition::str_streams).collect()
}

/// The MPS+STR partitions swept in Figs. 4–6 (`Nc × Ns ≤ 10`).
pub fn mps_str_partitions() -> Vec<GpuPartition> {
    let mut configs = Vec::new();
    for (nc, ns) in [(2u32, 2u32), (2, 3), (3, 3), (2, 4), (2, 5)] {
        for os in [1.0, 2.0] {
            configs.push(GpuPartition::mps_str(nc, ns, os));
        }
    }
    configs
}

fn summary_row(policy: &str, label: &str, summary: &ExperimentSummary) -> Vec<String> {
    vec![
        policy.to_owned(),
        label.to_owned(),
        fmt_num(summary.throughput_jps, 0),
        fmt_pct(summary.high.deadline_miss_rate),
        fmt_pct(summary.low.deadline_miss_rate),
        format!("{}", summary.low.rejected),
        fmt_pct(summary.gpu_utilization.unwrap_or(0.0)),
    ]
}

fn taskset_figure(
    title: &str,
    taskset: &TaskSet,
    reference_upper: f64,
    reference_lower: f64,
    batched: bool,
) -> Table {
    let mut table = Table::new(title);
    table.set_headers(["policy", "config", "JPS", "HP DMR", "LP DMR", "LP rejected", "GPU util"]);
    table.add_row([
        "baseline".to_owned(),
        "single DNN (lower)".to_owned(),
        fmt_num(reference_lower, 0),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    table.add_row([
        "baseline".to_owned(),
        "pure batching (upper)".to_owned(),
        fmt_num(reference_upper, 0),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    let ts = if batched { taskset.with_paper_batch_sizes() } else { taskset.clone() };
    for partition in str_partitions() {
        let outcome = run_daris(&ts, DarisConfig::new(partition));
        table.add_row(summary_row("STR", &partition.label(), &outcome.summary));
    }
    for partition in mps_partitions() {
        let outcome = run_daris(&ts, DarisConfig::new(partition));
        table.add_row(summary_row("MPS", &partition.label(), &outcome.summary));
    }
    for partition in mps_str_partitions() {
        let outcome = run_daris(&ts, DarisConfig::new(partition));
        table.add_row(summary_row("MPS+STR", &partition.label(), &outcome.summary));
    }
    table
}

/// Table I / Fig. 1: per-model unbatched and batched throughput and batching
/// gain, measured on the simulator, against the paper's values.
pub fn table1() -> Table {
    let mut table = Table::new("Table I / Fig. 1 — batching performance of different DNNs");
    table.set_headers([
        "DNN",
        "min JPS (measured)",
        "min JPS (paper)",
        "max JPS (measured)",
        "max JPS (paper)",
        "gain (measured)",
        "gain (paper)",
        "best batch",
    ]);
    for kind in DnnKind::all() {
        let reference = Table1Reference::for_kind(kind);
        let min_jps = SingleTenantServer::isolated_jps(kind, 25);
        let profile = ModelProfile::calibrated(kind);
        let (best_batch, max_jps) = profile.best_batched_jps();
        table.add_row([
            kind.to_string(),
            fmt_num(min_jps, 0),
            fmt_num(reference.min_jps, 0),
            fmt_num(max_jps, 0),
            fmt_num(reference.max_jps, 0),
            format!("{:.2}x", max_jps / min_jps),
            format!("{:.2}x", reference.gain()),
            best_batch.to_string(),
        ]);
    }
    table
}

/// Table II: the task sets used in the main experiments.
pub fn table2() -> Table {
    let mut table = Table::new("Table II — task sets");
    table.set_headers([
        "Name",
        "#High",
        "#Low",
        "Task JPS",
        "offered JPS",
        "overload vs upper baseline",
    ]);
    for kind in DnnKind::task_set_kinds() {
        let ts = TaskSet::table2(kind);
        let upper = Table1Reference::for_kind(kind).max_jps;
        let per_task = ts.tasks()[0].jobs_per_second();
        table.add_row([
            kind.to_string(),
            ts.count(Priority::High).to_string(),
            ts.count(Priority::Low).to_string(),
            fmt_num(per_task, 0),
            fmt_num(ts.offered_jps(), 0),
            format!("{:.0}%", 100.0 * ts.offered_jps() / upper),
        ]);
    }
    table
}

/// Fig. 4: scheduling results for the ResNet18 task set.
pub fn figure4_resnet18() -> Table {
    let reference = Table1Reference::for_kind(DnnKind::ResNet18);
    taskset_figure(
        "Fig. 4 — ResNet18 task set (throughput and LP deadline misses)",
        &TaskSet::table2(DnnKind::ResNet18),
        reference.max_jps,
        reference.min_jps,
        false,
    )
}

/// Fig. 5: scheduling results for the UNet task set.
pub fn figure5_unet() -> Table {
    let reference = Table1Reference::for_kind(DnnKind::UNet);
    taskset_figure(
        "Fig. 5 — UNet task set (throughput and LP deadline misses)",
        &TaskSet::table2(DnnKind::UNet),
        reference.max_jps,
        reference.min_jps,
        false,
    )
}

/// Fig. 6: scheduling results for the InceptionV3 task set.
pub fn figure6_inception() -> Table {
    let reference = Table1Reference::for_kind(DnnKind::InceptionV3);
    taskset_figure(
        "Fig. 6 — InceptionV3 task set (throughput and LP deadline misses)",
        &TaskSet::table2(DnnKind::InceptionV3),
        reference.max_jps,
        reference.min_jps,
        false,
    )
}

/// Fig. 7: the mixed task set (STR and MPS policies).
pub fn figure7_mixed() -> Table {
    let taskset = TaskSet::mixed();
    let mut table = Table::new("Fig. 7 — mixed task set (throughput and LP deadline misses)");
    table.set_headers(["policy", "config", "JPS", "HP DMR", "LP DMR", "LP rejected", "GPU util"]);
    for partition in str_partitions() {
        let outcome = run_daris(&taskset, DarisConfig::new(partition));
        table.add_row(summary_row("STR", &partition.label(), &outcome.summary));
    }
    for partition in mps_partitions() {
        let outcome = run_daris(&taskset, DarisConfig::new(partition));
        table.add_row(summary_row("MPS", &partition.label(), &outcome.summary));
    }
    table
}

/// Fig. 8: DARIS module contributions (response time and normalized
/// throughput for the five ablation scenarios).
pub fn figure8_ablation() -> Table {
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    let partition = GpuPartition::mps(6, 6.0);
    let mut rows = Vec::new();
    let mut daris_jps = 0.0f64;
    for (name, flags) in AblationFlags::figure8_scenarios() {
        let config = DarisConfig::new(partition).with_ablation(flags);
        let outcome = run_daris(&taskset, config);
        if name == "DARIS" {
            daris_jps = outcome.summary.throughput_jps;
        }
        rows.push((name, outcome.summary));
    }
    let mut table = Table::new("Fig. 8 — module contribution (ResNet18, MPS 6x1 OS6)");
    table.set_headers([
        "scenario",
        "normalized JPS",
        "HP resp mean/max (ms)",
        "LP resp mean/max (ms)",
        "HP DMR",
        "LP DMR",
    ]);
    for (name, summary) in rows {
        table.add_row([
            name.to_owned(),
            fmt_num(summary.throughput_jps / daris_jps.max(1e-9), 2),
            format!("{:.1}/{:.1}", summary.high.response.mean_ms, summary.high.response.max_ms),
            format!("{:.1}/{:.1}", summary.low.response.mean_ms, summary.low.response.max_ms),
            fmt_pct(summary.high.deadline_miss_rate),
            fmt_pct(summary.low.deadline_miss_rate),
        ]);
    }
    table
}

/// Fig. 9: execution time vs MRET for ResNet18 under the best-throughput
/// (6×1 OS6) and worst-DMR (3×3 OS1) configurations, plus a window-size
/// sweep (the paper motivates `ws = 5`).
pub fn figure9_mret() -> Vec<Table> {
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    let mut trace_table = Table::new("Fig. 9 — execution time vs MRET (ResNet18)");
    trace_table.set_headers([
        "config",
        "stage samples",
        "mean exec (ms)",
        "mean MRET (ms)",
        "MRET underestimates",
        "mean overestimation",
    ]);
    for partition in [GpuPartition::mps(6, 6.0), GpuPartition::mps_str(3, 3, 1.0)] {
        let config = DarisConfig::new(partition).with_mret_trace();
        let outcome = run_daris(&taskset, config);
        let samples = &outcome.mret_trace;
        let n = samples.len().max(1) as f64;
        let mean_actual: f64 = samples.iter().map(|s| s.actual.as_millis_f64()).sum::<f64>() / n;
        let mean_pred: f64 = samples.iter().map(|s| s.predicted.as_millis_f64()).sum::<f64>() / n;
        let under = samples.iter().filter(|s| s.actual > s.predicted).count() as f64 / n;
        trace_table.add_row([
            partition.label(),
            samples.len().to_string(),
            fmt_num(mean_actual, 2),
            fmt_num(mean_pred, 2),
            fmt_pct(under),
            format!("{:.2}x", mean_pred / mean_actual.max(1e-9)),
        ]);
    }

    let mut ws_table = Table::new("MRET window-size sweep (ResNet18, MPS 6x1 OS6)");
    ws_table.set_headers(["ws", "JPS", "HP DMR", "LP DMR"]);
    for ws in [1usize, 3, 5, 10, 20] {
        let config = DarisConfig::new(GpuPartition::mps(6, 6.0)).with_window_size(ws);
        let outcome = run_daris(&taskset, config);
        ws_table.add_row([
            ws.to_string(),
            fmt_num(outcome.summary.throughput_jps, 0),
            fmt_pct(outcome.summary.high.deadline_miss_rate),
            fmt_pct(outcome.summary.low.deadline_miss_rate),
        ]);
    }
    vec![trace_table, ws_table]
}

/// Fig. 10: DARIS with batched inputs (batch sizes 4/2/8), absolute
/// throughput, gain over the unbatched main experiment, and LP DMR.
pub fn figure10_batching() -> Vec<Table> {
    let mut tables = Vec::new();
    for kind in DnnKind::task_set_kinds() {
        let taskset = TaskSet::table2(kind);
        let upper = Table1Reference::for_kind(kind).max_jps;
        let batch = kind.paper_batch_size();
        let mut table = Table::new(format!(
            "Fig. 10 — {kind} with batch size {batch} (vs upper baseline {upper:.0} JPS)"
        ));
        table.set_headers(["config", "batched JPS", "gain vs unbatched", "HP DMR", "LP DMR"]);
        for np in [2u32, 4, 6, 8] {
            for os in [1.0, 2.0, f64::from(np)] {
                let partition = GpuPartition::mps(np, os);
                let unbatched = run_daris(&taskset, DarisConfig::new(partition));
                let batched =
                    run_daris(&taskset.with_paper_batch_sizes(), DarisConfig::new(partition));
                table.add_row([
                    partition.label(),
                    fmt_num(batched.summary.throughput_jps, 0),
                    format!(
                        "{:.0}%",
                        100.0
                            * (batched.summary.throughput_jps
                                / unbatched.summary.throughput_jps.max(1e-9)
                                - 1.0)
                    ),
                    fmt_pct(batched.summary.high.deadline_miss_rate),
                    fmt_pct(batched.summary.low.deadline_miss_rate),
                ]);
            }
        }
        tables.push(table);
    }
    tables
}

/// Fig. 11: throughput and per-priority DMR under different HP:LP load
/// ratios, at full load and 150 % overload, with and without the HP
/// admission test (`Overload+HPA`).
pub fn figure11_overload() -> Table {
    let mut table = Table::new("Fig. 11 — overloading with different HP-to-LP ratios");
    table.set_headers([
        "DNN",
        "scenario",
        "HP share",
        "normalized JPS",
        "HP DMR",
        "LP DMR",
        "HP rejected",
    ]);
    let partition = GpuPartition::mps(6, 6.0);
    for kind in [DnnKind::ResNet18, DnnKind::UNet] {
        let upper = Table1Reference::for_kind(kind).max_jps;
        for (scenario, scenario_name) in
            [(RatioScenario::FullLoad, "Full load"), (RatioScenario::Overload, "Overload")]
        {
            for hp_share in [0.25, 0.5, 0.75, 1.0] {
                let taskset = TaskSet::with_ratio(kind, scenario, hp_share);
                let outcome = run_daris(&taskset, DarisConfig::new(partition));
                table.add_row([
                    kind.to_string(),
                    scenario_name.to_owned(),
                    format!("{:.0}%", hp_share * 100.0),
                    fmt_num(outcome.summary.throughput_jps / upper, 2),
                    fmt_pct(outcome.summary.high.deadline_miss_rate),
                    fmt_pct(outcome.summary.low.deadline_miss_rate),
                    outcome.summary.high.rejected.to_string(),
                ]);
            }
        }
        // Overload + HP admission test.
        for hp_share in [0.75, 1.0] {
            let taskset = TaskSet::with_ratio(kind, RatioScenario::Overload, hp_share);
            let config = DarisConfig::new(partition).with_hp_admission();
            let outcome = run_daris(&taskset, config);
            table.add_row([
                kind.to_string(),
                "Overload+HPA".to_owned(),
                format!("{:.0}%", hp_share * 100.0),
                fmt_num(outcome.summary.throughput_jps / upper, 2),
                fmt_pct(outcome.summary.high.deadline_miss_rate),
                fmt_pct(outcome.summary.low.deadline_miss_rate),
                outcome.summary.high.rejected.to_string(),
            ]);
        }
    }
    table
}

/// The fixed oversized fleet workload of the cluster experiments: four
/// devices' worth of the paper's standing 150 % ResNet18 overload.
pub fn cluster_taskset() -> TaskSet {
    TaskSet::table2_scaled(DnnKind::ResNet18, 4)
}

/// The wide-sweep fleet workload: `devices` devices' worth of the paper's
/// standing 150 % ResNet18 overload, so every fleet size in the 1→64 sweep
/// is offered the same per-device pressure.
pub fn cluster_taskset_scaled(devices: usize) -> TaskSet {
    TaskSet::table2_scaled(DnnKind::ResNet18, devices.max(1).min(u32::MAX as usize) as u32)
}

fn run_cluster(
    taskset: &TaskSet,
    fleet: ClusterSpec,
    strategy: PlacementStrategy,
    horizon: SimTime,
) -> ClusterOutcome {
    run_cluster_threads(taskset, fleet, strategy, horizon, 1)
}

fn run_cluster_threads(
    taskset: &TaskSet,
    fleet: ClusterSpec,
    strategy: PlacementStrategy,
    horizon: SimTime,
    threads: usize,
) -> ClusterOutcome {
    let config = ClusterConfig { strategy, threads, ..Default::default() };
    let mut dispatcher = ClusterDispatcher::new(taskset, fleet, config)
        .expect("valid cluster experiment configuration");
    dispatcher.run_until(horizon)
}

fn cluster_row(label: &str, taskset: &TaskSet, outcome: &ClusterOutcome) -> Vec<String> {
    let s = &outcome.summary;
    vec![
        label.to_owned(),
        s.devices.to_string(),
        fmt_num(s.throughput_jps, 0),
        format!("{:.0}%", 100.0 * s.throughput_jps / taskset.offered_jps().max(1e-9)),
        fmt_pct(s.high.deadline_miss_rate),
        fmt_pct(s.low.deadline_miss_rate),
        (s.low.rejected + s.high.rejected).to_string(),
        s.placement_rejected_tasks.to_string(),
        s.cluster_admissions.to_string(),
        s.migrations.to_string(),
        fmt_pct(s.mean_gpu_utilization.unwrap_or(0.0)),
    ]
}

/// The column set shared by the cluster tables.
const CLUSTER_HEADERS: [&str; 11] = [
    "fleet",
    "devices",
    "JPS",
    "served",
    "HP DMR",
    "LP DMR",
    "rejected jobs",
    "unplaced tasks",
    "cluster adm",
    "migrations",
    "mean util",
];

/// Fleet scaling: aggregate throughput and deadline behaviour of 1→8
/// homogeneous RTX 2080 Ti devices on the fixed oversized
/// [`cluster_taskset`]. Uses the greedy-balance placement, which spreads the
/// high-priority tasks across the fleet — first-fit-decreasing would
/// consolidate them on the first devices and give up HP protection (see
/// [`cluster_fleets`] for that comparison).
pub fn cluster_scaling() -> Table {
    let taskset = cluster_taskset();
    let horizon = horizon();
    let mut table = Table::new(format!(
        "Cluster scaling — {} tasks, {:.0} JPS offered, homogeneous RTX 2080 Ti fleet",
        taskset.len(),
        taskset.offered_jps()
    ));
    table.set_headers(CLUSTER_HEADERS);
    for n in [1usize, 2, 3, 4, 6, 8] {
        let fleet = ClusterSpec::homogeneous(n, GpuSpec::rtx_2080_ti(), GpuPartition::mps(6, 6.0));
        let outcome = run_cluster(&taskset, fleet, PlacementStrategy::GreedyBalance, horizon);
        table.add_row(cluster_row(&format!("{n}x 2080 Ti"), &taskset, &outcome));
    }
    table
}

/// The fleet sizes of the wide scaling sweeps, capped at `max_devices`.
fn sweep_sizes(max_devices: usize) -> Vec<usize> {
    [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
        .into_iter()
        .filter(|&n| n <= max_devices.max(1))
        .collect()
}

/// Wide fleet scaling with per-fleet-size workloads: each fleet size `n` is
/// offered `n` devices' worth of the standing 150 % ResNet18 overload, so
/// the per-device pressure stays constant and aggregate throughput must
/// scale with the fleet. Runs homogeneous RTX 2080 Ti fleets and the
/// heterogeneous A100/H100/Orin mix up to `max_devices`, each row timed
/// wall-clock with `threads` dispatcher workers and the fleet partitioned
/// into `racks` racks (1 = flat dispatch; larger fleets want more racks so
/// boundary work stays rack-local). The scheduling results are
/// byte-identical at any thread count — `threads` only changes the wall
/// column.
pub fn cluster_scaling_wide(max_devices: usize, threads: usize, racks: usize) -> Vec<Table> {
    let horizon = horizon();
    let racks = racks.max(1);
    let mut tables = Vec::new();
    for (title, hetero) in [
        ("Wide scaling — homogeneous RTX 2080 Ti, workload scaled with the fleet", false),
        ("Wide scaling — heterogeneous a100/h100/orin mix, workload scaled with the fleet", true),
    ] {
        let mut table = Table::new(format!("{title} ({threads} worker threads, {racks} racks)"));
        table.set_headers([
            "devices",
            "tasks",
            "JPS",
            "served",
            "HP DMR",
            "LP DMR",
            "completed",
            "events",
            "wall ms",
            "events/s",
        ]);
        for n in sweep_sizes(max_devices) {
            let taskset = cluster_taskset_scaled(n);
            let fleet = if hetero {
                ClusterSpec::heterogeneous_mix(n)
            } else {
                ClusterSpec::homogeneous(n, GpuSpec::rtx_2080_ti(), GpuPartition::mps(6, 6.0))
            };
            let config = ClusterConfig {
                strategy: PlacementStrategy::GreedyBalance,
                threads,
                racks,
                ..Default::default()
            };
            // Sanctioned wall-clock site (determinism rule D002): timing
            // harness only, never feeds simulation state.
            #[allow(clippy::disallowed_methods)]
            let start = std::time::Instant::now();
            let mut dispatcher = ClusterDispatcher::new(&taskset, fleet, config)
                .expect("valid wide-sweep configuration");
            let outcome = dispatcher.run_until(horizon);
            let wall = start.elapsed();
            let s = &outcome.summary;
            let events = dispatcher.events_processed();
            table.add_row([
                n.to_string(),
                taskset.len().to_string(),
                fmt_num(s.throughput_jps, 0),
                format!("{:.0}%", 100.0 * s.throughput_jps / taskset.offered_jps().max(1e-9)),
                fmt_pct(s.high.deadline_miss_rate),
                fmt_pct(s.low.deadline_miss_rate),
                s.total.completed.to_string(),
                events.to_string(),
                format!("{:.0}", wall.as_secs_f64() * 1e3),
                fmt_num(events as f64 / wall.as_secs_f64().max(1e-9), 0),
            ]);
        }
        tables.push(table);
    }
    tables
}

/// Homogeneous vs heterogeneous fleets and first-fit-decreasing vs
/// greedy-balance placement on the oversized workload, plus the per-device
/// breakdown of the heterogeneous balanced run.
pub fn cluster_fleets() -> Vec<Table> {
    let taskset = cluster_taskset();
    let horizon = horizon();
    let mut fleet_table =
        Table::new("Cluster fleets — homogeneous vs heterogeneous, FFD vs greedy balance");
    fleet_table.set_headers(CLUSTER_HEADERS);
    let homogeneous =
        || ClusterSpec::homogeneous(4, GpuSpec::rtx_2080_ti(), GpuPartition::mps(6, 6.0));
    for (label, fleet, strategy) in [
        ("4x 2080 Ti (FFD)", homogeneous(), PlacementStrategy::FirstFitDecreasing),
        ("4x 2080 Ti (balance)", homogeneous(), PlacementStrategy::GreedyBalance),
        (
            "2080Ti+A100+H100+Orin (FFD)",
            ClusterSpec::heterogeneous_demo(),
            PlacementStrategy::FirstFitDecreasing,
        ),
    ] {
        let outcome = run_cluster(&taskset, fleet, strategy, horizon);
        fleet_table.add_row(cluster_row(label, &taskset, &outcome));
    }
    let outcome_hetero = run_cluster(
        &taskset,
        ClusterSpec::heterogeneous_demo(),
        PlacementStrategy::GreedyBalance,
        horizon,
    );
    fleet_table.add_row(cluster_row("2080Ti+A100+H100+Orin (balance)", &taskset, &outcome_hetero));

    let mut device_table = Table::new("Heterogeneous fleet (balance) — per-device breakdown");
    device_table.set_headers(["device", "config", "JPS", "HP DMR", "LP DMR", "GPU util"]);
    for device in &outcome_hetero.devices {
        let s = &device.outcome.summary;
        device_table.add_row([
            device.name.clone(),
            device.outcome.config_label.clone(),
            fmt_num(s.throughput_jps, 0),
            fmt_pct(s.high.deadline_miss_rate),
            fmt_pct(s.low.deadline_miss_rate),
            fmt_pct(s.gpu_utilization.unwrap_or(0.0)),
        ]);
    }
    vec![fleet_table, device_table]
}

/// Sec. VI-B: the GSlice / batching / DARIS / DARIS-without-oversubscription
/// comparison on ResNet50 (paper: 433 / ~447 / 498 / 374 JPS).
pub fn gslice_comparison() -> Table {
    let taskset = TaskSet::resnet50_comparison();
    let horizon = horizon();
    let batching = BatchingServer::new()
        .with_batch_size(DnnKind::ResNet50, 8)
        .run(&taskset, horizon)
        .expect("batching baseline runs");
    let gslice = GsliceServer::new(2).run(&taskset, horizon).expect("gslice baseline runs");
    let fifo = FifoMultiStreamServer::new(6).run(&taskset, horizon).expect("fifo baseline runs");
    let daris = run_daris_until(&taskset, DarisConfig::new(GpuPartition::mps(6, 6.0)), horizon);
    let daris_no_os =
        run_daris_until(&taskset, DarisConfig::new(GpuPartition::mps(6, 1.0)), horizon);

    let mut table = Table::new("Sec. VI-B — ResNet50 comparison with state-of-the-art");
    table.set_headers(["scheduler", "JPS (measured)", "JPS (paper)", "HP DMR", "LP DMR"]);
    let rows: [(&str, &ExperimentSummary, &str); 5] = [
        ("pure batching", &batching, "433"),
        ("GSlice-like", &gslice, "~447 (+3.5%)"),
        ("FIFO multi-stream", &fifo, "n/a"),
        ("DARIS (MPS 6x1 OS6)", &daris.summary, "498"),
        ("DARIS without oversubscription (OS1)", &daris_no_os.summary, "374"),
    ];
    for (name, summary, paper) in rows {
        table.add_row([
            name.to_owned(),
            fmt_num(summary.throughput_jps, 0),
            paper.to_owned(),
            fmt_pct(summary.high.deadline_miss_rate),
            fmt_pct(summary.low.deadline_miss_rate),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_sweeps_have_expected_sizes() {
        assert_eq!(mps_partitions().len(), 19);
        assert_eq!(str_partitions().len(), 5);
        assert_eq!(mps_str_partitions().len(), 10);
        for p in mps_partitions() {
            assert!(p.oversubscription >= 1.0);
            assert!(p.oversubscription <= f64::from(p.n_contexts));
        }
    }

    #[test]
    fn table_builders_and_horizon_override() {
        // Env manipulation and the table smoke checks share one test so the
        // environment is never mutated concurrently.
        let saved = std::env::var("DARIS_HORIZON_MS").ok();
        std::env::remove_var("DARIS_HORIZON_MS");
        assert_eq!(horizon(), SimTime::from_millis(1500));
        assert_eq!(horizon_capped_ms(400), 400, "no override leaves test horizons alone");
        std::env::set_var("DARIS_HORIZON_MS", "1");
        assert_eq!(horizon(), SimTime::from_millis(50), "clamped to a sane minimum");
        assert_eq!(horizon_capped_ms(400), 50);
        // Malformed values fail loudly instead of silently running the
        // 25x-longer default.
        std::env::set_var("DARIS_HORIZON_MS", "soon");
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let malformed = std::panic::catch_unwind(horizon);
        let malformed_capped = std::panic::catch_unwind(|| horizon_capped_ms(400));
        std::panic::set_hook(prev_hook);
        assert!(malformed.is_err(), "malformed DARIS_HORIZON_MS must panic");
        assert!(malformed_capped.is_err());
        // Use a tiny horizon so the table builders stay unit-test sized.
        std::env::set_var("DARIS_HORIZON_MS", "60");
        assert_eq!(horizon(), SimTime::from_millis(60));
        assert_eq!(horizon_capped_ms(400), 60, "the env var caps test horizons");
        assert_eq!(horizon_capped_ms(55), 55);
        let t1 = table1();
        assert_eq!(t1.row_count(), 4);
        let t2 = table2();
        assert_eq!(t2.row_count(), 3);
        let f8 = figure8_ablation();
        assert_eq!(f8.row_count(), 5);
        match saved {
            Some(v) => std::env::set_var("DARIS_HORIZON_MS", v),
            None => std::env::remove_var("DARIS_HORIZON_MS"),
        }
    }
}
