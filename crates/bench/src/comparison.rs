//! The scheduler shoot-out: every [`Scheduler`](daris_core::Scheduler)
//! implementation in the workspace — DARIS and the six baselines — swept
//! across the workload scenario grid (periodic, bursty, diurnal, correlated)
//! and fleet sizes, through the *same* cluster dispatcher and the same
//! [`RunSpec`] entry point.
//!
//! Every cell of the grid is one cluster run: the contender's per-device
//! scheduler is built by [`ClusterDispatcher::with_factory`] (DARIS through
//! the default constructor), placed by the same placement engine, driven by
//! the same synchronization-round loop. Differences between rows are
//! therefore *policy* differences, not harness differences — the point of
//! the [`Scheduler`] trait.
//!
//! The committed summary lives in `COMPARISON.md` at the repo root; the
//! `scheduler_comparison` binary regenerates it.

use daris_baselines::{
    BaselineScheduler, BatchingServer, FifoMultiStreamServer, GlobalEdfServer, GsliceServer,
    PriorityOnlyServer, SingleTenantServer,
};
use daris_cluster::{
    ClusterConfig, ClusterDispatcher, ClusterOutcome, ClusterSpec, DeviceSlot, PlacementStrategy,
};
use daris_core::{CoreError, GpuPartition, RunSpec};
use daris_gpu::{GpuSpec, SimTime};
use daris_metrics::report::{fmt_num, fmt_pct, Table};
use daris_workload::{
    BurstyConfig, CorrelatedConfig, DiurnalConfig, GenSpec, LoadDetectorConfig, TaskSet,
};

use crate::cluster_taskset_scaled;

/// Streams/contexts granted to every contender: DARIS runs its paper-best
/// MPS 6×1 OS6 partition, and the stream-parallel baselines get the same
/// six-way parallelism, so no row wins by being handed more hardware slots.
const PARALLELISM: u32 = 6;

/// One scheduler entered in the shoot-out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Contender {
    /// The full DARIS runtime (MPS 6×1 OS6, admission, staging, MRET).
    Daris,
    /// DARIS with the *static* HP admission test always on (Overload+HPA).
    DarisHpa,
    /// DARIS with the burst-triggered adaptive HPA: the admission test
    /// engages only while the windowed arrival-rate detector reports a
    /// burst in progress, and disengages when the rate calms.
    DarisAdaptive,
    /// Global EDF over whole jobs — deadline-aware, no stage preemption.
    GlobalEdf,
    /// Strict class priority, FIFO within a class, no admission.
    PriorityOnly,
    /// Multi-stream FIFO — no priorities, no deadlines, no admission.
    FifoMultiStream,
    /// Pure batching inference server (the paper's upper baseline).
    Batching,
    /// GSlice-like static spatial partitions with per-tenant batching.
    Gslice,
    /// One DNN at a time on the whole GPU (the paper's lower baseline).
    SingleTenant,
}

impl Contender {
    /// Every contender, in report order (DARIS first, then deadline- or
    /// priority-aware baselines, then the throughput-oriented ones).
    pub fn all() -> [Contender; 9] {
        [
            Contender::Daris,
            Contender::DarisHpa,
            Contender::DarisAdaptive,
            Contender::GlobalEdf,
            Contender::PriorityOnly,
            Contender::FifoMultiStream,
            Contender::Batching,
            Contender::Gslice,
            Contender::SingleTenant,
        ]
    }

    /// Stable row label.
    pub fn label(self) -> &'static str {
        match self {
            Contender::Daris => "DARIS",
            Contender::DarisHpa => "DARIS+HPA",
            Contender::DarisAdaptive => "DARIS-adaptive",
            Contender::GlobalEdf => "GlobalEDF",
            Contender::PriorityOnly => "PriorityOnly",
            Contender::FifoMultiStream => "FIFO",
            Contender::Batching => "Batching",
            Contender::Gslice => "GSlice",
            Contender::SingleTenant => "SingleTenant",
        }
    }

    /// Builds one device's baseline scheduler for this contender.
    ///
    /// # Panics
    ///
    /// Panics when called for [`Contender::Daris`], which is constructed
    /// through the dispatcher's default DARIS factory instead.
    fn baseline_for(self, slot: &DeviceSlot<'_>) -> Result<BaselineScheduler, CoreError> {
        let gpu = slot.spec.gpu.clone();
        let reference = slot.reference.clone();
        match self {
            Contender::Daris | Contender::DarisHpa | Contender::DarisAdaptive => {
                unreachable!("DARIS variants use ClusterDispatcher::new")
            }
            Contender::GlobalEdf => GlobalEdfServer::new(PARALLELISM)
                .with_gpu(gpu)
                .with_calibration(reference)
                .scheduler(slot.taskset),
            Contender::PriorityOnly => PriorityOnlyServer::new(PARALLELISM)
                .with_gpu(gpu)
                .with_calibration(reference)
                .scheduler(slot.taskset),
            Contender::FifoMultiStream => FifoMultiStreamServer::new(PARALLELISM)
                .with_gpu(gpu)
                .with_calibration(reference)
                .scheduler(slot.taskset),
            Contender::Batching => BatchingServer::new()
                .with_gpu(gpu)
                .with_calibration(reference)
                .scheduler(slot.taskset),
            Contender::Gslice => GsliceServer::new(2)
                .with_gpu(gpu)
                .with_calibration(reference)
                .scheduler(slot.taskset),
            Contender::SingleTenant => SingleTenantServer::with_gpu(gpu)
                .with_calibration(reference)
                .scheduler(slot.taskset),
        }
        .map_err(CoreError::from)
    }
}

/// One workload scenario of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Strictly periodic releases (the paper's main experiments).
    Periodic,
    /// Two-state Markov-modulated bursts.
    Bursty,
    /// Sinusoid-modulated rate (a compressed day/night cycle).
    Diurnal,
    /// Co-released task groups (correlated arrivals).
    Correlated,
}

impl Scenario {
    /// Every scenario, in report order.
    pub fn all() -> [Scenario; 4] {
        [Scenario::Periodic, Scenario::Bursty, Scenario::Diurnal, Scenario::Correlated]
    }

    /// Stable column label.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Periodic => "periodic",
            Scenario::Bursty => "bursty",
            Scenario::Diurnal => "diurnal",
            Scenario::Correlated => "correlated",
        }
    }

    /// The scenario as a [`RunSpec`] ending at `horizon`. Generator
    /// scenarios use the default (seeded, deterministic) configurations.
    pub fn run_spec(self, horizon: SimTime) -> RunSpec {
        match self {
            Scenario::Periodic => RunSpec::periodic(),
            Scenario::Bursty => RunSpec::generated(GenSpec::Bursty(BurstyConfig::default())),
            Scenario::Diurnal => RunSpec::generated(GenSpec::Diurnal(DiurnalConfig::default())),
            Scenario::Correlated => {
                RunSpec::generated(GenSpec::Correlated(CorrelatedConfig::default()))
            }
        }
        .until(horizon)
    }
}

/// One cell of the shoot-out grid: one scheduler on one scenario at one
/// fleet size.
#[derive(Debug, Clone)]
pub struct ComparisonCell {
    /// The contender's label.
    pub scheduler: &'static str,
    /// The scenario's label.
    pub scenario: &'static str,
    /// Fleet size (devices).
    pub devices: usize,
    /// Aggregate completed inferences per second.
    pub jps: f64,
    /// High-priority deadline-miss rate.
    pub hp_dmr: f64,
    /// Low-priority deadline-miss rate.
    pub lp_dmr: f64,
    /// Overall deadline-miss rate.
    pub total_dmr: f64,
    /// Jobs rejected (admission control; always 0 for baselines).
    pub rejected: u64,
    /// Mean GPU utilization over the fleet, when reported.
    pub utilization: Option<f64>,
}

fn fleet_of(devices: usize) -> ClusterSpec {
    ClusterSpec::homogeneous(
        devices,
        GpuSpec::rtx_2080_ti(),
        GpuPartition::mps(PARALLELISM, f64::from(PARALLELISM)),
    )
}

fn cluster_config(threads: usize) -> ClusterConfig {
    ClusterConfig { strategy: PlacementStrategy::GreedyBalance, threads, ..Default::default() }
}

/// Runs one cell of the grid: `contender` on `scenario` over a homogeneous
/// fleet of `devices` RTX 2080 Ti, the workload scaled to keep per-device
/// pressure constant across fleet sizes (see [`cluster_taskset_scaled`]).
///
/// # Panics
///
/// Panics when the cell's cluster cannot be built or the spec cannot run —
/// the grid is hard-coded, so a failure indicates a bug.
pub fn run_cell(
    contender: Contender,
    scenario: Scenario,
    devices: usize,
    threads: usize,
    horizon: SimTime,
) -> ComparisonCell {
    let taskset = cluster_taskset_scaled(devices);
    let spec = scenario.run_spec(horizon);
    let outcome = run_fleet(contender, &taskset, devices, threads, &spec);
    let s = &outcome.summary;
    ComparisonCell {
        scheduler: contender.label(),
        scenario: scenario.label(),
        devices,
        jps: s.throughput_jps,
        hp_dmr: s.high.deadline_miss_rate,
        lp_dmr: s.low.deadline_miss_rate,
        total_dmr: s.total.deadline_miss_rate,
        rejected: (s.high.rejected + s.low.rejected) as u64,
        utilization: s.mean_gpu_utilization,
    }
}

fn run_fleet(
    contender: Contender,
    taskset: &TaskSet,
    devices: usize,
    threads: usize,
    spec: &RunSpec,
) -> ClusterOutcome {
    match contender {
        Contender::Daris | Contender::DarisHpa | Contender::DarisAdaptive => {
            let mut config = cluster_config(threads);
            match contender {
                Contender::DarisHpa => config.hp_admission = true,
                Contender::DarisAdaptive => {
                    config.adaptive_hpa = Some(LoadDetectorConfig::default());
                }
                _ => {}
            }
            ClusterDispatcher::new(taskset, fleet_of(devices), config)
                .expect("DARIS fleet builds")
                .run(spec)
                .expect("grid run spec is cluster-feasible")
        }
        baseline => ClusterDispatcher::with_factory(
            taskset,
            fleet_of(devices),
            cluster_config(threads),
            move |slot| baseline.baseline_for(&slot),
        )
        .expect("baseline fleet builds")
        .run(spec)
        .expect("grid run spec is cluster-feasible"),
    }
}

/// Runs the full grid: every contender × every scenario × `fleet_sizes`,
/// in fixed order (fleet size outermost, then scenario, then contender).
pub fn comparison_grid(
    fleet_sizes: &[usize],
    threads: usize,
    horizon: SimTime,
) -> Vec<ComparisonCell> {
    let mut cells = Vec::new();
    for &devices in fleet_sizes {
        for scenario in Scenario::all() {
            for contender in Contender::all() {
                cells.push(run_cell(contender, scenario, devices, threads, horizon));
            }
        }
    }
    cells
}

/// Formats the grid as one [`Table`] per fleet size (rows: scenario ×
/// scheduler).
pub fn comparison_tables(cells: &[ComparisonCell]) -> Vec<Table> {
    let mut sizes: Vec<usize> = cells.iter().map(|c| c.devices).collect();
    sizes.dedup();
    sizes
        .into_iter()
        .map(|devices| {
            let mut table = Table::new(format!(
                "Scheduler shoot-out — {devices} device(s), per-device 150% ResNet18 overload"
            ));
            table.set_headers([
                "scenario",
                "scheduler",
                "JPS",
                "HP DMR",
                "LP DMR",
                "DMR",
                "rejected",
                "mean util",
            ]);
            for cell in cells.iter().filter(|c| c.devices == devices) {
                table.add_row([
                    cell.scenario.to_owned(),
                    cell.scheduler.to_owned(),
                    fmt_num(cell.jps, 0),
                    fmt_pct(cell.hp_dmr),
                    fmt_pct(cell.lp_dmr),
                    fmt_pct(cell.total_dmr),
                    cell.rejected.to_string(),
                    cell.utilization.map(fmt_pct).unwrap_or_else(|| "-".into()),
                ]);
            }
            table
        })
        .collect()
}

/// Formats the grid as the GitHub-flavoured markdown document committed as
/// `COMPARISON.md`: one markdown table per fleet size, preceded by a header
/// recording the horizon the grid was generated at.
pub fn comparison_markdown(cells: &[ComparisonCell], horizon: SimTime) -> String {
    let mut out = String::new();
    out.push_str("# Scheduler shoot-out\n\n");
    out.push_str(
        "Every `Scheduler` implementation in the workspace, swept across the workload\n\
         scenario grid and fleet sizes through the same cluster dispatcher\n\
         (`ClusterDispatcher::with_factory`) and the same `RunSpec` entry point —\n\
         differences between rows are policy differences, not harness differences.\n\
         Workloads are the per-device 150% ResNet18 overload, scaled with the fleet.\n\n",
    );
    out.push_str(&format!(
        "Generated by\n\
         `cargo run --release --bin scheduler_comparison -- --markdown > COMPARISON.md`\n\
         at a {:.0} ms simulated horizon per cell. Deterministic: re-running the\n\
         same command reproduces this file byte for byte (`--threads` only changes\n\
         wall-clock).\n",
        horizon.as_secs_f64() * 1e3
    ));
    let mut sizes: Vec<usize> = cells.iter().map(|c| c.devices).collect();
    sizes.dedup();
    for devices in sizes {
        out.push_str(&format!("\n## {devices} device(s)\n\n"));
        out.push_str(
            "| scenario | scheduler | JPS | HP DMR | LP DMR | DMR | rejected | mean util |\n",
        );
        out.push_str("|---|---|---:|---:|---:|---:|---:|---:|\n");
        for cell in cells.iter().filter(|c| c.devices == devices) {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
                cell.scenario,
                cell.scheduler,
                fmt_num(cell.jps, 0),
                fmt_pct(cell.hp_dmr),
                fmt_pct(cell.lp_dmr),
                fmt_pct(cell.total_dmr),
                cell.rejected,
                cell.utilization.map(fmt_pct).unwrap_or_else(|| "-".into()),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_combination_in_fixed_order() {
        let horizon = SimTime::from_millis(crate::horizon_capped_ms(80));
        let cells = comparison_grid(&[1, 2], 1, horizon);
        assert_eq!(cells.len(), 9 * 4 * 2);
        // Fixed order: fleet size outermost, then scenario, then contender.
        assert_eq!(cells[0].devices, 1);
        assert_eq!(cells[0].scheduler, "DARIS");
        assert_eq!(cells[0].scenario, "periodic");
        assert_eq!(cells[1].scheduler, "DARIS+HPA");
        assert_eq!(cells[2].scheduler, "DARIS-adaptive");
        assert_eq!(cells[9].scenario, "bursty");
        assert_eq!(cells[36].devices, 2);
        // Every scheduler completes work on the periodic scenario.
        for cell in cells.iter().filter(|c| c.scenario == "periodic") {
            assert!(cell.jps > 0.0, "{} completed nothing", cell.scheduler);
        }
        // Baselines have no admission control, so they reject nothing.
        for cell in cells.iter().filter(|c| !c.scheduler.starts_with("DARIS")) {
            assert_eq!(cell.rejected, 0, "{} rejected jobs", cell.scheduler);
        }
        let tables = comparison_tables(&cells);
        assert_eq!(tables.len(), 2);
        let md = comparison_markdown(&cells, horizon);
        assert!(md.contains("## 1 device(s)"));
        assert!(md.contains("| periodic | DARIS |"));
    }
}
