//! Trace-driven workload experiments: record/replay verification plus the
//! bursty-vs-periodic overload comparison.
//!
//! The verification half is the repository's acceptance check for the trace
//! path: on a fleet of heterogeneous devices, a **live generator run** and
//! the **replay of the generator's recorded trace** must be byte-identical —
//! same fleet summary, same per-device summaries — at 1 and 4 worker
//! threads (plus any `--threads` override). The comparison half runs the
//! same fleet under the periodic plan and under each generator shape and
//! tabulates throughput, deadline-miss rates and admission behaviour — the
//! overload story trace-driven workloads exist to tell.
//!
//! Usage:
//!
//! ```sh
//! trace_replay [--devices N] [--threads N] [--gen bursty|diurnal|correlated]
//!              [--seed S] [--record PATH] [--replay PATH]
//! ```
//!
//! * `--devices` — fleet size of the heterogeneous a100/h100/orin mix
//!   (default 8).
//! * `--threads` — extra thread count to verify replay at (`0` = one per
//!   core; default 4).
//! * `--gen`     — generator shape to verify (default `bursty`).
//! * `--seed`    — generator seed (default 1).
//! * `--record`  — also write the verified trace to PATH in the versioned
//!   plain-text codec.
//! * `--replay`  — skip generation and replay an existing trace file
//!   instead (the comparison table is still generated live).
//!
//! Control the simulated horizon with `DARIS_HORIZON_MS` (default 1500 ms).
//! Exits non-zero if any replay diverges from the live run.

use std::process::ExitCode;

use daris_cluster::{ClusterConfig, ClusterDispatcher, ClusterOutcome, ClusterSpec};
use daris_metrics::report::{fmt_num, fmt_pct, Table};
use daris_workload::{BurstyConfig, CorrelatedConfig, DiurnalConfig, GenSpec, TaskSet, Trace};

fn spec_for(label: &str, seed: u64) -> GenSpec {
    match label {
        "bursty" => GenSpec::Bursty(BurstyConfig { seed, ..Default::default() }),
        "diurnal" => GenSpec::Diurnal(DiurnalConfig { seed, ..Default::default() }),
        "correlated" => GenSpec::Correlated(CorrelatedConfig { seed, ..Default::default() }),
        other => panic!("--gen must be bursty, diurnal or correlated, got {other:?}"),
    }
}

fn outcome_hash(outcome: &ClusterOutcome) -> u64 {
    outcome.summary_hash()
}

fn dispatcher(taskset: &TaskSet, fleet: &ClusterSpec, threads: usize) -> ClusterDispatcher {
    let config = ClusterConfig { threads, ..Default::default() };
    ClusterDispatcher::new(taskset, fleet.clone(), config)
        .expect("valid trace experiment configuration")
}

fn comparison_row(label: &str, taskset: &TaskSet, outcome: &ClusterOutcome) -> Vec<String> {
    let s = &outcome.summary;
    vec![
        label.to_owned(),
        fmt_num(s.throughput_jps, 0),
        fmt_pct(s.high.deadline_miss_rate),
        fmt_pct(s.low.deadline_miss_rate),
        (s.high.rejected + s.low.rejected).to_string(),
        s.cluster_admissions.to_string(),
        s.migrations.to_string(),
        format!("{:.0}%", 100.0 * s.throughput_jps / taskset.offered_jps().max(1e-9)),
    ]
}

fn main() -> ExitCode {
    let mut devices = 8usize;
    let mut threads = 4usize;
    let mut gen_label = "bursty".to_owned();
    let mut seed = 1u64;
    let mut record: Option<String> = None;
    let mut replay: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| panic!("{name} requires a value"));
        match arg.as_str() {
            "--devices" => {
                let raw = value("--devices");
                devices = raw
                    .parse()
                    .unwrap_or_else(|_| panic!("--devices must be a number, got {raw:?}"));
            }
            "--threads" => threads = daris_bench::parse_thread_count(&value("--threads")),
            "--gen" => gen_label = value("--gen"),
            "--seed" => {
                let raw = value("--seed");
                seed =
                    raw.parse().unwrap_or_else(|_| panic!("--seed must be a number, got {raw:?}"));
            }
            "--record" => record = Some(value("--record")),
            "--replay" => replay = Some(value("--replay")),
            other => panic!("unknown argument {other:?} (see the bin docs)"),
        }
    }

    let spec = spec_for(&gen_label, seed);
    let horizon = daris_bench::horizon();
    let taskset = daris_bench::cluster_taskset_scaled(devices);
    let fleet = ClusterSpec::heterogeneous_mix(devices);
    eprintln!(
        "trace_replay: {devices}-device heterogeneous fleet, {} tasks, horizon {horizon}, \
         generator {gen_label} (seed {seed})",
        taskset.len()
    );

    // ---- record/replay verification -------------------------------------
    let trace = match &replay {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read trace {path}: {e}"));
            Trace::decode(&text).unwrap_or_else(|e| panic!("cannot decode trace {path}: {e}"))
        }
        None => spec.generate(&taskset, horizon),
    };
    eprintln!(
        "trace_replay: trace carries {} releases ({:.0} offered JPS, lookahead {})",
        trace.len(),
        trace.offered_jps(),
        trace.lookahead()
    );
    if let Some(path) = &record {
        std::fs::write(path, trace.encode())
            .unwrap_or_else(|e| panic!("cannot write trace {path}: {e}"));
        eprintln!("trace_replay: wrote {path}");
    }

    let mut diverged = false;
    let live = if replay.is_none() {
        let live = dispatcher(&taskset, &fleet, 1).run_generated(&spec, horizon);
        eprintln!(
            "  live generator run:    {:>7.0} JPS, {} completed jobs",
            live.summary.throughput_jps, live.summary.total.completed
        );
        Some(live)
    } else {
        None
    };
    let reference = live.as_ref().map(outcome_hash);
    let mut verify_threads = vec![1usize, 4];
    if !verify_threads.contains(&threads) {
        verify_threads.push(threads);
    }
    let mut replay_reference = None;
    for t in verify_threads {
        let outcome = dispatcher(&taskset, &fleet, t)
            .run_replay(&trace)
            .unwrap_or_else(|e| panic!("replay failed: {e}"));
        let hash = outcome_hash(&outcome);
        eprintln!(
            "  trace replay @{t} thread{}: {:>7.0} JPS, {} completed jobs",
            if t == 1 { "" } else { "s" },
            outcome.summary.throughput_jps,
            outcome.summary.total.completed
        );
        let expected = *reference.as_ref().or(replay_reference.as_ref()).unwrap_or(&hash);
        if hash != expected {
            eprintln!(
                "trace_replay: DETERMINISM VIOLATION: replay at {t} threads diverged from the \
                 {} run",
                if reference.is_some() { "live generator" } else { "1-thread replay" }
            );
            diverged = true;
        }
        replay_reference.get_or_insert(hash);
    }
    if !diverged {
        eprintln!(
            "trace_replay: OK — live generator run and recorded-trace replays are byte-identical"
        );
    }

    // ---- bursty-vs-periodic overload comparison --------------------------
    let mut table = Table::new(format!(
        "Trace-driven workloads — {devices}-device heterogeneous fleet, {} tasks, \
         {:.0} JPS offered periodically",
        taskset.len(),
        taskset.offered_jps()
    ));
    table.set_headers([
        "workload",
        "JPS",
        "HP DMR",
        "LP DMR",
        "rejected",
        "cluster adm",
        "migrations",
        "served",
    ]);
    let periodic = dispatcher(&taskset, &fleet, 1).run_until(horizon);
    table.add_row(comparison_row("periodic (Table II)", &taskset, &periodic));
    for shape in ["bursty", "diurnal", "correlated"] {
        // The verified shape's live run is already in hand — don't re-run
        // the most expensive simulation just to fill its table row.
        let outcome = match &live {
            Some(live) if shape == gen_label => live.clone(),
            _ => dispatcher(&taskset, &fleet, 1).run_generated(&spec_for(shape, seed), horizon),
        };
        table.add_row(comparison_row(shape, &taskset, &outcome));
    }
    println!("{table}");
    println!(
        "HP protection under every arrival shape relies on the admission test shedding LP \
         bursts; compare the rejected/DMR columns against the periodic row."
    );

    // The DMR contrast the ROADMAP asked to surface: Table II tasksets under
    // DARIS keep HP DMR (near) zero even when arrivals turn bursty.
    if diverged {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
