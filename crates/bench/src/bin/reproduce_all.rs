//! Runs every experiment of the paper and prints the full paper-vs-measured
//! report (the source of `EXPERIMENTS.md`), plus the cluster-layer fleet
//! experiments.
//!
//! Independent experiments run concurrently on scoped threads; reports are
//! collected per section and printed in a fixed order, so the output is
//! deterministic regardless of scheduling.
//!
//! Control the per-configuration simulated horizon with `DARIS_HORIZON_MS`
//! (default 1500 ms).

/// The report sections, in print order. Each closure regenerates one
/// experiment and formats it as a string; they share no mutable state, so
/// they can run on independent threads.
fn sections() -> Vec<Box<dyn FnOnce() -> String + Send>> {
    fn one(
        table: impl FnOnce() -> daris_metrics::report::Table + Send + 'static,
    ) -> Box<dyn FnOnce() -> String + Send> {
        Box::new(move || format!("{}\n", table()))
    }
    fn many(
        tables: impl FnOnce() -> Vec<daris_metrics::report::Table> + Send + 'static,
    ) -> Box<dyn FnOnce() -> String + Send> {
        Box::new(move || {
            tables().into_iter().map(|t| format!("{t}\n")).collect::<Vec<_>>().concat()
        })
    }
    vec![
        one(daris_bench::table1),
        one(daris_bench::table2),
        one(daris_bench::figure4_resnet18),
        one(daris_bench::figure5_unet),
        one(daris_bench::figure6_inception),
        one(daris_bench::figure7_mixed),
        one(daris_bench::figure8_ablation),
        many(daris_bench::figure9_mret),
        many(daris_bench::figure10_batching),
        one(daris_bench::figure11_overload),
        one(daris_bench::gslice_comparison),
        one(daris_bench::cluster_scaling),
        many(daris_bench::cluster_fleets),
        // The scheduler shoot-out (trimmed to fleets 1 and 8 here; the full
        // 1/8/64 grid is the `scheduler_comparison` binary / COMPARISON.md).
        many(|| {
            daris_bench::comparison::comparison_tables(&daris_bench::comparison::comparison_grid(
                &[1, 8],
                1,
                daris_bench::horizon(),
            ))
        }),
    ]
}

fn main() {
    println!("# DARIS reproduction — measured results\n");
    println!(
        "Simulated horizon per configuration: {:.1} s\n",
        daris_bench::horizon().as_secs_f64()
    );
    let reports: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = sections().into_iter().map(|f| scope.spawn(f)).collect();
        handles.into_iter().map(|h| h.join().expect("experiment section panicked")).collect()
    });
    for report in reports {
        print!("{report}");
    }
}
