//! Runs every experiment of the paper and prints the full paper-vs-measured
//! report (the source of `EXPERIMENTS.md`).
//!
//! Control the per-configuration simulated horizon with `DARIS_HORIZON_MS`
//! (default 1500 ms).
fn main() {
    println!("# DARIS reproduction — measured results\n");
    println!(
        "Simulated horizon per configuration: {:.1} s\n",
        daris_bench::horizon().as_secs_f64()
    );
    println!("{}", daris_bench::table1());
    println!("{}", daris_bench::table2());
    println!("{}", daris_bench::figure4_resnet18());
    println!("{}", daris_bench::figure5_unet());
    println!("{}", daris_bench::figure6_inception());
    println!("{}", daris_bench::figure7_mixed());
    println!("{}", daris_bench::figure8_ablation());
    for table in daris_bench::figure9_mret() {
        println!("{table}");
    }
    for table in daris_bench::figure10_batching() {
        println!("{table}");
    }
    println!("{}", daris_bench::figure11_overload());
    println!("{}", daris_bench::gslice_comparison());
}
