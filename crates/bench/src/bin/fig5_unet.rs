//! Regenerates Fig. 5 (UNet task set: throughput and LP deadline misses).
fn main() {
    println!("{}", daris_bench::figure5_unet());
}
