//! Perf harness: times representative single-device and cluster simulation
//! sections and writes a perf-run JSON (wall-clock ms, events/sec, peak RSS).
//! The repository's recorded trajectory lives in the committed
//! `BENCH_sim_core.json`; this tool writes to a scratch path by default so a
//! local re-measure never clobbers it — append noteworthy runs to the
//! committed file by hand (it is the same one-run-object schema).
//!
//! Usage:
//!
//! ```sh
//! bench_perf [--label TEXT] [--out PATH] [--check BASELINE.json]
//! ```
//!
//! * `--label`  — run label embedded in the JSON (default: "current").
//! * `--out`    — output path (default: `BENCH_sim_core.local.json`,
//!   git-ignored; `-` skips writing).
//! * `--check`  — compare against a checked-in baseline and exit non-zero if
//!   any section's events/sec fell more than 3× below it (the CI smoke gate).
//!
//! The simulated horizon per section comes from `DARIS_HORIZON_MS`
//! (default 1500 ms; CI uses a short horizon).

use std::process::ExitCode;

use daris_bench::perf::{regression_failures, run_perf, runs_to_json};

fn main() -> ExitCode {
    let mut label = "current".to_owned();
    let mut out = "BENCH_sim_core.local.json".to_owned();
    let mut check: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| panic!("{name} requires a value"));
        match arg.as_str() {
            "--label" => label = value("--label"),
            "--out" => out = value("--out"),
            "--check" => check = Some(value("--check")),
            other => panic!("unknown argument {other:?} (see the bin docs)"),
        }
    }

    let horizon = daris_bench::horizon();
    eprintln!("bench_perf: running sections at horizon {horizon} ...");
    let run = run_perf(&label, horizon);
    for s in &run.sections {
        eprintln!(
            "  {:<24} {:>9.1} ms  {:>12.0} events/s  {:>6} jobs",
            s.name, s.wall_ms, s.events_per_sec, s.completed_jobs
        );
    }
    eprintln!("  peak RSS: {:.1} MiB", run.peak_rss_bytes as f64 / (1024.0 * 1024.0));

    if out != "-" {
        std::fs::write(&out, runs_to_json(std::slice::from_ref(&run)))
            .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        eprintln!("bench_perf: wrote {out}");
    }

    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let failures = regression_failures(&run, &baseline);
        if !failures.is_empty() {
            for (name, measured, floor) in &failures {
                eprintln!(
                    "bench_perf: REGRESSION in {name}: {measured:.0} events/s is below the \
                     3x-regression floor of {floor:.0} (baseline {baseline_path})"
                );
            }
            return ExitCode::FAILURE;
        }
        eprintln!("bench_perf: all sections within 3x of {baseline_path}");
    }
    ExitCode::SUCCESS
}
