//! Perf harness: times representative single-device and cluster simulation
//! sections and writes a perf-run JSON (wall-clock ms, events/sec, peak RSS).
//! The repository's recorded trajectory lives in the committed
//! `BENCH_sim_core.json`; this tool writes to a scratch path by default so a
//! local re-measure never clobbers it — append noteworthy runs to the
//! committed file by hand (it is the same one-run-object schema).
//!
//! Usage:
//!
//! ```sh
//! bench_perf [--label TEXT] [--out PATH] [--check BASELINE.json] [--threads N]
//! ```
//!
//! * `--label`   — run label embedded in the JSON (default: "current").
//! * `--out`     — output path (default: `BENCH_sim_core.local.json`,
//!   git-ignored; `-` skips writing).
//! * `--check`   — compare against a checked-in baseline and exit non-zero if
//!   any section's events/sec fell more than 2× below it (the CI smoke gate).
//! * `--threads` — dispatcher worker threads for the `_par` twin sections of
//!   the wide fleet sweeps; `0` uses the machine's available parallelism.
//!   Default 1 (no parallel sections). Parallel sections must report exactly
//!   the serial completed-job counts — a mismatch is a determinism bug.
//!
//! The simulated horizon per section comes from `DARIS_HORIZON_MS`
//! (default 1500 ms; CI uses a short horizon).

use std::process::ExitCode;

use daris_bench::perf::{regression_failures, run_perf, runs_to_json, CI_REGRESSION_FACTOR};

fn main() -> ExitCode {
    let mut label = "current".to_owned();
    let mut out = "BENCH_sim_core.local.json".to_owned();
    let mut check: Option<String> = None;
    let mut threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| panic!("{name} requires a value"));
        match arg.as_str() {
            "--label" => label = value("--label"),
            "--out" => out = value("--out"),
            "--check" => check = Some(value("--check")),
            "--threads" => threads = daris_bench::parse_thread_count(&value("--threads")),
            other => panic!("unknown argument {other:?} (see the bin docs)"),
        }
    }

    let horizon = daris_bench::horizon();
    eprintln!("bench_perf: running sections at horizon {horizon} ({threads} worker threads) ...");
    let run = run_perf(&label, horizon, threads);
    for s in &run.sections {
        eprintln!(
            "  {:<26} {:>9.1} ms  {:>12.0} events/s  {:>6} jobs",
            s.name, s.wall_ms, s.events_per_sec, s.completed_jobs
        );
    }
    eprintln!("  peak RSS: {:.1} MiB", run.peak_rss_bytes as f64 / (1024.0 * 1024.0));
    for p in &run.round_phases {
        eprintln!("  round phase {:<9} {:>9.3} ms over {:>5} rounds", p.phase, p.wall_ms, p.count);
    }

    // Cross-check the parallel twins against their serial sections, and the
    // trace-replay twins against their live-generator sections: the
    // deterministic join and the record→replay round trip both mean
    // identical simulated events and completions.
    let mut determinism_broken = false;
    for (suffix, what) in [("_par", "parallel"), ("_replay", "trace replay")] {
        for twin in run.sections.iter().filter(|s| s.name.ends_with(suffix)) {
            let base_name = twin.name.trim_end_matches(suffix);
            if let Some(base) = run.sections.iter().find(|s| s.name == base_name) {
                eprintln!(
                    "  {base_name}: {what} at {:.2}x the base section's events/sec",
                    twin.events_per_sec / base.events_per_sec.max(1e-9)
                );
                if (twin.events, twin.completed_jobs) != (base.events, base.completed_jobs) {
                    eprintln!(
                        "bench_perf: DETERMINISM VIOLATION in {}: base {} events / {} jobs, \
                         {what} {} events / {} jobs",
                        twin.name,
                        base.events,
                        base.completed_jobs,
                        twin.events,
                        twin.completed_jobs
                    );
                    determinism_broken = true;
                }
            }
        }
    }

    if out != "-" {
        std::fs::write(&out, runs_to_json(std::slice::from_ref(&run)))
            .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        eprintln!("bench_perf: wrote {out}");
    }

    if determinism_broken {
        return ExitCode::FAILURE;
    }
    if let Some(baseline_path) = check {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let failures = regression_failures(&run, &baseline, CI_REGRESSION_FACTOR);
        if !failures.is_empty() {
            for (name, measured, floor) in &failures {
                eprintln!(
                    "bench_perf: REGRESSION in {name}: {measured:.0} events/s is below the \
                     {CI_REGRESSION_FACTOR}x-regression floor of {floor:.0} (baseline \
                     {baseline_path})"
                );
            }
            return ExitCode::FAILURE;
        }
        eprintln!("bench_perf: all sections within {CI_REGRESSION_FACTOR}x of {baseline_path}");
    }
    ExitCode::SUCCESS
}
