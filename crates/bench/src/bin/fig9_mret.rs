//! Regenerates Fig. 9 (execution time vs MRET) plus the window-size sweep.
fn main() {
    for table in daris_bench::figure9_mret() {
        println!("{table}");
    }
}
