//! Regenerates Table I / Fig. 1 (batching performance per DNN).
fn main() {
    println!("{}", daris_bench::table1());
}
