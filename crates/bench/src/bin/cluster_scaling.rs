//! Fleet-scaling experiment: sweeps 1→8 homogeneous devices and compares
//! homogeneous vs heterogeneous fleets on a fixed oversized task set.
//!
//! Control the per-configuration simulated horizon with `DARIS_HORIZON_MS`
//! (default 1500 ms).
fn main() {
    println!("{}", daris_bench::cluster_scaling());
    for table in daris_bench::cluster_fleets() {
        println!("{table}");
    }
}
