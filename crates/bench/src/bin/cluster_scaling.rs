//! Fleet-scaling experiments.
//!
//! Prints the classic fixed-workload 1→8 homogeneous sweep and fleet
//! comparisons, then the wide 1→64 sweeps (homogeneous RTX 2080 Ti and the
//! heterogeneous a100/h100/orin mix) with the workload scaled per fleet size.
//!
//! Usage:
//!
//! ```sh
//! cluster_scaling [--threads N] [--max-devices M] [--racks R]
//! ```
//!
//! * `--threads`     — dispatcher worker threads for the wide sweeps (`0`
//!   uses the machine's available parallelism; default 1). Scheduling
//!   results are byte-identical at any thread count — threads only change
//!   wall-clock.
//! * `--max-devices` — cap the wide sweeps (default 64).
//! * `--racks`       — partition the wide-sweep fleets into this many racks
//!   (default 1 = flat dispatch; clamped per fleet to the device count).
//!   Rack-local boundary work is what keeps the 256–1024-device sweeps
//!   affordable.
//!
//! Control the per-configuration simulated horizon with `DARIS_HORIZON_MS`
//! (default 1500 ms).
fn main() {
    let mut threads = 1usize;
    let mut max_devices = 64usize;
    let mut racks = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| panic!("{name} requires a value"));
        match arg.as_str() {
            "--threads" => threads = daris_bench::parse_thread_count(&value("--threads")),
            "--max-devices" => {
                let raw = value("--max-devices");
                max_devices = raw
                    .parse()
                    .unwrap_or_else(|_| panic!("--max-devices must be a number, got {raw:?}"));
            }
            "--racks" => {
                let raw = value("--racks");
                racks =
                    raw.parse().unwrap_or_else(|_| panic!("--racks must be a number, got {raw:?}"));
            }
            other => panic!("unknown argument {other:?} (see the bin docs)"),
        }
    }

    println!("{}", daris_bench::cluster_scaling());
    for table in daris_bench::cluster_fleets() {
        println!("{table}");
    }
    for table in daris_bench::cluster_scaling_wide(max_devices, threads, racks) {
        println!("{table}");
    }
}
