//! Regenerates Fig. 10 (DARIS combined with batched inputs).
fn main() {
    for table in daris_bench::figure10_batching() {
        println!("{table}");
    }
}
