//! Records a Chrome trace-event JSON of the 8-device heterogeneous bursty
//! scenario (the determinism suite's reference workload) for timeline
//! inspection in Perfetto / `chrome://tracing`.
//!
//! Every timestamp in the trace is **simulated** time, so the artifact is
//! byte-identical across machines, runs and dispatcher thread counts — the
//! golden-fixture and digest tests pin exactly that.
//!
//! Usage:
//!
//! ```sh
//! trace_viz [--out PATH] [--threads N]
//! ```
//!
//! * `--out`     — output path (default: `daris_hetero8.trace.json`,
//!   git-ignored; `-` writes to stdout).
//! * `--threads` — dispatcher worker threads; `0` uses the machine's
//!   available parallelism. The trace bytes do not depend on this.
//!
//! The simulated horizon comes from `DARIS_HORIZON_MS` (default 250 ms).

use daris_cluster::{ClusterConfig, ClusterDispatcher, ClusterSpec, PlacementStrategy};
use daris_gpu::SimTime;
use daris_models::DnnKind;
use daris_telemetry::{ChromeTraceSink, SinkHandle, CHROME_SCHEMA_VERSION};
use daris_workload::{BurstyConfig, GenSpec, TaskSet};

fn main() {
    let mut out = "daris_hetero8.trace.json".to_owned();
    let mut threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| panic!("{name} requires a value"));
        match arg.as_str() {
            "--out" => out = value("--out"),
            "--threads" => threads = daris_bench::parse_thread_count(&value("--threads")),
            other => panic!("unknown argument {other:?} (see the bin docs)"),
        }
    }

    let taskset = TaskSet::table2_scaled(DnnKind::ResNet18, 3);
    let fleet = ClusterSpec::heterogeneous_mix(8);
    let horizon = SimTime::from_millis(daris_bench::horizon_capped_ms(250));
    let spec = GenSpec::Bursty(BurstyConfig { seed: 0xD16E57, ..Default::default() });

    let sink = ChromeTraceSink::new();
    // Balanced placement so the timeline actually shows eight busy devices
    // (first-fit would concentrate this workload on the first one).
    let config = ClusterConfig {
        strategy: PlacementStrategy::GreedyBalance,
        threads,
        sink: Some(SinkHandle::new(sink.clone())),
        ..Default::default()
    };
    eprintln!("trace_viz: recording 8-device heterogeneous bursty run to {horizon} ...");
    let outcome = ClusterDispatcher::new(&taskset, fleet, config)
        .expect("valid 8-device configuration")
        .run_generated(&spec, horizon);

    let json = sink.to_json();
    eprintln!(
        "trace_viz: {} events ({} bytes, schema {CHROME_SCHEMA_VERSION}); {} jobs completed, \
         {} migrations, {} cluster admissions",
        sink.len(),
        json.len(),
        outcome.summary.total.completed,
        outcome.summary.migrations,
        outcome.summary.cluster_admissions,
    );
    if out == "-" {
        print!("{json}");
    } else {
        std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        eprintln!("trace_viz: wrote {out} — load it in Perfetto or chrome://tracing");
    }
}
