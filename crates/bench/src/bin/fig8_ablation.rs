//! Regenerates Fig. 8 (DARIS module contributions).
fn main() {
    println!("{}", daris_bench::figure8_ablation());
}
