//! Regenerates the Sec. VI-B comparison with GSlice and pure batching.
fn main() {
    println!("{}", daris_bench::gslice_comparison());
}
