//! Prints the Table II task-set composition.
fn main() {
    println!("{}", daris_bench::table2());
}
