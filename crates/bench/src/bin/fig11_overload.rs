//! Regenerates Fig. 11 (overloading and HP-to-LP task ratios).
fn main() {
    println!("{}", daris_bench::figure11_overload());
}
