//! Regenerates Fig. 7 (mixed task set).
fn main() {
    println!("{}", daris_bench::figure7_mixed());
}
