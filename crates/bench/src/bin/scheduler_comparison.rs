//! The DARIS-vs-baselines shoot-out: every `Scheduler` implementation in
//! the workspace × every workload scenario (periodic, bursty, diurnal,
//! correlated) × fleet sizes, all through the same cluster dispatcher, so
//! row differences are policy differences.
//!
//! Usage:
//!
//! ```sh
//! scheduler_comparison [--quick] [--threads N] [--fleets 1,8,64] [--markdown]
//! ```
//!
//! * `--quick`    — CI smoke mode: fleets 1 and 2 only (combine with a short
//!   `DARIS_HORIZON_MS` for sub-minute runs).
//! * `--threads`  — dispatcher worker threads per cluster run (`0` uses the
//!   machine's available parallelism; default 1). Results are byte-identical
//!   at any thread count.
//! * `--fleets`   — comma-separated fleet sizes (default `1,8,64`).
//! * `--markdown` — print the grid as the `COMPARISON.md` markdown document
//!   instead of plain tables (regenerate the committed file with
//!   `cargo run --release --bin scheduler_comparison -- --markdown > COMPARISON.md`).
//!
//! Control the per-cell simulated horizon with `DARIS_HORIZON_MS`
//! (default 1500 ms).

use daris_bench::comparison::{comparison_grid, comparison_markdown, comparison_tables};

fn main() {
    let mut quick = false;
    let mut markdown = false;
    let mut threads = 1usize;
    let mut fleets: Vec<usize> = vec![1, 8, 64];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| panic!("{name} requires a value"));
        match arg.as_str() {
            "--quick" => quick = true,
            "--markdown" => markdown = true,
            "--threads" => threads = daris_bench::parse_thread_count(&value("--threads")),
            "--fleets" => {
                let raw = value("--fleets");
                fleets = raw
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            panic!("--fleets must be comma-separated numbers, got {raw:?}")
                        })
                    })
                    .collect();
            }
            other => panic!("unknown argument {other:?} (see the bin docs)"),
        }
    }
    if quick {
        fleets = vec![1, 2];
    }

    let horizon = daris_bench::horizon();
    let cells = comparison_grid(&fleets, threads, horizon);
    if markdown {
        print!("{}", comparison_markdown(&cells, horizon));
    } else {
        for table in comparison_tables(&cells) {
            println!("{table}");
        }
    }
}
