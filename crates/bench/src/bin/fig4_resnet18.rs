//! Regenerates Fig. 4 (ResNet18 task set: throughput and LP deadline misses).
fn main() {
    println!("{}", daris_bench::figure4_resnet18());
}
