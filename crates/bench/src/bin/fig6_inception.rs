//! Regenerates Fig. 6 (InceptionV3 task set: throughput and LP deadline misses).
fn main() {
    println!("{}", daris_bench::figure6_inception());
}
