//! The `bench_perf` harness: wall-clock timing of representative simulation
//! sections, persisted as `BENCH_sim_core.json` so the repository carries a
//! recorded perf trajectory (and CI can gate on regressions).
//!
//! Sections cover both simulation layers the event-calendar core accelerates:
//! single-device `reproduce_all`-style experiments, the classic
//! `cluster_scaling` fixed-workload sweep at 1/2/4/8 devices, the wide
//! fleet sweeps (16/64 homogeneous devices and a 64-device heterogeneous
//! a100/h100/orin mix, workload scaled with the fleet), the rack-scale
//! sweeps (256 devices flat, 1024 devices in 16 racks), and the adaptive
//! control-plane twins (an 8-device fleet under coherent diurnal load, static
//! vs the full burst-HPA + elastic-quantum + autoscaling configuration, so
//! the trajectory pins the controllers' overhead). When a harness run is
//! given `threads > 1`, each wide sweep is timed twice — serial and fanned
//! out to the dispatcher's worker pool — so the artifact records the
//! serial-vs-parallel speedup *and* the (identical) completed-job counts that
//! prove the parallel path is deterministic. Each section reports wall-clock
//! milliseconds, simulated events processed, events per wall-second, and
//! completed jobs; each run additionally records the process peak RSS.
//!
//! No serde is available offline, so the JSON is emitted by hand and the
//! baseline checker parses the one-key-per-line format this module writes.

use std::time::Instant;

use daris_cluster::{
    AutoscaleConfig, ClusterConfig, ClusterDispatcher, ClusterSpec, ElasticQuantum,
    PlacementStrategy,
};
use daris_core::{DarisConfig, DarisScheduler, GpuPartition};
use daris_gpu::{GpuSpec, SimDuration, SimTime};
use daris_models::DnnKind;
use daris_telemetry::{MemorySink, SinkHandle, WallClockProfiler};
use daris_workload::{BurstyConfig, DiurnalConfig, GenSpec, LoadDetectorConfig, TaskSet};

use crate::{cluster_taskset, cluster_taskset_scaled};

/// One timed section of the perf harness.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionResult {
    /// Stable section name (the baseline gate keys on it).
    pub name: String,
    /// Wall-clock milliseconds spent simulating.
    pub wall_ms: f64,
    /// Simulated GPU events processed (state transitions fired).
    pub events: u64,
    /// `events / wall seconds` — the throughput figure the CI gate checks.
    pub events_per_sec: f64,
    /// Jobs completed across the section, a sanity anchor for the numbers.
    pub completed_jobs: u64,
    /// High-priority deadline-miss rate of the section's run, so the
    /// trajectory records overload/DMR behaviour (bursty vs periodic)
    /// alongside raw simulator speed.
    pub hp_dmr: f64,
}

/// Wall-clock total of one dispatcher round phase, from the
/// [`WallClockProfiler`] the telemetry section attaches — where the
/// synchronization-round time actually goes (device spans vs the serial
/// boundary work: retries, migrations, telemetry merge).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseBreakdown {
    /// Stable phase name: `span`, `retry`, `migration` or `merge`.
    pub phase: String,
    /// Total wall-clock milliseconds spent in the phase.
    pub wall_ms: f64,
    /// Number of times the phase ran (= rounds the profiled run stepped).
    pub count: u64,
}

/// One full harness run: every section at a common horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRun {
    /// Human label, e.g. `"event-calendar engine"`.
    pub label: String,
    /// Simulated horizon per section, in milliseconds.
    pub horizon_ms: u64,
    /// Worker threads the `*_par` sections fanned device stepping out to
    /// (1 = the run had no parallel sections).
    pub threads: usize,
    /// Process peak RSS in bytes after all sections ran (0 if unavailable).
    pub peak_rss_bytes: u64,
    /// The timed sections.
    pub sections: Vec<SectionResult>,
    /// Round-phase wall-clock breakdown of the profiled telemetry section
    /// (empty when the run had none).
    pub round_phases: Vec<PhaseBreakdown>,
}

// Sanctioned wall-clock site (determinism rule D002): timing harness only,
// never feeds simulation state.
#[allow(clippy::disallowed_methods)]
fn time_section(name: &str, f: impl FnOnce() -> (u64, u64, f64)) -> SectionResult {
    let start = Instant::now();
    let (events, completed_jobs, hp_dmr) = f();
    let wall = start.elapsed();
    let wall_ms = wall.as_secs_f64() * 1e3;
    SectionResult {
        name: name.to_owned(),
        wall_ms,
        events,
        events_per_sec: events as f64 / wall.as_secs_f64().max(1e-9),
        completed_jobs,
        hp_dmr,
    }
}

fn single_device_section(name: &str, taskset: &TaskSet, horizon: SimTime) -> SectionResult {
    let taskset = taskset.clone();
    time_section(name, move || {
        let mut scheduler =
            DarisScheduler::new(&taskset, DarisConfig::new(GpuPartition::mps(6, 6.0)))
                .expect("valid perf section configuration");
        let outcome = scheduler.run_until(horizon);
        (
            scheduler.events_processed(),
            outcome.summary.total.completed as u64,
            outcome.summary.high.deadline_miss_rate,
        )
    })
}

fn cluster_section(name: &str, devices: usize, horizon: SimTime) -> SectionResult {
    let taskset = cluster_taskset();
    run_cluster_section(
        name,
        &taskset,
        ClusterSpec::homogeneous(devices, GpuSpec::rtx_2080_ti(), GpuPartition::mps(6, 6.0)),
        1,
        horizon,
    )
}

fn run_cluster_section(
    name: &str,
    taskset: &TaskSet,
    fleet: ClusterSpec,
    threads: usize,
    horizon: SimTime,
) -> SectionResult {
    run_cluster_section_racks(name, taskset, fleet, threads, 1, horizon)
}

fn run_cluster_section_racks(
    name: &str,
    taskset: &TaskSet,
    fleet: ClusterSpec,
    threads: usize,
    racks: usize,
    horizon: SimTime,
) -> SectionResult {
    time_section(name, move || {
        let config = ClusterConfig {
            strategy: PlacementStrategy::GreedyBalance,
            threads,
            racks,
            ..Default::default()
        };
        let mut dispatcher = ClusterDispatcher::new(taskset, fleet, config)
            .expect("valid perf cluster configuration");
        let outcome = dispatcher.run_until(horizon);
        (
            dispatcher.events_processed(),
            outcome.summary.total.completed as u64,
            outcome.summary.high.deadline_miss_rate,
        )
    })
}

/// The trace-driven workload sections: the 8-device heterogeneous fleet
/// under the bursty generator, run live and again as a recorded-trace
/// replay, plus a single-device bursty run. The live and `_replay` twins
/// must report identical event/job counts (the record→replay round-trip
/// guarantee — `bench_perf` fails the run otherwise), and their `hp_dmr`
/// lands the bursty-vs-periodic overload story in the trajectory next to
/// the periodic `cluster_scaling_8dev` section.
fn trace_sections(horizon: SimTime, sections: &mut Vec<SectionResult>) {
    let spec = GenSpec::Bursty(BurstyConfig::default());
    sections.push(single_bursty_section(
        "single_resnet18_bursty",
        &TaskSet::table2(DnnKind::ResNet18),
        &spec,
        horizon,
    ));
    let taskset = cluster_taskset_scaled(8);
    let fleet = || ClusterSpec::heterogeneous_mix(8);
    let cluster_config =
        || ClusterConfig { strategy: PlacementStrategy::GreedyBalance, ..Default::default() };
    sections.push(time_section("cluster_hetero_8dev_bursty", || {
        let mut dispatcher = ClusterDispatcher::new(&taskset, fleet(), cluster_config())
            .expect("valid perf cluster configuration");
        let outcome = dispatcher.run_generated(&spec, horizon);
        (
            dispatcher.events_processed(),
            outcome.summary.total.completed as u64,
            outcome.summary.high.deadline_miss_rate,
        )
    }));
    // Trace generation is untimed: the section measures the replay path.
    let trace = spec.generate(&taskset, horizon);
    sections.push(time_section("cluster_hetero_8dev_bursty_replay", || {
        let mut dispatcher = ClusterDispatcher::new(&taskset, fleet(), cluster_config())
            .expect("valid perf cluster configuration");
        let outcome = dispatcher.run_replay(&trace).expect("recorded trace replays");
        (
            dispatcher.events_processed(),
            outcome.summary.total.completed as u64,
            outcome.summary.high.deadline_miss_rate,
        )
    }));
}

/// The instrumented twin of `cluster_hetero_8dev_bursty`: same scenario with
/// a [`MemorySink`] and the round-phase profiler attached. Its events/sec
/// lands in the trajectory right next to the unobserved twin, so the gate
/// pins the cost of *enabled* telemetry, while every other section pins the
/// disabled-sink path staying free. Returns the profiler's per-phase
/// wall-clock totals for the run document.
fn telemetry_section(horizon: SimTime, sections: &mut Vec<SectionResult>) -> Vec<PhaseBreakdown> {
    let taskset = cluster_taskset_scaled(8);
    let spec = GenSpec::Bursty(BurstyConfig::default());
    let profiler = WallClockProfiler::new();
    let config = ClusterConfig {
        strategy: PlacementStrategy::GreedyBalance,
        sink: Some(SinkHandle::new(MemorySink::unbounded())),
        profiler: Some(profiler.clone()),
        ..Default::default()
    };
    sections.push(time_section("cluster_hetero_8dev_bursty_telemetry", || {
        let mut dispatcher =
            ClusterDispatcher::new(&taskset, ClusterSpec::heterogeneous_mix(8), config)
                .expect("valid perf cluster configuration");
        let outcome = dispatcher.run_generated(&spec, horizon);
        (
            dispatcher.events_processed(),
            outcome.summary.total.completed as u64,
            outcome.summary.high.deadline_miss_rate,
        )
    }));
    profiler
        .totals()
        .iter()
        .map(|(phase, total)| PhaseBreakdown {
            phase: phase.name().to_owned(),
            wall_ms: total.wall_ms(),
            count: total.count,
        })
        .collect()
}

/// The adaptive-control-plane sections: an 8-device homogeneous fleet under a
/// *coherent* diurnal workload (`phase_spread: 0.0`, so the fleet-wide rate
/// actually swings), timed twice — static configuration and the full control
/// plane (burst-triggered HPA + elastic sync quantum + device autoscaling).
/// The twin rows pin the wall-clock cost of the controllers: the adaptive run
/// re-evaluates the detector, quantum, and autoscaler at round boundaries and
/// re-places queued jobs through the migration path on drains, so its
/// events/sec lands in the trajectory right next to the static shape.
fn adaptive_sections(horizon: SimTime, sections: &mut Vec<SectionResult>) {
    let taskset = TaskSet::table2(DnnKind::ResNet18);
    let spec = GenSpec::Diurnal(DiurnalConfig {
        amplitude: 0.9,
        cycle: SimDuration::from_millis(100),
        phase_spread: 0.0,
        ..DiurnalConfig::default()
    });
    let fleet = || ClusterSpec::homogeneous(8, GpuSpec::rtx_2080_ti(), GpuPartition::mps(6, 6.0));
    let configs: [(&str, ClusterConfig); 2] = [
        ("cluster_diurnal_8dev_static", ClusterConfig::default()),
        (
            "cluster_diurnal_8dev_adaptive",
            ClusterConfig {
                adaptive_hpa: Some(LoadDetectorConfig::default()),
                elastic_quantum: Some(ElasticQuantum::default()),
                autoscale: Some(AutoscaleConfig {
                    min_devices: 2,
                    scale_up_ratio: 0.4,
                    scale_down_ratio: 0.2,
                    epoch: 4,
                }),
                ..ClusterConfig::default()
            },
        ),
    ];
    for (name, config) in configs {
        sections.push(time_section(name, || {
            let mut dispatcher = ClusterDispatcher::new(&taskset, fleet(), config)
                .expect("valid perf cluster configuration");
            let outcome = dispatcher.run_generated(&spec, horizon);
            (
                dispatcher.events_processed(),
                outcome.summary.total.completed as u64,
                outcome.summary.high.deadline_miss_rate,
            )
        }));
    }
}

fn single_bursty_section(
    name: &str,
    taskset: &TaskSet,
    spec: &GenSpec,
    horizon: SimTime,
) -> SectionResult {
    let taskset = taskset.clone();
    let spec = *spec;
    time_section(name, move || {
        let mut scheduler =
            DarisScheduler::new(&taskset, DarisConfig::new(GpuPartition::mps(6, 6.0)))
                .expect("valid perf section configuration");
        let mut stream = spec.stream(&taskset, horizon);
        let outcome = scheduler.run_with_source(&mut stream, horizon);
        (
            scheduler.events_processed(),
            outcome.summary.total.completed as u64,
            outcome.summary.high.deadline_miss_rate,
        )
    })
}

/// The wide fleet sweeps: `devices`-sized homogeneous and heterogeneous
/// fleets on a workload scaled with the fleet, at 1 thread and — when
/// `threads > 1` — again at `threads` (the `_par` twin sections, whose
/// completed-job counts must match the serial ones exactly).
fn wide_sections(threads: usize, horizon: SimTime, sections: &mut Vec<SectionResult>) {
    for devices in [16usize, 64] {
        let taskset = cluster_taskset_scaled(devices);
        let homogeneous =
            || ClusterSpec::homogeneous(devices, GpuSpec::rtx_2080_ti(), GpuPartition::mps(6, 6.0));
        sections.push(run_cluster_section(
            &format!("cluster_scaling_{devices}dev"),
            &taskset,
            homogeneous(),
            1,
            horizon,
        ));
        if threads > 1 {
            sections.push(run_cluster_section(
                &format!("cluster_scaling_{devices}dev_par"),
                &taskset,
                homogeneous(),
                threads,
                horizon,
            ));
        }
    }
    let hetero_taskset = cluster_taskset_scaled(64);
    sections.push(run_cluster_section(
        "cluster_hetero_64dev",
        &hetero_taskset,
        ClusterSpec::heterogeneous_mix(64),
        1,
        horizon,
    ));
    if threads > 1 {
        sections.push(run_cluster_section(
            "cluster_hetero_64dev_par",
            &hetero_taskset,
            ClusterSpec::heterogeneous_mix(64),
            threads,
            horizon,
        ));
    }
    rack_sections(threads, horizon, sections);
}

/// The rack-scale sweeps: 256 heterogeneous devices under flat dispatch and
/// 1024 devices partitioned into 16 racks (the two-level hierarchy that
/// keeps per-round boundary work rack-local). Serial by design — the
/// headline figure is per-core events/s at 16× the classic 64-device fleet,
/// which must hold the 64-device line; with `threads > 1` the 1024-device
/// sweep also runs fanned out to the persistent worker pool (`_par` twin,
/// identical completed-job counts).
fn rack_sections(threads: usize, horizon: SimTime, sections: &mut Vec<SectionResult>) {
    let taskset_256 = cluster_taskset_scaled(256);
    sections.push(run_cluster_section_racks(
        "cluster_hetero_256dev",
        &taskset_256,
        ClusterSpec::heterogeneous_mix(256),
        1,
        1,
        horizon,
    ));
    let taskset_1024 = cluster_taskset_scaled(1024);
    sections.push(run_cluster_section_racks(
        "cluster_hetero_1024dev_racks",
        &taskset_1024,
        ClusterSpec::heterogeneous_mix(1024),
        1,
        16,
        horizon,
    ));
    if threads > 1 {
        sections.push(run_cluster_section_racks(
            "cluster_hetero_1024dev_racks_par",
            &taskset_1024,
            ClusterSpec::heterogeneous_mix(1024),
            threads,
            16,
            horizon,
        ));
    }
}

/// Runs every perf section at `horizon` and returns the labelled run.
/// `threads > 1` adds the `_par` twin of each wide fleet section, timed with
/// device stepping fanned out to that many dispatcher worker threads.
pub fn run_perf(label: &str, horizon: SimTime, threads: usize) -> PerfRun {
    let threads = threads.max(1);
    let mut sections = vec![
        single_device_section(
            "single_resnet18_mps6x6",
            &TaskSet::table2(DnnKind::ResNet18),
            horizon,
        ),
        single_device_section("single_unet_mps6x6", &TaskSet::table2(DnnKind::UNet), horizon),
        cluster_section("cluster_scaling_1dev", 1, horizon),
        cluster_section("cluster_scaling_2dev", 2, horizon),
        cluster_section("cluster_scaling_4dev", 4, horizon),
        cluster_section("cluster_scaling_8dev", 8, horizon),
    ];
    wide_sections(threads, horizon, &mut sections);
    trace_sections(horizon, &mut sections);
    adaptive_sections(horizon, &mut sections);
    let round_phases = telemetry_section(horizon, &mut sections);
    PerfRun {
        label: label.to_owned(),
        horizon_ms: (horizon.as_millis_f64()) as u64,
        threads,
        peak_rss_bytes: peak_rss_bytes(),
        sections,
        round_phases,
    }
}

/// Process peak resident set size in bytes (`VmHWM` on Linux, 0 elsewhere).
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 =
                        rest.trim().trim_end_matches("kB").trim().parse().unwrap_or_default();
                    return kb * 1024;
                }
            }
        }
    }
    0
}

/// Serializes a run as a JSON object, one key per line (the format
/// [`parse_sections`] understands).
pub fn run_to_json(run: &PerfRun, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let mut out = String::new();
    out.push_str(&format!("{pad}{{\n"));
    out.push_str(&format!("{pad}  \"label\": \"{}\",\n", run.label));
    out.push_str(&format!("{pad}  \"horizon_ms\": {},\n", run.horizon_ms));
    out.push_str(&format!("{pad}  \"threads\": {},\n", run.threads));
    out.push_str(&format!("{pad}  \"peak_rss_bytes\": {},\n", run.peak_rss_bytes));
    out.push_str(&format!("{pad}  \"sections\": [\n"));
    for (i, s) in run.sections.iter().enumerate() {
        let comma = if i + 1 < run.sections.len() { "," } else { "" };
        out.push_str(&format!("{pad}    {{\n"));
        out.push_str(&format!("{pad}      \"name\": \"{}\",\n", s.name));
        out.push_str(&format!("{pad}      \"wall_ms\": {:.3},\n", s.wall_ms));
        out.push_str(&format!("{pad}      \"events\": {},\n", s.events));
        out.push_str(&format!("{pad}      \"events_per_sec\": {:.1},\n", s.events_per_sec));
        out.push_str(&format!("{pad}      \"completed_jobs\": {},\n", s.completed_jobs));
        out.push_str(&format!("{pad}      \"hp_dmr\": {:.6}\n", s.hp_dmr));
        out.push_str(&format!("{pad}    }}{comma}\n"));
    }
    if run.round_phases.is_empty() {
        out.push_str(&format!("{pad}  ]\n"));
    } else {
        out.push_str(&format!("{pad}  ],\n"));
        // Uses a "phase" key (not "name") so the section parser the CI gate
        // relies on skips this block untouched.
        out.push_str(&format!("{pad}  \"round_phases\": [\n"));
        for (i, p) in run.round_phases.iter().enumerate() {
            let comma = if i + 1 < run.round_phases.len() { "," } else { "" };
            out.push_str(&format!(
                "{pad}    {{ \"phase\": \"{}\", \"wall_ms\": {:.3}, \"count\": {} }}{comma}\n",
                p.phase, p.wall_ms, p.count
            ));
        }
        out.push_str(&format!("{pad}  ]\n"));
    }
    out.push_str(&format!("{pad}}}"));
    out
}

/// Wraps runs into the top-level `BENCH_sim_core.json` document.
pub fn runs_to_json(runs: &[PerfRun]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"daris simulation core\",\n  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        out.push_str(&run_to_json(run, 4));
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `(name, events_per_sec)` pairs from a JSON document written by
/// [`runs_to_json`] (or any JSON that keeps `"name"` and `"events_per_sec"`
/// on their own lines, in that order within each section).
pub fn parse_sections(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut current: Option<String> = None;
    for line in json.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            current = rest.split('"').next().map(str::to_owned);
        } else if let Some(rest) = line.strip_prefix("\"events_per_sec\": ") {
            if let (Some(name), Ok(v)) = (current.take(), rest.trim_end_matches(',').parse::<f64>())
            {
                out.push((name, v));
            }
        }
    }
    out
}

/// The events/sec regression factor the CI smoke gate tolerates: a section
/// fails when it falls more than this factor below the checked-in baseline.
/// Tightened from the initial 3× once the trajectory accumulated CI
/// datapoints (the baseline rates are already halved for CI hardware slack).
pub const CI_REGRESSION_FACTOR: f64 = 2.0;

/// Compares a fresh run against a checked-in baseline: returns the failures
/// (section, measured, floor) where measured events/sec fell more than
/// `factor` below the baseline. Sections missing from either side are
/// skipped.
pub fn regression_failures(
    run: &PerfRun,
    baseline_json: &str,
    factor: f64,
) -> Vec<(String, f64, f64)> {
    let baseline = parse_sections(baseline_json);
    let mut failures = Vec::new();
    for (name, base_eps) in baseline {
        let Some(section) = run.sections.iter().find(|s| s.name == name) else { continue };
        let floor = base_eps / factor.max(1.0);
        if section.events_per_sec < floor {
            failures.push((name, section.events_per_sec, floor));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> PerfRun {
        PerfRun {
            label: "test".into(),
            horizon_ms: 50,
            threads: 1,
            peak_rss_bytes: 1024,
            sections: vec![
                SectionResult {
                    name: "a".into(),
                    wall_ms: 10.0,
                    events: 1000,
                    events_per_sec: 100_000.0,
                    completed_jobs: 5,
                    hp_dmr: 0.0,
                },
                SectionResult {
                    name: "b".into(),
                    wall_ms: 5.0,
                    events: 100,
                    events_per_sec: 20_000.0,
                    completed_jobs: 2,
                    hp_dmr: 0.015,
                },
            ],
            round_phases: vec![
                PhaseBreakdown { phase: "span".into(), wall_ms: 7.5, count: 40 },
                PhaseBreakdown { phase: "merge".into(), wall_ms: 0.5, count: 40 },
            ],
        }
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let doc = runs_to_json(&[sample_run()]);
        let parsed = parse_sections(&doc);
        assert_eq!(parsed, vec![("a".to_owned(), 100_000.0), ("b".to_owned(), 20_000.0)]);
        // The phase breakdown is present but invisible to the section parser
        // (gate compatibility: old baselines keep working).
        assert!(doc.contains("\"round_phases\""));
        assert!(doc.contains("\"phase\": \"span\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn regression_gate_applies_the_requested_factor() {
        let run = sample_run();
        let baseline = runs_to_json(&[sample_run()]);
        assert!(
            regression_failures(&run, &baseline, CI_REGRESSION_FACTOR).is_empty(),
            "same numbers pass"
        );

        let mut slow = sample_run();
        slow.sections[0].events_per_sec = 100_000.0 / 2.1;
        let failures = regression_failures(&slow, &baseline, CI_REGRESSION_FACTOR);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "a");
        assert!(
            regression_failures(&slow, &baseline, 3.0).is_empty(),
            "a looser factor tolerates the same run"
        );

        let mut fine = sample_run();
        fine.sections[0].events_per_sec = 100_000.0 / 1.9;
        assert!(
            regression_failures(&fine, &baseline, CI_REGRESSION_FACTOR).is_empty(),
            "within 2x passes"
        );
    }

    #[test]
    fn unknown_sections_are_skipped_by_the_gate() {
        let mut run = sample_run();
        run.sections.remove(1);
        let baseline = runs_to_json(&[sample_run()]);
        assert!(regression_failures(&run, &baseline, CI_REGRESSION_FACTOR).is_empty());
    }
}
