//! Job conservation under the `Scheduler` trait: for every baseline, over
//! randomized task sets and horizons, every released job is accounted
//! exactly once — `released == completed + rejected + outstanding` at the
//! end of the run (with `rejected == 0`: baselines never refuse work).
//!
//! Deadline misses deliberately do NOT enter the conservation sum: the
//! metrics model counts a late completion as both completed and missed, so
//! misses overlap completions and are instead bounded by `accepted`.

use daris_baselines::{
    BaselineScheduler, BatchingServer, FifoMultiStreamServer, GlobalEdfServer, GsliceServer,
    PriorityOnlyServer, SingleTenantServer,
};
use daris_core::Scheduler;
use daris_gpu::{SimTime, XorShiftRng};
use daris_models::DnnKind;
use daris_workload::{ArrivalStream, Priority, TaskSet, TaskSetBuilder};
use proptest::prelude::*;

/// Deterministic random task set over the three Table II model kinds with
/// varied rates and priorities.
fn random_taskset(seed: u64, n_tasks: usize) -> TaskSet {
    let mut rng = XorShiftRng::new(seed);
    let kinds = [DnnKind::ResNet18, DnnKind::UNet, DnnKind::InceptionV3];
    let mut builder = TaskSetBuilder::new();
    for _ in 0..n_tasks.max(1) {
        let kind = kinds[(rng.next_u64() % 3) as usize];
        let jps = 5.0 + rng.uniform(0.0, 35.0);
        let priority = if rng.next_u64() % 3 == 0 { Priority::High } else { Priority::Low };
        builder = builder.add_tasks(kind, 1, jps, priority);
    }
    builder.build()
}

/// Every baseline, as a boxed trait scheduler over `taskset`.
fn all_baselines(taskset: &TaskSet) -> Vec<BaselineScheduler> {
    vec![
        SingleTenantServer::new().scheduler(taskset).expect("single-tenant builds"),
        FifoMultiStreamServer::new(4).scheduler(taskset).expect("fifo builds"),
        BatchingServer::new().scheduler(taskset).expect("batching builds"),
        GsliceServer::new(2).scheduler(taskset).expect("gslice builds"),
        GlobalEdfServer::new(4).scheduler(taskset).expect("edf builds"),
        PriorityOnlyServer::new(4).scheduler(taskset).expect("priority-only builds"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `released == completed + rejected + outstanding` for every baseline,
    /// on any task set at any horizon — no job is lost or double-counted by
    /// the shared harness, whatever the queueing policy does.
    #[test]
    fn every_baseline_conserves_jobs(seed in 0u64..1_000_000, n_tasks in 1usize..12, horizon_ms in 60u64..220) {
        let taskset = random_taskset(seed, n_tasks);
        let horizon = SimTime::from_millis(horizon_ms);
        for mut scheduler in all_baselines(&taskset) {
            let mut arrivals = ArrivalStream::new(&taskset, horizon);
            let released_total = ArrivalStream::new(&taskset, horizon).count();
            let mut rejected_by_loop = Vec::new();
            scheduler.run_span(&mut arrivals, horizon, &mut rejected_by_loop);
            prop_assert!(rejected_by_loop.is_empty(), "a baseline refused a release");
            let outstanding = scheduler.outstanding_jobs();
            let outcome = scheduler.finish(horizon);
            let total = &outcome.summary.total;
            prop_assert_eq!(total.rejected, 0, "baselines never reject ({})", &outcome.config_label);
            prop_assert_eq!(
                total.released,
                total.completed + total.rejected + outstanding,
                "conservation violated for {}: released {} completed {} outstanding {}",
                outcome.config_label, total.released, total.completed, outstanding
            );
            prop_assert_eq!(total.released, released_total, "harness lost releases");
            prop_assert!(total.deadline_misses <= total.accepted, "misses exceed accepted jobs");
        }
    }
}
