#![forbid(unsafe_code)]
//! # daris-baselines
//!
//! The comparison schedulers used by the DARIS paper's evaluation, all
//! implemented against the same simulated GPU **and the same
//! [`daris_core::Scheduler`] trait** as DARIS itself, so every baseline can
//! be driven standalone, replayed from traces, or fanned out across a fleet
//! by `daris-cluster`'s dispatcher:
//!
//! * [`SingleTenantServer`] — one DNN at a time on the whole GPU, FIFO. This
//!   is the paper's *lower baseline* ("single DNN" throughput, also the
//!   Clockwork-style predictable-but-slow design point).
//! * [`BatchingServer`] — a pure batching inference server: jobs of a model
//!   are grouped into fixed-size batches and executed back to back on the
//!   whole GPU. Its best throughput is the *upper baseline* (Table I max
//!   JPS), which DARIS aims to beat without batching.
//! * [`GsliceServer`] — a GSlice-like controlled spatial-sharing server:
//!   static, non-oversubscribed SM partitions, one per tenant, each running
//!   batched inference, no priorities and no admission control (Sec. VI-B).
//! * [`FifoMultiStreamServer`] — an RTGPU-style multi-stream FIFO scheduler
//!   with no priorities, no staging and no admission test.
//! * [`GlobalEdfServer`] — global EDF over whole jobs: deadline-aware, but
//!   without DARIS's stage-boundary preemption points.
//! * [`PriorityOnlyServer`] — strict class priority without batching,
//!   staging, deadlines or admission control.
//!
//! Each server is a thin builder over one shared [`BaselineScheduler`]
//! harness plus a private queueing policy — the only part that differs
//! between baselines — so comparisons compare *policies*, not loop plumbing.
//! Every baseline returns the same [`daris_metrics::ExperimentSummary`] the
//! DARIS runtime produces, so experiment runners can compare them directly.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batching;
mod edf;
mod fifo;
mod gslice;
mod harness;
mod policies;
mod priority_only;
mod single_tenant;

pub use batching::BatchingServer;
pub use edf::GlobalEdfServer;
pub use fifo::FifoMultiStreamServer;
pub use gslice::GsliceServer;
pub use harness::BaselineScheduler;
pub use priority_only::PriorityOnlyServer;
pub use single_tenant::SingleTenantServer;
