//! Global EDF without stage preemption: deadline-aware, but whole-job.

use daris_core::Scheduler;
use daris_gpu::{GpuError, GpuSpec, SimTime};
use daris_metrics::ExperimentSummary;
use daris_workload::{ArrivalStream, TaskSet};

use crate::harness::{BaselineScheduler, SlotLayout};
use crate::policies::EdfQueue;

/// Global earliest-deadline-first over whole jobs: every release enters one
/// deadline-ordered queue and the most urgent job takes the next idle
/// stream, committing it for the entire inference.
///
/// This is the scheduler the paper implies when it motivates *staging*: EDF
/// picks the right job, but without stage-level preemption points an urgent
/// release arriving just after a long job started must wait the job out.
/// Comparing this against DARIS isolates the value of stage-boundary
/// preemption from the value of deadline ordering. No admission control, no
/// priorities beyond the deadline itself, no batching.
#[derive(Debug, Clone)]
pub struct GlobalEdfServer {
    spec: GpuSpec,
    calibration: Option<GpuSpec>,
    streams: u32,
}

impl GlobalEdfServer {
    /// Creates a server with `streams` parallel streams on the paper's GPU.
    pub fn new(streams: u32) -> Self {
        GlobalEdfServer { spec: GpuSpec::rtx_2080_ti(), calibration: None, streams: streams.max(1) }
    }

    /// Overrides the device.
    pub fn with_gpu(mut self, spec: GpuSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Calibrates model profiles against a *reference* device instead of
    /// the server's own (heterogeneous-fleet fairness).
    pub fn with_calibration(mut self, reference: GpuSpec) -> Self {
        self.calibration = Some(reference);
        self
    }

    /// Number of streams.
    pub fn streams(&self) -> u32 {
        self.streams
    }

    /// Builds the [`Scheduler`]-trait form of this baseline over `taskset`.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction errors.
    pub fn scheduler(&self, taskset: &TaskSet) -> Result<BaselineScheduler, GpuError> {
        BaselineScheduler::build(
            format!("GlobalEDF k={}", self.streams),
            taskset,
            self.spec.clone(),
            self.calibration.clone().unwrap_or_else(|| self.spec.clone()),
            SlotLayout::SharedContext { streams: self.streams },
            Box::new(EdfQueue::new()),
        )
    }

    /// Serves `taskset` until `horizon` with strictly periodic arrivals.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (which indicate an internal bug).
    pub fn run(&self, taskset: &TaskSet, horizon: SimTime) -> Result<ExperimentSummary, GpuError> {
        let mut scheduler = self.scheduler(taskset)?;
        let mut arrivals = ArrivalStream::new(taskset, horizon);
        Ok(scheduler.run_with_source(&mut arrivals, horizon).summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daris_models::DnnKind;

    #[test]
    fn edf_beats_fifo_on_deadline_misses_under_mixed_urgency() {
        // Same device, same streams, same workload: ordering by deadline
        // instead of release order should not *increase* the miss rate.
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let horizon = SimTime::from_millis(300);
        let edf = GlobalEdfServer::new(4).run(&taskset, horizon).unwrap();
        let fifo = crate::FifoMultiStreamServer::new(4).run(&taskset, horizon).unwrap();
        assert!(
            edf.total.deadline_miss_rate <= fifo.total.deadline_miss_rate + 0.05,
            "EDF {} vs FIFO {}",
            edf.total.deadline_miss_rate,
            fifo.total.deadline_miss_rate
        );
        assert_eq!(edf.total.rejected, 0, "no admission control");
    }

    #[test]
    fn underloaded_set_is_served_without_misses() {
        let light: TaskSet =
            TaskSet::table2(DnnKind::UNet).tasks().iter().take(3).cloned().collect();
        let summary = GlobalEdfServer::new(2).run(&light, SimTime::from_millis(300)).unwrap();
        assert!(summary.total.completed > 10);
        assert_eq!(summary.total.deadline_misses, 0);
    }
}
