//! A GSlice-like controlled spatial-sharing baseline (Sec. VI-B).

use std::collections::BTreeMap;

use daris_core::Scheduler;
use daris_gpu::{GpuError, GpuSpec, SimTime};
use daris_metrics::ExperimentSummary;
use daris_models::DnnKind;
use daris_workload::{ArrivalStream, TaskSet};

use crate::harness::{BaselineScheduler, SlotLayout};
use crate::policies::GsliceQueue;

/// A GSlice-style inference server: the GPU is carved into static,
/// non-overlapping SM partitions (no oversubscription), each partition serves
/// its tenants with batched FIFO execution, and there is no priority handling
/// or admission control.
///
/// This is the state-of-the-art spatial-sharing point the paper compares
/// against in Sec. VI-B (GSlice improves ~3.5 % over pure batching; DARIS
/// improves ~15 %).
#[derive(Debug, Clone)]
pub struct GsliceServer {
    spec: GpuSpec,
    calibration: Option<GpuSpec>,
    partitions: u32,
    batch_size: BTreeMap<DnnKind, u32>,
}

impl GsliceServer {
    /// Creates a server with `partitions` equal SM partitions on the paper's
    /// RTX 2080 Ti.
    pub fn new(partitions: u32) -> Self {
        let batch_size = DnnKind::all().iter().map(|k| (*k, k.paper_batch_size())).collect();
        GsliceServer {
            spec: GpuSpec::rtx_2080_ti(),
            calibration: None,
            partitions: partitions.max(1),
            batch_size,
        }
    }

    /// Overrides the device.
    pub fn with_gpu(mut self, spec: GpuSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Calibrates model profiles against a *reference* device instead of
    /// the server's own (heterogeneous-fleet fairness).
    pub fn with_calibration(mut self, reference: GpuSpec) -> Self {
        self.calibration = Some(reference);
        self
    }

    /// Overrides a model's batch size.
    pub fn with_batch_size(mut self, kind: DnnKind, batch: u32) -> Self {
        self.batch_size.insert(kind, batch.max(1));
        self
    }

    /// Number of partitions.
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// Builds the [`Scheduler`]-trait form of this baseline over `taskset`:
    /// tasks pin to partitions round-robin by task id (GSlice pins tenants
    /// to slices); each partition batches its own pending jobs per model and
    /// runs them FIFO.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction errors.
    pub fn scheduler(&self, taskset: &TaskSet) -> Result<BaselineScheduler, GpuError> {
        BaselineScheduler::build(
            format!("GSlice p={}", self.partitions),
            taskset,
            self.spec.clone(),
            self.calibration.clone().unwrap_or_else(|| self.spec.clone()),
            SlotLayout::Partitions { count: self.partitions },
            Box::new(GsliceQueue::new(self.partitions as usize, self.batch_size.clone())),
        )
    }

    /// Serves `taskset` until `horizon` with strictly periodic arrivals.
    ///
    /// *Legacy shim* over [`scheduler`](Self::scheduler) +
    /// [`Scheduler::run_with_source`].
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (which indicate an internal bug).
    pub fn run(&self, taskset: &TaskSet, horizon: SimTime) -> Result<ExperimentSummary, GpuError> {
        let mut scheduler = self.scheduler(taskset)?;
        let mut arrivals = ArrivalStream::new(taskset, horizon);
        Ok(scheduler.run_with_source(&mut arrivals, horizon).summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daris_models::DnnKind;

    #[test]
    fn gslice_improves_modestly_over_pure_batching_for_resnet50() {
        // Sec. VI-B: GSlice gains a few percent over batching; DARIS gains
        // far more. Here we check the GSlice side of that comparison.
        let taskset = TaskSet::resnet50_comparison();
        let horizon = SimTime::from_millis(400);
        let batching = crate::BatchingServer::new().run(&taskset, horizon).unwrap();
        let gslice = GsliceServer::new(2).run(&taskset, horizon).unwrap();
        let gain = gslice.throughput_jps / batching.throughput_jps;
        assert!(gain > 0.95, "GSlice should not collapse: gain {gain}");
        assert!(gain < 1.35, "GSlice should not dominate batching by much: gain {gain}");
    }

    #[test]
    fn partitions_are_static_and_non_oversubscribed() {
        let server = GsliceServer::new(4);
        assert_eq!(server.partitions(), 4);
        let taskset = TaskSet::table2(DnnKind::UNet);
        let summary = server.run(&taskset, SimTime::from_millis(200)).unwrap();
        assert!(summary.total.completed > 10);
        assert_eq!(summary.total.rejected, 0);
    }

    #[test]
    fn single_partition_degenerates_to_batching_behaviour() {
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let horizon = SimTime::from_millis(250);
        let one = GsliceServer::new(1).run(&taskset, horizon).unwrap();
        let batching = crate::BatchingServer::new().run(&taskset, horizon).unwrap();
        let ratio = one.throughput_jps / batching.throughput_jps;
        assert!(ratio > 0.7 && ratio < 1.3, "ratio {ratio}");
    }
}
