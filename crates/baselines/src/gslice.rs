//! A GSlice-like controlled spatial-sharing baseline (Sec. VI-B).

use std::collections::{BTreeMap, VecDeque};

use daris_gpu::{Gpu, GpuError, GpuSpec, SimTime, StreamId, WorkItem};
use daris_metrics::{ExperimentSummary, MetricsCollector};
use daris_models::{DnnKind, ModelProfile};
use daris_workload::{ArrivalPlan, Job, ReleaseJitter, TaskSet};

use crate::single_tenant::{run_fifo_loop, LoopEvent};

/// A GSlice-style inference server: the GPU is carved into static,
/// non-overlapping SM partitions (no oversubscription), each partition serves
/// its tenants with batched FIFO execution, and there is no priority handling
/// or admission control.
///
/// This is the state-of-the-art spatial-sharing point the paper compares
/// against in Sec. VI-B (GSlice improves ~3.5 % over pure batching; DARIS
/// improves ~15 %).
#[derive(Debug, Clone)]
pub struct GsliceServer {
    spec: GpuSpec,
    partitions: u32,
    batch_size: BTreeMap<DnnKind, u32>,
}

impl GsliceServer {
    /// Creates a server with `partitions` equal SM partitions on the paper's
    /// RTX 2080 Ti.
    pub fn new(partitions: u32) -> Self {
        let batch_size = DnnKind::all().iter().map(|k| (*k, k.paper_batch_size())).collect();
        GsliceServer { spec: GpuSpec::rtx_2080_ti(), partitions: partitions.max(1), batch_size }
    }

    /// Overrides the device.
    pub fn with_gpu(mut self, spec: GpuSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Overrides a model's batch size.
    pub fn with_batch_size(mut self, kind: DnnKind, batch: u32) -> Self {
        self.batch_size.insert(kind, batch.max(1));
        self
    }

    /// Number of partitions.
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// Serves `taskset` until `horizon`.
    ///
    /// Tasks are assigned to partitions round-robin by task id (GSlice pins
    /// tenants to slices); each partition batches its own pending jobs per
    /// model and runs them FIFO.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (which indicate an internal bug).
    pub fn run(&self, taskset: &TaskSet, horizon: SimTime) -> Result<ExperimentSummary, GpuError> {
        let profiles: BTreeMap<DnnKind, ModelProfile> = taskset
            .model_kinds()
            .into_iter()
            .map(|k| (k, ModelProfile::calibrated_for(k, Default::default(), &self.spec)))
            .collect();
        let mut gpu = Gpu::new(self.spec.clone());
        // Static, non-oversubscribed partitions: the quota divides the device.
        let quota = (self.spec.sm_count / self.partitions).max(2);
        let mut streams: Vec<StreamId> = Vec::new();
        for _ in 0..self.partitions {
            let ctx = gpu.add_context(quota)?;
            streams.push(gpu.add_stream(ctx)?);
        }
        let mut metrics = MetricsCollector::new();
        let arrivals: Vec<Job> =
            ArrivalPlan::generate(taskset, horizon, ReleaseJitter::None).into_iter().collect();

        // Per-partition, per-model pending queues.
        let mut pending: Vec<BTreeMap<DnnKind, VecDeque<Job>>> =
            (0..self.partitions).map(|_| BTreeMap::new()).collect();
        let mut busy: Vec<bool> = vec![false; self.partitions as usize];
        let mut in_flight: BTreeMap<u64, (usize, Vec<Job>)> = BTreeMap::new();
        let mut next_tag = 0u64;
        let batch_sizes = self.batch_size.clone();
        let partitions = self.partitions as usize;

        let dispatch = |gpu: &mut Gpu,
                        partition: usize,
                        pending: &mut Vec<BTreeMap<DnnKind, VecDeque<Job>>>,
                        busy: &mut Vec<bool>,
                        in_flight: &mut BTreeMap<u64, (usize, Vec<Job>)>,
                        next_tag: &mut u64|
         -> Result<(), GpuError> {
            if busy[partition] {
                return Ok(());
            }
            // Flush the model whose head job has the earliest deadline; wait
            // for a full batch only if the queue is still short.
            let now_us = gpu.now().as_micros_f64();
            let mut best: Option<(DnnKind, f64)> = None;
            for (kind, queue) in pending[partition].iter() {
                let Some(head) = queue.front() else { continue };
                let target = batch_sizes.get(kind).copied().unwrap_or(1) as usize;
                let waited_long = now_us - head.release.as_micros_f64()
                    > 0.5 * (head.absolute_deadline - head.release).as_micros_f64();
                if queue.len() >= target || waited_long {
                    let urgency = head.absolute_deadline.as_micros_f64();
                    if best.map(|(_, u)| urgency < u).unwrap_or(true) {
                        best = Some((*kind, urgency));
                    }
                }
            }
            let Some((kind, _)) = best else { return Ok(()) };
            let target = batch_sizes.get(&kind).copied().unwrap_or(1) as usize;
            let queue = pending[partition].get_mut(&kind).expect("kind has a queue");
            let take = queue.len().min(target);
            let jobs: Vec<Job> = queue.drain(..take).collect();
            let profile = &profiles[&kind];
            let batch = jobs.len() as u32;
            let tag = *next_tag;
            *next_tag += 1;
            let item = WorkItem::new(tag)
                .with_kernels(profile.job_kernels(batch))
                .with_h2d_bytes(profile.input_bytes(batch))
                .with_d2h_bytes(profile.output_bytes(batch));
            gpu.submit(streams[partition], item)?;
            in_flight.insert(tag, (partition, jobs));
            busy[partition] = true;
            Ok(())
        };

        run_fifo_loop(&mut gpu, &arrivals, horizon, |gpu, event| match event {
            LoopEvent::Release(job) => {
                metrics.record_release(&job);
                let partition = job.id.task.index() % partitions;
                pending[partition].entry(job.model).or_default().push_back(job);
                dispatch(gpu, partition, &mut pending, &mut busy, &mut in_flight, &mut next_tag)
            }
            LoopEvent::Completion { tag, finished_at } => {
                let partition = if let Some((partition, jobs)) = in_flight.remove(&tag) {
                    for job in jobs {
                        metrics.record_completion(&job, finished_at);
                    }
                    busy[partition] = false;
                    partition
                } else {
                    return Ok(());
                };
                dispatch(gpu, partition, &mut pending, &mut busy, &mut in_flight, &mut next_tag)
            }
        })?;
        Ok(metrics.summarize(horizon).with_gpu_utilization(gpu.average_utilization()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gslice_improves_modestly_over_pure_batching_for_resnet50() {
        // Sec. VI-B: GSlice gains a few percent over batching; DARIS gains
        // far more. Here we check the GSlice side of that comparison.
        let taskset = TaskSet::resnet50_comparison();
        let horizon = SimTime::from_millis(400);
        let batching = crate::BatchingServer::new().run(&taskset, horizon).unwrap();
        let gslice = GsliceServer::new(2).run(&taskset, horizon).unwrap();
        let gain = gslice.throughput_jps / batching.throughput_jps;
        assert!(gain > 0.95, "GSlice should not collapse: gain {gain}");
        assert!(gain < 1.35, "GSlice should not dominate batching by much: gain {gain}");
    }

    #[test]
    fn partitions_are_static_and_non_oversubscribed() {
        let server = GsliceServer::new(4);
        assert_eq!(server.partitions(), 4);
        let taskset = TaskSet::table2(DnnKind::UNet);
        let summary = server.run(&taskset, SimTime::from_millis(200)).unwrap();
        assert!(summary.total.completed > 10);
        assert_eq!(summary.total.rejected, 0);
    }

    #[test]
    fn single_partition_degenerates_to_batching_behaviour() {
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let horizon = SimTime::from_millis(250);
        let one = GsliceServer::new(1).run(&taskset, horizon).unwrap();
        let batching = crate::BatchingServer::new().run(&taskset, horizon).unwrap();
        let ratio = one.throughput_jps / batching.throughput_jps;
        assert!(ratio > 0.7 && ratio < 1.3, "ratio {ratio}");
    }
}
