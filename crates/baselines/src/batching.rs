//! The pure-batching upper baseline.

use std::collections::{BTreeMap, VecDeque};

use daris_gpu::{Gpu, GpuError, GpuSpec, SimTime, WorkItem};
use daris_metrics::{ExperimentSummary, MetricsCollector};
use daris_models::{DnnKind, ModelProfile};
use daris_workload::{ArrivalPlan, Job, ReleaseJitter, TaskSet};

use crate::single_tenant::{run_fifo_loop, LoopEvent};

/// How long a partially filled batch may wait before it is flushed anyway.
/// Without a timeout an underloaded model would starve forever.
const BATCH_TIMEOUT_PERIODS: f64 = 0.5;

/// A pure batching inference server: released jobs are grouped per model into
/// fixed-size batches and the batches execute back to back on the whole GPU,
/// FIFO, with no priorities or admission control.
///
/// Its best-case throughput (`Table I max JPS`) is the *upper baseline* the
/// paper compares DARIS against; its deadline behaviour shows why batching
/// alone is not a real-time scheduler (jobs wait for their batch to fill).
#[derive(Debug, Clone)]
pub struct BatchingServer {
    spec: GpuSpec,
    batch_size: BTreeMap<DnnKind, u32>,
}

impl BatchingServer {
    /// Creates a server using the paper's per-model batch sizes
    /// (4 / 2 / 8, Sec. VI-H).
    pub fn new() -> Self {
        let batch_size = DnnKind::all().iter().map(|k| (*k, k.paper_batch_size())).collect();
        BatchingServer { spec: GpuSpec::rtx_2080_ti(), batch_size }
    }

    /// Overrides the batch size for one model.
    pub fn with_batch_size(mut self, kind: DnnKind, batch: u32) -> Self {
        self.batch_size.insert(kind, batch.max(1));
        self
    }

    /// Overrides the device.
    pub fn with_gpu(mut self, spec: GpuSpec) -> Self {
        self.spec = spec;
        self
    }

    /// The upper-baseline throughput of a single model: its best batched JPS
    /// over a batch sweep on an idle device (Table I max JPS).
    pub fn upper_baseline_jps(kind: DnnKind) -> f64 {
        ModelProfile::calibrated(kind).best_batched_jps().1
    }

    /// Serves `taskset` until `horizon`.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (which indicate an internal bug).
    pub fn run(&self, taskset: &TaskSet, horizon: SimTime) -> Result<ExperimentSummary, GpuError> {
        let profiles: BTreeMap<DnnKind, ModelProfile> = taskset
            .model_kinds()
            .into_iter()
            .map(|k| (k, ModelProfile::calibrated_for(k, Default::default(), &self.spec)))
            .collect();
        let mut gpu = Gpu::new(self.spec.clone());
        let ctx = gpu.add_context(self.spec.sm_count)?;
        let stream = gpu.add_stream(ctx)?;
        let mut metrics = MetricsCollector::new();
        let arrivals: Vec<Job> =
            ArrivalPlan::generate(taskset, horizon, ReleaseJitter::None).into_iter().collect();

        let mut pending: BTreeMap<DnnKind, VecDeque<Job>> = BTreeMap::new();
        let mut in_flight: BTreeMap<u64, Vec<Job>> = BTreeMap::new();
        let mut next_tag = 0u64;
        let mut busy = false;
        let batch_sizes = self.batch_size.clone();
        let min_period_us: BTreeMap<DnnKind, f64> = taskset
            .model_kinds()
            .into_iter()
            .map(|k| {
                let p = taskset
                    .tasks()
                    .iter()
                    .filter(|t| t.model == k)
                    .map(|t| t.period.as_micros_f64())
                    .fold(f64::MAX, f64::min);
                (k, p)
            })
            .collect();

        let dispatch = |gpu: &mut Gpu,
                        pending: &mut BTreeMap<DnnKind, VecDeque<Job>>,
                        in_flight: &mut BTreeMap<u64, Vec<Job>>,
                        busy: &mut bool,
                        next_tag: &mut u64|
         -> Result<(), GpuError> {
            if *busy {
                return Ok(());
            }
            // Pick the model with the most urgent head-of-line job among
            // those with a full batch, or with a timed-out partial batch.
            let now_us = gpu.now().as_micros_f64();
            let mut best: Option<(DnnKind, bool, f64)> = None;
            for (kind, queue) in pending.iter() {
                let Some(head) = queue.front() else { continue };
                let target = batch_sizes.get(kind).copied().unwrap_or(1) as usize;
                let full = queue.len() >= target;
                let waited = now_us - head.release.as_micros_f64();
                let timeout =
                    BATCH_TIMEOUT_PERIODS * min_period_us.get(kind).copied().unwrap_or(f64::MAX);
                if full || waited >= timeout {
                    let urgency = head.absolute_deadline.as_micros_f64();
                    if best.map(|(_, _, u)| urgency < u).unwrap_or(true) {
                        best = Some((*kind, full, urgency));
                    }
                }
            }
            let Some((kind, _, _)) = best else { return Ok(()) };
            let target = batch_sizes.get(&kind).copied().unwrap_or(1) as usize;
            let queue = pending.get_mut(&kind).expect("selected kind has a queue");
            let take = queue.len().min(target);
            let jobs: Vec<Job> = queue.drain(..take).collect();
            let profile = &profiles[&kind];
            let batch = jobs.len() as u32;
            let tag = *next_tag;
            *next_tag += 1;
            let item = WorkItem::new(tag)
                .with_kernels(profile.job_kernels(batch))
                .with_h2d_bytes(profile.input_bytes(batch))
                .with_d2h_bytes(profile.output_bytes(batch));
            gpu.submit(stream, item)?;
            in_flight.insert(tag, jobs);
            *busy = true;
            Ok(())
        };

        run_fifo_loop(&mut gpu, &arrivals, horizon, |gpu, event| match event {
            LoopEvent::Release(job) => {
                metrics.record_release(&job);
                pending.entry(job.model).or_default().push_back(job);
                dispatch(gpu, &mut pending, &mut in_flight, &mut busy, &mut next_tag)
            }
            LoopEvent::Completion { tag, finished_at } => {
                if let Some(jobs) = in_flight.remove(&tag) {
                    for job in jobs {
                        metrics.record_completion(&job, finished_at);
                    }
                }
                busy = false;
                dispatch(gpu, &mut pending, &mut in_flight, &mut busy, &mut next_tag)
            }
        })?;
        Ok(metrics.summarize(horizon).with_gpu_utilization(gpu.average_utilization()))
    }
}

impl Default for BatchingServer {
    fn default() -> Self {
        BatchingServer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daris_workload::Priority;

    #[test]
    fn upper_baseline_matches_table1_max_jps() {
        for (kind, expected) in [
            (DnnKind::ResNet18, 1025.0),
            (DnnKind::ResNet50, 433.0),
            (DnnKind::UNet, 260.0),
            (DnnKind::InceptionV3, 446.0),
        ] {
            let jps = BatchingServer::upper_baseline_jps(kind);
            assert!((jps - expected).abs() / expected < 0.12, "{kind}: {jps} vs {expected}");
        }
    }

    #[test]
    fn batching_beats_single_tenant_on_the_overloaded_set() {
        let taskset = TaskSet::table2(DnnKind::InceptionV3);
        let horizon = SimTime::from_millis(400);
        let batching = BatchingServer::new().run(&taskset, horizon).unwrap();
        let single = crate::SingleTenantServer::new().run(&taskset, horizon).unwrap();
        assert!(
            batching.throughput_jps > 1.5 * single.throughput_jps,
            "batching {} vs single {}",
            batching.throughput_jps,
            single.throughput_jps
        );
    }

    #[test]
    fn batching_has_no_priority_awareness() {
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let summary = BatchingServer::new().run(&taskset, SimTime::from_millis(300)).unwrap();
        // Overloaded: both priority classes miss deadlines because jobs wait
        // for their batch regardless of priority.
        assert!(summary.of(Priority::High).deadline_misses > 0);
        assert!(summary.of(Priority::Low).deadline_misses > 0);
        assert_eq!(summary.total.rejected, 0, "no admission control in the baseline");
    }

    #[test]
    fn partial_batches_are_flushed_for_light_load() {
        // A single light task never fills a batch of 8; the timeout must
        // flush it so jobs still complete.
        let light: TaskSet =
            TaskSet::table2(DnnKind::InceptionV3).tasks().iter().take(1).cloned().collect();
        let summary = BatchingServer::new().run(&light, SimTime::from_millis(400)).unwrap();
        assert!(summary.total.completed > 3, "{:?}", summary.total);
    }
}
