//! The pure-batching upper baseline.

use std::collections::BTreeMap;

use daris_core::Scheduler;
use daris_gpu::{GpuError, GpuSpec, SimTime};
use daris_metrics::ExperimentSummary;
use daris_models::{DnnKind, ModelProfile};
use daris_workload::{ArrivalStream, TaskSet};

use crate::harness::{BaselineScheduler, SlotLayout};
use crate::policies::BatchingQueue;

/// A pure batching inference server: released jobs are grouped per model into
/// fixed-size batches and the batches execute back to back on the whole GPU,
/// FIFO, with no priorities or admission control.
///
/// Its best-case throughput (`Table I max JPS`) is the *upper baseline* the
/// paper compares DARIS against; its deadline behaviour shows why batching
/// alone is not a real-time scheduler (jobs wait for their batch to fill).
#[derive(Debug, Clone)]
pub struct BatchingServer {
    spec: GpuSpec,
    calibration: Option<GpuSpec>,
    batch_size: BTreeMap<DnnKind, u32>,
}

impl BatchingServer {
    /// Creates a server using the paper's per-model batch sizes
    /// (4 / 2 / 8, Sec. VI-H).
    pub fn new() -> Self {
        let batch_size = DnnKind::all().iter().map(|k| (*k, k.paper_batch_size())).collect();
        BatchingServer { spec: GpuSpec::rtx_2080_ti(), calibration: None, batch_size }
    }

    /// Overrides the batch size for one model.
    pub fn with_batch_size(mut self, kind: DnnKind, batch: u32) -> Self {
        self.batch_size.insert(kind, batch.max(1));
        self
    }

    /// Overrides the device.
    pub fn with_gpu(mut self, spec: GpuSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Calibrates model profiles against a *reference* device instead of
    /// the server's own (heterogeneous-fleet fairness).
    pub fn with_calibration(mut self, reference: GpuSpec) -> Self {
        self.calibration = Some(reference);
        self
    }

    /// The upper-baseline throughput of a single model: its best batched JPS
    /// over a batch sweep on an idle device (Table I max JPS).
    pub fn upper_baseline_jps(kind: DnnKind) -> f64 {
        ModelProfile::calibrated(kind).best_batched_jps().1
    }

    /// Builds the [`Scheduler`]-trait form of this baseline over `taskset`:
    /// one stream, per-model batches flushed full-or-stale.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction errors.
    pub fn scheduler(&self, taskset: &TaskSet) -> Result<BaselineScheduler, GpuError> {
        BaselineScheduler::build(
            "Batching".to_string(),
            taskset,
            self.spec.clone(),
            self.calibration.clone().unwrap_or_else(|| self.spec.clone()),
            SlotLayout::SharedContext { streams: 1 },
            Box::new(BatchingQueue::new(self.batch_size.clone(), taskset)),
        )
    }

    /// Serves `taskset` until `horizon` with strictly periodic arrivals.
    ///
    /// *Legacy shim* over [`scheduler`](Self::scheduler) +
    /// [`Scheduler::run_with_source`].
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (which indicate an internal bug).
    pub fn run(&self, taskset: &TaskSet, horizon: SimTime) -> Result<ExperimentSummary, GpuError> {
        let mut scheduler = self.scheduler(taskset)?;
        let mut arrivals = ArrivalStream::new(taskset, horizon);
        Ok(scheduler.run_with_source(&mut arrivals, horizon).summary)
    }
}

impl Default for BatchingServer {
    fn default() -> Self {
        BatchingServer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daris_workload::Priority;

    #[test]
    fn upper_baseline_matches_table1_max_jps() {
        for (kind, expected) in [
            (DnnKind::ResNet18, 1025.0),
            (DnnKind::ResNet50, 433.0),
            (DnnKind::UNet, 260.0),
            (DnnKind::InceptionV3, 446.0),
        ] {
            let jps = BatchingServer::upper_baseline_jps(kind);
            assert!((jps - expected).abs() / expected < 0.12, "{kind}: {jps} vs {expected}");
        }
    }

    #[test]
    fn batching_beats_single_tenant_on_the_overloaded_set() {
        let taskset = TaskSet::table2(DnnKind::InceptionV3);
        let horizon = SimTime::from_millis(400);
        let batching = BatchingServer::new().run(&taskset, horizon).unwrap();
        let single = crate::SingleTenantServer::new().run(&taskset, horizon).unwrap();
        assert!(
            batching.throughput_jps > 1.5 * single.throughput_jps,
            "batching {} vs single {}",
            batching.throughput_jps,
            single.throughput_jps
        );
    }

    #[test]
    fn batching_has_no_priority_awareness() {
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let summary = BatchingServer::new().run(&taskset, SimTime::from_millis(300)).unwrap();
        // Overloaded: both priority classes miss deadlines because jobs wait
        // for their batch regardless of priority.
        assert!(summary.of(Priority::High).deadline_misses > 0);
        assert!(summary.of(Priority::Low).deadline_misses > 0);
        assert_eq!(summary.total.rejected, 0, "no admission control in the baseline");
    }

    #[test]
    fn partial_batches_are_flushed_for_light_load() {
        // A single light task never fills a batch of 8; the timeout must
        // flush it so jobs still complete.
        let light: TaskSet =
            TaskSet::table2(DnnKind::InceptionV3).tasks().iter().take(1).cloned().collect();
        let summary = BatchingServer::new().run(&light, SimTime::from_millis(400)).unwrap();
        assert!(summary.total.completed > 3, "{:?}", summary.total);
    }
}
