//! Dispatch policies: the *only* part that differs between baselines.
//!
//! Each baseline scheduler is [`BaselineScheduler`](crate::BaselineScheduler)
//! — the shared device harness — plus one [`DispatchQueue`] implementation
//! deciding which queued jobs run next on an idle slot. Everything else
//! (event loop, metrics, completion handling) is common, so a comparison
//! between two baselines compares queueing policies, nothing else.

use std::collections::{BTreeMap, VecDeque};

use daris_gpu::SimTime;
use daris_models::DnnKind;
use daris_workload::{Job, JobId, Priority, TaskSet, TaskSpec};

/// How long a partially filled batch may wait before it is flushed anyway.
/// Without a timeout an underloaded model would starve forever.
pub(crate) const BATCH_TIMEOUT_PERIODS: f64 = 0.5;

/// A set of jobs submitted to the device as one work item.
#[derive(Debug)]
pub(crate) struct DispatchBatch {
    /// The jobs fused into the item (all of one model for batched policies).
    pub jobs: Vec<Job>,
    /// The inference count submitted to the device. Whole-job policies pass
    /// the job's own batch size; batching policies pass the fused job count.
    pub batch: u32,
}

impl DispatchBatch {
    fn single(job: Job) -> Self {
        DispatchBatch { batch: job.batch_size, jobs: vec![job] }
    }

    fn fused(jobs: Vec<Job>) -> Self {
        DispatchBatch { batch: jobs.len() as u32, jobs }
    }
}

/// The pluggable queueing policy of a [`BaselineScheduler`]
/// (`crate::BaselineScheduler`).
///
/// `slot` indexes the harness's dispatch slots (one CUDA stream each;
/// partitioned layouts give every slot its own context). Policies with one
/// global queue ignore it; partition-pinned policies key their queues by it.
pub(crate) trait DispatchQueue: std::fmt::Debug + Send {
    /// Queues a released (always-admitted) job. `slots` is the slot count.
    fn push(&mut self, job: Job, slots: usize);

    /// The next batch to run on idle `slot` at `now`, or `None` to leave it
    /// idle.
    fn pop(&mut self, slot: usize, now: SimTime) -> Option<DispatchBatch>;

    /// Removes a queued job by id (cross-device migration support).
    fn withdraw(&mut self, id: JobId) -> Option<Job>;

    /// Number of queued jobs.
    fn queued(&self) -> usize;

    /// Queued jobs as `(EDF deadline, id)` pairs, in no particular order.
    fn queued_jobs(&self) -> Vec<(SimTime, JobId)>;

    /// Observes a newly adopted guest task (timeout bookkeeping).
    fn on_task_added(&mut self, _spec: &TaskSpec) {}
}

fn withdraw_from(queue: &mut VecDeque<Job>, id: JobId) -> Option<Job> {
    let at = queue.iter().position(|j| j.id == id)?;
    queue.remove(at)
}

/// Strict release-order FIFO over one global queue, one whole job per slot —
/// the RTGPU-style multi-stream baseline (and, with one slot, the
/// single-tenant lower baseline).
#[derive(Debug, Default)]
pub(crate) struct FifoQueue {
    queue: VecDeque<Job>,
}

impl FifoQueue {
    pub fn new() -> Self {
        Self::default()
    }
}

impl DispatchQueue for FifoQueue {
    fn push(&mut self, job: Job, _slots: usize) {
        self.queue.push_back(job);
    }

    fn pop(&mut self, _slot: usize, _now: SimTime) -> Option<DispatchBatch> {
        self.queue.pop_front().map(DispatchBatch::single)
    }

    fn withdraw(&mut self, id: JobId) -> Option<Job> {
        withdraw_from(&mut self.queue, id)
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn queued_jobs(&self) -> Vec<(SimTime, JobId)> {
        self.queue.iter().map(|j| (j.absolute_deadline, j.id)).collect()
    }
}

/// Global EDF without stage preemption: whole jobs ordered by absolute
/// deadline, ties broken by job id. Deadline-aware but commits a stream to
/// the entire inference, so an urgent release cannot preempt a long-running
/// low-urgency job — the design point DARIS's staging improves on.
#[derive(Debug, Default)]
pub(crate) struct EdfQueue {
    queue: BTreeMap<(SimTime, JobId), Job>,
}

impl EdfQueue {
    pub fn new() -> Self {
        Self::default()
    }
}

impl DispatchQueue for EdfQueue {
    fn push(&mut self, job: Job, _slots: usize) {
        self.queue.insert((job.absolute_deadline, job.id), job);
    }

    fn pop(&mut self, _slot: usize, _now: SimTime) -> Option<DispatchBatch> {
        let key = *self.queue.keys().next()?;
        self.queue.remove(&key).map(DispatchBatch::single)
    }

    fn withdraw(&mut self, id: JobId) -> Option<Job> {
        let key = self.queue.keys().find(|(_, j)| *j == id).copied()?;
        self.queue.remove(&key)
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn queued_jobs(&self) -> Vec<(SimTime, JobId)> {
        self.queue.keys().map(|(d, j)| (*d, *j)).collect()
    }
}

/// Priority-only: high-priority jobs strictly before low-priority ones, FIFO
/// within each class, whole jobs, no batching and no deadline awareness —
/// what priority scheduling buys *without* DARIS's admission test, staging
/// or virtual deadlines.
#[derive(Debug, Default)]
pub(crate) struct PriorityOnlyQueue {
    high: VecDeque<Job>,
    low: VecDeque<Job>,
}

impl PriorityOnlyQueue {
    pub fn new() -> Self {
        Self::default()
    }
}

impl DispatchQueue for PriorityOnlyQueue {
    fn push(&mut self, job: Job, _slots: usize) {
        match job.priority {
            Priority::High => self.high.push_back(job),
            Priority::Low => self.low.push_back(job),
        }
    }

    fn pop(&mut self, _slot: usize, _now: SimTime) -> Option<DispatchBatch> {
        self.high.pop_front().or_else(|| self.low.pop_front()).map(DispatchBatch::single)
    }

    fn withdraw(&mut self, id: JobId) -> Option<Job> {
        withdraw_from(&mut self.high, id).or_else(|| withdraw_from(&mut self.low, id))
    }

    fn queued(&self) -> usize {
        self.high.len() + self.low.len()
    }

    fn queued_jobs(&self) -> Vec<(SimTime, JobId)> {
        self.high.iter().chain(self.low.iter()).map(|j| (j.absolute_deadline, j.id)).collect()
    }
}

/// Pure batching: per-model queues, flushed full or on timeout, most urgent
/// head first — the paper's upper baseline (best throughput, no real-time
/// behaviour).
#[derive(Debug)]
pub(crate) struct BatchingQueue {
    pending: BTreeMap<DnnKind, VecDeque<Job>>,
    batch_size: BTreeMap<DnnKind, u32>,
    /// Shortest period among tasks of each model; scales the flush timeout.
    min_period_us: BTreeMap<DnnKind, f64>,
}

impl BatchingQueue {
    pub fn new(batch_size: BTreeMap<DnnKind, u32>, taskset: &TaskSet) -> Self {
        let mut queue =
            BatchingQueue { pending: BTreeMap::new(), batch_size, min_period_us: BTreeMap::new() };
        for task in taskset.tasks() {
            queue.on_task_added(task);
        }
        queue
    }
}

impl DispatchQueue for BatchingQueue {
    fn push(&mut self, job: Job, _slots: usize) {
        self.pending.entry(job.model).or_default().push_back(job);
    }

    fn pop(&mut self, _slot: usize, now: SimTime) -> Option<DispatchBatch> {
        // Pick the model with the most urgent head-of-line job among those
        // with a full batch, or with a timed-out partial batch.
        let now_us = now.as_micros_f64();
        let mut best: Option<(DnnKind, f64)> = None;
        for (kind, queue) in self.pending.iter() {
            let Some(head) = queue.front() else { continue };
            let target = self.batch_size.get(kind).copied().unwrap_or(1) as usize;
            let full = queue.len() >= target;
            let waited = now_us - head.release.as_micros_f64();
            let timeout =
                BATCH_TIMEOUT_PERIODS * self.min_period_us.get(kind).copied().unwrap_or(f64::MAX);
            if full || waited >= timeout {
                let urgency = head.absolute_deadline.as_micros_f64();
                if best.map(|(_, u)| urgency < u).unwrap_or(true) {
                    best = Some((*kind, urgency));
                }
            }
        }
        let (kind, _) = best?;
        let target = self.batch_size.get(&kind).copied().unwrap_or(1) as usize;
        let queue = self.pending.get_mut(&kind).expect("selected kind has a queue");
        let take = queue.len().min(target);
        Some(DispatchBatch::fused(queue.drain(..take).collect()))
    }

    fn withdraw(&mut self, id: JobId) -> Option<Job> {
        self.pending.values_mut().find_map(|q| withdraw_from(q, id))
    }

    fn queued(&self) -> usize {
        self.pending.values().map(VecDeque::len).sum()
    }

    fn queued_jobs(&self) -> Vec<(SimTime, JobId)> {
        self.pending.values().flat_map(|q| q.iter().map(|j| (j.absolute_deadline, j.id))).collect()
    }

    fn on_task_added(&mut self, spec: &TaskSpec) {
        let period = spec.period.as_micros_f64();
        self.min_period_us.entry(spec.model).and_modify(|p| *p = p.min(period)).or_insert(period);
    }
}

/// GSlice-style partition-pinned batching: tasks pin to a slot (partition)
/// round-robin by task id; each partition batches its own per-model queues
/// and flushes the most urgent full-or-stale one.
#[derive(Debug)]
pub(crate) struct GsliceQueue {
    partitions: Vec<BTreeMap<DnnKind, VecDeque<Job>>>,
    batch_size: BTreeMap<DnnKind, u32>,
}

impl GsliceQueue {
    pub fn new(partitions: usize, batch_size: BTreeMap<DnnKind, u32>) -> Self {
        GsliceQueue {
            partitions: (0..partitions.max(1)).map(|_| BTreeMap::new()).collect(),
            batch_size,
        }
    }
}

impl DispatchQueue for GsliceQueue {
    fn push(&mut self, job: Job, _slots: usize) {
        let partition = job.id.task.index() % self.partitions.len();
        self.partitions[partition].entry(job.model).or_default().push_back(job);
    }

    fn pop(&mut self, slot: usize, now: SimTime) -> Option<DispatchBatch> {
        let pending = self.partitions.get_mut(slot)?;
        // Flush the model whose head job has the earliest deadline; wait for
        // a full batch only if the queue is still short.
        let now_us = now.as_micros_f64();
        let mut best: Option<(DnnKind, f64)> = None;
        for (kind, queue) in pending.iter() {
            let Some(head) = queue.front() else { continue };
            let target = self.batch_size.get(kind).copied().unwrap_or(1) as usize;
            let waited_long = now_us - head.release.as_micros_f64()
                > 0.5 * (head.absolute_deadline - head.release).as_micros_f64();
            if queue.len() >= target || waited_long {
                let urgency = head.absolute_deadline.as_micros_f64();
                if best.map(|(_, u)| urgency < u).unwrap_or(true) {
                    best = Some((*kind, urgency));
                }
            }
        }
        let (kind, _) = best?;
        let target = self.batch_size.get(&kind).copied().unwrap_or(1) as usize;
        let queue = pending.get_mut(&kind).expect("selected kind has a queue");
        let take = queue.len().min(target);
        Some(DispatchBatch::fused(queue.drain(..take).collect()))
    }

    fn withdraw(&mut self, id: JobId) -> Option<Job> {
        self.partitions.iter_mut().flat_map(|p| p.values_mut()).find_map(|q| withdraw_from(q, id))
    }

    fn queued(&self) -> usize {
        self.partitions.iter().flat_map(|p| p.values()).map(VecDeque::len).sum()
    }

    fn queued_jobs(&self) -> Vec<(SimTime, JobId)> {
        self.partitions
            .iter()
            .flat_map(|p| p.values())
            .flat_map(|q| q.iter().map(|j| (j.absolute_deadline, j.id)))
            .collect()
    }
}
