//! Priority-only scheduling: classes, but no batching, staging or admission.

use daris_core::Scheduler;
use daris_gpu::{GpuError, GpuSpec, SimTime};
use daris_metrics::ExperimentSummary;
use daris_workload::{ArrivalStream, TaskSet};

use crate::harness::{BaselineScheduler, SlotLayout};
use crate::policies::PriorityOnlyQueue;

/// Strict two-level priority scheduling over whole jobs: high-priority
/// releases always dispatch before low-priority ones, FIFO within each
/// class, on `streams` parallel streams.
///
/// This is what "priority scheduling" buys *without* the rest of DARIS — no
/// admission test (an overload degrades everyone), no batching, no staging,
/// no deadline ordering within a class. Comparing it against DARIS isolates
/// the value of the admission + virtual-deadline machinery from the value of
/// mere class separation.
#[derive(Debug, Clone)]
pub struct PriorityOnlyServer {
    spec: GpuSpec,
    calibration: Option<GpuSpec>,
    streams: u32,
}

impl PriorityOnlyServer {
    /// Creates a server with `streams` parallel streams on the paper's GPU.
    pub fn new(streams: u32) -> Self {
        PriorityOnlyServer {
            spec: GpuSpec::rtx_2080_ti(),
            calibration: None,
            streams: streams.max(1),
        }
    }

    /// Overrides the device.
    pub fn with_gpu(mut self, spec: GpuSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Calibrates model profiles against a *reference* device instead of
    /// the server's own (heterogeneous-fleet fairness).
    pub fn with_calibration(mut self, reference: GpuSpec) -> Self {
        self.calibration = Some(reference);
        self
    }

    /// Number of streams.
    pub fn streams(&self) -> u32 {
        self.streams
    }

    /// Builds the [`Scheduler`]-trait form of this baseline over `taskset`.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction errors.
    pub fn scheduler(&self, taskset: &TaskSet) -> Result<BaselineScheduler, GpuError> {
        BaselineScheduler::build(
            format!("PriorityOnly k={}", self.streams),
            taskset,
            self.spec.clone(),
            self.calibration.clone().unwrap_or_else(|| self.spec.clone()),
            SlotLayout::SharedContext { streams: self.streams },
            Box::new(PriorityOnlyQueue::new()),
        )
    }

    /// Serves `taskset` until `horizon` with strictly periodic arrivals.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (which indicate an internal bug).
    pub fn run(&self, taskset: &TaskSet, horizon: SimTime) -> Result<ExperimentSummary, GpuError> {
        let mut scheduler = self.scheduler(taskset)?;
        let mut arrivals = ArrivalStream::new(taskset, horizon);
        Ok(scheduler.run_with_source(&mut arrivals, horizon).summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daris_models::DnnKind;
    use daris_workload::Priority;

    #[test]
    fn priority_only_protects_hp_relative_to_fifo() {
        // Class separation should cut the HP miss rate relative to blind
        // FIFO on the same overloaded set, at the expense of LP jobs.
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let horizon = SimTime::from_millis(300);
        let prio = PriorityOnlyServer::new(4).run(&taskset, horizon).unwrap();
        let fifo = crate::FifoMultiStreamServer::new(4).run(&taskset, horizon).unwrap();
        assert!(
            prio.of(Priority::High).deadline_miss_rate
                <= fifo.of(Priority::High).deadline_miss_rate,
            "priority-only HP {} vs FIFO HP {}",
            prio.of(Priority::High).deadline_miss_rate,
            fifo.of(Priority::High).deadline_miss_rate
        );
        assert_eq!(prio.total.rejected, 0, "no admission control");
    }

    #[test]
    fn low_priority_still_runs_when_high_is_idle() {
        let light: TaskSet =
            TaskSet::table2(DnnKind::UNet).tasks().iter().take(3).cloned().collect();
        let summary = PriorityOnlyServer::new(2).run(&light, SimTime::from_millis(300)).unwrap();
        assert!(
            summary.of(Priority::Low).completed > 0 || summary.of(Priority::High).completed > 0
        );
        assert_eq!(summary.total.deadline_misses, 0);
    }
}
