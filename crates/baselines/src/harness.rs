//! [`BaselineScheduler`]: the shared device harness behind every baseline.
//!
//! One struct owns the simulated GPU, its dispatch slots (streams), metrics
//! and in-flight bookkeeping; a [`DispatchQueue`] policy supplies the only
//! behaviour that differs between baselines. The struct implements
//! [`daris_core::Scheduler`], so every baseline can be driven standalone,
//! replayed from traces, or fanned out across a fleet by the cluster
//! dispatcher — exactly like [`DarisScheduler`](daris_core::DarisScheduler).
//!
//! This retires the old per-baseline `run_fifo_loop` plumbing: the event
//! loop is now the [`Scheduler`] trait's canonical `run_span` default,
//! shared with DARIS itself.

use std::collections::BTreeMap;

use daris_core::{ExperimentOutcome, Result as CoreResult, Scheduler};
use daris_gpu::{Gpu, GpuError, GpuSpec, SimTime, StreamId, WorkItem};
use daris_metrics::MetricsCollector;
use daris_models::{DnnKind, ModelProfile};
use daris_workload::{Job, JobId, Priority, TaskId, TaskSet, TaskSpec};

use crate::policies::{DispatchBatch, DispatchQueue};

/// How the device is carved into dispatch slots.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SlotLayout {
    /// One full-GPU context with `streams` CUDA streams (FIFO-family
    /// baselines; `streams == 1` is the single-tenant/batching shape).
    SharedContext {
        /// Number of streams sharing the context.
        streams: u32,
    },
    /// `count` static, non-oversubscribed SM partitions, one stream each
    /// (the GSlice shape). Slot index == partition index.
    Partitions {
        /// Number of equal partitions.
        count: u32,
    },
}

/// A baseline scheduler: shared harness + one queueing policy.
///
/// Build one through a server type's `scheduler(..)` method
/// ([`FifoMultiStreamServer::scheduler`](crate::FifoMultiStreamServer::scheduler)
/// and friends), then drive it through the [`Scheduler`] trait.
///
/// Baselines deliberately implement the "may not" list of the trait
/// contract's fairness rules: no admission control
/// ([`would_admit`](Scheduler::would_admit) accepts every task of the set,
/// [`try_release_job`](Scheduler::try_release_job) never refuses), no MRET
/// estimation, no stage-level preemption (whole jobs are committed to a
/// stream), and no virtual deadlines.
#[derive(Debug)]
pub struct BaselineScheduler {
    label: String,
    taskset: TaskSet,
    calibration: GpuSpec,
    profiles: BTreeMap<DnnKind, ModelProfile>,
    gpu: Gpu,
    /// One stream per dispatch slot (partitioned layouts: one context per
    /// slot too).
    slots: Vec<StreamId>,
    busy: Vec<bool>,
    /// Submitted tag → (slot, fused jobs).
    in_flight: BTreeMap<u64, (usize, Vec<Job>)>,
    next_tag: u64,
    policy: Box<dyn DispatchQueue>,
    metrics: MetricsCollector,
    now: SimTime,
}

impl BaselineScheduler {
    /// Builds the harness: device, slot layout, per-model profiles
    /// calibrated against `calibration` (the *reference* device in a
    /// heterogeneous fleet, so deadlines mean the same thing on every
    /// scheduler), and the policy.
    pub(crate) fn build(
        label: String,
        taskset: &TaskSet,
        device: GpuSpec,
        calibration: GpuSpec,
        layout: SlotLayout,
        policy: Box<dyn DispatchQueue>,
    ) -> Result<Self, GpuError> {
        let profiles: BTreeMap<DnnKind, ModelProfile> = taskset
            .model_kinds()
            .into_iter()
            .map(|k| (k, ModelProfile::calibrated_for(k, Default::default(), &calibration)))
            .collect();
        let mut gpu = Gpu::new(device.clone());
        let slots = match layout {
            SlotLayout::SharedContext { streams } => {
                let ctx = gpu.add_context(device.sm_count)?;
                let mut slots = Vec::new();
                for _ in 0..streams.max(1) {
                    slots.push(gpu.add_stream(ctx)?);
                }
                slots
            }
            SlotLayout::Partitions { count } => {
                let count = count.max(1);
                let quota = (device.sm_count / count).max(2);
                let mut slots = Vec::new();
                for _ in 0..count {
                    let ctx = gpu.add_context(quota)?;
                    slots.push(gpu.add_stream(ctx)?);
                }
                slots
            }
        };
        let busy = vec![false; slots.len()];
        Ok(BaselineScheduler {
            label,
            taskset: taskset.clone(),
            calibration,
            profiles,
            gpu,
            slots,
            busy,
            in_flight: BTreeMap::new(),
            next_tag: 0,
            policy,
            metrics: MetricsCollector::new(),
            now: SimTime::ZERO,
        })
    }

    /// Read access to the underlying simulated GPU.
    pub fn gpu(&self) -> &Gpu {
        &self.gpu
    }

    /// Jobs accepted but not yet completed: queued plus in flight. The job
    /// conservation invariant every baseline upholds is
    /// `released == completed + rejected + outstanding` at any point of a
    /// run (with `rejected == 0` — baselines never refuse).
    pub fn outstanding_jobs(&self) -> usize {
        self.policy.queued() + self.in_flight.values().map(|(_, jobs)| jobs.len()).sum::<usize>()
    }

    fn submit(&mut self, slot: usize, batch: DispatchBatch) {
        let model = batch.jobs.first().expect("a dispatch batch is never empty").model;
        let profile = &self.profiles[&model];
        let tag = self.next_tag;
        self.next_tag += 1;
        let item = WorkItem::new(tag)
            .with_kernels(profile.job_kernels(batch.batch))
            .with_h2d_bytes(profile.input_bytes(batch.batch))
            .with_d2h_bytes(profile.output_bytes(batch.batch));
        self.gpu
            .submit(self.slots[slot], item)
            .expect("submitting to an idle baseline stream cannot fail");
        self.in_flight.insert(tag, (slot, batch.jobs));
        self.busy[slot] = true;
    }
}

impl Scheduler for BaselineScheduler {
    fn now(&self) -> SimTime {
        self.now
    }

    fn next_event_time(&self) -> Option<SimTime> {
        self.gpu.next_event_time()
    }

    fn advance_to(&mut self, target: SimTime) {
        let completions = self.gpu.advance_to(target);
        self.now = target;
        for completion in completions {
            if let Some((slot, jobs)) = self.in_flight.remove(&completion.tag) {
                for job in jobs {
                    self.metrics.record_completion(&job, completion.finished_at);
                }
                self.busy[slot] = false;
            }
        }
    }

    fn dispatch_ready(&mut self) {
        for slot in 0..self.slots.len() {
            while !self.busy[slot] {
                let Some(batch) = self.policy.pop(slot, self.now) else { break };
                self.submit(slot, batch);
            }
        }
    }

    fn try_release_job(&mut self, job: Job) -> bool {
        // No admission control: every release of a known task is accepted.
        self.metrics.record_release(&job);
        self.policy.push(job, self.slots.len());
        true
    }

    fn reject_job(&mut self, job: &Job) {
        self.metrics.record_rejection(job);
    }

    fn would_admit(&self, task: TaskId, _priority: Priority) -> bool {
        self.taskset.task(task).is_some()
    }

    fn adopt_task(&mut self, task: &TaskSpec) -> CoreResult<TaskId> {
        if !self.profiles.contains_key(&task.model) {
            let profile =
                ModelProfile::calibrated_for(task.model, Default::default(), &self.calibration);
            self.profiles.insert(task.model, profile);
        }
        let local = self.taskset.adopt(task.clone());
        let spec = self.taskset.task(local).expect("just adopted").clone();
        self.policy.on_task_added(&spec);
        Ok(local)
    }

    fn withdraw_queued_job(&mut self, job: JobId) -> Option<Job> {
        let withdrawn = self.policy.withdraw(job)?;
        self.metrics.forget(job);
        Some(withdrawn)
    }

    fn migratable_jobs(&self) -> Vec<JobId> {
        // Least urgent (latest deadline) first, ties by id — the same
        // ordering DARIS reports, so the dispatcher treats all schedulers
        // alike.
        let mut jobs = self.policy.queued_jobs();
        jobs.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        jobs.into_iter().map(|(_, job)| job).collect()
    }

    fn queue_backlog(&self) -> usize {
        self.policy.queued()
    }

    fn idle_stream_count(&self) -> usize {
        self.busy.iter().filter(|busy| !**busy).count()
    }

    fn active_load_fraction(&self) -> f64 {
        // Baselines have no utilization model; approximate load as jobs per
        // slot (busy slots plus backlog), which ranks retry candidates
        // sensibly without claiming Eq. 11 semantics.
        let slots = self.slots.len().max(1) as u32;
        let active = (self.busy.iter().filter(|b| **b).count() + self.policy.queued()) as u32;
        f64::from(active) / f64::from(slots)
    }

    fn events_processed(&self) -> u64 {
        self.gpu.events_processed()
    }

    fn taskset(&self) -> &TaskSet {
        &self.taskset
    }

    fn finish(&mut self, horizon: SimTime) -> ExperimentOutcome {
        self.advance_to(horizon);
        let summary =
            self.metrics.summarize(horizon).with_gpu_utilization(self.gpu.average_utilization());
        ExperimentOutcome { summary, mret_trace: Vec::new(), config_label: self.label.clone() }
    }
}
