//! The single-tenant (one DNN at a time) lower baseline.

use std::collections::{BTreeMap, VecDeque};

use daris_gpu::{Gpu, GpuError, GpuSpec, SimTime, WorkItem};
use daris_metrics::{ExperimentSummary, MetricsCollector};
use daris_models::{DnnKind, ModelProfile};
use daris_workload::{ArrivalPlan, Job, ReleaseJitter, TaskSet};

/// Serves jobs strictly one at a time on the whole GPU, in release (FIFO)
/// order — the paper's "single DNN" lower baseline and the design point of
/// predictability-first systems like Clockwork.
///
/// ```
/// use daris_baselines::SingleTenantServer;
/// use daris_models::DnnKind;
///
/// // Serving ResNet18 alone reproduces Table I's min JPS (~627).
/// let jps = SingleTenantServer::isolated_jps(DnnKind::ResNet18, 20);
/// assert!((jps - 627.0).abs() / 627.0 < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct SingleTenantServer {
    spec: GpuSpec,
}

impl SingleTenantServer {
    /// Creates a server on the paper's RTX 2080 Ti.
    pub fn new() -> Self {
        SingleTenantServer { spec: GpuSpec::rtx_2080_ti() }
    }

    /// Creates a server on a custom device.
    pub fn with_gpu(spec: GpuSpec) -> Self {
        SingleTenantServer { spec }
    }

    /// Measures the isolated (unbatched, single-stream) throughput of one
    /// model by running `jobs` back-to-back inferences.
    pub fn isolated_jps(kind: DnnKind, jobs: u32) -> f64 {
        let spec = GpuSpec::rtx_2080_ti().without_interference();
        let profile = ModelProfile::calibrated_for(kind, Default::default(), &spec);
        let mut gpu = Gpu::new(spec);
        let ctx = gpu.add_context(gpu.spec().sm_count).expect("valid context");
        let stream = gpu.add_stream(ctx).expect("valid stream");
        for j in 0..jobs {
            let item = WorkItem::new(u64::from(j))
                .with_kernels(profile.job_kernels(1))
                .with_h2d_bytes(profile.input_bytes(1))
                .with_d2h_bytes(profile.output_bytes(1));
            gpu.submit(stream, item).expect("valid item");
        }
        gpu.run_to_idle();
        f64::from(jobs) / gpu.now().as_secs_f64()
    }

    /// Serves `taskset` until `horizon` and returns the resulting metrics.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (which indicate an internal bug).
    pub fn run(&self, taskset: &TaskSet, horizon: SimTime) -> Result<ExperimentSummary, GpuError> {
        let profiles: BTreeMap<DnnKind, ModelProfile> = taskset
            .model_kinds()
            .into_iter()
            .map(|k| (k, ModelProfile::calibrated_for(k, Default::default(), &self.spec)))
            .collect();
        let mut gpu = Gpu::new(self.spec.clone());
        let ctx = gpu.add_context(self.spec.sm_count)?;
        let stream = gpu.add_stream(ctx)?;
        let mut metrics = MetricsCollector::new();
        let plan = ArrivalPlan::generate(taskset, horizon, ReleaseJitter::None);
        let arrivals: Vec<Job> = plan.into_iter().collect();
        let mut pending: VecDeque<Job> = VecDeque::new();
        let mut in_flight: BTreeMap<u64, Job> = BTreeMap::new();
        let mut next_tag = 0u64;
        let mut busy = false;

        let dispatch = |gpu: &mut Gpu,
                        pending: &mut VecDeque<Job>,
                        in_flight: &mut BTreeMap<u64, Job>,
                        busy: &mut bool,
                        next_tag: &mut u64|
         -> Result<(), GpuError> {
            if *busy {
                return Ok(());
            }
            let Some(job) = pending.pop_front() else { return Ok(()) };
            let profile = &profiles[&job.model];
            let tag = *next_tag;
            *next_tag += 1;
            let item = WorkItem::new(tag)
                .with_kernels(profile.job_kernels(job.batch_size))
                .with_h2d_bytes(profile.input_bytes(job.batch_size))
                .with_d2h_bytes(profile.output_bytes(job.batch_size));
            gpu.submit(stream, item)?;
            in_flight.insert(tag, job);
            *busy = true;
            Ok(())
        };

        run_fifo_loop(&mut gpu, &arrivals, horizon, |gpu, event| match event {
            LoopEvent::Release(job) => {
                metrics.record_release(&job);
                pending.push_back(job);
                dispatch(gpu, &mut pending, &mut in_flight, &mut busy, &mut next_tag)
            }
            LoopEvent::Completion { tag, finished_at } => {
                if let Some(job) = in_flight.remove(&tag) {
                    metrics.record_completion(&job, finished_at);
                }
                busy = false;
                dispatch(gpu, &mut pending, &mut in_flight, &mut busy, &mut next_tag)
            }
        })?;
        Ok(metrics.summarize(horizon).with_gpu_utilization(gpu.average_utilization()))
    }
}

impl Default for SingleTenantServer {
    fn default() -> Self {
        SingleTenantServer::new()
    }
}

/// Events delivered to baseline run loops.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LoopEvent {
    /// A job release.
    Release(Job),
    /// A work-item completion.
    Completion {
        /// The submitted tag.
        tag: u64,
        /// Completion time.
        finished_at: SimTime,
    },
}

/// Shared event loop for the baseline servers: merges GPU completions and job
/// releases in time order until `horizon`, invoking `handler` for each.
pub(crate) fn run_fifo_loop<F>(
    gpu: &mut Gpu,
    arrivals: &[Job],
    horizon: SimTime,
    mut handler: F,
) -> Result<(), GpuError>
where
    F: FnMut(&mut Gpu, LoopEvent) -> Result<(), GpuError>,
{
    let mut next_arrival = 0usize;
    loop {
        let next_release = arrivals.get(next_arrival).map(|j| j.release);
        let gpu_next = gpu.next_event_time();
        let step_to = match (next_release, gpu_next) {
            (Some(r), Some(g)) => r.min(g),
            (Some(r), None) => r,
            (None, Some(g)) => g,
            (None, None) => break,
        };
        if step_to > horizon {
            break;
        }
        let completions = gpu.advance_to(step_to);
        for c in completions {
            handler(gpu, LoopEvent::Completion { tag: c.tag, finished_at: c.finished_at })?;
        }
        while next_arrival < arrivals.len() && arrivals[next_arrival].release <= step_to {
            let job = arrivals[next_arrival];
            next_arrival += 1;
            handler(gpu, LoopEvent::Release(job))?;
        }
    }
    let completions = gpu.advance_to(horizon);
    for c in completions {
        handler(gpu, LoopEvent::Completion { tag: c.tag, finished_at: c.finished_at })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use daris_workload::Priority;

    #[test]
    fn isolated_jps_matches_table1_for_all_models() {
        for (kind, expected) in [
            (DnnKind::ResNet18, 627.0),
            (DnnKind::ResNet50, 250.0),
            (DnnKind::UNet, 241.0),
            (DnnKind::InceptionV3, 142.0),
        ] {
            let jps = SingleTenantServer::isolated_jps(kind, 10);
            assert!((jps - expected).abs() / expected < 0.1, "{kind}: {jps} vs {expected}");
        }
    }

    #[test]
    fn overloaded_taskset_misses_many_deadlines_without_colocation() {
        // The ResNet18 Table II set offers ~1530 jobs/s; a single-tenant
        // server tops out near 627 JPS and must miss deadlines massively —
        // the motivation for multi-tenant scheduling in the paper's intro.
        let server = SingleTenantServer::new();
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let summary = server.run(&taskset, SimTime::from_millis(300)).unwrap();
        assert!(summary.throughput_jps < 700.0);
        assert!(summary.total.deadline_miss_rate > 0.3, "{}", summary.total.deadline_miss_rate);
        // FIFO has no priority awareness: HP tasks miss too.
        assert!(summary.of(Priority::High).deadline_misses > 0);
    }

    #[test]
    fn underloaded_taskset_is_served_without_misses() {
        let light: TaskSet =
            TaskSet::table2(DnnKind::UNet).tasks().iter().take(3).cloned().collect();
        let server = SingleTenantServer::new();
        let summary = server.run(&light, SimTime::from_millis(300)).unwrap();
        assert!(summary.total.completed > 10);
        assert_eq!(summary.total.deadline_misses, 0);
    }
}
