//! The single-tenant (one DNN at a time) lower baseline.

use daris_core::Scheduler;
use daris_gpu::{Gpu, GpuError, GpuSpec, SimTime, WorkItem};
use daris_metrics::ExperimentSummary;
use daris_models::{DnnKind, ModelProfile};
use daris_workload::{ArrivalStream, TaskSet};

use crate::harness::{BaselineScheduler, SlotLayout};
use crate::policies::FifoQueue;

/// Serves jobs strictly one at a time on the whole GPU, in release (FIFO)
/// order — the paper's "single DNN" lower baseline and the design point of
/// predictability-first systems like Clockwork.
///
/// ```
/// use daris_baselines::SingleTenantServer;
/// use daris_models::DnnKind;
///
/// // Serving ResNet18 alone reproduces Table I's min JPS (~627).
/// let jps = SingleTenantServer::isolated_jps(DnnKind::ResNet18, 20);
/// assert!((jps - 627.0).abs() / 627.0 < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct SingleTenantServer {
    spec: GpuSpec,
    calibration: Option<GpuSpec>,
}

impl SingleTenantServer {
    /// Creates a server on the paper's RTX 2080 Ti.
    pub fn new() -> Self {
        SingleTenantServer { spec: GpuSpec::rtx_2080_ti(), calibration: None }
    }

    /// Creates a server on a custom device.
    pub fn with_gpu(spec: GpuSpec) -> Self {
        SingleTenantServer { spec, calibration: None }
    }

    /// Calibrates model profiles against a *reference* device instead of
    /// the server's own (heterogeneous-fleet fairness).
    pub fn with_calibration(mut self, reference: GpuSpec) -> Self {
        self.calibration = Some(reference);
        self
    }

    /// Measures the isolated (unbatched, single-stream) throughput of one
    /// model by running `jobs` back-to-back inferences.
    pub fn isolated_jps(kind: DnnKind, jobs: u32) -> f64 {
        let spec = GpuSpec::rtx_2080_ti().without_interference();
        let profile = ModelProfile::calibrated_for(kind, Default::default(), &spec);
        let mut gpu = Gpu::new(spec);
        let ctx = gpu.add_context(gpu.spec().sm_count).expect("valid context");
        let stream = gpu.add_stream(ctx).expect("valid stream");
        for j in 0..jobs {
            let item = WorkItem::new(u64::from(j))
                .with_kernels(profile.job_kernels(1))
                .with_h2d_bytes(profile.input_bytes(1))
                .with_d2h_bytes(profile.output_bytes(1));
            gpu.submit(stream, item).expect("valid item");
        }
        gpu.run_to_idle();
        f64::from(jobs) / gpu.now().as_secs_f64()
    }

    /// Builds the [`Scheduler`]-trait form of this baseline over `taskset`:
    /// one stream, one whole job at a time, FIFO.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction errors.
    pub fn scheduler(&self, taskset: &TaskSet) -> Result<BaselineScheduler, GpuError> {
        BaselineScheduler::build(
            "SingleTenant".to_string(),
            taskset,
            self.spec.clone(),
            self.calibration.clone().unwrap_or_else(|| self.spec.clone()),
            SlotLayout::SharedContext { streams: 1 },
            Box::new(FifoQueue::new()),
        )
    }

    /// Serves `taskset` until `horizon` with strictly periodic arrivals.
    ///
    /// *Legacy shim* over [`scheduler`](Self::scheduler) +
    /// [`Scheduler::run_with_source`].
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (which indicate an internal bug).
    pub fn run(&self, taskset: &TaskSet, horizon: SimTime) -> Result<ExperimentSummary, GpuError> {
        let mut scheduler = self.scheduler(taskset)?;
        let mut arrivals = ArrivalStream::new(taskset, horizon);
        Ok(scheduler.run_with_source(&mut arrivals, horizon).summary)
    }
}

impl Default for SingleTenantServer {
    fn default() -> Self {
        SingleTenantServer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daris_workload::Priority;

    #[test]
    fn isolated_jps_matches_table1_for_all_models() {
        for (kind, expected) in [
            (DnnKind::ResNet18, 627.0),
            (DnnKind::ResNet50, 250.0),
            (DnnKind::UNet, 241.0),
            (DnnKind::InceptionV3, 142.0),
        ] {
            let jps = SingleTenantServer::isolated_jps(kind, 10);
            assert!((jps - expected).abs() / expected < 0.1, "{kind}: {jps} vs {expected}");
        }
    }

    #[test]
    fn overloaded_taskset_misses_many_deadlines_without_colocation() {
        // The ResNet18 Table II set offers ~1530 jobs/s; a single-tenant
        // server tops out near 627 JPS and must miss deadlines massively —
        // the motivation for multi-tenant scheduling in the paper's intro.
        let server = SingleTenantServer::new();
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let summary = server.run(&taskset, SimTime::from_millis(300)).unwrap();
        assert!(summary.throughput_jps < 700.0);
        assert!(summary.total.deadline_miss_rate > 0.3, "{}", summary.total.deadline_miss_rate);
        // FIFO has no priority awareness: HP tasks miss too.
        assert!(summary.of(Priority::High).deadline_misses > 0);
    }

    #[test]
    fn underloaded_taskset_is_served_without_misses() {
        let light: TaskSet =
            TaskSet::table2(DnnKind::UNet).tasks().iter().take(3).cloned().collect();
        let server = SingleTenantServer::new();
        let summary = server.run(&light, SimTime::from_millis(300)).unwrap();
        assert!(summary.total.completed > 10);
        assert_eq!(summary.total.deadline_misses, 0);
    }
}
