//! An RTGPU-style multi-stream FIFO baseline: concurrency without priorities,
//! staging or admission control.

use daris_core::Scheduler;
use daris_gpu::{GpuError, GpuSpec, SimTime};
use daris_metrics::ExperimentSummary;
use daris_workload::{ArrivalStream, TaskSet};

use crate::harness::{BaselineScheduler, SlotLayout};
use crate::policies::FifoQueue;

/// Serves jobs on `streams` CUDA streams of a single full-GPU context, in
/// strict release order, one whole job per stream, with no priorities and no
/// admission test — the behaviour the paper attributes to schedulers such as
/// RTGPU that "lack task prioritization".
#[derive(Debug, Clone)]
pub struct FifoMultiStreamServer {
    spec: GpuSpec,
    calibration: Option<GpuSpec>,
    streams: u32,
}

impl FifoMultiStreamServer {
    /// Creates a server with `streams` parallel streams on the paper's GPU.
    pub fn new(streams: u32) -> Self {
        FifoMultiStreamServer {
            spec: GpuSpec::rtx_2080_ti(),
            calibration: None,
            streams: streams.max(1),
        }
    }

    /// Overrides the device.
    pub fn with_gpu(mut self, spec: GpuSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Calibrates model profiles (and thus deadlines' meaning) against a
    /// *reference* device instead of the server's own — what a heterogeneous
    /// fleet comparison needs so every device prices work identically.
    pub fn with_calibration(mut self, reference: GpuSpec) -> Self {
        self.calibration = Some(reference);
        self
    }

    /// Number of streams.
    pub fn streams(&self) -> u32 {
        self.streams
    }

    /// Builds the [`Scheduler`]-trait form of this baseline over `taskset`.
    ///
    /// # Errors
    ///
    /// Propagates simulator construction errors.
    pub fn scheduler(&self, taskset: &TaskSet) -> Result<BaselineScheduler, GpuError> {
        BaselineScheduler::build(
            format!("FIFO k={}", self.streams),
            taskset,
            self.spec.clone(),
            self.calibration.clone().unwrap_or_else(|| self.spec.clone()),
            SlotLayout::SharedContext { streams: self.streams },
            Box::new(FifoQueue::new()),
        )
    }

    /// Serves `taskset` until `horizon` with strictly periodic arrivals.
    ///
    /// *Legacy shim* over [`scheduler`](Self::scheduler) +
    /// [`Scheduler::run_with_source`].
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (which indicate an internal bug).
    pub fn run(&self, taskset: &TaskSet, horizon: SimTime) -> Result<ExperimentSummary, GpuError> {
        let mut scheduler = self.scheduler(taskset)?;
        let mut arrivals = ArrivalStream::new(taskset, horizon);
        Ok(scheduler.run_with_source(&mut arrivals, horizon).summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daris_models::DnnKind;
    use daris_workload::Priority;

    #[test]
    fn more_streams_increase_throughput_on_the_overloaded_set() {
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let horizon = SimTime::from_millis(250);
        let one = FifoMultiStreamServer::new(1).run(&taskset, horizon).unwrap();
        let six = FifoMultiStreamServer::new(6).run(&taskset, horizon).unwrap();
        assert!(
            six.throughput_jps > 1.2 * one.throughput_jps,
            "6 streams {} vs 1 stream {}",
            six.throughput_jps,
            one.throughput_jps
        );
    }

    #[test]
    fn fifo_treats_priorities_equally() {
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let summary =
            FifoMultiStreamServer::new(4).run(&taskset, SimTime::from_millis(300)).unwrap();
        // Under 150 % overload with no prioritization both classes miss
        // deadlines at comparable rates (the paper reports up to 11 % overall
        // misses for RTGPU; our overload level is far harsher).
        let hp = summary.of(Priority::High).deadline_miss_rate;
        let lp = summary.of(Priority::Low).deadline_miss_rate;
        assert!(hp > 0.05, "HP DMR {hp}");
        assert!(lp > 0.05, "LP DMR {lp}");
        assert_eq!(summary.total.rejected, 0);
    }

    #[test]
    fn streams_accessor_and_custom_gpu() {
        let server = FifoMultiStreamServer::new(0).with_gpu(GpuSpec::embedded_xavier_like());
        assert_eq!(server.streams(), 1);
    }
}
