//! An RTGPU-style multi-stream FIFO baseline: concurrency without priorities,
//! staging or admission control.

use std::collections::{BTreeMap, VecDeque};

use daris_gpu::{Gpu, GpuError, GpuSpec, SimTime, StreamId, WorkItem};
use daris_metrics::{ExperimentSummary, MetricsCollector};
use daris_models::{DnnKind, ModelProfile};
use daris_workload::{ArrivalPlan, Job, ReleaseJitter, TaskSet};

use crate::single_tenant::{run_fifo_loop, LoopEvent};

/// Serves jobs on `streams` CUDA streams of a single full-GPU context, in
/// strict release order, one whole job per stream, with no priorities and no
/// admission test — the behaviour the paper attributes to schedulers such as
/// RTGPU that "lack task prioritization".
#[derive(Debug, Clone)]
pub struct FifoMultiStreamServer {
    spec: GpuSpec,
    streams: u32,
}

impl FifoMultiStreamServer {
    /// Creates a server with `streams` parallel streams on the paper's GPU.
    pub fn new(streams: u32) -> Self {
        FifoMultiStreamServer { spec: GpuSpec::rtx_2080_ti(), streams: streams.max(1) }
    }

    /// Overrides the device.
    pub fn with_gpu(mut self, spec: GpuSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Number of streams.
    pub fn streams(&self) -> u32 {
        self.streams
    }

    /// Serves `taskset` until `horizon`.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (which indicate an internal bug).
    pub fn run(&self, taskset: &TaskSet, horizon: SimTime) -> Result<ExperimentSummary, GpuError> {
        let profiles: BTreeMap<DnnKind, ModelProfile> = taskset
            .model_kinds()
            .into_iter()
            .map(|k| (k, ModelProfile::calibrated_for(k, Default::default(), &self.spec)))
            .collect();
        let mut gpu = Gpu::new(self.spec.clone());
        let ctx = gpu.add_context(self.spec.sm_count)?;
        let mut streams: Vec<StreamId> = Vec::new();
        for _ in 0..self.streams {
            streams.push(gpu.add_stream(ctx)?);
        }
        let mut metrics = MetricsCollector::new();
        let arrivals: Vec<Job> =
            ArrivalPlan::generate(taskset, horizon, ReleaseJitter::None).into_iter().collect();

        let mut pending: VecDeque<Job> = VecDeque::new();
        let mut busy: BTreeMap<StreamId, bool> = streams.iter().map(|s| (*s, false)).collect();
        let mut in_flight: BTreeMap<u64, (StreamId, Job)> = BTreeMap::new();
        let mut next_tag = 0u64;

        let dispatch = |gpu: &mut Gpu,
                        pending: &mut VecDeque<Job>,
                        busy: &mut BTreeMap<StreamId, bool>,
                        in_flight: &mut BTreeMap<u64, (StreamId, Job)>,
                        next_tag: &mut u64|
         -> Result<(), GpuError> {
            loop {
                if pending.is_empty() {
                    return Ok(());
                }
                let Some(stream) = streams.iter().copied().find(|s| !busy[s]) else {
                    return Ok(());
                };
                let job = pending.pop_front().expect("checked non-empty");
                let profile = &profiles[&job.model];
                let tag = *next_tag;
                *next_tag += 1;
                let item = WorkItem::new(tag)
                    .with_kernels(profile.job_kernels(job.batch_size))
                    .with_h2d_bytes(profile.input_bytes(job.batch_size))
                    .with_d2h_bytes(profile.output_bytes(job.batch_size));
                gpu.submit(stream, item)?;
                busy.insert(stream, true);
                in_flight.insert(tag, (stream, job));
            }
        };

        run_fifo_loop(&mut gpu, &arrivals, horizon, |gpu, event| match event {
            LoopEvent::Release(job) => {
                metrics.record_release(&job);
                pending.push_back(job);
                dispatch(gpu, &mut pending, &mut busy, &mut in_flight, &mut next_tag)
            }
            LoopEvent::Completion { tag, finished_at } => {
                if let Some((stream, job)) = in_flight.remove(&tag) {
                    metrics.record_completion(&job, finished_at);
                    busy.insert(stream, false);
                }
                dispatch(gpu, &mut pending, &mut busy, &mut in_flight, &mut next_tag)
            }
        })?;
        Ok(metrics.summarize(horizon).with_gpu_utilization(gpu.average_utilization()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use daris_workload::Priority;

    #[test]
    fn more_streams_increase_throughput_on_the_overloaded_set() {
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let horizon = SimTime::from_millis(250);
        let one = FifoMultiStreamServer::new(1).run(&taskset, horizon).unwrap();
        let six = FifoMultiStreamServer::new(6).run(&taskset, horizon).unwrap();
        assert!(
            six.throughput_jps > 1.2 * one.throughput_jps,
            "6 streams {} vs 1 stream {}",
            six.throughput_jps,
            one.throughput_jps
        );
    }

    #[test]
    fn fifo_treats_priorities_equally() {
        let taskset = TaskSet::table2(DnnKind::ResNet18);
        let summary =
            FifoMultiStreamServer::new(4).run(&taskset, SimTime::from_millis(300)).unwrap();
        // Under 150 % overload with no prioritization both classes miss
        // deadlines at comparable rates (the paper reports up to 11 % overall
        // misses for RTGPU; our overload level is far harsher).
        let hp = summary.of(Priority::High).deadline_miss_rate;
        let lp = summary.of(Priority::Low).deadline_miss_rate;
        assert!(hp > 0.05, "HP DMR {hp}");
        assert!(lp > 0.05, "LP DMR {lp}");
        assert_eq!(summary.total.rejected, 0);
    }

    #[test]
    fn streams_accessor_and_custom_gpu() {
        let server = FifoMultiStreamServer::new(0).with_gpu(GpuSpec::embedded_xavier_like());
        assert_eq!(server.streams(), 1);
    }
}
