//! Windowed arrival-rate load detection: the sensing half of the adaptive
//! control plane.
//!
//! A [`LoadDetector`] folds a sequence of release instants into a
//! burst-in-progress signal using **fixed sim-time windows**: window `k`
//! covers `[k·w, (k+1)·w)` for a configured width `w`. When an observation
//! lands in a later window than the one currently open, every window in
//! between is closed and its arrival rate is compared against two
//! thresholds derived from the workload's *nominal* offered rate:
//!
//! * rate ≥ `burst_ratio · nominal` → the detector enters **burst**;
//! * rate ≤ `calm_ratio · nominal` → the detector returns to **calm**;
//! * in between, the previous state is kept (hysteresis, so a rate
//!   hovering near one threshold does not flap the signal).
//!
//! The detector is **deterministic and seed-free**: its state is a pure
//! function of the configuration, the nominal rate, and the observation
//! sequence. It draws no randomness and reads no wall clock, so two
//! identical release sequences always produce identical burst signals —
//! the property the cluster's byte-identity digests rely on when the
//! control plane is enabled.
//!
//! Any [`ArrivalSource`] can be metered by wrapping it in a
//! [`MeteredSource`], which observes each job as it is pulled; a scheduler
//! that applies its own admission policy per release (like
//! `DarisScheduler`) instead feeds the detector directly from its release
//! path so the signal is available at admission time.

use daris_gpu::{SimDuration, SimTime};

use crate::trace::ArrivalSource;
use crate::Job;

/// Configuration of a [`LoadDetector`]: window width plus the two
/// hysteresis thresholds, expressed as ratios of the workload's nominal
/// offered rate.
///
/// The defaults (20 ms windows, burst at 1.5× nominal, calm at 1.1×) are
/// tuned so a strictly periodic plan never trips the detector while the
/// 3× bursty generator's on-segments do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadDetectorConfig {
    /// Width of each rate-measurement window.
    pub window: SimDuration,
    /// A closed window at or above `burst_ratio · nominal` enters burst.
    pub burst_ratio: f64,
    /// A closed window at or below `calm_ratio · nominal` returns to calm.
    pub calm_ratio: f64,
}

impl Default for LoadDetectorConfig {
    fn default() -> Self {
        LoadDetectorConfig {
            window: SimDuration::from_millis(20),
            burst_ratio: 1.5,
            calm_ratio: 1.1,
        }
    }
}

/// A deterministic, seed-free burst detector over release instants.
///
/// ```
/// use daris_gpu::{SimDuration, SimTime};
/// use daris_workload::{LoadDetector, LoadDetectorConfig};
///
/// // Nominal load: 100 jobs/s; 10 ms windows → 1 arrival per window.
/// let config = LoadDetectorConfig {
///     window: SimDuration::from_millis(10),
///     burst_ratio: 1.5,
///     calm_ratio: 1.1,
/// };
/// let mut det = LoadDetector::new(config, 100.0);
/// // Three arrivals in window 0 (300 jobs/s) trip the detector as soon
/// // as the window closes.
/// for us in [100u64, 200, 300] {
///     det.observe(SimTime::from_micros(us));
/// }
/// assert!(!det.is_burst(), "the open window is not evaluated yet");
/// det.observe(SimTime::from_millis(11));
/// assert!(det.is_burst());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LoadDetector {
    config: LoadDetectorConfig,
    nominal_jps: f64,
    /// Index of the currently open (not yet evaluated) window.
    window_index: u64,
    /// Arrivals observed in the open window so far.
    count: u64,
    /// Rate of the most recently closed window, in jobs per second.
    last_rate: f64,
    burst: bool,
    transitions: u64,
}

impl LoadDetector {
    /// Builds a detector for a workload whose nominal offered rate is
    /// `nominal_jps` (e.g. [`TaskSet::offered_jps`]).
    ///
    /// # Panics
    ///
    /// Panics loudly on a degenerate configuration — a zero window, a
    /// non-finite or non-positive nominal rate, or thresholds that are not
    /// `0 < calm_ratio <= burst_ratio` (without that ordering the
    /// hysteresis band is inverted and the signal flaps every window).
    ///
    /// [`TaskSet::offered_jps`]: crate::TaskSet::offered_jps
    pub fn new(config: LoadDetectorConfig, nominal_jps: f64) -> Self {
        assert!(!config.window.is_zero(), "LoadDetector window must be non-zero");
        assert!(
            nominal_jps.is_finite() && nominal_jps > 0.0,
            "LoadDetector nominal rate must be positive and finite, got {nominal_jps}"
        );
        assert!(
            config.calm_ratio > 0.0 && config.calm_ratio <= config.burst_ratio,
            "LoadDetector thresholds must satisfy 0 < calm_ratio <= burst_ratio, got calm {} \
             burst {}",
            config.calm_ratio,
            config.burst_ratio,
        );
        LoadDetector {
            config,
            nominal_jps,
            window_index: 0,
            count: 0,
            last_rate: 0.0,
            burst: false,
            transitions: 0,
        }
    }

    /// Feeds one release instant and returns `true` when the burst signal
    /// flipped as a consequence (i.e. an evaluated window crossed a
    /// threshold).
    ///
    /// Observations are expected in non-decreasing time order (the order
    /// any [`ArrivalSource`] emits them); an instant from an
    /// already-evaluated window is counted into the currently open window
    /// rather than reopening history.
    pub fn observe(&mut self, at: SimTime) -> bool {
        let was = self.burst;
        let window = at.as_nanos() / self.config.window.as_nanos();
        if window > self.window_index {
            // Close the open window, then collapse any empty gap windows
            // into a single zero-rate evaluation: after one empty window
            // the hysteresis has already settled at calm, so further empty
            // windows cannot change state (or the transition count).
            let closing = self.count;
            self.evaluate(closing);
            if window > self.window_index + 1 {
                self.evaluate(0);
            }
            self.window_index = window;
            self.count = 0;
        }
        self.count += 1;
        self.burst != was
    }

    /// Whether the detector currently signals a burst in progress.
    pub fn is_burst(&self) -> bool {
        self.burst
    }

    /// Arrival rate of the most recently closed window, in jobs per second.
    pub fn rate_jps(&self) -> f64 {
        self.last_rate
    }

    /// The last closed window's rate as a multiple of the nominal rate.
    pub fn load_ratio(&self) -> f64 {
        self.last_rate / self.nominal_jps
    }

    /// The nominal offered rate the thresholds are anchored to.
    pub fn nominal_jps(&self) -> f64 {
        self.nominal_jps
    }

    /// Number of burst↔calm transitions so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Evaluates one closed window containing `count` arrivals.
    fn evaluate(&mut self, count: u64) {
        let rate = count as f64 * 1_000.0 / self.config.window.as_millis_f64();
        self.last_rate = rate;
        if !self.burst && rate >= self.nominal_jps * self.config.burst_ratio {
            self.burst = true;
            self.transitions += 1;
        } else if self.burst && rate <= self.nominal_jps * self.config.calm_ratio {
            self.burst = false;
            self.transitions += 1;
        }
    }
}

/// An [`ArrivalSource`] adapter that meters every job it hands out through
/// a [`LoadDetector`], so any source — periodic streams, seeded
/// generators, trace replays — exposes a burst signal without the consumer
/// changing.
#[derive(Debug, Clone)]
pub struct MeteredSource<S> {
    inner: S,
    detector: LoadDetector,
}

impl<S: ArrivalSource> MeteredSource<S> {
    /// Wraps `inner`, observing each pulled job's release instant.
    pub fn new(inner: S, detector: LoadDetector) -> Self {
        MeteredSource { inner, detector }
    }

    /// The detector, for reading the burst signal mid-run.
    pub fn detector(&self) -> &LoadDetector {
        &self.detector
    }

    /// Unwraps into the source and the detector's final state.
    pub fn into_inner(self) -> (S, LoadDetector) {
        (self.inner, self.detector)
    }
}

impl<S: ArrivalSource> ArrivalSource for MeteredSource<S> {
    fn next_release(&self) -> Option<SimTime> {
        self.inner.next_release()
    }

    fn next_job(&mut self) -> Option<Job> {
        let job = self.inner.next_job()?;
        self.detector.observe(job.release);
        Some(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArrivalStream, BurstyConfig, GenSpec, TaskSet};
    use daris_models::DnnKind;

    fn detector_100jps() -> LoadDetector {
        LoadDetector::new(
            LoadDetectorConfig {
                window: SimDuration::from_millis(10),
                burst_ratio: 1.5,
                calm_ratio: 1.1,
            },
            100.0,
        )
    }

    /// One arrival per `gap_us` microseconds starting at `from_us`.
    fn feed(det: &mut LoadDetector, from_us: u64, to_us: u64, gap_us: u64) -> u64 {
        let mut flips = 0;
        let mut at = from_us;
        while at < to_us {
            if det.observe(SimTime::from_micros(at)) {
                flips += 1;
            }
            at += gap_us;
        }
        flips
    }

    #[test]
    fn burst_trips_and_hysteresis_releases() {
        let mut det = detector_100jps();
        // Nominal pace: 1 arrival / 10 ms window = 100 jps. Calm.
        let flips = feed(&mut det, 0, 50_000, 10_000);
        assert_eq!(flips, 0);
        assert!(!det.is_burst());
        // Burst pace: 1 arrival / 2.5 ms = 400 jps >= 150 jps threshold.
        let flips = feed(&mut det, 50_000, 90_000, 2_500);
        assert_eq!(flips, 1, "one calm→burst transition");
        assert!(det.is_burst());
        assert!(det.load_ratio() > 1.5);
        // Back to nominal: 100 jps <= 110 jps releases the signal.
        let flips = feed(&mut det, 90_000, 140_000, 10_000);
        assert_eq!(flips, 1, "one burst→calm transition");
        assert!(!det.is_burst());
        assert_eq!(det.transitions(), 2);
    }

    #[test]
    fn rate_between_thresholds_keeps_the_previous_state() {
        // With burst at 250 jps and calm at 150 jps, a steady 200 jps
        // (2 arrivals per 10 ms window) sits inside the hysteresis band:
        // whichever state the detector was in, it stays there.
        let config = LoadDetectorConfig {
            window: SimDuration::from_millis(10),
            burst_ratio: 2.5,
            calm_ratio: 1.5,
        };
        let mut det = LoadDetector::new(config, 100.0);
        feed(&mut det, 0, 40_000, 5_000);
        assert!(!det.is_burst(), "hysteresis must not enter burst below the burst threshold");
        let mut det = LoadDetector::new(config, 100.0);
        feed(&mut det, 0, 40_000, 2_500);
        assert!(det.is_burst());
        let flips = feed(&mut det, 40_000, 80_000, 5_000);
        assert_eq!(flips, 0, "hysteresis must hold burst above the calm threshold");
        assert!(det.is_burst());
    }

    #[test]
    fn a_long_gap_settles_the_detector_at_calm() {
        let mut det = detector_100jps();
        feed(&mut det, 0, 40_000, 2_500);
        assert!(det.is_burst());
        // Jump thousands of windows ahead: the collapsed empty-window
        // evaluation must release the burst exactly once.
        assert!(det.observe(SimTime::from_millis(50_000)));
        assert!(!det.is_burst());
        assert_eq!(det.transitions(), 2);
    }

    #[test]
    fn detector_state_is_a_pure_function_of_the_observation_sequence() {
        let ts = TaskSet::table2(DnnKind::UNet);
        let horizon = SimTime::from_millis(300);
        let run = || {
            let mut det = LoadDetector::new(LoadDetectorConfig::default(), ts.offered_jps());
            for job in GenSpec::Bursty(BurstyConfig::default()).stream(&ts, horizon) {
                det.observe(job.release);
            }
            det
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn periodic_plans_never_trip_the_default_thresholds() {
        let ts = TaskSet::table2(DnnKind::ResNet18);
        let mut det = LoadDetector::new(LoadDetectorConfig::default(), ts.offered_jps());
        for job in ArrivalStream::new(&ts, SimTime::from_millis(400)) {
            assert!(!det.observe(job.release));
        }
        assert_eq!(det.transitions(), 0);
    }

    #[test]
    fn the_bursty_generator_trips_the_default_thresholds() {
        let ts = TaskSet::table2(DnnKind::UNet);
        let stream =
            GenSpec::Bursty(BurstyConfig::default()).stream(&ts, SimTime::from_millis(400));
        let mut metered = MeteredSource::new(
            stream,
            LoadDetector::new(LoadDetectorConfig::default(), ts.offered_jps()),
        );
        while metered.next_job().is_some() {}
        let (_, det) = metered.into_inner();
        assert!(det.transitions() >= 2, "on/off segments must flip the signal, got {det:?}");
    }

    #[test]
    fn metered_source_is_transparent() {
        let ts = TaskSet::table2(DnnKind::UNet);
        let horizon = SimTime::from_millis(50);
        let plain: Vec<Job> = ArrivalStream::new(&ts, horizon).collect();
        let mut metered = MeteredSource::new(
            ArrivalStream::new(&ts, horizon),
            LoadDetector::new(LoadDetectorConfig::default(), ts.offered_jps()),
        );
        let mut seen = Vec::new();
        while let Some(next) = metered.next_release() {
            let job = metered.next_job().expect("peeked release implies a job");
            assert_eq!(job.release, next);
            seen.push(job);
        }
        assert_eq!(plain, seen, "metering must not perturb the stream");
    }

    #[test]
    #[should_panic(expected = "window must be non-zero")]
    fn zero_window_is_rejected_loudly() {
        let config = LoadDetectorConfig { window: SimDuration::ZERO, ..Default::default() };
        let _ = LoadDetector::new(config, 100.0);
    }

    #[test]
    #[should_panic(expected = "calm_ratio <= burst_ratio")]
    fn inverted_hysteresis_band_is_rejected_loudly() {
        let config = LoadDetectorConfig { burst_ratio: 1.0, calm_ratio: 1.5, ..Default::default() };
        let _ = LoadDetector::new(config, 100.0);
    }
}
