//! Deterministic seeded arrival generators: bursty, diurnal and correlated
//! traffic shapes for the trace-driven workload path.
//!
//! Each generator derives an independent per-task release sequence from a
//! `(seed, stream key)` pair through a splitmix64 finalizer, so:
//!
//! * the same seed always produces byte-identical traces, and different
//!   seeds diverge (pinned by tests);
//! * a task keeps its release sequence when a cluster placement sub-sets the
//!   task set, as long as the task keeps its **stream key** — the dispatcher
//!   passes each task's *global* index as its key, which is the generator
//!   analogue of [`TaskSet::preserving_phases`] preserving release phases.
//!
//! Per-task sequences are strictly monotone in time, so generated traces
//! have a zero out-of-order lookahead (see the trace module docs); jittered
//! *recordings* are where non-zero lookaheads come from.
//!
//! # Generator math
//!
//! * [`Bursty`](GenSpec::Bursty) — a two-state (on/off) Markov-modulated
//!   process, the classic MMPP-style burst model: dwell times are drawn per
//!   segment as `mean · clamp(-ln(1-u), 0.1, 6)` (an exponential variate
//!   with clamped tails), and during *on* segments the task releases every
//!   `period / burst_rate`. With the defaults (on 20 ms, off 40 ms, rate
//!   ×3) the long-run offered load matches the periodic plan while peak load
//!   is 3× — the overload shape admission control earns its keep on.
//! * [`Diurnal`](GenSpec::Diurnal) — a sinusoid-modulated rate: the
//!   inter-release gap after a release at `t` is
//!   `period / (1 + amplitude · sin(2π·t/cycle + φ))`, with `φ` drawn once
//!   per task and scaled by `phase_spread` (at the default `1.0` tasks are
//!   mutually desynchronized; at `0.0` the whole fleet crests together). A
//!   first-order time-warp of the nominal rate: load swings between `(1−a)`
//!   and `(1+a)` times nominal over each cycle (a compressed "day" of
//!   traffic).
//! * [`Correlated`](GenSpec::Correlated) — co-release groups across tasks:
//!   tasks are assigned to `groups` groups by stream key, and every task in
//!   a group releases at the group's shared instants (a fan-out of one user
//!   request to several models). Group instants start staggered and advance
//!   by `group_period · uniform(1±gap_jitter)`, drawn from the *group's* RNG
//!   so every member reproduces the same instants independently.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::f64::consts::TAU;

use daris_gpu::{SimDuration, SimTime, XorShiftRng};

use crate::{ArrivalSource, Job, JobId, TaskId, TaskSet, TaskSpec, Trace};

/// Configuration of the bursty (on/off MMPP-style) generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyConfig {
    /// RNG seed (kept explicit for reproducibility).
    pub seed: u64,
    /// Mean dwell time of *on* (bursting) segments.
    pub on_mean: SimDuration,
    /// Mean dwell time of *off* (silent) segments.
    pub off_mean: SimDuration,
    /// Rate multiplier during bursts: releases every `period / burst_rate`.
    pub burst_rate: f64,
}

impl Default for BurstyConfig {
    fn default() -> Self {
        BurstyConfig {
            seed: 0xB425_7000,
            on_mean: SimDuration::from_millis(20),
            off_mean: SimDuration::from_millis(40),
            burst_rate: 3.0,
        }
    }
}

/// Configuration of the diurnal (sinusoid-modulated rate) generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalConfig {
    /// RNG seed (kept explicit for reproducibility).
    pub seed: u64,
    /// Length of one rate cycle (a compressed "day").
    pub cycle: SimDuration,
    /// Rate swing around nominal, in `[0, 1)`.
    pub amplitude: f64,
    /// How far per-task phases `φ` spread across the cycle, in `[0, 1]`.
    ///
    /// At `1.0` (the default) each task draws `φ ∈ [0, 2π)` independently,
    /// so task cycles are mutually desynchronized and the *aggregate* fleet
    /// rate stays near nominal. At `0.0` every task shares `φ = 0` and the
    /// whole fleet crests and troughs together — the shape fleet-level
    /// controllers (autoscalers) are exercised against.
    pub phase_spread: f64,
}

impl Default for DiurnalConfig {
    fn default() -> Self {
        DiurnalConfig {
            seed: 0xD142_7000,
            cycle: SimDuration::from_millis(250),
            amplitude: 0.6,
            phase_spread: 1.0,
        }
    }
}

/// Configuration of the correlated (co-release groups) generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelatedConfig {
    /// RNG seed (kept explicit for reproducibility).
    pub seed: u64,
    /// Number of co-release groups tasks are hashed into.
    pub groups: u32,
    /// Nominal gap between a group's release instants.
    pub group_period: SimDuration,
    /// Half-width of the uniform jitter on the gap, in `[0, 0.95]`.
    pub gap_jitter: f64,
}

impl Default for CorrelatedConfig {
    fn default() -> Self {
        CorrelatedConfig {
            seed: 0xC0_4E17,
            groups: 4,
            group_period: SimDuration::from_millis(25),
            gap_jitter: 0.4,
        }
    }
}

/// A deterministic seeded arrival generator (see the [module docs](self) for
/// the math of each shape).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GenSpec {
    /// On/off MMPP-style bursts.
    Bursty(BurstyConfig),
    /// Sinusoid-modulated (diurnal) rate.
    Diurnal(DiurnalConfig),
    /// Co-release groups across tasks.
    Correlated(CorrelatedConfig),
}

impl GenSpec {
    /// A short stable label for tables and logs.
    pub fn label(&self) -> &'static str {
        match self {
            GenSpec::Bursty(_) => "bursty",
            GenSpec::Diurnal(_) => "diurnal",
            GenSpec::Correlated(_) => "correlated",
        }
    }

    /// Builds the lazy arrival stream of this generator over `tasks`, with
    /// each task keyed by its own id (the standalone single-device case).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range configuration (see
    /// [`stream_keyed`](Self::stream_keyed)).
    pub fn stream<'a>(&self, tasks: &'a TaskSet, horizon: SimTime) -> GeneratedStream<'a> {
        let keys: Vec<u64> = (0..tasks.len() as u64).collect();
        self.stream_keyed(tasks, horizon, &keys)
    }

    /// Builds the lazy arrival stream with an explicit **stream key** per
    /// task: `keys[i]` seeds task `i`'s release sequence. A cluster
    /// dispatcher passes each task's global index so device-local streams
    /// reproduce the global trace phases exactly (the generator analogue of
    /// [`TaskSet::preserving_phases`]).
    ///
    /// # Panics
    ///
    /// Panics when `keys.len() != tasks.len()`, or on an out-of-range
    /// configuration: a non-positive `burst_rate`, an `amplitude` outside
    /// `[0, 1)`, zero `groups`, a zero dwell mean, cycle or group period —
    /// all of which would make the release sequence degenerate (the loud
    /// rejection mirrors `ArrivalStream::with_jitter`).
    pub fn stream_keyed<'a>(
        &self,
        tasks: &'a TaskSet,
        horizon: SimTime,
        keys: &[u64],
    ) -> GeneratedStream<'a> {
        assert_eq!(keys.len(), tasks.len(), "stream_keyed needs exactly one stream key per task");
        self.validate();
        let mut heap = BinaryHeap::with_capacity(tasks.len());
        let mut states = Vec::with_capacity(tasks.len());
        for (task, &key) in tasks.tasks().iter().zip(keys) {
            let mut state = self.init_state(task, key);
            if let Some(first) = state.next_release(horizon) {
                heap.push(Reverse((first, task.id, 0u64)));
            }
            states.push(state);
        }
        GeneratedStream { tasks, horizon, heap, states }
    }

    /// Materializes the full trace of this generator over `tasks`: exactly
    /// the releases [`stream`](Self::stream) would emit, validated and ready
    /// to encode, replay or commit as a fixture.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range configuration (see
    /// [`stream_keyed`](Self::stream_keyed)).
    pub fn generate(&self, tasks: &TaskSet, horizon: SimTime) -> Trace {
        let mut stream = self.stream(tasks, horizon);
        Trace::record(&mut stream, horizon)
            .expect("generated sequences are monotone per task and bounded by the horizon")
    }

    fn validate(&self) {
        match *self {
            GenSpec::Bursty(c) => {
                assert!(c.burst_rate > 0.0, "burst_rate must be positive, got {}", c.burst_rate);
                assert!(
                    !c.on_mean.is_zero() && !c.off_mean.is_zero(),
                    "bursty dwell means must be non-zero"
                );
            }
            GenSpec::Diurnal(c) => {
                assert!(
                    (0.0..1.0).contains(&c.amplitude),
                    "diurnal amplitude must lie in [0, 1), got {}",
                    c.amplitude
                );
                assert!(!c.cycle.is_zero(), "diurnal cycle must be non-zero");
                assert!(
                    (0.0..=1.0).contains(&c.phase_spread),
                    "diurnal phase_spread must lie in [0, 1], got {}",
                    c.phase_spread
                );
            }
            GenSpec::Correlated(c) => {
                assert!(c.groups >= 1, "correlated generator needs at least one group");
                assert!(!c.group_period.is_zero(), "group_period must be non-zero");
                assert!(
                    (0.0..=0.95).contains(&c.gap_jitter),
                    "gap_jitter must lie in [0, 0.95], got {}",
                    c.gap_jitter
                );
            }
        }
    }

    fn init_state(&self, task: &TaskSpec, key: u64) -> GenState {
        match *self {
            GenSpec::Bursty(c) => {
                let mut rng = stream_rng(c.seed, key);
                let fast_period =
                    SimDuration::from_micros_f64(task.period.as_micros_f64() / c.burst_rate)
                        .max(SimDuration::from_nanos(1));
                let seg_start = SimTime::ZERO + task.phase;
                let seg_end = seg_start + dwell(&mut rng, c.on_mean);
                GenState::Bursty {
                    rng,
                    on_mean: c.on_mean,
                    off_mean: c.off_mean,
                    fast_period,
                    seg_start,
                    seg_end,
                    in_on: true,
                    next_slot: 0,
                }
            }
            GenSpec::Diurnal(c) => {
                let mut rng = stream_rng(c.seed, key);
                // `phase_spread == 1.0` multiplies the draw by exactly 1.0,
                // so the default reproduces the historical phase bit for bit.
                GenState::Diurnal {
                    cycle_ns: c.cycle.as_nanos() as f64,
                    amplitude: c.amplitude,
                    period: task.period,
                    phase0: rng.uniform(0.0, TAU) * c.phase_spread,
                    next: SimTime::ZERO + task.phase,
                }
            }
            GenSpec::Correlated(c) => {
                let group = key % u64::from(c.groups);
                // The group RNG: every member derives the identical instant
                // sequence independently of which device it lands on.
                let rng = stream_rng(c.seed ^ 0x9209_55ED_C077_E147, group);
                let next = SimTime::ZERO + c.group_period * group / u64::from(c.groups);
                GenState::Correlated {
                    rng,
                    group_period: c.group_period,
                    gap_jitter: c.gap_jitter,
                    next,
                }
            }
        }
    }
}

/// Per-task generator state: a cursor through one task's release sequence.
#[derive(Debug, Clone)]
enum GenState {
    Bursty {
        rng: XorShiftRng,
        on_mean: SimDuration,
        off_mean: SimDuration,
        fast_period: SimDuration,
        seg_start: SimTime,
        seg_end: SimTime,
        in_on: bool,
        next_slot: u64,
    },
    Diurnal {
        cycle_ns: f64,
        amplitude: f64,
        period: SimDuration,
        phase0: f64,
        next: SimTime,
    },
    Correlated {
        rng: XorShiftRng,
        group_period: SimDuration,
        gap_jitter: f64,
        next: SimTime,
    },
}

/// An exponential-ish dwell sample: `mean · clamp(-ln(1-u), 0.1, 6)`, never
/// zero so segment walks always make progress.
fn dwell(rng: &mut XorShiftRng, mean: SimDuration) -> SimDuration {
    let u = rng.next_f64();
    let factor = (-(1.0 - u).ln()).clamp(0.1, 6.0);
    mean.mul_f64(factor).max(SimDuration::from_nanos(1))
}

/// The per-task stream RNG: `seed` mixed with the task's stream key through
/// a splitmix64 finalizer (the same derivation shape as the jitter RNG in
/// `arrivals`, keyed by an explicit u64 so keys can outlive local task ids).
fn stream_rng(seed: u64, key: u64) -> XorShiftRng {
    let mut z = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(key.wrapping_add(1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    XorShiftRng::new(z ^ (z >> 31))
}

impl GenState {
    /// The task's next release strictly before `horizon`, or `None` once the
    /// sequence has passed it. Strictly monotone per task.
    fn next_release(&mut self, horizon: SimTime) -> Option<SimTime> {
        match self {
            GenState::Bursty {
                rng,
                on_mean,
                off_mean,
                fast_period,
                seg_start,
                seg_end,
                in_on,
                next_slot,
            } => loop {
                if *in_on {
                    let candidate = *seg_start + *fast_period * *next_slot;
                    if candidate < *seg_end {
                        *next_slot += 1;
                        // Later slots and segments only move forward, so the
                        // first past-horizon candidate ends the sequence.
                        return (candidate < horizon).then_some(candidate);
                    }
                    *in_on = false;
                    *seg_start = *seg_end;
                    *seg_end = *seg_start + dwell(rng, *off_mean);
                } else {
                    *in_on = true;
                    *seg_start = *seg_end;
                    *seg_end = *seg_start + dwell(rng, *on_mean);
                    *next_slot = 0;
                }
                if *seg_start >= horizon {
                    return None;
                }
            },
            GenState::Diurnal { cycle_ns, amplitude, period, phase0, next } => {
                let release = *next;
                if release >= horizon {
                    return None;
                }
                let angle = TAU * (release.as_nanos() as f64 / *cycle_ns) + *phase0;
                let factor = 1.0 + *amplitude * angle.sin();
                let gap = SimDuration::from_micros_f64(period.as_micros_f64() / factor)
                    .max(SimDuration::from_nanos(1));
                *next = release + gap;
                Some(release)
            }
            GenState::Correlated { rng, group_period, gap_jitter, next } => {
                let release = *next;
                if release >= horizon {
                    return None;
                }
                let gap = group_period
                    .mul_f64(rng.uniform(1.0 - *gap_jitter, 1.0 + *gap_jitter))
                    .max(SimDuration::from_nanos(1));
                *next = release + gap;
                Some(release)
            }
        }
    }
}

/// The lazy merged arrival stream of a [`GenSpec`] over a task set: one
/// pending release per task in a k-way heap ordered by `(release, task,
/// index)` — the same tie-break as [`crate::ArrivalPlan`] — with memory
/// O(tasks) however long the run is. Job deadlines anchor to the *actual*
/// release (`release + relative_deadline`): a generated arrival is a fresh
/// request, not a delayed periodic one.
#[derive(Debug, Clone)]
pub struct GeneratedStream<'a> {
    tasks: &'a TaskSet,
    horizon: SimTime,
    heap: BinaryHeap<Reverse<(SimTime, TaskId, u64)>>,
    states: Vec<GenState>,
}

impl GeneratedStream<'_> {
    /// Release time of the next job, without consuming it.
    pub fn next_release(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((release, _, _))| *release)
    }
}

impl ArrivalSource for GeneratedStream<'_> {
    fn next_release(&self) -> Option<SimTime> {
        GeneratedStream::next_release(self)
    }

    fn next_job(&mut self) -> Option<Job> {
        let Reverse((release, task_id, index)) = self.heap.pop()?;
        let spec = self.tasks.task(task_id).expect("stream tasks outlive the iterator");
        if let Some(next) = self.states[task_id.index()].next_release(self.horizon) {
            self.heap.push(Reverse((next, task_id, index + 1)));
        }
        Some(Job {
            id: JobId { task: task_id, release_index: index },
            model: spec.model,
            priority: spec.priority,
            batch_size: spec.batch_size,
            release,
            absolute_deadline: release + spec.relative_deadline,
        })
    }
}

impl Iterator for GeneratedStream<'_> {
    type Item = Job;

    fn next(&mut self) -> Option<Job> {
        self.next_job()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TracePlayer;
    use daris_models::DnnKind;

    fn specs(seed: u64) -> [GenSpec; 3] {
        [
            GenSpec::Bursty(BurstyConfig { seed, ..Default::default() }),
            GenSpec::Diurnal(DiurnalConfig { seed, ..Default::default() }),
            GenSpec::Correlated(CorrelatedConfig { seed, ..Default::default() }),
        ]
    }

    #[test]
    fn same_seed_is_identical_and_different_seeds_diverge() {
        let ts = TaskSet::table2(DnnKind::UNet);
        let horizon = SimTime::from_millis(200);
        for (a, b) in specs(7).into_iter().zip(specs(7)) {
            assert_eq!(a.generate(&ts, horizon), b.generate(&ts, horizon), "{}", a.label());
        }
        for (a, b) in specs(7).into_iter().zip(specs(8)) {
            assert_ne!(a.generate(&ts, horizon), b.generate(&ts, horizon), "{}", a.label());
        }
    }

    #[test]
    fn generated_traces_satisfy_the_contract_and_replay_exactly() {
        let ts = TaskSet::mixed();
        let horizon = SimTime::from_millis(150);
        for spec in specs(3) {
            let trace = spec.generate(&ts, horizon);
            assert!(!trace.is_empty(), "{} generated nothing", spec.label());
            assert_eq!(
                trace.lookahead(),
                SimDuration::ZERO,
                "{}: per-task sequences are monotone",
                spec.label()
            );
            assert!(trace.offered_jps() > 0.0);
            // The lazy stream and the materialized trace agree byte for byte.
            let live: Vec<Job> = spec.stream(&ts, horizon).collect();
            let replayed: Vec<Job> = TracePlayer::new(&ts, &trace).unwrap().collect();
            assert_eq!(live, replayed, "{}", spec.label());
            for job in &live {
                assert!(job.release < horizon);
                assert_eq!(
                    job.absolute_deadline,
                    job.release + ts.task(job.id.task).unwrap().relative_deadline,
                    "deadlines anchor to the actual release"
                );
            }
        }
    }

    #[test]
    fn bursty_load_is_bursty_but_comparable_on_average() {
        let ts = TaskSet::table2(DnnKind::UNet);
        let horizon = SimTime::from_millis(400);
        let spec = GenSpec::Bursty(BurstyConfig::default());
        let trace = spec.generate(&ts, horizon);
        // Per-task gaps: bursts pack releases at period/3, silences stretch
        // far beyond one period (somewhere in the set — dwells are random).
        let period = ts.tasks()[0].period;
        let mut packed = false;
        let mut stretched = false;
        for task in ts.tasks() {
            let releases: Vec<SimTime> =
                trace.events().iter().filter(|e| e.task == task.id).map(|e| e.release).collect();
            for gap in releases.windows(2).map(|w| w[1].duration_since(w[0])) {
                packed |= gap.as_nanos() * 2 < period.as_nanos();
                stretched |= gap.as_nanos() > period.as_nanos() * 2;
            }
        }
        assert!(packed, "bursts must pack releases tighter than the period");
        assert!(stretched, "off segments must stretch gaps beyond the period");
        // Long-run average load stays comparable to the periodic plan
        // (duty 1/3 at 3x rate), so bursty-vs-periodic comparisons are fair.
        let ratio = trace.offered_jps() / ts.offered_jps();
        assert!((0.5..2.0).contains(&ratio), "offered ratio {ratio}");
    }

    #[test]
    fn diurnal_rate_swings_with_the_cycle() {
        let ts: TaskSet = TaskSet::preserving_phases(
            TaskSet::table2(DnnKind::UNet).tasks().iter().take(1).cloned(),
        );
        let spec = GenSpec::Diurnal(DiurnalConfig { amplitude: 0.8, ..Default::default() });
        let horizon = SimTime::from_millis(500);
        let trace = spec.generate(&ts, horizon);
        let gaps: Vec<f64> = trace
            .events()
            .windows(2)
            .map(|w| w[1].release.duration_since(w[0].release).as_micros_f64())
            .collect();
        let min = gaps.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = gaps.iter().cloned().fold(0.0, f64::max);
        // (1+a)/(1-a) = 9 at a=0.8; demand a healthy fraction of that swing.
        assert!(max > 3.0 * min, "diurnal gaps must swing with the cycle: {min}..{max}");
    }

    #[test]
    fn coherent_diurnal_phases_swing_the_aggregate_rate() {
        // With phase_spread = 0 every task shares φ = 0, so the *fleet*
        // release rate oscillates; with the default spread the per-task
        // cycles cancel and the aggregate stays near flat. Compare the
        // busiest and quietest cycle-half under each.
        let ts = TaskSet::table2(DnnKind::ResNet18);
        let cycle = SimDuration::from_millis(100);
        let horizon = SimTime::from_millis(400);
        let half_ratio = |spread: f64| -> f64 {
            let spec = GenSpec::Diurnal(DiurnalConfig {
                amplitude: 0.9,
                cycle,
                phase_spread: spread,
                ..Default::default()
            });
            let trace = spec.generate(&ts, horizon);
            let mut halves = [0usize; 8];
            for e in trace.events() {
                let half = e.release.as_nanos() / (cycle.as_nanos() / 2);
                halves[(half as usize).min(7)] += 1;
            }
            let busiest = *halves.iter().max().unwrap() as f64;
            let quietest = *halves.iter().min().unwrap() as f64;
            busiest / quietest.max(1.0)
        };
        let coherent = half_ratio(0.0);
        let spread = half_ratio(1.0);
        assert!(coherent > 2.0, "coherent phases must beat a 2:1 half-cycle swing: {coherent}");
        assert!(
            coherent > spread,
            "spread phases must flatten the aggregate: {coherent} vs {spread}"
        );
    }

    #[test]
    fn correlated_groups_co_release_and_differ_across_groups() {
        let ts = TaskSet::mixed();
        let cfg = CorrelatedConfig::default();
        let spec = GenSpec::Correlated(cfg);
        let horizon = SimTime::from_millis(200);
        let trace = spec.generate(&ts, horizon);
        let instants_of = |task: TaskId| -> Vec<SimTime> {
            trace.events().iter().filter(|e| e.task == task).map(|e| e.release).collect()
        };
        let groups = u64::from(cfg.groups);
        // Tasks 0 and 0+groups share a group; 0 and 1 do not.
        let same_a = instants_of(TaskId(0));
        let same_b = instants_of(TaskId(cfg.groups));
        let other = instants_of(TaskId(1));
        assert_eq!(0 % groups, u64::from(cfg.groups) % groups);
        assert!(!same_a.is_empty());
        assert_eq!(same_a, same_b, "group members must co-release");
        assert_ne!(same_a, other, "different groups release at different instants");
    }

    #[test]
    fn global_keys_preserve_sequences_under_sub_setting() {
        // The cluster-placement contract: a task keeps its release sequence
        // when moved into a device-local set, as long as it keeps its global
        // stream key — exactly like `preserving_phases` keeps phases.
        let ts = TaskSet::table2(DnnKind::UNet);
        let horizon = SimTime::from_millis(150);
        let picked: Vec<usize> = vec![2, 5, 11];
        let local = TaskSet::preserving_phases(picked.iter().map(|&i| ts.tasks()[i].clone()));
        let keys: Vec<u64> = picked.iter().map(|&i| i as u64).collect();
        for spec in specs(42) {
            let global: Vec<Job> = spec.stream(&ts, horizon).collect();
            let subset: Vec<Job> = spec.stream_keyed(&local, horizon, &keys).collect();
            // Filter the global stream down to the picked tasks and remap ids
            // to the local space: the sequences must match exactly.
            let expected: Vec<Job> = global
                .into_iter()
                .filter_map(|mut job| {
                    let local_index = picked.iter().position(|&g| g == job.id.task.index())?;
                    job.id.task = TaskId(local_index as u32);
                    Some(job)
                })
                .collect();
            assert_eq!(expected, subset, "{}", spec.label());
        }
    }

    #[test]
    #[should_panic(expected = "amplitude must lie in [0, 1)")]
    fn out_of_range_amplitude_is_rejected_loudly() {
        let ts = TaskSet::table2(DnnKind::UNet);
        let spec = GenSpec::Diurnal(DiurnalConfig { amplitude: 1.0, ..Default::default() });
        let _ = spec.stream(&ts, SimTime::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "one stream key per task")]
    fn key_count_mismatch_is_rejected_loudly() {
        let ts = TaskSet::table2(DnnKind::UNet);
        let spec = GenSpec::Bursty(BurstyConfig::default());
        let _ = spec.stream_keyed(&ts, SimTime::from_millis(10), &[1, 2, 3]);
    }

    #[test]
    fn peek_is_consistent_with_next() {
        let ts = TaskSet::mixed();
        for spec in specs(5) {
            let mut stream = spec.stream(&ts, SimTime::from_millis(60));
            let mut last = SimTime::ZERO;
            while let Some(peeked) = GeneratedStream::next_release(&stream) {
                let job = stream.next_job().expect("peeked release implies a job");
                assert_eq!(job.release, peeked);
                assert!(job.release >= last, "{} must stay time-ordered", spec.label());
                last = job.release;
            }
            assert!(stream.next_job().is_none());
        }
    }
}
